(* Listener plumbing shared by the daemon and the fleet front tier:
   bind Unix-domain / loopback-TCP sockets, run a select-based accept
   loop handing each connection to its own thread, and tear down. *)

type listener = {
  afd : Unix.file_descr;
  apath : string option;  (* Unix-domain path to unlink on close *)
  aport : int option;  (* actual bound TCP port (resolves port 0) *)
}

(* Is something actually accepting on [path]? A crashed daemon leaves
   its socket file behind; bind would then fail with EADDRINUSE even
   though nobody is home. Probe with a connect: only an accepting
   listener completes it, so a successful probe means a live server we
   must not clobber, and any connect failure (ECONNREFUSED for the
   classic stale-file case) means the file is dead weight. *)
let unix_socket_live path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let live =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  live

let bind_unix path =
  if Sys.file_exists path then begin
    if unix_socket_live path then
      failwith (Printf.sprintf "%s: a server is already listening on this socket" path);
    try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  end;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  { afd = fd; apath = Some path; aport = None }

let bind_tcp ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  { afd = fd; apath = None; aport = Some bound }

let port l = l.aport
let unix_path l = l.apath

let serve listeners ~stopped ~handle =
  let fds = List.map (fun l -> l.afd) listeners in
  let rec loop () =
    if not (stopped ()) then begin
      (* The timeout bounds how long a stop request can go unnoticed. *)
      (match Unix.select fds [] [] 0.25 with
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ -> ignore (Thread.create handle fd)
              | exception Unix.Unix_error (_, _, _) -> ())
            ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let close_all listeners =
  List.iter
    (fun l ->
      (try Unix.close l.afd with Unix.Unix_error (_, _, _) -> ());
      match l.apath with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error (_, _, _) -> ())
      | None -> ())
    listeners
