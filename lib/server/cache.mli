(** Thread-safe LRU cache — the daemon's content-addressed schedule
    cache and its topology memo are both instances.

    Keys are strings (the daemon uses "digest:policy:rate:…" content
    addresses). Every operation takes the instance's mutex, so entries
    are never torn across the daemon's connection threads or the pool's
    worker domains; values are expected to be immutable once inserted.

    Hit/miss/eviction/insertion counters land in {!Mlbs_obs.Metrics}
    under [<metrics_prefix>/…] (no-ops while the registry is
    disabled). *)

type 'a t

(** [create ?metrics_prefix ~capacity ()] is an empty cache holding at
    most [capacity] entries (a [capacity <= 0] cache stores nothing —
    every lookup misses). Default prefix: ["server/cache"]. *)
val create : ?metrics_prefix:string -> capacity:int -> unit -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] promotes a present entry to most-recently-used and
    returns it; counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** [add t key v] inserts (or replaces) at most-recently-used and evicts
    least-recently-used entries while over capacity. *)
val add : 'a t -> string -> 'a -> unit

(** [upsert t key f] applies [f] to the current entry at [key] (without
    counting a hit or a miss, and without promoting on its own) under
    the instance mutex: [f None] runs when the key is absent, and a
    [Some v] result is installed at most-recently-used while [None]
    leaves the cache unchanged. This is the atomic
    compare-and-install the daemon's monotone schedule-version
    upgrades are built on — [f] must be fast and must not touch the
    cache itself. *)
val upsert : 'a t -> string -> ('a option -> 'a option) -> unit

(** [to_list_mru t] is every (key, value) pair, most-recently-used
    first — the order the daemon persists hot entries in. *)
val to_list_mru : 'a t -> (string * 'a) list

val clear : 'a t -> unit
