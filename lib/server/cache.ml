module Metrics = Mlbs_obs.Metrics

(* Classic hashtable + intrusive doubly-linked recency list; [head] is
   MRU, [tail] LRU. All mutation happens under [lock]. *)
type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* towards MRU *)
  mutable next : 'a node option; (* towards LRU *)
}

type 'a t = {
  lock : Mutex.t;
  tbl : (string, 'a node) Hashtbl.t;
  cap : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable len : int;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  m_insertions : Metrics.counter;
  g_entries : Metrics.gauge;
}

let create ?(metrics_prefix = "server/cache") ~capacity () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    cap = capacity;
    head = None;
    tail = None;
    len = 0;
    m_hits = Metrics.counter (metrics_prefix ^ "/hits");
    m_misses = Metrics.counter (metrics_prefix ^ "/misses");
    m_evictions = Metrics.counter (metrics_prefix ^ "/evictions");
    m_insertions = Metrics.counter (metrics_prefix ^ "/insertions");
    g_entries = Metrics.gauge (metrics_prefix ^ "/entries");
  }

let capacity t = t.cap

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some nx -> nx.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some node ->
        unlink t node;
        push_front t node;
        Metrics.incr t.m_hits;
        Some node.value
    | None ->
        Metrics.incr t.m_misses;
        None
  in
  Mutex.unlock t.lock;
  r

let evict_over_capacity t =
  while t.len > t.cap do
    match t.tail with
    | None -> t.len <- 0 (* unreachable: len > 0 implies a tail *)
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        t.len <- t.len - 1;
        Metrics.incr t.m_evictions
  done

let add t key value =
  if t.cap > 0 then begin
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.tbl key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key node;
        push_front t node;
        t.len <- t.len + 1;
        Metrics.incr t.m_insertions;
        evict_over_capacity t);
    Metrics.set t.g_entries t.len;
    Mutex.unlock t.lock
  end

let upsert t key f =
  if t.cap > 0 then begin
    Mutex.lock t.lock;
    let node = Hashtbl.find_opt t.tbl key in
    (match f (Option.map (fun n -> n.value) node) with
    | None -> ()
    | Some value -> (
        match node with
        | Some node ->
            node.value <- value;
            unlink t node;
            push_front t node
        | None ->
            let node = { key; value; prev = None; next = None } in
            Hashtbl.replace t.tbl key node;
            push_front t node;
            t.len <- t.len + 1;
            Metrics.incr t.m_insertions;
            evict_over_capacity t));
    Metrics.set t.g_entries t.len;
    Mutex.unlock t.lock
  end

let to_list_mru t =
  Mutex.lock t.lock;
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.key, node.value) :: acc) node.next
  in
  let l = go [] t.head in
  Mutex.unlock t.lock;
  l

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.len <- 0;
  Metrics.set t.g_entries 0;
  Mutex.unlock t.lock
