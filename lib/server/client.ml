module C = Codec

type t = { fd : Unix.file_descr; mutable open_ : bool }

type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

type outcome =
  | Ok of C.ok_reply
  | Rejected of { retry_after_ms : int }
  | Error of string

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

let roundtrip t msg =
  C.send t.fd msg;
  match C.recv t.fd with
  | Some reply -> reply
  | None -> failwith "server closed the connection"

let connect ep =
  let fd, addr =
    match ep with
    | Unix_socket path ->
        (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Tcp { host; port } ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  let t = { fd; open_ = true } in
  match roundtrip t (C.Hello { proto = C.protocol_version; version = Version.version }) with
  | C.Hello_ack { proto; version; version_match } ->
      if proto <> C.protocol_version then begin
        close t;
        failwith
          (Printf.sprintf "protocol mismatch: server speaks v%d, client v%d" proto
             C.protocol_version)
      end;
      (t, `Version version, `Match version_match)
  | _ ->
      close t;
      failwith "unexpected handshake reply"
  | exception e ->
      close t;
      raise e

let request t req =
  match roundtrip t (C.Request req) with
  | C.Reply_ok ok -> Ok ok
  | C.Reply_rejected { retry_after_ms } -> Rejected { retry_after_ms }
  | C.Reply_error m -> Error m
  | _ -> Error "unexpected reply to request"

let rec request_retry ?(attempts = 5) t req =
  match request t req with
  | Rejected { retry_after_ms } when attempts > 1 ->
      Unix.sleepf (float_of_int retry_after_ms /. 1000.);
      request_retry ~attempts:(attempts - 1) t req
  | outcome -> outcome

let reschedule t ~base ~delta =
  match roundtrip t (C.Reschedule { base; delta }) with
  | C.Reply_ok ok -> Ok ok
  | C.Reply_rejected { retry_after_ms } -> Rejected { retry_after_ms }
  | C.Reply_error m -> Error m
  | _ -> Error "unexpected reply to reschedule"

let rec reschedule_retry ?(attempts = 5) t ~base ~delta =
  match reschedule t ~base ~delta with
  | Rejected { retry_after_ms } when attempts > 1 ->
      Unix.sleepf (float_of_int retry_after_ms /. 1000.);
      reschedule_retry ~attempts:(attempts - 1) t ~base ~delta
  | outcome -> outcome

let peek t req =
  match roundtrip t (C.Peek req) with
  | C.Reply_ok ok -> `Hit ok
  | C.Peek_miss -> `Miss
  | C.Reply_error m -> `Error m
  | _ -> `Error "unexpected reply to peek"

let put t ?(version = 0) ~req ~stats ~schedule () =
  match roundtrip t (C.Put { req; version; stats; schedule }) with
  | C.Put_ack -> Result.Ok ()
  | C.Reply_error m -> Result.Error m
  | _ -> Result.Error "unexpected reply to put"

let stats t =
  match roundtrip t C.Stats_request with
  | C.Stats_reply kvs -> kvs
  | _ -> failwith "unexpected reply to stats request"

let shutdown t =
  match roundtrip t C.Shutdown with
  | C.Shutdown_ack -> ()
  | _ -> failwith "unexpected reply to shutdown"
