(** The build's version string (injected by dune from the project
    version), shared by [mlbs --version] and the scheduling service's
    handshake so client and server can detect a skew. *)
val version : string
