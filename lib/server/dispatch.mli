(** Bounded admission queue + batching dispatcher over a domain pool,
    extracted from {!Daemon} for reuse.

    Connection threads [submit] closures; one dispatcher thread batches
    up to pool-width of them per round onto the pool's workers. A full
    queue sheds at the door with the observed depth (the caller turns
    that into a [retry_after_ms] hint); after {!stop} the queue drains
    but admits nothing new. *)

type 'a t

(** A submitted unit of work, awaited by the submitting thread. *)
type 'a ticket

(** [create ~pool ~capacity] — [capacity] bounds the queue; work beyond
    it is shed at submission. The pool is borrowed, not owned: callers
    shut it down themselves after {!join}. *)
val create : pool:Mlbs_util.Pool.t -> capacity:int -> 'a t

(** [submit t ?on_done f] enqueues [f]. [Error `Closing] once draining,
    [Error (`Shed depth)] when the queue is full. [on_done] runs in the
    dispatcher thread with the result before the submitter wakes —
    the hook the daemon uses to publish into its cache even if the
    submitting connection died. Exceptions from [f] surface as
    [Error msg] results; exceptions from [on_done] are swallowed. *)
val submit :
  'a t ->
  ?on_done:(('a, string) result -> unit) ->
  (unit -> 'a) ->
  ('a ticket, [ `Closing | `Shed of int ]) result

(** Block until the ticket's closure ran. *)
val await : 'a ticket -> ('a, string) result

(** [busy t] is [true] while work is queued or a batch is running on
    the pool — the idleness probe the daemon's background improver
    consults so that polishing only ever uses otherwise-wasted
    dispatcher cycles. Point-in-time: a submission can race it, which
    at worst delays one solve batch by a single (budget-bounded)
    polish pass. *)
val busy : 'a t -> bool

(** Spawn the dispatcher thread. *)
val start : 'a t -> unit

(** Request a drain: pending tickets still complete, new submissions are
    refused. Async-signal-safe (a single atomic store). *)
val stop : 'a t -> unit

(** Wake the dispatcher and join its thread; call after {!stop}, from a
    normal (non-signal) context. *)
val join : 'a t -> unit
