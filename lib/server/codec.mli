(** Wire protocol of the scheduling service: length-prefixed binary
    frames over a Unix-domain or TCP stream.

    Frame layout: a 4-byte big-endian payload length, then the payload.
    The first payload byte is the message tag; the rest is the
    fixed-order field encoding below (big-endian integers, 8-byte IEEE
    floats, strings and lists length-prefixed). A frame longer than
    {!max_frame} is rejected before any allocation proportional to it,
    so a corrupt or hostile peer cannot OOM the daemon.

    The encoding is canonical: equal values encode to equal bytes,
    which is what lets the CI smoke job byte-compare served schedules
    against direct {!Mlbs_core.Scheduler} output. *)

(** Protocol revision carried in the handshake; bumped on any frame
    layout change. *)
val protocol_version : int

(** Hard ceiling on a frame's payload size (bytes). *)
val max_frame : int

(** Scheduling policy requested for a solve; [Gopt]/[Opt] run with the
    library's default budgets (the same ones [mlbs schedule] uses). *)
type policy = Baseline | Emodel | Gopt | Opt

(** What to solve over: either generator parameters — the daemon samples
    the deployment exactly as [mlbs schedule --n N --seed S] would — or
    an explicit symmetric adjacency shipped in the request. *)
type topology =
  | Gen of { n : int; radius : float }
  | Adj of int list array

type request = {
  policy : policy;
  rate : int option;  (** duty-cycle rate; [None] = synchronous *)
  seed : int;  (** deployment / wake-schedule / source-selection seed *)
  topology : topology;
  source : int option;
      (** explicit source; [None] derives it (paper eccentricity window
          for [Gen], node 0 for [Adj]) *)
  start : int;  (** first transmission slot, [mlbs schedule] uses 1 *)
  model : Mlbs_phy.Interference.t;
      (** interference model to solve under (protocol v4). Part of the
          content address: requests differing only in model never share
          a cache line. Decoding validates the parameters and rejects a
          malformed spec with {!Malformed}. *)
}

(** A topology delta riding a {!msg.Reschedule} message: edge
    endpoints to connect / disconnect, plus full replacement
    neighbourhoods for rewired nodes — the same three lists
    {!Mlbs_graph.Graph.edit} consumes, applied in its order
    (removals, rewires in list order, additions). Node count is
    fixed; a delta never adds or deletes nodes. *)
type delta = {
  d_added : (int * int) list;
  d_removed : (int * int) list;
  d_rewired : (int * int list) list;
}

(** Per-solve statistics carried in an [Ok] reply. [search_states] is
    the process-wide M-counter state delta observed around the solve —
    exact when the daemon is idle, an aggregate under concurrency. *)
type stats = {
  elapsed : int;
  transmissions : int;
  n_steps : int;
  search_states : int;
  solve_us : int;
}

type ok_reply = {
  trace_id : string;  (** server-side span id, greppable in the trace *)
  cache_hit : bool;
  version : int;
      (** schedule version (protocol v5): [0] is the deterministic
          construction {!Daemon.solve} would produce; [v > 0] means the
          background improver installed [v] successive strictly-better,
          Validate-clean upgrades on this cache line. Versions only ever
          increase for a given content address. *)
  stats : stats;
  schedule : Mlbs_core.Schedule.t;
}

type msg =
  | Hello of { proto : int; version : string }
  | Hello_ack of { proto : int; version : string; version_match : bool }
  | Request of request
  | Reschedule of { base : request; delta : delta }
      (** repair the base request's schedule after a topology delta:
          the daemon resolves [base] (hitting its caches), applies the
          delta, and serves a schedule for the edited graph — warm
          starting from the base solve when it has one. The reply is a
          plain [Reply_ok]; the repaired schedule is cached under the
          {e edited} graph's content address, byte-identical to what a
          plain [Request] for that adjacency would compute. *)
  | Reply_ok of ok_reply
  | Reply_rejected of { retry_after_ms : int }
      (** admission queue full: overload is shed explicitly, retry after
          the hinted delay *)
  | Reply_error of string  (** malformed or unsatisfiable request *)
  | Stats_request
  | Stats_reply of (string * int) list
  | Shutdown
  | Shutdown_ack
  | Peek of request
      (** cache-only probe (protocol v3): the daemon resolves the
          request and answers from its schedule cache — [Reply_ok] with
          [cache_hit = true] on a hit, {!Peek_miss} otherwise — but
          never solves. The fleet front tier uses this to ask a shard
          "do you already have it?" before committing a solve. *)
  | Peek_miss
  | Put of { req : request; version : int; stats : stats; schedule : Mlbs_core.Schedule.t }
      (** peer cache-fill (protocol v3): insert a finished reply under
          [req]'s content address. The daemon recomputes the address
          from [req] itself — raw cache keys never ride the wire — and
          answers {!Put_ack}. [version] (protocol v5) rides along so
          improver upgrades propagate across the fleet ring; the
          receiver installs monotonically, never replacing a newer
          version with an older one. *)
  | Put_ack

exception Malformed of string

(** [encode msg] is the payload bytes (no length prefix). *)
val encode : msg -> string

(** [decode payload] parses one payload; raises {!Malformed} on
    anything but a complete well-formed message. *)
val decode : string -> msg

(** [schedule_bytes s] is the canonical encoding of a schedule alone —
    the byte string loadgen and the CI smoke job compare against a
    direct scheduler run. *)
val schedule_bytes : Mlbs_core.Schedule.t -> string

(** [send fd msg] writes one frame, handling partial writes. *)
val send : Unix.file_descr -> msg -> unit

(** [recv fd] reads one frame; [None] on a clean EOF at a frame
    boundary. Raises {!Malformed} on truncation mid-frame, an oversized
    length, or a payload that does not parse. *)
val recv : Unix.file_descr -> msg option

(** {2 Raw-payload relaying}

    The fleet front tier forwards reply payloads byte-for-byte instead
    of decoding and re-encoding schedules; byte-identity of relayed
    replies is then true by construction, and the front's per-request
    CPU stays O(header), not O(schedule). *)

(** [send_payload fd payload] frames and writes an already-encoded
    payload. [send fd msg = send_payload fd (encode msg)]. *)
val send_payload : Unix.file_descr -> string -> unit

(** [recv_payload fd] reads one frame without decoding it; [None] on a
    clean EOF. Length-limit and truncation behaviour as {!recv}. *)
val recv_payload : Unix.file_descr -> string option

(** First payload byte (the message tag). Raises {!Malformed} on an
    empty payload. *)
val payload_tag : string -> int

(** Rewrite an encoded [Request] payload into the corresponding [Peek]
    payload (the two frames share their field layout; only the tag
    differs). Raises {!Malformed} on any other tag. *)
val peek_of_request_payload : string -> string

(** A reply payload classified without decoding the schedule body. *)
type reply_view =
  | View_ok of { cache_hit : bool; version : int }
  | View_rejected of { retry_after_ms : int }
  | View_error of string
  | View_peek_miss
  | View_other of int  (** any other tag, returned verbatim *)

(** [reply_view payload] inspects just the tag and leading fixed fields.
    Raises {!Malformed} only when those leading bytes are truncated. *)
val reply_view : string -> reply_view
