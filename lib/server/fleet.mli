(** The fleet front tier: consistent-hash routing of scheduling
    requests across backend daemons, with peer cache-fill, health-driven
    ring rebuilds, and global backpressure (DESIGN.md §9).

    The front speaks the same {!Codec} protocol as a single daemon — a
    client cannot tell the difference — and relays reply payloads
    byte-for-byte, so a reply served through the fleet is byte-identical
    to the owning backend's (and hence to a direct
    {!Mlbs_core.Scheduler.run}), even after a backend died mid-run and
    the request was re-routed. *)

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener; [Some 0] = ephemeral *)
  backends : Client.endpoint list;  (** the shards, in stable order *)
  replicas : int;  (** virtual points per shard on the ring *)
  health_period : float;  (** seconds between backend probes *)
  max_inflight : int;  (** global in-flight cap before the front sheds *)
  fill : bool;  (** peek the ring successor before solving on a miss *)
}

(** 64 replicas, 1 s health period, 256 in-flight, fill enabled, no TCP. *)
val default_config : backends:Client.endpoint list -> socket_path:string -> config

(** Stable shard name used on the ring and in logs: ["host:port"] for
    TCP backends, ["unix:path"] for Unix-domain ones. *)
val endpoint_name : Client.endpoint -> string

type t

(** [start cfg] probes the backends (the live ones form the initial
    ring), binds the listeners, and spawns the acceptor and health
    threads. Raises [Failure] without a listener or backends. *)
val start : config -> t

(** Initiate shutdown; idempotent, signal-safe. *)
val stop : t -> unit

(** Block until stopped, then join threads and close everything. *)
val wait : t -> unit

(** [start] + [wait]. *)
val run : config -> unit

(** Actual bound TCP port, as {!Daemon.tcp_port}. *)
val tcp_port : t -> int option

(** Names of the backends currently on the ring (for tests/tools). *)
val alive_backends : t -> string list
