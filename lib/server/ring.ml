(* Consistent-hash ring over backend names.

   Pure and deterministic: the placement of a key depends only on the
   member names and the replica count, never on process state, hash
   randomization, or insertion order. That is what lets the front tier,
   the tests, and an operator's offline tooling all predict the same
   owner for a key, and what bounds data movement when the member set
   changes (only keys adjacent to the joining/leaving node's points move
   — the classic consistent-hashing guarantee). *)

type t = {
  replicas : int;
  points : (int64 * string) array;  (* sorted by (unsigned hash, name) *)
  names : string list;  (* sorted, distinct *)
}

(* FNV-1a over the bytes, then the SplitMix64 finalizer to spread the
   low entropy of short, similar names ("127.0.0.1:17401#12", ...)
   across all 64 bits. Deliberately NOT [Hashtbl.hash]: its value is an
   implementation detail of the runtime, and ring placement must be
   stable across compiler versions. *)
let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let compare_points (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with 0 -> String.compare n1 n2 | c -> c

let create ?(replicas = 64) names =
  if replicas <= 0 then invalid_arg "Ring.create: replicas must be positive";
  let names = List.sort_uniq String.compare names in
  let points =
    Array.init (List.length names * replicas) (fun i ->
        let name = List.nth names (i / replicas) in
        (hash_string (Printf.sprintf "%s#%d" name (i mod replicas)), name))
  in
  Array.sort compare_points points;
  { replicas; points; names }

let nodes t = t.names
let is_empty t = t.names = []
let replicas t = t.replicas

(* Index of the first point at or clockwise-after [h], wrapping. *)
let point_at t h =
  let n = Array.length t.points in
  (* binary search: first index with point hash >= h (unsigned) *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  if i = n then 0 else i

let owner t key =
  if is_empty t then None else Some (snd t.points.(point_at t (hash_string key)))

let successor t key =
  if is_empty t then None
  else begin
    let n = Array.length t.points in
    let i = point_at t (hash_string key) in
    let own = snd t.points.(i) in
    let rec walk j steps =
      if steps = 0 then None
      else
        let name = snd t.points.(j) in
        if name <> own then Some name else walk ((j + 1) mod n) (steps - 1)
    in
    walk ((i + 1) mod n) n
  end

let add t name = create ~replicas:t.replicas (name :: t.names)
let remove t name = create ~replicas:t.replicas (List.filter (( <> ) name) t.names)
