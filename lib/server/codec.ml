module Schedule = Mlbs_core.Schedule
module Interference = Mlbs_phy.Interference

let protocol_version = 5
let max_frame = 1 lsl 26 (* 64 MiB *)

type policy = Baseline | Emodel | Gopt | Opt

type topology =
  | Gen of { n : int; radius : float }
  | Adj of int list array

type request = {
  policy : policy;
  rate : int option;
  seed : int;
  topology : topology;
  source : int option;
  start : int;
  model : Interference.t;
}

type delta = {
  d_added : (int * int) list;
  d_removed : (int * int) list;
  d_rewired : (int * int list) list;
}

type stats = {
  elapsed : int;
  transmissions : int;
  n_steps : int;
  search_states : int;
  solve_us : int;
}

type ok_reply = {
  trace_id : string;
  cache_hit : bool;
  version : int;
  stats : stats;
  schedule : Schedule.t;
}

type msg =
  | Hello of { proto : int; version : string }
  | Hello_ack of { proto : int; version : string; version_match : bool }
  | Request of request
  | Reschedule of { base : request; delta : delta }
  | Reply_ok of ok_reply
  | Reply_rejected of { retry_after_ms : int }
  | Reply_error of string
  | Stats_request
  | Stats_reply of (string * int) list
  | Shutdown
  | Shutdown_ack
  | Peek of request
  | Peek_miss
  | Put of { req : request; version : int; stats : stats; schedule : Schedule.t }
  | Put_ack

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------ writer ------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then fail "u32 out of range: %d" v;
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_int_list b l =
  put_u32 b (List.length l);
  List.iter (put_u32 b) l

let put_opt put b = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put b v

(* ------------------------------ reader ------------------------------ *)

type reader = { s : string; mutable pos : int }

let need r k = if r.pos + k > String.length r.s then fail "truncated payload"

let get_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v =
    (Char.code r.s.[r.pos] lsl 24)
    lor (Char.code r.s.[r.pos + 1] lsl 16)
    lor (Char.code r.s.[r.pos + 2] lsl 8)
    lor Char.code r.s.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad bool byte %d" v

(* Every count is validated against the bytes actually remaining before
   anything of that size is allocated. *)
let get_count r ~elt_bytes =
  let k = get_u32 r in
  if k * elt_bytes > String.length r.s - r.pos then fail "count %d exceeds payload" k;
  k

let get_string r =
  let k = get_count r ~elt_bytes:1 in
  need r k;
  let s = String.sub r.s r.pos k in
  r.pos <- r.pos + k;
  s

let get_int_list r =
  let k = get_count r ~elt_bytes:4 in
  List.init k (fun _ -> get_u32 r)

let get_opt get r = match get_u8 r with 0 -> None | 1 -> Some (get r) | v -> fail "bad option byte %d" v

(* ----------------------------- payloads ----------------------------- *)

let policy_code = function Baseline -> 0 | Emodel -> 1 | Gopt -> 2 | Opt -> 3

let policy_of_code = function
  | 0 -> Baseline
  | 1 -> Emodel
  | 2 -> Gopt
  | 3 -> Opt
  | c -> fail "bad policy code %d" c

let put_topology b = function
  | Gen { n; radius } ->
      put_u8 b 0;
      put_u32 b n;
      Buffer.add_int64_be b (Int64.bits_of_float radius)
  | Adj adj ->
      put_u8 b 1;
      put_u32 b (Array.length adj);
      Array.iter (put_int_list b) adj

let get_topology r =
  match get_u8 r with
  | 0 ->
      let n = get_u32 r in
      need r 8;
      let radius = Int64.float_of_bits (String.get_int64_be r.s r.pos) in
      r.pos <- r.pos + 8;
      Gen { n; radius }
  | 1 ->
      let n = get_count r ~elt_bytes:4 in
      Adj (Array.init n (fun _ -> get_int_list r))
  | t -> fail "bad topology tag %d" t

let put_float b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let get_float r =
  need r 8;
  let f = Int64.float_of_bits (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  f

(* Protocol v4: the interference model is part of the request — it keys
   the cache (a SINR schedule must never answer a UDG request) and the
   codec validates the parameters so a malformed spec is rejected at the
   wire, not deep inside a solve. *)
let put_model b = function
  | Interference.Udg -> put_u8 b 0
  | Interference.Sinr { alpha; beta; noise; power } ->
      put_u8 b 1;
      put_float b alpha;
      put_float b beta;
      put_float b noise;
      put_float b power
  | Interference.Multichannel k ->
      put_u8 b 2;
      put_u8 b k

let get_model r =
  let m =
    match get_u8 r with
    | 0 -> Interference.Udg
    | 1 ->
        let alpha = get_float r in
        let beta = get_float r in
        let noise = get_float r in
        let power = get_float r in
        Interference.Sinr { alpha; beta; noise; power }
    | 2 -> Interference.Multichannel (get_u8 r)
    | t -> fail "bad interference model tag %d" t
  in
  match Interference.validate m with
  | Ok () -> m
  | Error e -> fail "bad interference model: %s" e

let put_request b (q : request) =
  put_u8 b (policy_code q.policy);
  put_opt put_u32 b q.rate;
  put_i64 b q.seed;
  put_topology b q.topology;
  put_opt put_u32 b q.source;
  put_u32 b q.start;
  put_model b q.model

let get_request r =
  let policy = policy_of_code (get_u8 r) in
  let rate = get_opt get_u32 r in
  let seed = get_i64 r in
  let topology = get_topology r in
  let source = get_opt get_u32 r in
  let start = get_u32 r in
  let model = get_model r in
  { policy; rate; seed; topology; source; start; model }

let put_pair_list b l =
  put_u32 b (List.length l);
  List.iter
    (fun (u, v) ->
      put_u32 b u;
      put_u32 b v)
    l

let get_pair_list r =
  let k = get_count r ~elt_bytes:8 in
  List.init k (fun _ ->
      let u = get_u32 r in
      let v = get_u32 r in
      (u, v))

let put_delta b (d : delta) =
  put_pair_list b d.d_added;
  put_pair_list b d.d_removed;
  put_u32 b (List.length d.d_rewired);
  List.iter
    (fun (u, nbrs) ->
      put_u32 b u;
      put_int_list b nbrs)
    d.d_rewired

let get_delta r =
  let d_added = get_pair_list r in
  let d_removed = get_pair_list r in
  let k = get_count r ~elt_bytes:8 in
  let d_rewired =
    List.init k (fun _ ->
        let u = get_u32 r in
        let nbrs = get_int_list r in
        (u, nbrs))
  in
  { d_added; d_removed; d_rewired }

let put_stats b (s : stats) =
  put_u32 b s.elapsed;
  put_u32 b s.transmissions;
  put_u32 b s.n_steps;
  put_i64 b s.search_states;
  put_i64 b s.solve_us

let get_stats r =
  let elapsed = get_u32 r in
  let transmissions = get_u32 r in
  let n_steps = get_u32 r in
  let search_states = get_i64 r in
  let solve_us = get_i64 r in
  { elapsed; transmissions; n_steps; search_states; solve_us }

let put_schedule b s =
  put_u32 b (Schedule.n_nodes s);
  put_u32 b (Schedule.source s);
  put_u32 b (Schedule.start s);
  let steps = Schedule.steps s in
  put_u32 b (List.length steps);
  List.iter
    (fun (st : Schedule.step) ->
      put_u32 b st.Schedule.slot;
      put_int_list b st.Schedule.senders;
      put_int_list b st.Schedule.informed)
    steps

let get_schedule r =
  let n_nodes = get_u32 r in
  let source = get_u32 r in
  let start = get_u32 r in
  let k = get_count r ~elt_bytes:12 in
  let steps =
    List.init k (fun _ ->
        let slot = get_u32 r in
        let senders = get_int_list r in
        let informed = get_int_list r in
        { Schedule.slot; senders; informed })
  in
  try Schedule.make ~n_nodes ~source ~start steps
  with Invalid_argument m -> fail "inconsistent schedule: %s" m

let schedule_bytes s =
  let b = Buffer.create 256 in
  put_schedule b s;
  Buffer.contents b

(* ----------------------------- messages ----------------------------- *)

let encode msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { proto; version } ->
      put_u8 b 1;
      put_u32 b proto;
      put_string b version
  | Hello_ack { proto; version; version_match } ->
      put_u8 b 2;
      put_u32 b proto;
      put_string b version;
      put_bool b version_match
  | Request q ->
      put_u8 b 3;
      put_request b q
  | Reply_ok { trace_id; cache_hit; version; stats; schedule } ->
      put_u8 b 4;
      put_string b trace_id;
      put_bool b cache_hit;
      put_u32 b version;
      put_stats b stats;
      put_schedule b schedule
  | Reply_rejected { retry_after_ms } ->
      put_u8 b 5;
      put_u32 b retry_after_ms
  | Reply_error m ->
      put_u8 b 6;
      put_string b m
  | Stats_request -> put_u8 b 7
  | Stats_reply kvs ->
      put_u8 b 8;
      put_u32 b (List.length kvs);
      List.iter
        (fun (k, v) ->
          put_string b k;
          put_i64 b v)
        kvs
  | Shutdown -> put_u8 b 9
  | Shutdown_ack -> put_u8 b 10
  | Reschedule { base; delta } ->
      put_u8 b 11;
      put_request b base;
      put_delta b delta
  | Peek q ->
      put_u8 b 12;
      put_request b q
  | Peek_miss -> put_u8 b 13
  | Put { req; version; stats; schedule } ->
      put_u8 b 14;
      put_request b req;
      put_u32 b version;
      put_stats b stats;
      put_schedule b schedule
  | Put_ack -> put_u8 b 15);
  Buffer.contents b

let decode payload =
  if payload = "" then fail "empty payload";
  let r = { s = payload; pos = 0 } in
  let msg =
    match get_u8 r with
    | 1 ->
        let proto = get_u32 r in
        let version = get_string r in
        Hello { proto; version }
    | 2 ->
        let proto = get_u32 r in
        let version = get_string r in
        let version_match = get_bool r in
        Hello_ack { proto; version; version_match }
    | 3 -> Request (get_request r)
    | 4 ->
        let trace_id = get_string r in
        let cache_hit = get_bool r in
        let version = get_u32 r in
        let stats = get_stats r in
        let schedule = get_schedule r in
        Reply_ok { trace_id; cache_hit; version; stats; schedule }
    | 5 -> Reply_rejected { retry_after_ms = get_u32 r }
    | 6 -> Reply_error (get_string r)
    | 7 -> Stats_request
    | 8 ->
        let k = get_count r ~elt_bytes:12 in
        Stats_reply
          (List.init k (fun _ ->
               let key = get_string r in
               let v = get_i64 r in
               (key, v)))
    | 9 -> Shutdown
    | 10 -> Shutdown_ack
    | 11 ->
        let base = get_request r in
        let delta = get_delta r in
        Reschedule { base; delta }
    | 12 -> Peek (get_request r)
    | 13 -> Peek_miss
    | 14 ->
        let req = get_request r in
        let version = get_u32 r in
        let stats = get_stats r in
        let schedule = get_schedule r in
        Put { req; version; stats; schedule }
    | 15 -> Put_ack
    | t -> fail "unknown message tag %d" t
  in
  if r.pos <> String.length payload then fail "trailing bytes after message";
  msg

(* ------------------------------ framing ----------------------------- *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let k = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd buf (off + k) (len - k)
  end

(* [exact] distinguishes EOF at a frame boundary (None) from truncation
   mid-frame (Malformed). *)
let read_exact fd len ~boundary =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 && boundary then None else fail "connection closed mid-frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_payload fd payload =
  let len = String.length payload in
  if len > max_frame then fail "frame too large (%d bytes)" len;
  let buf = Bytes.create (4 + len) in
  Bytes.set_uint8 buf 0 (len lsr 24 land 0xff);
  Bytes.set_uint8 buf 1 (len lsr 16 land 0xff);
  Bytes.set_uint8 buf 2 (len lsr 8 land 0xff);
  Bytes.set_uint8 buf 3 (len land 0xff);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let send fd msg = send_payload fd (encode msg)

let recv_payload fd =
  match read_exact fd 4 ~boundary:true with
  | None -> None
  | Some hdr ->
      let len =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if len > max_frame then fail "frame length %d exceeds limit" len;
      if len = 0 then fail "empty frame";
      (match read_exact fd len ~boundary:false with
      | None -> assert false
      | Some payload -> Some payload)

let recv fd = Option.map decode (recv_payload fd)

(* ------------------------- payload peeking -------------------------- *)

(* The fleet front tier relays payloads without decoding schedules; the
   helpers below read just enough of a payload to route and account it. *)

let payload_tag payload = if payload = "" then fail "empty payload" else Char.code payload.[0]

let peek_of_request_payload payload =
  if payload_tag payload <> 3 then fail "not a Request payload";
  "\x0c" ^ String.sub payload 1 (String.length payload - 1)

type reply_view =
  | View_ok of { cache_hit : bool; version : int }
  | View_rejected of { retry_after_ms : int }
  | View_error of string
  | View_peek_miss
  | View_other of int

let reply_view payload =
  let r = { s = payload; pos = 0 } in
  match get_u8 r with
  | 4 ->
      let _trace_id = get_string r in
      let cache_hit = get_bool r in
      View_ok { cache_hit; version = get_u32 r }
  | 5 -> View_rejected { retry_after_ms = get_u32 r }
  | 6 -> View_error (get_string r)
  | 13 -> View_peek_miss
  | t -> View_other t
