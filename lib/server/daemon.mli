(** The scheduling daemon: a long-running service that accepts solve
    requests over a Unix-domain (and optionally TCP) socket, dispatches
    them onto a {!Mlbs_util.Pool} of worker domains behind a bounded
    admission queue, and serves repeats from a content-addressed
    schedule cache.

    Flow of one request (see DESIGN.md §7):
    + a connection thread decodes the frame and resolves the topology
      (generator parameters are memoised, explicit adjacencies rebuilt),
      giving the canonical {!Mlbs_graph.Graph.digest};
    + the schedule cache is probed under the content address
      [digest:policy:rate:wake-seed:source:start] — a hit replies
      immediately, without touching the solvers;
    + a miss is admitted to the bounded queue — or, when
      [queue_capacity] solves are already waiting, shed with an explicit
      [Reply_rejected] carrying a retry hint (the daemon never buffers
      without bound);
    + the dispatcher drains the queue in batches over the pool's
      domains, inserts results into the cache, and wakes the waiting
      connection threads.

    A [Reschedule] frame (base request + topology delta) serves the
    edited topology: the daemon applies the delta to the resolved base
    graph, probes the cache under the edited graph's content address,
    and on a miss {e repairs} the cached base schedule through
    {!Mlbs_core.Reschedule} instead of solving from scratch, warm
    started from a per-family memo snapshot index (keyed on policy,
    rate, wake seed and node count — digest-free, so near misses such
    as a different source or a previous churn step still seed). The
    repaired entry is filed under the edited topology's own content
    address — the same key a plain [Request] for that adjacency
    ({!derived_request}) would hit.

    Served schedules are byte-identical to a direct
    {!Mlbs_core.Scheduler.run} on the same request, at any [jobs],
    cache hit or miss, repaired or cold — {!solve} below is that
    reference path, shared by the dispatcher, [mlbs loadgen --verify]
    and the tests. *)

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** optional TCP listener on 127.0.0.1 *)
  jobs : int;  (** solver pool size, as in [Pool.create] *)
  queue_capacity : int;  (** admission bound; 0 rejects every miss *)
  cache_capacity : int;  (** schedule-cache LRU entries *)
  cache_dir : string option;
      (** when set: warm the cache from this directory on start and
          persist the hottest entries back on shutdown *)
  persist_limit : int;  (** how many MRU entries to persist *)
  allowed_models : Mlbs_phy.Interference.t list option;
      (** interference models this daemon serves; [None] = all. A
          request for any other model is refused with [Reply_error]
          before topology resolution. *)
  improve_budget : int;
      (** candidate evaluations per background polish pass; 0 (the
          default) disables the improver entirely — every served
          schedule then stays byte-identical to {!solve}. *)
}

(** Defaults from {!Mlbs_workload.Config.default}: jobs = all cores,
    queue 64, cache 512, persist 64, no TCP, socket required,
    improvement off. *)
val default_config : socket_path:string -> config

(** A running daemon. *)
type t

(** [start cfg] binds the listeners, spawns the acceptor and dispatcher
    threads and returns. Raises [Failure] when no listener is
    configured or a bind fails. Enables the {!Mlbs_obs} metrics
    registry (the server's own counters live under [server/…]). *)
val start : config -> t

(** [stop t] initiates shutdown: stops accepting, lets queued solves
    finish, wakes everything. Idempotent, safe from signal handlers and
    connection threads (the [Shutdown] frame calls it). *)
val stop : t -> unit

(** [wait t] blocks until the daemon has stopped, then releases
    everything: joins the threads, shuts the pool down, persists hot
    cache entries when [cache_dir] is set, closes and unlinks the
    sockets. *)
val wait : t -> unit

(** [run cfg] is [start] + [wait] — serve until {!stop} is called from
    a signal handler or a client sends [Shutdown]. *)
val run : config -> unit

(** The actual bound TCP port, [None] without a TCP listener. With
    [tcp_port = Some 0] the kernel picks an ephemeral port; this is how
    callers (fleet spawning, bench, tests) learn it. *)
val tcp_port : t -> int option

(* ------------------------------------------------------------------ *)

(** [solve req] is the reference solve path: build the topology, derive
    the model and source, run the scheduler — no daemon, no cache. The
    daemon's replies carry exactly this schedule. Raises [Failure] on
    unsatisfiable requests (bad source, disconnected density, …). *)
val solve : Codec.request -> Codec.stats * Mlbs_core.Schedule.t

(** [model_of req] rebuilds the interference model [solve req] runs
    under — what a client needs to radio-replay a served schedule (the
    version-upgrade branch of [mlbs loadgen --verify] and [mlbs request
    --verify]). *)
val model_of : Codec.request -> Mlbs_core.Model.t

(** [cache_key req] is the content address the daemon files [req]
    under: canonical graph digest + policy + rate + wake-seed + source
    + start. Exposed for tests. *)
val cache_key : Codec.request -> string

(** [derived_request base delta] is the plain request equivalent to
    [Reschedule { base; delta }]: the edited graph shipped as an
    explicit adjacency, with the base's resolved source pinned. The
    daemon's reply to the reschedule is byte-identical to its reply to
    this request, and both share one cache line — the reference
    comparator for [mlbs loadgen --churn --verify] and the tests.
    Raises like {!solve} on unresolvable bases or malformed deltas. *)
val derived_request : Codec.request -> Codec.delta -> Codec.request

(* --------------------- cache persistence ------------------------- *)

(** One cached solve. [version] counts the strictly-better
    Validate-clean upgrades installed on this content address (0 = the
    deterministic {!solve} result). [origin] is the request the entry
    answers; the background improver needs it to rebuild the model, so
    entries warmed from disk ([None]) are never polished. [attempts]
    counts polish passes spent on the entry — it salts the improver's
    seed and caps fruitless re-polish work. *)
type entry = {
  stats : Codec.stats;
  schedule : Mlbs_core.Schedule.t;
  version : int;
  origin : Codec.request option;
  attempts : int Atomic.t;
}

(** [entry_of ?origin ?version (stats, schedule)] builds an entry
    (defaults: no origin, version 0, zero attempts). *)
val entry_of : ?origin:Codec.request -> ?version:int -> Codec.stats * Mlbs_core.Schedule.t -> entry

(** [polish_once t ~budget] runs one background-improvement pass by
    hand: pick the least-attempted entry among the hottest few that
    still carry an origin request, run a [budget]-bounded
    {!Mlbs_search.Improve.improve} over it, and install a
    strictly-better Validate-clean result under [version + 1]. Returns
    [true] iff an upgrade was installed. This is exactly what the
    improver thread does in idle dispatcher cycles when the daemon
    runs with [improve_budget > 0]; exposed so tests can drive the
    polishing loop deterministically. *)
val polish_once : t -> budget:int -> bool

(** [save_cache ~dir ~limit cache] writes the [limit] hottest entries
    (MRU first) into [dir] — an [index.txt] plus one
    {!Mlbs_workload.Persist} schedule file per entry — creating [dir]
    if needed. Returns the number persisted. *)
val save_cache : dir:string -> limit:int -> entry Cache.t -> int

(** [load_cache ~dir cache] warms [cache] from a directory written by
    {!save_cache}, restoring the recency order; unreadable entries are
    skipped. Returns the number loaded (0 when [dir] has no index). *)
val load_cache : dir:string -> entry Cache.t -> int
