(* Bounded admission queue + batching dispatcher, extracted from Daemon
   so any component that owns a pool of solver domains can reuse it.

   One dispatcher thread drains the queue in batches of at most the pool
   width, runs each ticket's closure on a pool worker, hands the result
   to the ticket's [on_done] callback (the daemon inserts into its
   schedule cache there), and wakes the connection thread blocked in
   [await]. Admission is all-or-nothing at the door: a full queue sheds
   with the current depth so the caller can compute a retry hint, and a
   draining queue refuses new work. *)

module Pool = Mlbs_util.Pool
module Metrics = Mlbs_obs.Metrics

let m_batches = Metrics.counter "server/batches"
let g_queue_depth = Metrics.gauge "server/queue_depth"

type 'a ticket = {
  trun : unit -> 'a;
  ton_done : ('a, string) result -> unit;
  tm : Mutex.t;
  tcv : Condition.t;
  mutable tresult : ('a, string) result option;
}

type 'a t = {
  pool : Pool.t;
  capacity : int;
  qm : Mutex.t;
  qcv : Condition.t;
  q : 'a ticket Queue.t;
  stop_requested : bool Atomic.t;
  mutable draining_done : bool;
  mutable inflight : bool;  (* a batch is on the pool right now *)
  mutable thread : Thread.t option;
}

let create ~pool ~capacity =
  {
    pool;
    capacity;
    qm = Mutex.create ();
    qcv = Condition.create ();
    q = Queue.create ();
    stop_requested = Atomic.make false;
    draining_done = false;
    inflight = false;
    thread = None;
  }

let run_ticket tk = try Ok (tk.trun ()) with e -> Error (Printexc.to_string e)

let rec loop t =
  Mutex.lock t.qm;
  while Queue.is_empty t.q && not (Atomic.get t.stop_requested) do
    Condition.wait t.qcv t.qm
  done;
  if Queue.is_empty t.q then begin
    (* Drained and stopping: [submit] observes [draining_done] under
       the same mutex, so no ticket can slip in after this point. *)
    t.draining_done <- true;
    Mutex.unlock t.qm
  end
  else begin
    let batch_n = min (Pool.size t.pool) (Queue.length t.q) in
    let batch = Array.init batch_n (fun _ -> Queue.pop t.q) in
    Metrics.set g_queue_depth (Queue.length t.q);
    t.inflight <- true;
    Mutex.unlock t.qm;
    Metrics.incr m_batches;
    let results = Pool.map_on t.pool run_ticket batch in
    Mutex.lock t.qm;
    t.inflight <- false;
    Mutex.unlock t.qm;
    Array.iteri
      (fun i tk ->
        (try tk.ton_done results.(i) with _ -> ());
        Mutex.lock tk.tm;
        tk.tresult <- Some results.(i);
        Condition.signal tk.tcv;
        Mutex.unlock tk.tm)
      batch;
    loop t
  end

let submit t ?(on_done = fun _ -> ()) f =
  Mutex.lock t.qm;
  if t.draining_done || Atomic.get t.stop_requested then begin
    Mutex.unlock t.qm;
    Error `Closing
  end
  else if Queue.length t.q >= t.capacity then begin
    let depth = Queue.length t.q in
    Mutex.unlock t.qm;
    Error (`Shed depth)
  end
  else begin
    let tk =
      { trun = f; ton_done = on_done; tm = Mutex.create (); tcv = Condition.create ();
        tresult = None }
    in
    Queue.add tk t.q;
    Metrics.set g_queue_depth (Queue.length t.q);
    Condition.signal t.qcv;
    Mutex.unlock t.qm;
    Ok tk
  end

let await tk =
  Mutex.lock tk.tm;
  while tk.tresult = None do
    Condition.wait tk.tcv tk.tm
  done;
  let r = Option.get tk.tresult in
  Mutex.unlock tk.tm;
  r

let busy t =
  Mutex.lock t.qm;
  let b = t.inflight || not (Queue.is_empty t.q) in
  Mutex.unlock t.qm;
  b

let start t =
  if t.thread <> None then invalid_arg "Dispatch.start: already started";
  t.thread <- Some (Thread.create loop t)

let stop t = Atomic.set t.stop_requested true

let join t =
  (* Wake the dispatcher from a normal (non-signal) context. *)
  Mutex.lock t.qm;
  Condition.broadcast t.qcv;
  Mutex.unlock t.qm;
  Option.iter Thread.join t.thread
