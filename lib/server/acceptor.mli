(** Socket listeners and the accept loop, shared by {!Daemon} and
    {!Fleet}: bind, accept-into-a-thread, close/unlink. *)

type listener

(** [bind_unix path] binds and listens on a Unix-domain socket.

    A pre-existing file at [path] is probe-connected first: if the
    connect succeeds a live server owns the path and this call fails
    (never clobbering it); if the connect is refused the file is a stale
    leftover from a crashed process and is unlinked before binding. *)
val bind_unix : string -> listener

(** [bind_tcp ~port] listens on loopback TCP. [port = 0] binds an
    ephemeral port; {!port} reports the actual one. *)
val bind_tcp : port:int -> listener

(** Actual bound TCP port, [None] for Unix-domain listeners. *)
val port : listener -> int option

(** The Unix-domain path, [None] for TCP listeners. *)
val unix_path : listener -> string option

(** [serve ls ~stopped ~handle] accepts until [stopped ()] holds,
    spawning a thread running [handle fd] per connection ([handle] owns
    and must close [fd]). Blocking; run it in a dedicated thread. Stop
    requests are noticed within the 250 ms select timeout. *)
val serve :
  listener list -> stopped:(unit -> bool) -> handle:(Unix.file_descr -> unit) -> unit

(** Close the listening sockets and unlink Unix-domain paths. *)
val close_all : listener list -> unit
