(** Consistent-hash ring: deterministic key → backend-name placement
    with bounded movement under membership change.

    Each member contributes [replicas] virtual points on a 64-bit ring
    (FNV-1a + SplitMix64 finalizer over ["name#i"], independent of
    [Hashtbl.hash] and of insertion order); a key is owned by the first
    point clockwise from its hash. Adding a member only claims keys from
    its ring neighbours; removing one only re-homes the keys it owned —
    the properties the fleet's peer cache-fill and failover lean on, and
    that test_fleet.ml checks with qcheck. *)

type t

(** [create ?replicas names] builds a ring over the distinct [names]
    (duplicates are collapsed). [replicas] defaults to 64 virtual points
    per member. Raises [Invalid_argument] when [replicas <= 0]. *)
val create : ?replicas:int -> string list -> t

(** Members, sorted and distinct. *)
val nodes : t -> string list

val is_empty : t -> bool
val replicas : t -> int

(** [owner t key] is the member owning [key], [None] on an empty ring. *)
val owner : t -> string -> string option

(** [successor t key] is the first member clockwise after [key]'s owner
    that is {e not} the owner — equivalently, the owner [key] would have
    if its current owner left the ring. [None] when the ring has fewer
    than two members. The fleet peeks this member before solving on a
    cache miss (a just-rehashed key's old home). *)
val successor : t -> string -> string option

(** Functional membership updates (same replica count). *)
val add : t -> string -> t

val remove : t -> string -> t

(** The point-placement hash, exposed for white-box tests. *)
val hash_string : string -> int64
