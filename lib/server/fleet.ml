(* The fleet front tier: one process that owns no solver at all, just a
   consistent-hash ring over backend daemons.

   Data path: client frames arrive as raw payloads ([Codec.recv_payload])
   and replies are relayed byte-for-byte ([Codec.send_payload]) — the
   front never decodes a schedule, so relayed replies are byte-identical
   to the owning backend's by construction and the per-request CPU cost
   stays O(header). A [Request] is routed by its content address (the
   same [Daemon.cache_key] the backends file it under, memoised here by
   the encoded request bytes); a [Reschedule] is routed by its *base*
   request's address, so the repair lands on the shard holding the base
   schedule.

   Peer cache-fill: on a warm ring the front first [Peek]s the owner
   (cache-only, 1 RTT on a hit). On a miss it peeks the ring successor —
   the shard that owned the key before the last membership change — and
   on a hit there relays that reply and [Put]s the entry back to the
   owner, so the next request is local. Only after both miss does the
   owner solve.

   Failure: any I/O failure against a backend marks it dead, rebuilds
   the ring, and re-routes the request to the new owner — whose solve is
   deterministic, so the client still sees the byte-identical reply. A
   health thread probes configured backends every [health_period] and
   re-admits recovered ones.

   Backpressure: backends shed with [Reply_rejected] as before (relayed
   verbatim, retry hints noted); on top, the front bounds its own global
   in-flight count and sheds with the EWMA of recently observed backend
   hints, so a saturated fleet pushes back at the door instead of
   queueing unboundedly. *)

module C = Codec
module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics

type config = {
  socket_path : string option;
  tcp_port : int option;
  backends : Client.endpoint list;
  replicas : int;
  health_period : float;
  max_inflight : int;
  fill : bool;
}

let default_config ~backends ~socket_path =
  {
    socket_path = Some socket_path;
    tcp_port = None;
    backends;
    replicas = 64;
    health_period = 1.0;
    max_inflight = 256;
    fill = true;
  }

let endpoint_name = function
  | Client.Unix_socket p -> "unix:" ^ p
  | Client.Tcp { host; port } -> Printf.sprintf "%s:%d" host port

(* ------------------------------ metrics ----------------------------- *)

let m_requests = Metrics.counter "server/fleet/requests"
let m_ok = Metrics.counter "server/fleet/replies_ok"
let m_rejected = Metrics.counter "server/fleet/rejected"
let m_errors = Metrics.counter "server/fleet/errors"
let m_connections = Metrics.counter "server/fleet/connections"
let m_bad_frames = Metrics.counter "server/fleet/bad_frames"
let m_fill_hits = Metrics.counter "server/fleet/fill_hits"
let m_rebalances = Metrics.counter "server/fleet/rebalances"
let m_deaths = Metrics.counter "server/fleet/deaths"
let m_reroutes = Metrics.counter "server/fleet/reroutes"
let m_shed = Metrics.counter "server/fleet/shed"
let h_request_us = Metrics.histogram "server/fleet/request_us"

(* ------------------------------ state ------------------------------- *)

type backend = {
  bname : string;
  bep : Client.endpoint;
  bm : Mutex.t;
  mutable bidle : Unix.file_descr list;  (* pooled, handshaken connections *)
  balive : bool Atomic.t;
  m_shard_requests : Metrics.counter;
  m_shard_hits : Metrics.counter;
}

type t = {
  fcfg : config;
  fbackends : backend array;
  rm : Mutex.t;
  mutable ring : Ring.t;
  kmemo : string Cache.t;  (* encoded request payload -> content address *)
  inflight : int Atomic.t;
  ewma_retry_ms : int Atomic.t;
  stop_requested : bool Atomic.t;
  mutable listeners : Acceptor.listener list;
  mutable acceptor : Thread.t option;
  mutable health : Thread.t option;
  mutable cleaned : bool;
}

let stop t = Atomic.set t.stop_requested true
let tcp_port t = List.find_map Acceptor.port t.listeners

exception Backend_down

(* ----------------------- backend connections ------------------------ *)

let max_idle_conns = 16

let connect_backend b =
  let fd, addr =
    match b.bep with
    | Client.Unix_socket path ->
        (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Client.Tcp { host; port } ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  try
    Unix.connect fd addr;
    C.send fd (C.Hello { proto = C.protocol_version; version = Version.version });
    match C.recv fd with
    | Some (C.Hello_ack { proto; _ }) when proto = C.protocol_version -> fd
    | _ -> failwith "backend handshake failed"
  with e ->
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    raise e

let borrow b =
  Mutex.lock b.bm;
  let pooled = match b.bidle with [] -> None | fd :: rest -> b.bidle <- rest; Some fd in
  Mutex.unlock b.bm;
  match pooled with Some fd -> fd | None -> connect_backend b

let give_back b fd =
  Mutex.lock b.bm;
  if List.length b.bidle < max_idle_conns then begin
    b.bidle <- fd :: b.bidle;
    Mutex.unlock b.bm
  end
  else begin
    Mutex.unlock b.bm;
    try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
  end

let drop_idle b =
  Mutex.lock b.bm;
  let idle = b.bidle in
  b.bidle <- [];
  Mutex.unlock b.bm;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ()) idle

(* ------------------------------ ring -------------------------------- *)

let rebuild_ring t =
  (* call under t.rm *)
  let alive =
    Array.to_list t.fbackends
    |> List.filter (fun b -> Atomic.get b.balive)
    |> List.map (fun b -> b.bname)
  in
  t.ring <- Ring.create ~replicas:t.fcfg.replicas alive

let mark_dead t b =
  if Atomic.exchange b.balive false then begin
    Metrics.incr m_deaths;
    Metrics.incr m_rebalances;
    Mutex.lock t.rm;
    rebuild_ring t;
    Mutex.unlock t.rm;
    drop_idle b
  end

let mark_alive t b =
  if not (Atomic.exchange b.balive true) then begin
    Metrics.incr m_rebalances;
    Mutex.lock t.rm;
    rebuild_ring t;
    Mutex.unlock t.rm
  end

let owner_and_successor t key =
  Mutex.lock t.rm;
  let o = Ring.owner t.ring key in
  let s = Ring.successor t.ring key in
  Mutex.unlock t.rm;
  (o, s)

let backend_named t name =
  let rec go i =
    if i >= Array.length t.fbackends then None
    else if t.fbackends.(i).bname = name then Some t.fbackends.(i)
    else go (i + 1)
  in
  go 0

(* ------------------------------- rpc -------------------------------- *)

(* One payload roundtrip against [b]. A failed pooled connection gets
   one fresh-connection retry (the backend may just have restarted);
   failing that the backend is marked dead, the ring rebuilt, and
   [Backend_down] tells the caller to re-route. *)
let rpc t b payload =
  if not (Atomic.get b.balive) then raise Backend_down;
  let once ~fresh =
    match (if fresh then connect_backend b else borrow b) with
    | exception _ -> None
    | fd -> (
        match
          C.send_payload fd payload;
          C.recv_payload fd
        with
        | Some reply ->
            give_back b fd;
            Some reply
        | None | (exception _) ->
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            None)
  in
  match once ~fresh:false with
  | Some reply -> reply
  | None -> (
      match once ~fresh:true with
      | Some reply -> reply
      | None ->
          mark_dead t b;
          raise Backend_down)

(* --------------------------- backpressure --------------------------- *)

let note_retry_ms t ms =
  let rec go () =
    let cur = Atomic.get t.ewma_retry_ms in
    let next = if cur = 0 then ms else ((7 * cur) + ms) / 8 in
    if not (Atomic.compare_and_set t.ewma_retry_ms cur next) then go ()
  in
  go ()

let shed_hint t =
  match Atomic.get t.ewma_retry_ms with 0 -> 10 | ms -> max 5 (min 5000 ms)

let encode_error msg =
  Metrics.incr m_errors;
  C.encode (C.Reply_error msg)

(* Account the reply the client is about to see. *)
let record_reply t reply =
  match C.reply_view reply with
  | C.View_ok _ -> Metrics.incr m_ok
  | C.View_rejected { retry_after_ms } ->
      Metrics.incr m_rejected;
      note_retry_ms t retry_after_ms
  | C.View_error _ -> Metrics.incr m_errors
  | C.View_peek_miss | C.View_other _ -> ()

(* ------------------------------ routing ----------------------------- *)

(* Route an opaque payload to [key]'s owner with death-driven re-route:
   [attempt] runs against the current owner and raises [Backend_down]
   (after [rpc] already rebuilt the ring) to trigger another pass. *)
let routed t ~key attempt =
  let rec go tries =
    if tries <= 0 then encode_error "no backend available"
    else
      match owner_and_successor t key with
      | None, _ -> encode_error "no backends alive"
      | Some oname, succ -> (
          match backend_named t oname with
          | None -> encode_error "no backend available"
          | Some b -> (
              match attempt b succ with
              | reply -> reply
              | exception Backend_down ->
                  Metrics.incr m_reroutes;
                  go (tries - 1)))
  in
  go (Array.length t.fbackends + 1)

(* A plain [Request]: peek-owner / fill-from-successor / solve-on-owner. *)
let serve_request t ~payload ~key =
  routed t ~key (fun b succ ->
      Metrics.incr b.m_shard_requests;
      let solve_on_owner () =
        let reply = rpc t b payload in
        (match C.reply_view reply with
        | C.View_ok { cache_hit = true; _ } -> Metrics.incr b.m_shard_hits
        | _ -> ());
        record_reply t reply;
        reply
      in
      let fill_source =
        if t.fcfg.fill then
          match succ with Some s when s <> b.bname -> backend_named t s | _ -> None
        else None
      in
      match fill_source with
      | None -> solve_on_owner ()
      | Some sb -> (
          let peek = C.peek_of_request_payload payload in
          let reply = rpc t b peek in
          match C.reply_view reply with
          | C.View_ok _ ->
              Metrics.incr b.m_shard_hits;
              record_reply t reply;
              reply
          | C.View_peek_miss -> (
              (* The successor owned this key before the last membership
                 change — ask it before paying for a solve. Its failure
                 must not fail the request, so [Backend_down] falls
                 through to the owner solve. *)
              let filled =
                match rpc t sb peek with
                | exception Backend_down -> None
                | sreply -> (
                    match C.reply_view sreply with C.View_ok _ -> Some sreply | _ -> None)
              in
              match filled with
              | None -> solve_on_owner ()
              | Some sreply ->
                  Metrics.incr m_fill_hits;
                  (* Warm the owner so the next request is local. Decode
                     only here, on the rare fill event. *)
                  (match (C.decode sreply, C.decode payload) with
                  | C.Reply_ok ok, C.Request req -> (
                      match
                        rpc t b
                          (C.encode
                             (C.Put
                                 {
                                   req;
                                   version = ok.C.version;
                                   stats = ok.C.stats;
                                   schedule = ok.C.schedule;
                                 }))
                      with
                      | _ -> ()
                      | exception Backend_down -> ())
                  | _ -> ());
                  record_reply t sreply;
                  sreply)
          | _ ->
              record_reply t reply;
              reply))

(* Reschedule / client-peek / client-put: routed to the owner verbatim. *)
let serve_routed t ~payload ~key =
  routed t ~key (fun b _succ ->
      Metrics.incr b.m_shard_requests;
      let reply = rpc t b payload in
      (match C.reply_view reply with
      | C.View_ok { cache_hit = true; _ } -> Metrics.incr b.m_shard_hits
      | _ -> ());
      record_reply t reply;
      reply)

(* --------------------------- content keys --------------------------- *)

(* [Daemon.cache_key] resolves the topology (a deployment sample for
   generator requests), so memoise it on the encoded request bytes —
   the canonical encoding makes equal requests equal keys. *)
let key_of_request_payload t ~payload req =
  match Cache.find t.kmemo payload with
  | Some k -> k
  | None ->
      let k = Daemon.cache_key req in
      Cache.add t.kmemo payload k;
      k

(* ---------------------------- admission ----------------------------- *)

let with_admission t f =
  let cur = Atomic.fetch_and_add t.inflight 1 in
  Fun.protect
    ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-1)))
    (fun () ->
      if cur >= t.fcfg.max_inflight then begin
        Metrics.incr m_shed;
        Metrics.incr m_rejected;
        C.encode (C.Reply_rejected { retry_after_ms = shed_hint t })
      end
      else f ())

(* ------------------------------ stats ------------------------------- *)

let add_kv tbl (k, v) =
  Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let fleet_stats t =
  let tbl = Hashtbl.create 64 in
  (* The front's own view: only its fleet counters — backend-side
     server/* totals come from the backends themselves below (and when a
     backend shares this process's registry, skipping fleet/* there
     avoids double counting). *)
  List.iter
    (fun (name, v) ->
      if String.length name >= 13 && String.sub name 0 13 = "server/fleet/" then
        add_kv tbl
          ( name,
            match (v : Metrics.value) with
            | Metrics.Count c -> c
            | Metrics.Level l -> l
            | Metrics.Dist { total; _ } -> total ))
    (Metrics.snapshot ());
  Array.iter
    (fun b ->
      if Atomic.get b.balive then
        match rpc t b (C.encode C.Stats_request) with
        | exception Backend_down -> ()
        | reply -> (
            match C.decode reply with
            | C.Stats_reply kvs ->
                List.iter
                  (fun (k, v) ->
                    if not (String.length k >= 13 && String.sub k 0 13 = "server/fleet/")
                    then add_kv tbl (k, v))
                  kvs
            | _ -> ()
            | exception C.Malformed _ -> ()))
    t.fbackends;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* --------------------------- connections ---------------------------- *)

let handle_conn t fd =
  Metrics.incr m_connections;
  let rec loop () =
    match C.recv_payload fd with
    | None -> ()
    | Some payload ->
        let t0 = Obs.now_us () in
        let continue = ref true in
        let reply =
          match C.payload_tag payload with
          | 1 -> (
              (* Hello: the front answers the handshake itself. *)
              match C.decode payload with
              | C.Hello { proto; version } ->
                  C.encode
                    (C.Hello_ack
                       {
                         proto = C.protocol_version;
                         version = Version.version;
                         version_match =
                           proto = C.protocol_version && version = Version.version;
                       })
              | _ -> encode_error "malformed hello")
          | 3 -> (
              Metrics.incr m_requests;
              match C.decode payload with
              | C.Request req -> (
                  match key_of_request_payload t ~payload req with
                  | exception e -> encode_error (Printexc.to_string e)
                  | key -> with_admission t (fun () -> serve_request t ~payload ~key))
              | _ -> encode_error "malformed request")
          | 11 -> (
              Metrics.incr m_requests;
              (* Routed by the BASE request's address: the repair must
                 land where the base schedule is cached. *)
              match C.decode payload with
              | C.Reschedule { base; delta = _ } -> (
                  let base_payload = C.encode (C.Request base) in
                  match key_of_request_payload t ~payload:base_payload base with
                  | exception e -> encode_error (Printexc.to_string e)
                  | key -> with_admission t (fun () -> serve_routed t ~payload ~key))
              | _ -> encode_error "malformed reschedule")
          | 12 | 14 -> (
              (* A client-side Peek or Put: forward to the owner. *)
              match C.decode payload with
              | C.Peek req | C.Put { req; _ } -> (
                  let req_payload = C.encode (C.Request req) in
                  match key_of_request_payload t ~payload:req_payload req with
                  | exception e -> encode_error (Printexc.to_string e)
                  | key -> with_admission t (fun () -> serve_routed t ~payload ~key))
              | _ -> encode_error "malformed peek/put")
          | 7 -> C.encode (C.Stats_reply (fleet_stats t))
          | 9 ->
              continue := false;
              stop t;
              C.encode C.Shutdown_ack
          | _ -> encode_error "unexpected message from client"
        in
        C.send_payload fd reply;
        let dt = Obs.now_us () -. t0 in
        Metrics.observe h_request_us (int_of_float dt);
        if !continue then loop ()
  in
  (try loop () with
  | C.Malformed _ ->
      Metrics.incr m_bad_frames;
      (try C.send_payload fd (C.encode (C.Reply_error "malformed frame")) with _ -> ())
  | Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* ------------------------------ health ------------------------------ *)

let probe b =
  match connect_backend b with
  | fd ->
      give_back b fd;
      true
  | exception _ -> false

let health_loop t =
  let rec nap d =
    if d > 0. && not (Atomic.get t.stop_requested) then begin
      Thread.delay (min 0.05 d);
      nap (d -. 0.05)
    end
  in
  let rec loop () =
    if not (Atomic.get t.stop_requested) then begin
      Array.iter
        (fun b ->
          let ok = probe b in
          if ok && not (Atomic.get b.balive) then mark_alive t b
          else if (not ok) && Atomic.get b.balive then mark_dead t b)
        t.fbackends;
      nap t.fcfg.health_period;
      loop ()
    end
  in
  loop ()

(* ---------------------------- lifecycle ----------------------------- *)

let start cfg =
  if cfg.socket_path = None && cfg.tcp_port = None then
    failwith "Fleet.start: no listener configured (need a socket path or TCP port)";
  if cfg.backends = [] then failwith "Fleet.start: no backends configured";
  Obs.enable ~metrics:true ~tracing:(Obs.tracing_enabled ()) ();
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let fbackends =
    Array.of_list
      (List.mapi
         (fun i ep ->
           {
             bname = endpoint_name ep;
             bep = ep;
             bm = Mutex.create ();
             bidle = [];
             balive = Atomic.make false;
             m_shard_requests =
               Metrics.counter (Printf.sprintf "server/fleet/shard%d/requests" i);
             m_shard_hits = Metrics.counter (Printf.sprintf "server/fleet/shard%d/hits" i);
           })
         cfg.backends)
  in
  let t =
    {
      fcfg = cfg;
      fbackends;
      rm = Mutex.create ();
      ring = Ring.create ~replicas:cfg.replicas [];
      kmemo = Cache.create ~metrics_prefix:"server/fleet/keymemo" ~capacity:512 ();
      inflight = Atomic.make 0;
      ewma_retry_ms = Atomic.make 0;
      stop_requested = Atomic.make false;
      listeners = [];
      acceptor = None;
      health = None;
      cleaned = false;
    }
  in
  (* Synchronous initial probe (not counted as rebalances): the first
     request must already see the live set. Backends that come up later
     are admitted by the health thread. *)
  Array.iter (fun b -> if probe b then Atomic.set b.balive true) t.fbackends;
  Mutex.lock t.rm;
  rebuild_ring t;
  Mutex.unlock t.rm;
  let listeners =
    (match cfg.socket_path with Some p -> [ Acceptor.bind_unix p ] | None -> [])
    @ (match cfg.tcp_port with Some p -> [ Acceptor.bind_tcp ~port:p ] | None -> [])
  in
  t.listeners <- listeners;
  t.acceptor <-
    Some
      (Thread.create
         (fun () ->
           Acceptor.serve t.listeners
             ~stopped:(fun () -> Atomic.get t.stop_requested)
             ~handle:(handle_conn t))
         ());
  t.health <- Some (Thread.create health_loop t);
  t

let cleanup t =
  if not t.cleaned then begin
    t.cleaned <- true;
    Acceptor.close_all t.listeners;
    Array.iter drop_idle t.fbackends
  end

let wait t =
  (* Poll so signal handlers calling [stop] get to run (cf. Daemon). *)
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.health;
  cleanup t

let run cfg = wait (start cfg)

let alive_backends t =
  Array.to_list t.fbackends
  |> List.filter (fun b -> Atomic.get b.balive)
  |> List.map (fun b -> b.bname)
