module C = Codec
module Pool = Mlbs_util.Pool
module Rng = Mlbs_prng.Rng
module Point = Mlbs_geom.Point
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Deployment = Mlbs_wsn.Deployment
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Config = Mlbs_workload.Config
module Persist = Mlbs_workload.Persist
module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace

type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_dir : string option;
  persist_limit : int;
}

let default_config ~socket_path =
  let c = Config.default in
  {
    socket_path = Some socket_path;
    tcp_port = None;
    jobs = c.Config.jobs;
    queue_capacity = c.Config.queue_capacity;
    cache_capacity = c.Config.cache_capacity;
    cache_dir = None;
    persist_limit = 64;
  }

type entry = { stats : C.stats; schedule : Schedule.t }

(* ---------------------------- metrics ------------------------------ *)

let m_requests = Metrics.counter "server/requests"
let m_ok = Metrics.counter "server/replies_ok"
let m_rejected = Metrics.counter "server/rejected"
let m_errors = Metrics.counter "server/errors"
let m_connections = Metrics.counter "server/connections"
let m_batches = Metrics.counter "server/batches"
let m_bad_frames = Metrics.counter "server/bad_frames"
let h_request_us = Metrics.histogram "server/request_us"
let h_solve_us = Metrics.histogram "server/solve_us"
let g_queue_depth = Metrics.gauge "server/queue_depth"

(* ------------------------ request resolution ----------------------- *)

(* The paper's source-eccentricity window, as [mlbs schedule] uses. *)
let min_ecc = Config.default.Config.min_ecc
let max_ecc = Config.default.Config.max_ecc

type resolved = { rnet : Network.t; rdigest : int64; rsource : int }

(* Explicit adjacencies carry no geometry; synthesize a unit grid of
   distinct positions (quadrants and hull then derive from the fake
   geometry, deterministically — the schedule's conflict-freedom only
   depends on the graph). *)
let network_of_adjacency adj =
  let g = Graph.of_adjacency adj in
  let n = Graph.n_nodes g in
  let cols = max 1 (int_of_float (ceil (sqrt (float_of_int (max n 1))))) in
  let points =
    Array.init n (fun i -> Point.v (float_of_int (i mod cols)) (float_of_int (i / cols)))
  in
  Network.of_graph ~radius:1.0 ~points g

let build_topology (req : C.request) =
  match req.C.topology with
  | C.Gen { n; radius } ->
      let spec =
        {
          Deployment.n_nodes = n;
          width = Config.default.Config.width;
          height = Config.default.Config.height;
          radius;
          shape = Deployment.Uniform;
        }
      in
      Deployment.generate (Rng.create req.C.seed) spec
  | C.Adj adj -> network_of_adjacency adj

let resolve_fresh (req : C.request) =
  let net = build_topology req in
  let rdigest = Graph.digest (Network.graph net) in
  let rsource =
    match req.C.topology with
    | C.Gen _ -> Deployment.select_source (Rng.create req.C.seed) net ~min_ecc ~max_ecc
    | C.Adj _ -> 0
  in
  { rnet = net; rdigest; rsource }

(* Generator requests are memoised on (n, radius, seed) so a warm
   request never re-samples the deployment or re-runs the source
   eccentricity scan; explicit adjacencies were shipped in the frame
   and are rebuilt in O(n + m). *)
let resolve ?memo (req : C.request) =
  match (req.C.topology, memo) with
  | C.Gen { n; radius }, Some memo -> (
      let mkey = Printf.sprintf "g:%d:%h:%d" n radius req.C.seed in
      match Cache.find memo mkey with
      | Some r -> r
      | None ->
          let r = resolve_fresh req in
          Cache.add memo mkey r;
          r)
  | _ -> resolve_fresh req

let source_of (req : C.request) r =
  match req.C.source with
  | None -> r.rsource
  | Some s ->
      if s < 0 || s >= Network.n_nodes r.rnet then
        failwith (Printf.sprintf "source %d out of range [0,%d)" s (Network.n_nodes r.rnet));
      s

let system_of (req : C.request) net =
  match req.C.rate with
  | None -> Model.Sync
  | Some rate ->
      Model.Async (Wake_schedule.create ~rate ~n_nodes:(Network.n_nodes net) ~seed:req.C.seed ())

let policy_of = function
  | C.Baseline -> Scheduler.Baseline
  | C.Emodel -> Scheduler.Emodel
  | C.Gopt -> Scheduler.gopt
  | C.Opt -> Scheduler.opt

let policy_tag = function C.Baseline -> 0 | C.Emodel -> 1 | C.Gopt -> 2 | C.Opt -> 3

(* The content address: everything the served schedule is a function
   of. The wake-schedule seed participates only under a duty cycle, so
   sync requests for the same graph content hit regardless of seed. *)
let key_of (req : C.request) ~digest ~source =
  Printf.sprintf "%016Lx:p%d:r%d:w%d:s%d:t%d" digest (policy_tag req.C.policy)
    (match req.C.rate with None -> -1 | Some r -> r)
    (match req.C.rate with None -> 0 | Some _ -> req.C.seed)
    source req.C.start

let cache_key req =
  let r = resolve req in
  key_of req ~digest:r.rdigest ~source:(source_of req r)

let do_solve model policy ~source ~start =
  let s0 = Metrics.counter_value "search/states" in
  let t0 = Obs.now_us () in
  let plan = Scheduler.run model policy ~source ~start in
  let dt = Obs.now_us () -. t0 in
  let stats =
    {
      C.elapsed = Schedule.elapsed plan;
      transmissions = Schedule.n_transmissions plan;
      n_steps = List.length (Schedule.steps plan);
      search_states = max 0 (Metrics.counter_value "search/states" - s0);
      solve_us = int_of_float dt;
    }
  in
  Metrics.observe h_solve_us stats.C.solve_us;
  (stats, plan)

let solve req =
  let r = resolve req in
  let source = source_of req r in
  let model = Model.create r.rnet (system_of req r.rnet) in
  do_solve model (policy_of req.C.policy) ~source ~start:req.C.start

(* ------------------------ cache persistence ------------------------ *)

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let index_file dir = Filename.concat dir "index.txt"

let save_cache ~dir ~limit cache =
  mkdir_p dir;
  let entries =
    List.filteri (fun i _ -> i < limit) (Cache.to_list_mru cache)
  in
  let oc = open_out (index_file dir) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "mlbs-cache-index 1 %d\n" (List.length entries);
      List.iteri
        (fun i (key, e) ->
          let stem = Printf.sprintf "e%04d" i in
          Persist.save_schedule (Filename.concat dir (stem ^ ".sched")) e.schedule;
          Printf.fprintf oc "entry %s %s %d %d %d %d %d\n" stem key e.stats.C.elapsed
            e.stats.C.transmissions e.stats.C.n_steps e.stats.C.search_states
            e.stats.C.solve_us)
        entries);
  List.length entries

let load_cache ~dir cache =
  if not (Sys.file_exists (index_file dir)) then 0
  else begin
    let ic = open_in (index_file dir) in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    match lines with
    | header :: rest when String.length header >= 18
                          && String.sub header 0 18 = "mlbs-cache-index 1" ->
        let parsed =
          List.filter_map
            (fun line ->
              match String.split_on_char ' ' line with
              | [ "entry"; stem; key; el; tx; st; ss; su ] -> (
                  try
                    let schedule =
                      Persist.load_schedule (Filename.concat dir (stem ^ ".sched"))
                    in
                    let stats =
                      {
                        C.elapsed = int_of_string el;
                        transmissions = int_of_string tx;
                        n_steps = int_of_string st;
                        search_states = int_of_string ss;
                        solve_us = int_of_string su;
                      }
                    in
                    Some (key, { stats; schedule })
                  with _ -> None)
              | _ -> None)
            rest
        in
        (* The index lists MRU first; re-insert LRU first so the warm
           cache restores the recency order. *)
        List.iter (fun (key, e) -> Cache.add cache key e) (List.rev parsed);
        List.length parsed
    | _ -> failwith (Printf.sprintf "Daemon.load_cache: %s is not a v1 index" (index_file dir))
  end

(* ----------------------------- daemon ------------------------------ *)

type job = {
  jmodel : Model.t;
  jpolicy : C.policy;
  jsource : int;
  jstart : int;
  jkey : string;
  jm : Mutex.t;
  jcv : Condition.t;
  mutable jresult : (entry, string) result option;
}

type t = {
  cfg : config;
  pool : Pool.t;
  cache : entry Cache.t;
  topo : resolved Cache.t;
  qm : Mutex.t;
  qcv : Condition.t;
  jobs_q : job Queue.t;
  stop_requested : bool Atomic.t;
  mutable draining_done : bool;
  mutable listeners : (Unix.file_descr * string option) list;
      (* fd plus the path to unlink for Unix-domain listeners *)
  trace_ctr : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable dispatcher : Thread.t option;
  mutable cleaned : bool;
}

let stop t = Atomic.set t.stop_requested true

let fresh_trace_id t digest =
  Printf.sprintf "rq-%06d-%08Lx" (Atomic.fetch_and_add t.trace_ctr 1)
    (Int64.logand digest 0xffff_ffffL)

(* -------------------------- dispatcher ----------------------------- *)

let run_job job =
  try
    let stats, schedule =
      do_solve job.jmodel (policy_of job.jpolicy) ~source:job.jsource ~start:job.jstart
    in
    Ok { stats; schedule }
  with e -> Error (Printexc.to_string e)

let rec dispatcher_loop t =
  Mutex.lock t.qm;
  while Queue.is_empty t.jobs_q && not (Atomic.get t.stop_requested) do
    Condition.wait t.qcv t.qm
  done;
  if Queue.is_empty t.jobs_q then begin
    (* Drained and stopping: admission observes [draining_done] under
       the same mutex, so no job can slip in after this point. *)
    t.draining_done <- true;
    Mutex.unlock t.qm
  end
  else begin
    let batch_n = min (Pool.size t.pool) (Queue.length t.jobs_q) in
    let batch = Array.init batch_n (fun _ -> Queue.pop t.jobs_q) in
    Metrics.set g_queue_depth (Queue.length t.jobs_q);
    Mutex.unlock t.qm;
    Metrics.incr m_batches;
    let results = Pool.map_on t.pool run_job batch in
    Array.iteri
      (fun i job ->
        (match results.(i) with
        | Ok e -> Cache.add t.cache job.jkey e
        | Error _ -> ());
        Mutex.lock job.jm;
        job.jresult <- Some results.(i);
        Condition.signal job.jcv;
        Mutex.unlock job.jm)
      batch;
    dispatcher_loop t
  end

(* ------------------------ request handling ------------------------- *)

let reply_error msg =
  Metrics.incr m_errors;
  C.Reply_error msg

let admit t job =
  Mutex.lock t.qm;
  if t.draining_done || Atomic.get t.stop_requested then begin
    Mutex.unlock t.qm;
    Some (reply_error "server is shutting down")
  end
  else if Queue.length t.jobs_q >= t.cfg.queue_capacity then begin
    let depth = Queue.length t.jobs_q in
    Mutex.unlock t.qm;
    Metrics.incr m_rejected;
    Some (C.Reply_rejected { retry_after_ms = 10 * (depth + 1) })
  end
  else begin
    Queue.add job t.jobs_q;
    Metrics.set g_queue_depth (Queue.length t.jobs_q);
    Condition.signal t.qcv;
    Mutex.unlock t.qm;
    None
  end

let handle_request t (req : C.request) =
  Metrics.incr m_requests;
  let t0 = Obs.now_us () in
  let reply =
    match resolve ~memo:t.topo req with
    | exception e -> reply_error (Printexc.to_string e)
    | r -> (
        match source_of req r with
        | exception e -> reply_error (Printexc.to_string e)
        | source -> (
            let key = key_of req ~digest:r.rdigest ~source in
            match Cache.find t.cache key with
            | Some e ->
                Metrics.incr m_ok;
                C.Reply_ok
                  {
                    trace_id = fresh_trace_id t r.rdigest;
                    cache_hit = true;
                    stats = e.stats;
                    schedule = e.schedule;
                  }
            | None -> (
                match Model.create r.rnet (system_of req r.rnet) with
                | exception e -> reply_error (Printexc.to_string e)
                | model -> (
                    let job =
                      {
                        jmodel = model;
                        jpolicy = req.C.policy;
                        jsource = source;
                        jstart = req.C.start;
                        jkey = key;
                        jm = Mutex.create ();
                        jcv = Condition.create ();
                        jresult = None;
                      }
                    in
                    match admit t job with
                    | Some shed -> shed
                    | None ->
                        Mutex.lock job.jm;
                        while job.jresult = None do
                          Condition.wait job.jcv job.jm
                        done;
                        let result = Option.get job.jresult in
                        Mutex.unlock job.jm;
                        (match result with
                        | Ok e ->
                            Metrics.incr m_ok;
                            C.Reply_ok
                              {
                                trace_id = fresh_trace_id t r.rdigest;
                                cache_hit = false;
                                stats = e.stats;
                                schedule = e.schedule;
                              }
                        | Error msg -> reply_error msg)))))
  in
  let dt = Obs.now_us () -. t0 in
  Metrics.observe h_request_us (int_of_float dt);
  if Obs.tracing_enabled () then
    Trace.complete ~cat:"server" ~name:"request" ~t0_us:t0 ~dur_us:dt ();
  reply

let server_stats () =
  List.filter_map
    (fun (name, v) ->
      if String.length name >= 7 && String.sub name 0 7 = "server/" then
        Some
          ( name,
            match (v : Metrics.value) with
            | Metrics.Count c -> c
            | Metrics.Level l -> l
            | Metrics.Dist { total; _ } -> total )
      else None)
    (Metrics.snapshot ())

let handle_conn t fd =
  Metrics.incr m_connections;
  let rec loop () =
    match C.recv fd with
    | None -> ()
    | Some msg ->
        let continue =
          match msg with
          | C.Hello { proto; version } ->
              C.send fd
                (C.Hello_ack
                   {
                     proto = C.protocol_version;
                     version = Version.version;
                     version_match =
                       proto = C.protocol_version && version = Version.version;
                   });
              true
          | C.Request req ->
              C.send fd (handle_request t req);
              true
          | C.Stats_request ->
              C.send fd (C.Stats_reply (server_stats ()));
              true
          | C.Shutdown ->
              C.send fd C.Shutdown_ack;
              stop t;
              false
          | C.Hello_ack _ | C.Reply_ok _ | C.Reply_rejected _ | C.Reply_error _
          | C.Stats_reply _ | C.Shutdown_ack ->
              C.send fd (C.Reply_error "unexpected message from client");
              true
        in
        if continue then loop ()
  in
  (try loop () with
  | C.Malformed _ ->
      Metrics.incr m_bad_frames;
      (try C.send fd (C.Reply_error "malformed frame") with _ -> ())
  | Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* --------------------------- listeners ----------------------------- *)

let bind_unix path =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  (fd, Some path)

let bind_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  (fd, None)

let acceptor_loop t =
  let fds = List.map fst t.listeners in
  let rec loop () =
    if not (Atomic.get t.stop_requested) then begin
      (match Unix.select fds [] [] 0.25 with
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ -> ignore (Thread.create (handle_conn t) fd)
              | exception Unix.Unix_error (_, _, _) -> ())
            ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --------------------------- lifecycle ----------------------------- *)

let start cfg =
  if cfg.socket_path = None && cfg.tcp_port = None then
    failwith "Daemon.start: no listener configured (need a socket path or TCP port)";
  (* The registry is the server's own observability surface; tracing
     stays at whatever the caller (Telemetry.with_config) selected. *)
  Obs.enable ~metrics:true ~tracing:(Obs.tracing_enabled ()) ();
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let cache = Cache.create ~metrics_prefix:"server/cache" ~capacity:cfg.cache_capacity () in
  (match cfg.cache_dir with Some dir -> ignore (load_cache ~dir cache) | None -> ());
  let t =
    {
      cfg;
      pool = Pool.create ~jobs:cfg.jobs;
      cache;
      topo = Cache.create ~metrics_prefix:"server/topo" ~capacity:256 ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      jobs_q = Queue.create ();
      stop_requested = Atomic.make false;
      draining_done = false;
      listeners = [];
      trace_ctr = Atomic.make 0;
      acceptor = None;
      dispatcher = None;
      cleaned = false;
    }
  in
  let listeners =
    (match cfg.socket_path with Some p -> [ bind_unix p ] | None -> [])
    @ (match cfg.tcp_port with Some p -> [ bind_tcp p ] | None -> [])
  in
  t.listeners <- listeners;
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let cleanup t =
  if not t.cleaned then begin
    t.cleaned <- true;
    List.iter
      (fun (fd, path) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        match path with
        | Some p -> ( try Unix.unlink p with Unix.Unix_error (_, _, _) -> ())
        | None -> ())
      t.listeners;
    (match t.cfg.cache_dir with
    | Some dir -> ignore (save_cache ~dir ~limit:t.cfg.persist_limit t.cache)
    | None -> ());
    Pool.shutdown t.pool
  end

let wait t =
  (* Poll rather than block in a join: the waiting thread keeps
     executing OCaml code, so a SIGINT/SIGTERM handler that calls
     [stop] gets to run here. *)
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  (* Wake the dispatcher from a normal (non-signal) context. *)
  Mutex.lock t.qm;
  Condition.broadcast t.qcv;
  Mutex.unlock t.qm;
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.dispatcher;
  cleanup t

let run cfg = wait (start cfg)
