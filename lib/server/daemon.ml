module C = Codec
module Pool = Mlbs_util.Pool
module Rng = Mlbs_prng.Rng
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Deployment = Mlbs_wsn.Deployment
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Bitset = Mlbs_util.Bitset
module Interference = Mlbs_phy.Interference
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Mcounter = Mlbs_core.Mcounter
module Reschedule = Mlbs_core.Reschedule
module Config = Mlbs_workload.Config
module Persist = Mlbs_workload.Persist
module Improve = Mlbs_search.Improve
module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace

type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  queue_capacity : int;
  cache_capacity : int;
  cache_dir : string option;
  persist_limit : int;
  allowed_models : Interference.t list option;
  improve_budget : int;
}

let default_config ~socket_path =
  let c = Config.default in
  {
    socket_path = Some socket_path;
    tcp_port = None;
    jobs = c.Config.jobs;
    queue_capacity = c.Config.queue_capacity;
    cache_capacity = c.Config.cache_capacity;
    cache_dir = None;
    persist_limit = 64;
    allowed_models = None;
    improve_budget = 0;
  }

(* One cached solve. [version] counts the strictly-better Validate-clean
   upgrades the background improver installed on this content address
   (0 = the deterministic construction [solve] produces). [origin] is
   the request the entry answers — the improver needs it to rebuild the
   model; entries warmed from disk carry [None] and are never polished.
   [attempts] counts polish passes spent on this entry (it salts the
   improver's seed and caps fruitless re-polish work). *)
type entry = {
  stats : C.stats;
  schedule : Schedule.t;
  version : int;
  origin : C.request option;
  attempts : int Atomic.t;
}

let entry_of ?origin ?(version = 0) (stats, schedule) =
  { stats; schedule; version; origin; attempts = Atomic.make 0 }

(* ---------------------------- metrics ------------------------------ *)

let m_requests = Metrics.counter "server/requests"
let m_ok = Metrics.counter "server/replies_ok"
let m_rejected = Metrics.counter "server/rejected"
let m_errors = Metrics.counter "server/errors"
let m_connections = Metrics.counter "server/connections"
let m_bad_frames = Metrics.counter "server/bad_frames"
let m_peeks = Metrics.counter "server/peeks"
let m_fills = Metrics.counter "server/fills"
let h_request_us = Metrics.histogram "server/request_us"
let h_solve_us = Metrics.histogram "server/solve_us"
let h_repair_ms = Metrics.histogram "server/repair_ms"
let m_warm_hit = Metrics.counter "server/warmstart/hit"
let m_warm_miss = Metrics.counter "server/warmstart/miss"
let m_polish_passes = Metrics.counter "search/improve/polish_passes"
let m_upgrades = Metrics.counter "search/improve/upgrades_installed"

(* EWMA of recent solve/repair wall time, process-wide — the basis of
   the load-scaled retry hint handed to shed clients. *)
let ewma_solve_us = Atomic.make 0

let note_solve_us us =
  let rec go () =
    let cur = Atomic.get ewma_solve_us in
    let next = if cur = 0 then us else ((7 * cur) + us) / 8 in
    if not (Atomic.compare_and_set ewma_solve_us cur next) then go ()
  in
  go ()

(* ------------------------ request resolution ----------------------- *)

(* The paper's source-eccentricity window, as [mlbs schedule] uses. *)
let min_ecc = Config.default.Config.min_ecc
let max_ecc = Config.default.Config.max_ecc

type resolved = { rnet : Network.t; rdigest : int64; rsource : int }

(* Explicit adjacencies carry no geometry; synthesize a unit grid of
   distinct positions (quadrants and hull then derive from the fake
   geometry, deterministically — the schedule's conflict-freedom only
   depends on the graph). *)
let network_of_adjacency adj = Network.synthetic (Graph.of_adjacency adj)

let build_topology (req : C.request) =
  match req.C.topology with
  | C.Gen { n; radius } ->
      let spec =
        {
          Deployment.n_nodes = n;
          width = Config.default.Config.width;
          height = Config.default.Config.height;
          radius;
          shape = Deployment.Uniform;
        }
      in
      Deployment.generate (Rng.create req.C.seed) spec
  | C.Adj adj -> network_of_adjacency adj

let resolve_fresh (req : C.request) =
  let net = build_topology req in
  let rdigest = Graph.digest (Network.graph net) in
  let rsource =
    match req.C.topology with
    | C.Gen _ -> Deployment.select_source (Rng.create req.C.seed) net ~min_ecc ~max_ecc
    | C.Adj _ -> 0
  in
  { rnet = net; rdigest; rsource }

(* Generator requests are memoised on (n, radius, seed) so a warm
   request never re-samples the deployment or re-runs the source
   eccentricity scan; explicit adjacencies were shipped in the frame
   and are rebuilt in O(n + m). *)
let resolve ?memo (req : C.request) =
  match (req.C.topology, memo) with
  | C.Gen { n; radius }, Some memo -> (
      let mkey = Printf.sprintf "g:%d:%h:%d" n radius req.C.seed in
      match Cache.find memo mkey with
      | Some r -> r
      | None ->
          let r = resolve_fresh req in
          Cache.add memo mkey r;
          r)
  | _ -> resolve_fresh req

let source_of (req : C.request) r =
  match req.C.source with
  | None -> r.rsource
  | Some s ->
      if s < 0 || s >= Network.n_nodes r.rnet then
        failwith (Printf.sprintf "source %d out of range [0,%d)" s (Network.n_nodes r.rnet));
      s

let system_of (req : C.request) net =
  match req.C.rate with
  | None -> Model.Sync
  | Some rate ->
      Model.Async (Wake_schedule.create ~rate ~n_nodes:(Network.n_nodes net) ~seed:req.C.seed ())

let policy_of = function
  | C.Baseline -> Scheduler.Baseline
  | C.Emodel -> Scheduler.Emodel
  | C.Gopt -> Scheduler.gopt
  | C.Opt -> Scheduler.opt

let policy_tag = function C.Baseline -> 0 | C.Emodel -> 1 | C.Gopt -> 2 | C.Opt -> 3

(* The content address: everything the served schedule is a function
   of. The wake-schedule seed participates only under a duty cycle, so
   sync requests for the same graph content hit regardless of seed. The
   interference model id participates always — a SINR request must
   never be answered from a UDG cache line. *)
let key_of (req : C.request) ~digest ~source =
  Printf.sprintf "%016Lx:p%d:r%d:w%d:s%d:t%d:m%s" digest (policy_tag req.C.policy)
    (match req.C.rate with None -> -1 | Some r -> r)
    (match req.C.rate with None -> 0 | Some _ -> req.C.seed)
    source req.C.start
    (Interference.to_string req.C.model)

let cache_key req =
  let r = resolve req in
  key_of req ~digest:r.rdigest ~source:(source_of req r)

let do_solve model policy ~source ~start =
  let s0 = Metrics.counter_value "search/states" in
  let t0 = Obs.now_us () in
  let plan = Scheduler.run model policy ~source ~start in
  let dt = Obs.now_us () -. t0 in
  let stats =
    {
      C.elapsed = Schedule.elapsed plan;
      transmissions = Schedule.n_transmissions plan;
      n_steps = List.length (Schedule.steps plan);
      search_states = max 0 (Metrics.counter_value "search/states" - s0);
      solve_us = int_of_float dt;
    }
  in
  Metrics.observe h_solve_us stats.C.solve_us;
  (stats, plan)

let solve req =
  let r = resolve req in
  let source = source_of req r in
  let model = Model.create ~phy:req.C.model r.rnet (system_of req r.rnet) in
  do_solve model (policy_of req.C.policy) ~source ~start:req.C.start

let model_of req =
  let r = resolve req in
  Model.create ~phy:req.C.model r.rnet (system_of req r.rnet)

(* [derived_request base delta] is the plain request for the edited
   topology: the adjacency of [Graph.edit] applied to [base]'s
   resolved graph, with the resolved source pinned. A [Reschedule]
   reply is byte-identical to this request's reply, and both land on
   the same content address. *)
let derived_request (base : C.request) (delta : C.delta) =
  let r = resolve base in
  let source = source_of base r in
  let g' =
    Graph.edit (Network.graph r.rnet) ~add:delta.C.d_added ~remove:delta.C.d_removed
      ~rewire:delta.C.d_rewired
  in
  let adj = Array.init (Graph.n_nodes g') (fun u -> Array.to_list (Graph.neighbors g' u)) in
  { base with C.topology = C.Adj adj; source = Some source }

(* ------------------------- warm-start index ------------------------ *)

(* One memo snapshot per (policy, rate, wake seed, node count) family,
   keyed WITHOUT the graph digest — near misses (same deployment
   family, different source, edited graph) are exactly the lookups we
   want to catch. The stored graph is the one the snapshot's solve ran
   on; per-entry validity is re-derived against it at use time, which
   keeps chained churn repairs sound. *)
type wentry = { wgraph : Graph.t; wsnapshot : Mcounter.snapshot }

let family_key (req : C.request) ~n =
  Printf.sprintf "p%d:r%d:w%d:n%d:m%s" (policy_tag req.C.policy)
    (match req.C.rate with None -> -1 | Some r -> r)
    (match req.C.rate with None -> 0 | Some _ -> req.C.seed)
    n
    (Interference.to_string req.C.model)

let searchful = function C.Gopt | C.Opt -> true | C.Baseline | C.Emodel -> false

(* Probe the family index for seeds valid on [g]: a memo entry is
   reused iff its informed set contains every endpoint of the diff
   between the snapshot's graph and [g] (the soundness contract of
   [Mcounter.plan_snapshot]). On a same-graph near miss — different
   source, say — the diff is empty and the whole memo seeds. *)
let family_seeds warm (req : C.request) policy ~family ~g =
  (* The subset-validity argument is graph-wise; under a
     geometry-dependent model a memo computed on one deployment's
     positions would steer the search on another's (the family key
     carries no geometry), so SINR families never seed. *)
  if Interference.geometry_dependent req.C.model then None
  else
    let n = Graph.n_nodes g in
    match Cache.find warm family with
    | Some we when Graph.n_nodes we.wgraph = n ->
        let eps = Bitset.of_list n (Graph.diff_endpoints we.wgraph g) in
        Scheduler.warm_seeds policy we.wsnapshot ~n ~valid:(fun w -> Bitset.subset eps w)
    | _ -> None

(* Warm solve: same schedules as [do_solve], byte for byte, but
   through [Scheduler.run_warm] — family-index seeds in, memo snapshot
   out. *)
let do_solve_warm warm (req : C.request) model ~source ~family =
  let policy = policy_of req.C.policy in
  let g = Model.graph model in
  let seeds = family_seeds warm req policy ~family ~g in
  if searchful req.C.policy then
    Metrics.incr (match seeds with Some _ -> m_warm_hit | None -> m_warm_miss);
  let s0 = Metrics.counter_value "search/states" in
  let t0 = Obs.now_us () in
  let schedule, snap = Scheduler.run_warm model policy ?seeds ~source ~start:req.C.start () in
  let dt = Obs.now_us () -. t0 in
  let stats =
    {
      C.elapsed = Schedule.elapsed schedule;
      transmissions = Schedule.n_transmissions schedule;
      n_steps = List.length (Schedule.steps schedule);
      search_states = max 0 (Metrics.counter_value "search/states" - s0);
      solve_us = int_of_float dt;
    }
  in
  Metrics.observe h_solve_us stats.C.solve_us;
  note_solve_us stats.C.solve_us;
  (match snap with
  | Some s when not (Interference.geometry_dependent req.C.model) ->
      Cache.add warm family { wgraph = g; wsnapshot = s }
  | _ -> ());
  (stats, schedule)

(* Delta repair: patch the cached base schedule for the edited graph
   through [Reschedule], seeding from the family snapshot when one is
   on hand. Byte-identical to a cold solve of the edited topology. *)
let do_repair warm (req : C.request) ~base_model ~(base_entry : entry) ~family ~source
    (delta : C.delta) =
  let prev =
    if Interference.geometry_dependent req.C.model then None
    else Cache.find warm family
  in
  let s0 = Metrics.counter_value "search/states" in
  let t0 = Obs.now_us () in
  let rep =
    Reschedule.reschedule base_model (policy_of req.C.policy)
      ?snapshot:(Option.map (fun we -> we.wsnapshot) prev)
      ?snapshot_graph:(Option.map (fun we -> we.wgraph) prev)
      ~source ~old_schedule:base_entry.schedule ~added:delta.C.d_added
      ~removed:delta.C.d_removed ~rewired:delta.C.d_rewired ()
  in
  let dt = Obs.now_us () -. t0 in
  if searchful req.C.policy then
    Metrics.incr (if rep.Reschedule.warm then m_warm_hit else m_warm_miss);
  let schedule = rep.Reschedule.schedule in
  let stats =
    {
      C.elapsed = Schedule.elapsed schedule;
      transmissions = Schedule.n_transmissions schedule;
      n_steps = List.length (Schedule.steps schedule);
      search_states = max 0 (Metrics.counter_value "search/states" - s0);
      solve_us = int_of_float dt;
    }
  in
  Metrics.observe h_solve_us stats.C.solve_us;
  Metrics.observe h_repair_ms (max 0 (int_of_float (dt /. 1000.)));
  note_solve_us stats.C.solve_us;
  (match rep.Reschedule.snapshot with
  | Some s when not (Interference.geometry_dependent req.C.model) ->
      Cache.add warm family { wgraph = Model.graph rep.Reschedule.model; wsnapshot = s }
  | _ -> ());
  (stats, schedule)

(* ------------------------ cache persistence ------------------------ *)

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let index_file dir = Filename.concat dir "index.txt"

let save_cache ~dir ~limit cache =
  mkdir_p dir;
  let entries =
    List.filteri (fun i _ -> i < limit) (Cache.to_list_mru cache)
  in
  let oc = open_out (index_file dir) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "mlbs-cache-index 2 %d\n" (List.length entries);
      List.iteri
        (fun i (key, e) ->
          let stem = Printf.sprintf "e%04d" i in
          Persist.save_schedule (Filename.concat dir (stem ^ ".sched")) e.schedule;
          Printf.fprintf oc "entry %s %s %d %d %d %d %d %d\n" stem key e.stats.C.elapsed
            e.stats.C.transmissions e.stats.C.n_steps e.stats.C.search_states
            e.stats.C.solve_us e.version)
        entries);
  List.length entries

let load_cache ~dir cache =
  if not (Sys.file_exists (index_file dir)) then 0
  else begin
    let ic = open_in (index_file dir) in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    match lines with
    | header :: rest when String.length header >= 18
                          && (String.sub header 0 18 = "mlbs-cache-index 1"
                             || String.sub header 0 18 = "mlbs-cache-index 2") ->
        let parse ~stem ~key ~el ~tx ~st ~ss ~su ~ver =
          try
            let schedule = Persist.load_schedule (Filename.concat dir (stem ^ ".sched")) in
            let stats =
              {
                C.elapsed = int_of_string el;
                transmissions = int_of_string tx;
                n_steps = int_of_string st;
                search_states = int_of_string ss;
                solve_us = int_of_string su;
              }
            in
            (* Disk-warmed entries carry no originating request, so the
               improver leaves them alone; the version survives so a
               previously upgraded schedule is still served as such. *)
            Some (key, entry_of ~version:(int_of_string ver) (stats, schedule))
          with _ -> None
        in
        let parsed =
          List.filter_map
            (fun line ->
              match String.split_on_char ' ' line with
              | [ "entry"; stem; key; el; tx; st; ss; su ] ->
                  parse ~stem ~key ~el ~tx ~st ~ss ~su ~ver:"0"
              | [ "entry"; stem; key; el; tx; st; ss; su; ver ] ->
                  parse ~stem ~key ~el ~tx ~st ~ss ~su ~ver
              | _ -> None)
            rest
        in
        (* The index lists MRU first; re-insert LRU first so the warm
           cache restores the recency order. *)
        List.iter (fun (key, e) -> Cache.add cache key e) (List.rev parsed);
        List.length parsed
    | _ -> failwith (Printf.sprintf "Daemon.load_cache: %s is not a v1 index" (index_file dir))
  end

(* ----------------------------- daemon ------------------------------ *)

type t = {
  cfg : config;
  pool : Pool.t;
  cache : entry Cache.t;
  warm : wentry Cache.t;
  topo : resolved Cache.t;
  disp : entry Dispatch.t;
  stop_requested : bool Atomic.t;
  mutable listeners : Acceptor.listener list;
  trace_ctr : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable improver : Thread.t option;
  mutable cleaned : bool;
}

(* Monotone install: a cache line's schedule version never decreases.
   Two concurrent writers (a solve's [on_done], the improver, a fleet
   [Put]) race through [Cache.upsert]'s mutex, and whichever carries
   the newer version wins; an equal-version improver result never
   replaces (same address + same version = same upgrade chain, and for
   version 0 the bytes are identical by determinism anyway). *)
let install t ~key (e : entry) =
  Cache.upsert t.cache key (function
    | Some old when old.version > e.version -> None
    | Some old when old.version = e.version && e.version > 0 -> None
    | _ -> Some e)

let stop t = Atomic.set t.stop_requested true
let tcp_port t = List.find_map Acceptor.port t.listeners

let fresh_trace_id t digest =
  Printf.sprintf "rq-%06d-%08Lx" (Atomic.fetch_and_add t.trace_ctr 1)
    (Int64.logand digest 0xffff_ffffL)

(* ------------------------ request handling ------------------------- *)

let reply_error msg =
  Metrics.incr m_errors;
  C.Reply_error msg

(* Serve-side model policy: a daemon started with an allow-list (the
   [mlbs serve --model] flag) refuses any other interference model
   before resolving the topology, so a shard dedicated to one backend
   never burns a solve slot on another's request. *)
let model_allowed t (model : Interference.t) =
  match t.cfg.allowed_models with
  | None -> true
  | Some l -> List.exists (Interference.equal model) l

let reject_model model =
  reply_error
    (Printf.sprintf "interference model %s is not served here" (Interference.to_string model))

(* Load-scaled backpressure: the hint is the queue's expected drain
   time — [depth + 1] slots at the EWMA solve cost spread over the
   worker pool — clamped to [5, 5000] ms. Before the first solve lands
   (cold EWMA) fall back to a flat 10 ms per queued slot. *)
let retry_hint t ~depth =
  match Atomic.get ewma_solve_us with
  | 0 -> 10 * (depth + 1)
  | per_us ->
      let ms = (depth + 1) * per_us / (max 1 t.cfg.jobs * 1000) in
      max 5 (min 5000 ms)

(* Admit the solve closure and block the connection thread until a pool
   worker finishes it (or it is shed at the door). The dispatcher's
   [on_done] publishes the entry under [key] even if this connection
   dies before waking. *)
let await t ~key ~digest run =
  let on_done = function Ok e -> install t ~key e | Error _ -> () in
  match Dispatch.submit t.disp ~on_done run with
  | Error `Closing -> reply_error "server is shutting down"
  | Error (`Shed depth) ->
      Metrics.incr m_rejected;
      C.Reply_rejected { retry_after_ms = retry_hint t ~depth }
  | Ok ticket -> (
      match Dispatch.await ticket with
      | Ok e ->
          Metrics.incr m_ok;
          C.Reply_ok
            {
              trace_id = fresh_trace_id t digest;
              cache_hit = false;
              version = e.version;
              stats = e.stats;
              schedule = e.schedule;
            }
      | Error msg -> reply_error msg)

let handle_request t (req : C.request) =
  Metrics.incr m_requests;
  let t0 = Obs.now_us () in
  let reply =
    if not (model_allowed t req.C.model) then reject_model req.C.model
    else
    match resolve ~memo:t.topo req with
    | exception e -> reply_error (Printexc.to_string e)
    | r -> (
        match source_of req r with
        | exception e -> reply_error (Printexc.to_string e)
        | source -> (
            let key = key_of req ~digest:r.rdigest ~source in
            match Cache.find t.cache key with
            | Some e ->
                Metrics.incr m_ok;
                C.Reply_ok
                  {
                    trace_id = fresh_trace_id t r.rdigest;
                    cache_hit = true;
                    version = e.version;
                    stats = e.stats;
                    schedule = e.schedule;
                  }
            | None -> (
                match Model.create ~phy:req.C.model r.rnet (system_of req r.rnet) with
                | exception e -> reply_error (Printexc.to_string e)
                | model ->
                    let family = family_key req ~n:(Network.n_nodes r.rnet) in
                    await t ~key ~digest:r.rdigest (fun () ->
                        entry_of ~origin:req
                          (do_solve_warm t.warm req model ~source ~family)))))
  in
  let dt = Obs.now_us () -. t0 in
  Metrics.observe h_request_us (int_of_float dt);
  if Obs.tracing_enabled () then
    Trace.complete ~cat:"server" ~name:"request" ~t0_us:t0 ~dur_us:dt ();
  reply

(* A [Reschedule]: resolve the base, apply the delta, and serve the
   edited topology — from cache when its content address is warm,
   otherwise by repairing the cached base schedule (or cold-solving
   the edited graph when the base was never solved here; family seeds
   may still apply). The reply is byte-identical to a plain [Request]
   for the edited adjacency ([derived_request]), and the result is
   inserted under that request's content address, so either route hits
   the same cache line afterwards. *)
let handle_reschedule t (base : C.request) (delta : C.delta) =
  Metrics.incr m_requests;
  let t0 = Obs.now_us () in
  let reply =
    if not (model_allowed t base.C.model) then reject_model base.C.model
    else
    match resolve ~memo:t.topo base with
    | exception e -> reply_error (Printexc.to_string e)
    | r -> (
        match source_of base r with
        | exception e -> reply_error (Printexc.to_string e)
        | source -> (
            match
              Graph.edit (Network.graph r.rnet) ~add:delta.C.d_added
                ~remove:delta.C.d_removed ~rewire:delta.C.d_rewired
            with
            | exception e -> reply_error (Printexc.to_string e)
            | g' -> (
                let digest' = Graph.digest g' in
                let key = key_of base ~digest:digest' ~source in
                match Cache.find t.cache key with
                | Some e ->
                    Metrics.incr m_ok;
                    C.Reply_ok
                      {
                        trace_id = fresh_trace_id t digest';
                        cache_hit = true;
                        version = e.version;
                        stats = e.stats;
                        schedule = e.schedule;
                      }
                | None ->
                    let family = family_key base ~n:(Graph.n_nodes g') in
                    (* The entry answers the edited topology: its origin
                       for later polishing is the plain request for that
                       adjacency (the same one [derived_request] builds). *)
                    let origin =
                      let adj =
                        Array.init (Graph.n_nodes g') (fun u ->
                            Array.to_list (Graph.neighbors g' u))
                      in
                      { base with C.topology = C.Adj adj; source = Some source }
                    in
                    let run =
                      match Cache.find t.cache (key_of base ~digest:r.rdigest ~source) with
                      | Some base_entry ->
                          fun () ->
                            let base_model =
                              Model.create ~phy:base.C.model r.rnet (system_of base r.rnet)
                            in
                            entry_of ~origin
                              (do_repair t.warm base ~base_model ~base_entry ~family
                                 ~source delta)
                      | None ->
                          fun () ->
                            let net' = Network.synthetic g' in
                            let model' =
                              Model.create ~phy:base.C.model net' (system_of base net')
                            in
                            entry_of ~origin
                              (do_solve_warm t.warm base model' ~source ~family)
                    in
                    await t ~key ~digest:digest' run)))
  in
  let dt = Obs.now_us () -. t0 in
  Metrics.observe h_request_us (int_of_float dt);
  if Obs.tracing_enabled () then
    Trace.complete ~cat:"server" ~name:"reschedule" ~t0_us:t0 ~dur_us:dt ();
  reply

(* A [Peek] (protocol v3): cache-only probe — a hit is a normal
   [Reply_ok] with [cache_hit = true]; a miss answers [Peek_miss] and
   never solves. The fleet front tier peeks shards before committing a
   solve, so this path must stay allocation-light and queue-free. *)
let handle_peek t (req : C.request) =
  Metrics.incr m_peeks;
  if not (model_allowed t req.C.model) then reject_model req.C.model
  else
  match resolve ~memo:t.topo req with
  | exception e -> reply_error (Printexc.to_string e)
  | r -> (
      match source_of req r with
      | exception e -> reply_error (Printexc.to_string e)
      | source -> (
          match Cache.find t.cache (key_of req ~digest:r.rdigest ~source) with
          | Some e ->
              Metrics.incr m_ok;
              C.Reply_ok
                {
                  trace_id = fresh_trace_id t r.rdigest;
                  cache_hit = true;
                  version = e.version;
                  stats = e.stats;
                  schedule = e.schedule;
                }
          | None -> C.Peek_miss))

(* A [Put] (protocol v3): peer cache-fill. The content address is
   recomputed from the request itself — a peer cannot file a schedule
   under an address that does not match it short of sending a wrong
   schedule for the right request, which determinism upstream rules
   out. Only shape is re-validated here; byte-level trust is between
   fleet members. *)
let handle_put t (req : C.request) ~version (stats : C.stats) schedule =
  if not (model_allowed t req.C.model) then reject_model req.C.model
  else
  match resolve ~memo:t.topo req with
  | exception e -> reply_error (Printexc.to_string e)
  | r -> (
      match source_of req r with
      | exception e -> reply_error (Printexc.to_string e)
      | source ->
          if Schedule.n_nodes schedule <> Network.n_nodes r.rnet then
            reply_error "put: schedule does not match the request topology"
          else begin
            install t
              ~key:(key_of req ~digest:r.rdigest ~source)
              (entry_of ~origin:req ~version (stats, schedule));
            Metrics.incr m_fills;
            C.Put_ack
          end)

(* The Stats frame carries the daemon's own counters plus the search
   core's ("search/states", bound-prune kinds, dominance prunes, the
   transposition-table hit/miss/collision/evict/grow family) so a
   client can see how the cold-miss solves behave without shell access
   to the server host. *)
let server_stats () =
  let has_prefix p name =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  List.filter_map
    (fun (name, v) ->
      if has_prefix "server/" name || has_prefix "search/" name || has_prefix "phy/" name
      then
        Some
          ( name,
            match (v : Metrics.value) with
            | Metrics.Count c -> c
            | Metrics.Level l -> l
            | Metrics.Dist { total; _ } -> total )
      else None)
    (Metrics.snapshot ())

let handle_conn t fd =
  Metrics.incr m_connections;
  let rec loop () =
    match C.recv fd with
    | None -> ()
    | Some msg ->
        let continue =
          match msg with
          | C.Hello { proto; version } ->
              C.send fd
                (C.Hello_ack
                   {
                     proto = C.protocol_version;
                     version = Version.version;
                     version_match =
                       proto = C.protocol_version && version = Version.version;
                   });
              true
          | C.Request req ->
              C.send fd (handle_request t req);
              true
          | C.Reschedule { base; delta } ->
              C.send fd (handle_reschedule t base delta);
              true
          | C.Peek req ->
              C.send fd (handle_peek t req);
              true
          | C.Put { req; version; stats; schedule } ->
              C.send fd (handle_put t req ~version stats schedule);
              true
          | C.Stats_request ->
              C.send fd (C.Stats_reply (server_stats ()));
              true
          | C.Shutdown ->
              C.send fd C.Shutdown_ack;
              stop t;
              false
          | C.Hello_ack _ | C.Reply_ok _ | C.Reply_rejected _ | C.Reply_error _
          | C.Stats_reply _ | C.Shutdown_ack | C.Peek_miss | C.Put_ack ->
              C.send fd (C.Reply_error "unexpected message from client");
              true
        in
        if continue then loop ()
  in
  (try loop () with
  | C.Malformed _ ->
      Metrics.incr m_bad_frames;
      (try C.send fd (C.Reply_error "malformed frame") with _ -> ())
  | Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* ----------------------- background polishing ---------------------- *)

(* The improver runs in otherwise-idle dispatcher cycles. One pass
   picks a polish candidate from the hot (MRU) end of the cache —
   preferring the entry with the fewest prior attempts, ties broken
   towards most recently used — rebuilds its model from the stored
   origin request, runs a budget-bounded GLS/VNS pass, and installs a
   strictly-better Validate-clean result as version+1. The seed is a
   deterministic function of the content address and the attempt
   number, so a pass over a given entry is reproducible while
   successive passes still explore different trajectories. *)

let max_polish_attempts = 16
let polish_scan = 8

let polish_once t ~budget =
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  let cands =
    List.filter_map
      (fun (key, e) ->
        match e.origin with
        | Some req when Atomic.get e.attempts < max_polish_attempts -> Some (key, e, req)
        | _ -> None)
      (take polish_scan (Cache.to_list_mru t.cache))
  in
  match cands with
  | [] -> false
  | first :: rest ->
      let key, e, req =
        List.fold_left
          (fun ((_, be, _) as b) ((_, ce, _) as c) ->
            if Atomic.get ce.attempts < Atomic.get be.attempts then c else b)
          first rest
      in
      let attempt = Atomic.fetch_and_add e.attempts 1 in
      Metrics.incr m_polish_passes;
      let outcome =
        try
          let r = resolve ~memo:t.topo req in
          let model = Model.create ~phy:req.C.model r.rnet (system_of req r.rnet) in
          let seed = (Hashtbl.hash key * 131) + attempt in
          Some (Improve.improve ~seed ~budget model e.schedule)
        with _ -> None
      in
      (match outcome with
      | Some o when o.Improve.improved ->
          let plan = o.Improve.schedule in
          let stats =
            {
              e.stats with
              C.elapsed = Schedule.elapsed plan;
              transmissions = Schedule.n_transmissions plan;
              n_steps = List.length (Schedule.steps plan);
            }
          in
          install t ~key
            {
              stats;
              schedule = plan;
              version = e.version + 1;
              origin = e.origin;
              attempts = Atomic.make (attempt + 1);
            };
          Metrics.incr m_upgrades;
          true
      | Some _ | None -> false)

(* --------------------------- lifecycle ----------------------------- *)

let start cfg =
  if cfg.socket_path = None && cfg.tcp_port = None then
    failwith "Daemon.start: no listener configured (need a socket path or TCP port)";
  (* The registry is the server's own observability surface; tracing
     stays at whatever the caller (Telemetry.with_config) selected. *)
  Obs.enable ~metrics:true ~tracing:(Obs.tracing_enabled ()) ();
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let cache = Cache.create ~metrics_prefix:"server/cache" ~capacity:cfg.cache_capacity () in
  (match cfg.cache_dir with Some dir -> ignore (load_cache ~dir cache) | None -> ());
  let pool = Pool.create ~jobs:cfg.jobs in
  let t =
    {
      cfg;
      pool;
      cache;
      warm = Cache.create ~metrics_prefix:"server/warm" ~capacity:64 ();
      topo = Cache.create ~metrics_prefix:"server/topo" ~capacity:256 ();
      disp = Dispatch.create ~pool ~capacity:cfg.queue_capacity;
      stop_requested = Atomic.make false;
      listeners = [];
      trace_ctr = Atomic.make 0;
      acceptor = None;
      improver = None;
      cleaned = false;
    }
  in
  let listeners =
    (match cfg.socket_path with Some p -> [ Acceptor.bind_unix p ] | None -> [])
    @ (match cfg.tcp_port with Some p -> [ Acceptor.bind_tcp ~port:p ] | None -> [])
  in
  t.listeners <- listeners;
  Dispatch.start t.disp;
  t.acceptor <-
    Some
      (Thread.create
         (fun () ->
           Acceptor.serve t.listeners
             ~stopped:(fun () -> Atomic.get t.stop_requested)
             ~handle:(handle_conn t))
         ());
  if cfg.improve_budget > 0 then
    t.improver <-
      Some
        (Thread.create
           (fun () ->
             (* Poll for idleness; a polish pass only starts while the
                dispatcher has neither queued nor in-flight work, and
                every pass is budget-bounded, so shutdown joins
                promptly. *)
             while not (Atomic.get t.stop_requested) do
               if Dispatch.busy t.disp then Thread.delay 0.02
               else if not (polish_once t ~budget:cfg.improve_budget) then
                 Thread.delay 0.02
             done)
           ());
  t

let cleanup t =
  if not t.cleaned then begin
    t.cleaned <- true;
    Acceptor.close_all t.listeners;
    (match t.cfg.cache_dir with
    | Some dir -> ignore (save_cache ~dir ~limit:t.cfg.persist_limit t.cache)
    | None -> ());
    Pool.shutdown t.pool
  end

let wait t =
  (* Poll rather than block in a join: the waiting thread keeps
     executing OCaml code, so a SIGINT/SIGTERM handler that calls
     [stop] gets to run here. *)
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  Dispatch.stop t.disp;
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.improver;
  Dispatch.join t.disp;
  cleanup t

let run cfg = wait (start cfg)
