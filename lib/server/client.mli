(** Client side of the scheduling service: connect, handshake, send
    requests, read replies. One [t] is one connection; it is not
    thread-safe — use one connection per thread (as [mlbs loadgen]
    does). *)

type t

(** Where the daemon listens. *)
type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

(** [connect ep] opens the connection and performs the Hello handshake.
    Returns the daemon's protocol, build version, and whether they match
    this client's. Raises [Failure] when the daemon speaks a different
    protocol, [Unix.Unix_error] when nobody is listening. *)
val connect : endpoint -> t * [ `Version of string ] * [ `Match of bool ]

(** The daemon's reply to one solve request. *)
type outcome =
  | Ok of Codec.ok_reply
  | Rejected of { retry_after_ms : int }  (** queue full — shed *)
  | Error of string

(** [request t req] sends one solve request and waits for the reply. *)
val request : t -> Codec.request -> outcome

(** [request_retry ?attempts t req] is [request], sleeping the daemon's
    [retry_after_ms] hint and retrying after each [Rejected] — at most
    [attempts] (default 5) sends in total. The last outcome is returned
    (possibly still [Rejected]). *)
val request_retry : ?attempts:int -> t -> Codec.request -> outcome

(** [reschedule t ~base ~delta] asks the daemon to serve the topology
    obtained by applying [delta] to [base]'s resolved graph — repaired
    from the cached base schedule when possible, byte-identical to a
    plain {!request} for {!Daemon.derived_request}[ base delta]. *)
val reschedule : t -> base:Codec.request -> delta:Codec.delta -> outcome

(** [reschedule_retry ?attempts t ~base ~delta] retries like
    {!request_retry}. *)
val reschedule_retry : ?attempts:int -> t -> base:Codec.request -> delta:Codec.delta -> outcome

(** [peek t req] probes the server's schedule cache without solving
    (protocol v3): [`Hit] carries the cached reply ([cache_hit = true]),
    [`Miss] means the server does not hold it. The fleet's fill path and
    the tests use this to observe cache contents over the wire. *)
val peek :
  t -> Codec.request -> [ `Hit of Codec.ok_reply | `Miss | `Error of string ]

(** [put t ~req ~stats ~schedule] files a finished reply under [req]'s
    content address on the server (peer cache-fill; protocol v3).
    [version] (default 0) is the schedule version the entry carries;
    the server installs monotonically. *)
val put :
  t ->
  ?version:int ->
  req:Codec.request ->
  stats:Codec.stats ->
  schedule:Mlbs_core.Schedule.t ->
  unit ->
  (unit, string) result

(** [stats t] fetches the daemon's [server/…] metric snapshot. *)
val stats : t -> (string * int) list

(** [shutdown t] asks the daemon to stop and waits for the ack. *)
val shutdown : t -> unit

(** [close t] closes the connection (idempotent). *)
val close : t -> unit
