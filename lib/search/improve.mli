(** Anytime schedule improvement: guided local search (GLS) + variable
    neighborhood search (VNS) over completed broadcast schedules.

    The engine never mutates the schedule it was given: moves are
    expressed as {!Mlbs_core.Istate} apply–probe–undo sequences over a
    private working copy, and a candidate replaces the incumbent only
    when it is {e strictly} better in true latency and passes a full
    {!Mlbs_sim.Validate} radio replay under the instance's interference
    model — so every schedule this module ever returns is exactly as
    trustworthy as the constructions it starts from. The search is
    model-generic: it manipulates schedules purely through the model's
    own candidate/colouring/conflict primitives, so it runs unchanged
    against the Udg, Sinr and Multichannel backends.

    Neighborhoods (all truncate-and-rebuild around a pivot step [p],
    with the prefix [0..p-1] replayed incrementally and the suffix
    greedily re-completed):

    - {e compress}: merge step [p+1]'s already-informed, awake senders
      into step [p], trying to shave a slot outright;
    - {e drop}: remove one sender from step [p], freeing its conflict
      edges for the rebuilt suffix;
    - {e swap}: replace one sender of step [p] with a different
      candidate of that slot;
    - {e re-colour}: discard step [p]'s class choice and re-run the
      penalty-aware greedy colouring from there.

    GLS penalises congested conflict features — senders whose conflict
    edges into the next step forced coverage to wait — and evaluates
    candidates against latency {e plus} penalties, so stagnation
    deforms the landscape instead of stopping the search. The VNS
    driver widens the pivot window on stagnation and resets to the
    incumbent when a cycle of escalations comes up dry.

    Determinism: the whole search is a pure function of (model,
    schedule, seed, budget) — it draws randomness only from
    {!Mlbs_prng.Rng} — unless a wall-clock cap is supplied and fires.
    [budget = 0] returns the input schedule value itself, so the
    encoded reply bytes cannot change. *)

type outcome = {
  schedule : Mlbs_core.Schedule.t;
      (** best schedule found; the input value itself when no strictly
          better Validate-clean candidate was accepted *)
  improved : bool;  (** [elapsed schedule < elapsed input] *)
  evals : int;  (** candidate constructions actually performed *)
  accepted : int;  (** moves accepted into the working schedule *)
  penalty_bumps : int;  (** GLS penalty increments applied *)
  penalty_resets : int;  (** penalty wipes on VNS cycle restarts *)
  escalations : int;  (** VNS neighborhood-size escalations *)
}

(** [improve ?seed ?max_us ~budget model schedule] runs at most
    [budget] candidate evaluations (and at most [max_us] microseconds
    of wall clock when given) of GLS/VNS local search from [schedule],
    which must be a schedule for [model]'s node count. Updates the
    [search/improve/*] metrics and records a ["search"] trace span when
    the registries are enabled. Raises [Invalid_argument] on a node
    count mismatch. *)
val improve :
  ?seed:int ->
  ?max_us:float ->
  budget:int ->
  Mlbs_core.Model.t ->
  Mlbs_core.Schedule.t ->
  outcome
