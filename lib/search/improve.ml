(* GLS + VNS anytime improvement over completed broadcast schedules.

   Every move is truncate-and-rebuild around a pivot step [p]: the
   prefix [0..p-1] is kept and held in an [Istate] (rewound in
   O(affected), never recomputed from scratch), the advance at [p] is
   modified (compress / drop / swap / re-colour), and the remaining
   coverage is greedily re-completed through the model's own colouring.
   A candidate is accepted into the working schedule only when it
   strictly lowers the GLS-augmented cost AND passes a full radio
   replay under the instance's interference model; the incumbent (the
   schedule handed back to the caller) moves only on a strict true
   latency improvement. The input schedule value is returned untouched
   when nothing strictly better was found, so byte-level no-change is
   structural, not re-encoded. *)

module Bitset = Mlbs_util.Bitset
module Rng = Mlbs_prng.Rng
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Istate = Mlbs_core.Istate
module Validate = Mlbs_sim.Validate
module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace

type outcome = {
  schedule : Schedule.t;
  improved : bool;
  evals : int;
  accepted : int;
  penalty_bumps : int;
  penalty_resets : int;
  escalations : int;
}

let m_runs = Metrics.counter "search/improve/runs"
let m_tried = Metrics.counter "search/improve/moves_tried"
let m_accepted = Metrics.counter "search/improve/moves_accepted"
let m_bumps = Metrics.counter "search/improve/penalty_bumps"
let m_resets = Metrics.counter "search/improve/penalty_resets"
let m_escalations = Metrics.counter "search/improve/escalations"
let m_improved = Metrics.counter "search/improve/improved"
let m_slots_saved = Metrics.counter "search/improve/slots_saved"

(* One slot of true latency outweighs [aug_scale] penalty units in the
   augmented objective, so penalties steer among near-equal schedules
   without silently trading latency away. *)
let aug_scale = 32

(* Class choice during re-completion: coverage dominates, penalties
   break ties and push the rebuild off congested senders. *)
let cov_scale = 64

let kmax = 5
let bump_every = 12
let escalate_every = 40

let no_op schedule =
  {
    schedule;
    improved = false;
    evals = 0;
    accepted = 0;
    penalty_bumps = 0;
    penalty_resets = 0;
    escalations = 0;
  }

let run ~seed ~max_us ~budget model schedule =
  let n = Model.n_nodes model in
  let source = Schedule.source schedule in
  let start = Schedule.start schedule in
  let rng = Rng.create seed in
  let ist = Istate.create n in
  let pen = Array.make n 0 in
  let cur = ref (Array.of_list (Schedule.steps schedule)) in
  let len0 = Array.length !cur in
  let max_steps = (2 * len0) + 16 in
  let resync steps =
    Istate.reset ist model ~w:(Model.initial_w model ~source);
    Array.iter (fun (st : Schedule.step) -> Istate.apply ist ~senders:st.Schedule.senders) steps
  in
  resync !cur;
  let best = ref schedule in
  let best_elapsed = ref (Schedule.elapsed schedule) in
  let evals = ref 0
  and accepted = ref 0
  and bumps = ref 0
  and resets = ref 0
  and escal = ref 0 in
  let elapsed_of steps = steps.(Array.length steps - 1).Schedule.slot - start + 1 in
  let pen_sum steps =
    Array.fold_left
      (fun acc (st : Schedule.step) ->
        List.fold_left (fun a u -> a + pen.(u)) acc st.Schedule.senders)
      0 steps
  in
  let aug steps = (elapsed_of steps * aug_scale) + pen_sum steps in
  (* Penalty-aware greedy class at [slot], from ist's current position. *)
  let best_class slot =
    List.fold_left
      (fun (bs, bc) (cls, cov) ->
        let sc =
          (Bitset.cardinal cov * cov_scale)
          - List.fold_left (fun a u -> a + pen.(u)) 0 cls
        in
        if sc > bs then (sc, Some cls) else (bs, bc))
      (min_int, None)
      (Istate.greedy_classes_cov ist ~slot)
    |> snd
  in
  (* Greedy re-completion: apply the modified advance ([senders] at
     [slot]; empty = the pivot slot is surrendered to the colouring),
     then advance slot by slot until coverage is complete. *)
  let complete_from ~slot ~senders =
    let acc = ref [] in
    let count = ref 0 in
    let failed = ref false in
    let push ~slot senders =
      Istate.apply ist ~senders;
      let informed = List.sort compare (Istate.last_added ist) in
      acc := { Schedule.slot; senders; informed } :: !acc;
      incr count
    in
    let cursor = ref (if senders = [] then slot - 1 else slot) in
    if senders <> [] then push ~slot senders;
    while (not !failed) && not (Istate.complete ist) do
      if !count > max_steps then failed := true
      else
        match Istate.next_active_slot ist ~after:!cursor with
        | None -> failed := true
        | Some s -> (
            match best_class s with
            | None -> failed := true
            | Some cls ->
                push ~slot:s cls;
                cursor := s)
    done;
    if !failed then None else Some (List.rev !acc)
  in
  let restore p =
    Istate.rewind ist ~depth:p;
    for i = p to Array.length !cur - 1 do
      Istate.apply ist ~senders:(!cur).(i).Schedule.senders
    done
  in
  (* One neighborhood move at VNS strength [k]: pick a pivot in a
     window that widens with [k], modify the advance there, rebuild. *)
  let try_move ~k =
    let len = Array.length !cur in
    let window = min len (2 + (3 * k)) in
    let p = len - 1 - Rng.int rng window in
    let step_p = (!cur).(p) in
    let slot = step_p.Schedule.slot in
    Istate.rewind ist ~depth:p;
    let senders_opt =
      match Rng.int rng 4 with
      | 0 ->
          (* compress: pull step p+1's feasible senders into slot p *)
          if p + 1 >= len then None
          else
            let w = Istate.w ist in
            let extra =
              List.filter
                (fun v ->
                  Bitset.mem w v
                  && Model.awake model v ~slot
                  && not (List.mem v step_p.Schedule.senders))
                (!cur).(p + 1).Schedule.senders
            in
            if extra = [] then None else Some (step_p.Schedule.senders @ extra)
      | 1 -> (
          (* drop one sender, freeing its conflict edges *)
          match step_p.Schedule.senders with
          | [] | [ _ ] -> None
          | senders ->
              let i = Rng.int rng (List.length senders) in
              Some (List.filteri (fun j _ -> j <> i) senders))
      | 2 -> (
          (* swap one sender for a different candidate of the slot *)
          match step_p.Schedule.senders with
          | [] -> None
          | senders -> (
              match
                List.filter
                  (fun v -> not (List.mem v senders))
                  (Istate.candidates ist ~slot)
              with
              | [] -> None
              | fresh ->
                  let v = Rng.pick rng fresh in
                  let i = Rng.int rng (List.length senders) in
                  Some (List.mapi (fun j u -> if j = i then v else u) senders)))
      | _ ->
          (* re-colour: let the penalty-aware greedy redo the advance *)
          Some []
    in
    match senders_opt with
    | None ->
        restore p;
        `Rejected
    | Some senders -> (
        match complete_from ~slot ~senders with
        | None ->
            restore p;
            `Rejected
        | Some suffix ->
            let cand = Array.append (Array.sub !cur 0 p) (Array.of_list suffix) in
            if Array.length cand = 0 || aug cand >= aug !cur then begin
              restore p;
              `Rejected
            end
            else
              let sched = Schedule.make ~n_nodes:n ~source ~start (Array.to_list cand) in
              let rep = Validate.check model sched in
              if not rep.Validate.ok then begin
                restore p;
                `Rejected
              end
              else begin
                (* ist is already at cand's end position *)
                cur := cand;
                incr accepted;
                Metrics.incr m_accepted;
                let e = Schedule.elapsed sched in
                if e < !best_elapsed then begin
                  best := sched;
                  best_elapsed := e;
                  `Best
                end
                else `Accepted
              end)
  in
  (* GLS feature penalties: a sender's utility is its count of conflict
     edges into the immediately following step (the edges that forced
     that coverage to wait), discounted by its standing penalty. *)
  let bump_penalties () =
    Istate.rewind ist ~depth:0;
    let len = Array.length !cur in
    let best_util = ref neg_infinity and best_us = ref [] in
    for i = 0 to len - 1 do
      let w = Istate.w ist in
      if i + 1 < len then
        List.iter
          (fun u ->
            let cong =
              List.fold_left
                (fun a v -> if Model.conflicts model ~w u v then a + 1 else a)
                0
                (!cur).(i + 1).Schedule.senders
            in
            let util = float_of_int (cong + 1) /. float_of_int (1 + pen.(u)) in
            if util > !best_util +. 1e-9 then begin
              best_util := util;
              best_us := [ u ]
            end
            else if util > !best_util -. 1e-9 then best_us := u :: !best_us)
          (!cur).(i).Schedule.senders;
      Istate.apply ist ~senders:(!cur).(i).Schedule.senders
    done;
    List.iter (fun u -> pen.(u) <- pen.(u) + 1) !best_us;
    incr bumps;
    Metrics.incr m_bumps
  in
  let k = ref 1 in
  let since_accept = ref 0 and since_best = ref 0 in
  let deadline = Option.map (fun us -> Obs.now_us () +. us) max_us in
  let timed_out () =
    match deadline with None -> false | Some d -> Obs.now_us () > d
  in
  while !evals < budget && not (timed_out ()) do
    incr evals;
    Metrics.incr m_tried;
    (match try_move ~k:!k with
    | `Best ->
        since_accept := 0;
        since_best := 0;
        k := 1
    | `Accepted ->
        since_accept := 0;
        incr since_best
    | `Rejected ->
        incr since_accept;
        incr since_best);
    if !since_accept >= bump_every then begin
      bump_penalties ();
      since_accept := 0
    end;
    if !since_best >= escalate_every then begin
      since_best := 0;
      if !k < kmax then begin
        incr k;
        incr escal;
        Metrics.incr m_escalations
      end
      else begin
        (* a full escalation cycle came up dry: restart from the
           incumbent over a clean penalty landscape *)
        k := 1;
        Array.fill pen 0 n 0;
        incr resets;
        Metrics.incr m_resets;
        cur := Array.of_list (Schedule.steps !best);
        resync !cur
      end
    end
  done;
  let improved = !best_elapsed < Schedule.elapsed schedule in
  if improved then begin
    Metrics.incr m_improved;
    Metrics.add m_slots_saved (Schedule.elapsed schedule - !best_elapsed)
  end;
  {
    schedule = !best;
    improved;
    evals = !evals;
    accepted = !accepted;
    penalty_bumps = !bumps;
    penalty_resets = !resets;
    escalations = !escal;
  }

let improve ?(seed = 0) ?max_us ~budget model schedule =
  if Schedule.n_nodes schedule <> Model.n_nodes model then
    invalid_arg "Improve.improve: schedule/model node count mismatch";
  if budget <= 0 || List.length (Schedule.steps schedule) <= 1 then no_op schedule
  else begin
    Metrics.incr m_runs;
    Trace.with_span ~cat:"search" "improve" (fun () ->
        run ~seed ~max_us ~budget model schedule)
  end
