(** Run-level telemetry: turn a {!Config.t}'s [trace_file] /
    [metrics_file] requests into enabled observability plus artifact
    dumps, with no call-site bookkeeping. *)

(** [with_config cfg f] runs [f ()]. When [cfg] requests artifacts, the
    corresponding {!Mlbs_obs} facilities are enabled (and reset) around
    the call and the files are written when [f] returns — or raises, so
    a failing run still dumps what it recorded. With both fields [None]
    this is exactly [f ()]. *)
val with_config : Config.t -> (unit -> 'a) -> 'a
