(** Experiment configuration for regenerating the paper's evaluation
    (§V.A): node counts spanning densities 0.02–0.12 over a 50×50 sq-ft
    area with radius 10 ft, sources of eccentricity 5–8, several seeded
    deployments per point. *)

type t = {
  node_counts : int list;  (** one figure column per count *)
  seeds : int list;  (** deployment seeds averaged per point *)
  width : float;
  height : float;
  radius : float;
  min_ecc : int;  (** source eccentricity window, paper: 5 *)
  max_ecc : int;  (** paper: 8 *)
  budget : Mlbs_core.Mcounter.budget;  (** M-search budget for OPT/G-OPT *)
  opt_max_sets : int;  (** color-set enumeration cap for OPT *)
  validate : bool;  (** radio-replay every schedule *)
  jobs : int;
      (** worker domains for the experiment pool; instances fan out over
          [jobs] domains with byte-identical output at any setting
          (default: [Mlbs_util.Pool.default_jobs ()]) *)
  loss_rates : float list;
      (** x-axis of the reliability sweep (per-link Bernoulli loss) *)
  crash_fraction : float;
      (** fraction of non-source nodes crashed during the reliability
          sweep; 0 disables crash injection *)
  fault_seed : int;  (** master seed of every fault plan the sweep builds *)
  trace_file : string option;
      (** when set, enable span tracing and write a Chrome-trace JSON
          (plus a [.jsonl] sibling) here when the run ends — see
          {!Telemetry.with_config} *)
  metrics_file : string option;
      (** when set, enable the metrics registry and write its merged
          snapshot here when the run ends *)
  queue_capacity : int;
      (** scheduling service: admission-queue bound — a request arriving
          while this many solves are already queued is shed with an
          explicit reject-with-retry-after frame, never buffered without
          bound (see [Mlbs_server.Daemon]) *)
  cache_capacity : int;
      (** scheduling service: LRU entry count of the content-addressed
          schedule cache *)
  model : Mlbs_phy.Interference.t;
      (** interference model every solve and replay of the run binds
          (default {!Mlbs_phy.Interference.Udg}, the paper's protocol
          model) *)
}

(** The paper's full sweep: n ∈ {50,100,150,200,250,300}, 5 seeds. *)
val default : t

(** A reduced sweep (3 node counts, 2 seeds, tighter budgets) for smoke
    tests and [--quick] bench runs. *)
val quick : t

(** The minimal sweep (one node count, one seed, smallest budgets) —
    sized for CI: the determinism gate and the bench smoke run finish
    in seconds. *)
val smoke : t

(** [densities t] is [node_counts] expressed as nodes per sq ft. *)
val densities : t -> float list
