module Rng = Mlbs_prng.Rng
module Deployment = Mlbs_wsn.Deployment
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Mcounter = Mlbs_core.Mcounter
module Validate = Mlbs_sim.Validate
module Fault = Mlbs_sim.Fault
module Energy = Mlbs_sim.Energy
module Flooding = Mlbs_core.Flooding
module Metrics = Mlbs_obs.Metrics
module Otrace = Mlbs_obs.Trace

(* The fault sweep mirrors its returned measurements into the registry
   (test_fault cross-checks the two); energy overhead is recorded in
   per-mille so it survives the integer cells. *)
let m_instances = Metrics.counter "experiment/instances"
let m_fault_retx = Metrics.counter "experiment/fault_retransmissions"
let m_fault_energy_pm = Metrics.counter "experiment/fault_energy_pm"

type instance = { net : Mlbs_wsn.Network.t; source : int; d : int }

let make_instance (cfg : Config.t) ~n ~seed =
  Metrics.incr m_instances;
  let rng = Rng.create (seed * 7919) in
  let spec =
    {
      Deployment.n_nodes = n;
      width = cfg.Config.width;
      height = cfg.Config.height;
      radius = cfg.Config.radius;
      shape = Deployment.Uniform;
    }
  in
  let net = Deployment.generate rng spec in
  let source =
    Deployment.select_source rng net ~min_ecc:cfg.Config.min_ecc
      ~max_ecc:cfg.Config.max_ecc
  in
  let d = Mlbs_graph.Bfs.eccentricity (Mlbs_wsn.Network.graph net) ~source in
  { net; source; d }

(* Declared before [measurement] so the shared [policy] label keeps
   resolving to [measurement] in unannotated client code. *)
type fault_measurement = {
  policy : string;
  delivery : float;
  latency : float;
  stretch : float;
  retransmissions : int;
  energy_overhead : float;
}

type measurement = {
  policy : string;
  elapsed : int;
  transmissions : int;
  valid : bool;
}

let policies (cfg : Config.t) =
  [
    Scheduler.Baseline;
    Scheduler.Opt { budget = cfg.Config.budget; max_sets = cfg.Config.opt_max_sets };
    Scheduler.Gopt cfg.Config.budget;
    Scheduler.Emodel;
  ]

let measure (cfg : Config.t) model inst policy =
  let schedule = Scheduler.run model policy ~source:inst.source ~start:1 in
  let valid =
    if cfg.Config.validate then (Validate.check model schedule).Validate.ok else true
  in
  {
    policy = Scheduler.name ~system:(Model.system model) policy;
    elapsed = Schedule.elapsed schedule;
    transmissions = Schedule.n_transmissions schedule;
    valid;
  }

(* The G-OPT space (greedy classes) is a subset of OPT's (any color set,
   Eq. 5/6), so any G-OPT schedule is also a feasible OPT candidate.
   When the bounded OPT search finds a worse schedule than G-OPT did,
   report the better of the two as OPT — the paper's off-line OPT would
   never be beaten by G-OPT. *)
let tighten_opt ms =
  match
    ( List.find_opt (fun m -> m.policy = "OPT") ms,
      List.find_opt (fun m -> m.policy = "G-OPT") ms )
  with
  | Some o, Some g when g.elapsed < o.elapsed ->
      List.map (fun m -> if m.policy = "OPT" then { g with policy = "OPT" } else m) ms
  | _ -> ms

let run_sync cfg inst =
  Otrace.with_span ~cat:"exp" "run-sync" @@ fun () ->
  let model = Model.create ~phy:cfg.Config.model inst.net Model.Sync in
  tighten_opt (List.map (measure cfg model inst) (policies cfg))

let run_async cfg ~rate ~inst_seed inst =
  Otrace.with_span ~arg:rate ~cat:"exp" "run-async" @@ fun () ->
  let sched =
    Wake_schedule.create ~rate ~n_nodes:(Mlbs_wsn.Network.n_nodes inst.net)
      ~seed:(inst_seed * 104729) ()
  in
  let model = Model.create ~phy:cfg.Config.model inst.net (Model.Async sched) in
  tighten_opt (List.map (measure cfg model inst) (policies cfg))

let fault_plan (cfg : Config.t) ~inst_seed ?(jitter = 0) ~loss inst =
  let n = Mlbs_wsn.Network.n_nodes inst.net in
  let crashes =
    if cfg.Config.crash_fraction = 0. then []
    else
      Fault.sample_crashes ~n_nodes:n ~fraction:cfg.Config.crash_fraction
        ~window:(1, 8 * inst.d) ~avoid:[ inst.source ]
        ~seed:(cfg.Config.fault_seed + inst_seed)
        ()
  in
  Fault.make
    {
      Fault.loss = (if loss = 0. then Fault.No_loss else Fault.Bernoulli loss);
      crashes;
      wake_jitter = jitter;
      seed = cfg.Config.fault_seed + (inst_seed * 31);
    }

(* Count of nodes still alive once every crash window has been applied
   (the sweep's crashes never recover, so this is the end-state). *)
let alive_at_end faults ~n =
  let c = ref 0 in
  for u = 0 to n - 1 do
    if Fault.alive faults ~slot:max_int u then incr c
  done;
  !c

let ratio num den = if den <= 0 then 0. else float_of_int num /. float_of_int den

(* Latency stretch vs the same policy's fault-free run; a policy that
   delivered nothing past the source reports 0 latency and stretch. *)
let stretch_of ~clean ~faulty =
  if faulty <= 0 then 0. else if clean <= 0 then 1. else float_of_int faulty /. float_of_int clean

let flooding_p = 0.3

let run_faulty (cfg : Config.t) ?rate ~inst_seed ?(jitter = 0) ~loss inst =
  Otrace.with_span ~arg:inst_seed ~cat:"exp" "run-faulty" @@ fun () ->
  let n = Mlbs_wsn.Network.n_nodes inst.net in
  let system =
    match rate with
    | None -> Model.Sync
    | Some rate ->
        Model.Async (Wake_schedule.create ~rate ~n_nodes:n ~seed:(inst_seed * 104729) ())
  in
  let model = Model.create ~phy:cfg.Config.model inst.net system in
  let faults = fault_plan cfg ~inst_seed ~jitter ~loss inst in
  let alive = alive_at_end faults ~n in
  let informed_alive sched =
    let informed = Schedule.informed_after sched ~slot:(Schedule.finish sched) in
    let c = ref 0 in
    for u = 0 to n - 1 do
      if Fault.alive faults ~slot:max_int u && Mlbs_util.Bitset.mem informed u then incr c
    done;
    !c
  in
  let energy_ratio ~allow_resend ~clean ~faulty =
    let e0 = (Energy.charge ~allow_resend model clean).Energy.total in
    let e = (Energy.charge ~allow_resend ~faults model faulty).Energy.total in
    if e0 <= 0. then 1. else e /. e0
  in
  (* Adaptive protocols re-run under the plan; their latency stretches
     while delivery holds up. *)
  let flooding =
    let variant = Flooding.Persistent flooding_p in
    let clean = Flooding.run model variant ~source:inst.source ~start:1 in
    let faulty =
      Flooding.run
        ~delivers:(fun ~slot ~tx ~rx -> Fault.delivers ~slot ~tx ~rx faults)
        ~alive:(fun ~slot u -> Fault.alive faults ~slot u)
        model variant ~source:inst.source ~start:1
    in
    {
      policy = Printf.sprintf "flooding (p=%.1f)" flooding_p;
      delivery = ratio (informed_alive faulty.Flooding.schedule) alive;
      latency = float_of_int faulty.Flooding.latency;
      stretch = stretch_of ~clean:clean.Flooding.latency ~faulty:faulty.Flooding.latency;
      retransmissions = faulty.Flooding.retransmissions;
      energy_overhead =
        energy_ratio ~allow_resend:true ~clean:clean.Flooding.schedule
          ~faulty:faulty.Flooding.schedule;
    }
  in
  let protocol =
    let clean = Mlbs_proto.Broadcast_protocol.run model ~source:inst.source ~start:1 in
    let faulty =
      Mlbs_proto.Broadcast_protocol.run ~faults model ~source:inst.source ~start:1
    in
    {
      policy = "protocol";
      delivery = ratio faulty.Mlbs_proto.Broadcast_protocol.delivered alive;
      latency = float_of_int faulty.Mlbs_proto.Broadcast_protocol.latency;
      stretch =
        stretch_of ~clean:clean.Mlbs_proto.Broadcast_protocol.latency
          ~faulty:faulty.Mlbs_proto.Broadcast_protocol.latency;
      retransmissions = faulty.Mlbs_proto.Broadcast_protocol.retransmissions;
      energy_overhead =
        energy_ratio ~allow_resend:true ~clean:clean.Mlbs_proto.Broadcast_protocol.schedule
          ~faulty:faulty.Mlbs_proto.Broadcast_protocol.schedule;
    }
  in
  (* Static schedules are computed for the ideal radio and then replayed
     as-is under the plan: latency cannot stretch, delivery pays. *)
  let static label policy =
    let schedule = Scheduler.run model policy ~source:inst.source ~start:1 in
    let fr = Validate.check_under_faults model ~faults schedule in
    {
      policy = label;
      delivery = ratio fr.Validate.delivered alive;
      latency = float_of_int fr.Validate.latency;
      stretch = 1.;
      retransmissions = 0;
      energy_overhead = energy_ratio ~allow_resend:false ~clean:schedule ~faulty:schedule;
    }
  in
  let ms =
    [
      flooding;
      protocol;
      static "G-OPT (static)" (Scheduler.Gopt cfg.Config.budget);
      static "E-model (static)" Scheduler.Emodel;
    ]
  in
  List.iter
    (fun (m : fault_measurement) ->
      Metrics.add m_fault_retx m.retransmissions;
      Metrics.add m_fault_energy_pm (int_of_float (m.energy_overhead *. 1000.)))
    ms;
  ms

let mean_by_policy runs =
  match runs with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (m : measurement) ->
          let values =
            List.map
              (fun run ->
                match List.find_opt (fun r -> r.policy = m.policy) run with
                | Some r -> float_of_int r.elapsed
                | None -> invalid_arg "Experiment.mean_by_policy: ragged runs")
              runs
          in
          (m.policy, Mlbs_util.Stats.mean values))
        first
