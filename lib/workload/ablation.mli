(** Ablations of the design choices DESIGN.md calls out: what happens to
    end-to-end latency when one ingredient of the paper's pipeline is
    replaced.

    - {b class selection}: Eq. (10)'s farthest-from-edge [E] rule vs the
      hop-distance-to-source metric prior work uses, vs always firing
      the largest (first greedy) class;
    - {b greedy color order}: most-receivers-first (Eq. 2) vs arbitrary
      node-id order;
    - {b wake-schedule family}: uniform-per-frame vs Bernoulli vs
      fixed-phase duty cycling;
    - {b search depth}: the lookahead budget of the bounded M-search. *)

(** How the relay class is chosen at each advance (all selectors operate
    on the same Algorithm-1 classes). *)
type selector =
  | By_emodel  (** Eq. (10): largest applicable E value *)
  | By_hop_to_source
      (** the prior metric: the class holding the node farthest from the
          source *)
  | First_class  (** always the class with the most receivers *)

(** [plan_with_selector model sel ~source ~start] runs the greedy-color
    pipeline with the given class selector. [By_emodel] is exactly
    [Emodel.plan]. *)
val plan_with_selector :
  Mlbs_core.Model.t -> selector -> source:int -> start:int -> Mlbs_core.Schedule.t

(** [plan_with_id_order model ~source ~start] replaces Algorithm 1's
    most-receivers-first ordering with ascending node id (keeping the
    conflict constraint), then always fires the first class — isolating
    the value of the receiver-count sort. *)
val plan_with_id_order :
  Mlbs_core.Model.t -> source:int -> start:int -> Mlbs_core.Schedule.t

(** [selector_table cfg ~n] compares the selectors (plus the id-order
    coloring) on synchronous deployments of [n] nodes. *)
val selector_table : Config.t -> n:int -> Mlbs_util.Tab.t

(** [wake_family_table cfg ~n ~rate] compares duty-cycle wake-schedule
    families under G-OPT and the E-model. *)
val wake_family_table : Config.t -> n:int -> rate:int -> Mlbs_util.Tab.t

(** [lookahead_table cfg ~n] compares G-OPT latency across fallback
    lookahead depths 0..3 with a deliberately tiny exact budget. *)
val lookahead_table : Config.t -> n:int -> Mlbs_util.Tab.t

(** [relay_set_table cfg ~n] separates the two costs bundled in the
    layered baseline: the layer synchronisation (vs pipelined G-OPT) and
    the relay set (all frontier nodes vs a CDS backbone, after Gandhi et
    al. [4]). Reports latency and transmissions. *)
val relay_set_table : Config.t -> n:int -> Mlbs_util.Tab.t

(** [localized_table cfg ~n ~rate] compares the localized (future-work)
    protocol against the centralized E-model, reporting latency,
    collisions and retransmissions. [rate = None] is the synchronous
    system. *)
val localized_table : Config.t -> n:int -> rate:int option -> Mlbs_util.Tab.t

(** [shape_table cfg ~n] runs the main synchronous policies over the
    four deployment shapes (uniform / clustered / corridor / jittered
    grid) — the robustness-to-deployment study. *)
val shape_table : Config.t -> n:int -> Mlbs_util.Tab.t

(** [protocol_table cfg ~n] compares broadcast *protocols* end to end:
    blind flooding (once and persistent), the localized scheme, and the
    centralized schedules — latency, collisions, retransmissions, and
    whether the network was covered at all (blind flooding's storm
    loses nodes). *)
val protocol_table : Config.t -> n:int -> Mlbs_util.Tab.t

(** [resilience_table cfg ~n ~kill_fraction] injects crash failures into
    each policy's precomputed schedule (killing the given fraction of
    non-source nodes, seeded) and reports the mean fraction of surviving
    nodes still reached — static schedules degrade; the persistent
    protocols route around. *)
val resilience_table : Config.t -> n:int -> kill_fraction:float -> Mlbs_util.Tab.t

(** [fault_table cfg ~n ~loss] runs the full fault plan (Bernoulli
    [loss] per link, plus [cfg.crash_fraction] crashes under
    [cfg.fault_seed]) through {!Experiment.run_faulty} and tabulates
    delivery ratio, latency, stretch, retransmissions and energy
    overhead per policy — the graceful-degradation companion to
    {!resilience_table}'s crash-only view. *)
val fault_table : Config.t -> n:int -> loss:float -> Mlbs_util.Tab.t
