module Obs = Mlbs_obs.Obs
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace
module Export = Mlbs_obs.Export

let with_config (cfg : Config.t) f =
  match (cfg.Config.trace_file, cfg.Config.metrics_file) with
  | None, None -> f ()
  | trace_file, metrics_file ->
      (* Start from a clean registry so the artifacts describe this run
         only, then dump whatever was requested — also on exceptions,
         so a crashed sweep still leaves its telemetry behind. *)
      Obs.enable ~metrics:(metrics_file <> None) ~tracing:(trace_file <> None) ();
      if metrics_file <> None then Metrics.reset ();
      if trace_file <> None then Trace.reset ();
      Fun.protect
        ~finally:(fun () ->
          Obs.disable ();
          Export.dump ?trace_file ?metrics_file ())
        f
