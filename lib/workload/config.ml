module Mcounter = Mlbs_core.Mcounter

type t = {
  node_counts : int list;
  seeds : int list;
  width : float;
  height : float;
  radius : float;
  min_ecc : int;
  max_ecc : int;
  budget : Mcounter.budget;
  opt_max_sets : int;
  validate : bool;
  jobs : int;
  loss_rates : float list;
  crash_fraction : float;
  fault_seed : int;
  trace_file : string option;
  metrics_file : string option;
  queue_capacity : int;
  cache_capacity : int;
  model : Mlbs_phy.Interference.t;
}

let default =
  {
    node_counts = [ 50; 100; 150; 200; 250; 300 ];
    seeds = [ 1; 2; 3; 4; 5 ];
    width = 50.;
    height = 50.;
    radius = 10.;
    min_ecc = 5;
    max_ecc = 8;
    budget = { Mcounter.max_states = 2_000; lookahead = 2; beam = 4; mode = Classic };
    opt_max_sets = 32;
    validate = true;
    jobs = Mlbs_util.Pool.default_jobs ();
    loss_rates = [ 0.; 0.05; 0.1; 0.2; 0.3 ];
    crash_fraction = 0.;
    fault_seed = 0xFA17;
    trace_file = None;
    metrics_file = None;
    queue_capacity = 64;
    cache_capacity = 512;
    model = Mlbs_phy.Interference.Udg;
  }

let quick =
  {
    default with
    node_counts = [ 50; 150; 300 ];
    seeds = [ 1; 2 ];
    budget = { Mcounter.max_states = 500; lookahead = 1; beam = 3; mode = Classic };
    opt_max_sets = 16;
    loss_rates = [ 0.; 0.1; 0.2 ];
  }

let smoke =
  {
    quick with
    node_counts = [ 50 ];
    seeds = [ 1 ];
    budget = { Mcounter.max_states = 200; lookahead = 1; beam = 2; mode = Classic };
    opt_max_sets = 8;
    loss_rates = [ 0.; 0.2 ];
  }

let densities t =
  List.map (fun n -> float_of_int n /. (t.width *. t.height)) t.node_counts
