module Bitset = Mlbs_util.Bitset
module Tab = Mlbs_util.Tab
module Stats = Mlbs_util.Stats
module Bfs = Mlbs_graph.Bfs
module Coloring = Mlbs_graph.Coloring
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel
module Gopt = Mlbs_core.Gopt
module Mcounter = Mlbs_core.Mcounter
module Schedule = Mlbs_core.Schedule

type selector = By_emodel | By_hop_to_source | First_class

(* Generic pipelined loop: greedy classes at every active slot, class
   chosen by [select]. *)
let pipeline_plan model ~classes_of ~select ~source ~start =
  let rec loop w slot steps =
    if Model.complete model ~w then List.rev steps
    else
      match Model.next_active_slot model ~w ~after:(slot - 1) with
      | None -> failwith "Ablation: empty frontier before completion"
      | Some t -> (
          match classes_of ~w ~slot:t with
          | [] -> failwith "Ablation: active slot without candidates"
          | classes ->
              let senders = List.nth classes (select ~w ~classes) in
              let w' = Model.apply model ~w ~senders in
              let informed = Bitset.elements (Bitset.diff w' w) in
              loop w' (t + 1) ({ Schedule.slot = t; senders; informed } :: steps))
  in
  let steps = loop (Model.initial_w model ~source) start [] in
  Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start steps

let plan_with_selector model sel ~source ~start =
  match sel with
  | By_emodel -> Emodel.plan model ~source ~start
  | First_class ->
      pipeline_plan model
        ~classes_of:(fun ~w ~slot -> Model.greedy_classes model ~w ~slot)
        ~select:(fun ~w:_ ~classes:_ -> 0)
        ~source ~start
  | By_hop_to_source ->
      let dist = (Bfs.run (Model.graph model) ~source).Bfs.dist in
      let score cls = List.fold_left (fun acc u -> max acc dist.(u)) (-1) cls in
      pipeline_plan model
        ~classes_of:(fun ~w ~slot -> Model.greedy_classes model ~w ~slot)
        ~select:(fun ~w:_ ~classes ->
          let best = ref 0 and best_score = ref (score (List.hd classes)) in
          List.iteri
            (fun i cls ->
              if i > 0 then begin
                let s = score cls in
                if s > !best_score then begin
                  best := i;
                  best_score := s
                end
              end)
            classes;
          !best)
        ~source ~start

(* Algorithm 1 with ascending-id visiting order instead of Eq. (2)'s
   most-receivers-first sort. *)
let id_order_classes model ~w ~slot =
  let cands = Model.candidates model ~w ~slot in
  Coloring.greedy ~order:compare
    ~conflicts:(fun u v -> Model.conflicts model ~w u v)
    cands

let plan_with_id_order model ~source ~start =
  pipeline_plan model
    ~classes_of:(id_order_classes model)
    ~select:(fun ~w:_ ~classes:_ -> 0)
    ~source ~start

(* --------------------------- tables -------------------------------- *)

(* Per-seed measurements are independent; every table fans them out
   through the experiment pool. Results come back in seed order, so the
   means (and the rendered tables) are identical at any [jobs]. *)
let seed_map cfg f = Mlbs_util.Pool.map_list ~jobs:cfg.Config.jobs f cfg.Config.seeds

let mean_latency cfg ~n ~plan =
  Stats.mean
    (seed_map cfg (fun seed ->
         let inst = Experiment.make_instance cfg ~n ~seed in
         float_of_int (Schedule.elapsed (plan ~seed inst))))

let selector_table cfg ~n =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Ablation: class selection, sync, n=%d (mean rounds over %d seeds)" n
           (List.length cfg.Config.seeds))
      [ "strategy"; "latency" ]
  in
  let sync_plan f ~seed:_ (inst : Experiment.instance) =
    let model = Model.create inst.Experiment.net Model.Sync in
    f model ~source:inst.Experiment.source ~start:1
  in
  List.iter
    (fun (label, f) -> Tab.add_float_row tab ~label [ mean_latency cfg ~n ~plan:(sync_plan f) ])
    [
      ("E-model (Eq. 10: to edge)", fun m -> plan_with_selector m By_emodel);
      ("hop distance to source", fun m -> plan_with_selector m By_hop_to_source);
      ("always largest class", fun m -> plan_with_selector m First_class);
      ("id-order coloring", plan_with_id_order);
      ("G-OPT (M search)", fun m -> Gopt.plan ~budget:cfg.Config.budget m);
    ];
  tab

let wake_family_table cfg ~n ~rate =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf "Ablation: wake-schedule family, r=%d, n=%d (mean slots)" rate n)
      [ "family"; "G-OPT"; "E-model" ]
  in
  List.iter
    (fun (label, family) ->
      let plan_with policy ~seed (inst : Experiment.instance) =
        let sched = Wake_schedule.create ~family ~rate ~n_nodes:n ~seed:(seed * 31) () in
        let model = Model.create inst.Experiment.net (Model.Async sched) in
        policy model ~source:inst.Experiment.source ~start:1
      in
      let g =
        mean_latency cfg ~n ~plan:(plan_with (fun m -> Gopt.plan ~budget:cfg.Config.budget m))
      in
      let e = mean_latency cfg ~n ~plan:(plan_with (fun m -> Emodel.plan ?tuples:None m)) in
      Tab.add_float_row tab ~label [ g; e ])
    [
      ("uniform per frame", Wake_schedule.Uniform_per_frame);
      ("bernoulli", Wake_schedule.Bernoulli);
      ("fixed phase", Wake_schedule.Fixed_phase);
    ];
  tab

let relay_set_table cfg ~n =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf "Ablation: relay set and layering, sync, n=%d (means over %d seeds)"
           n (List.length cfg.Config.seeds))
      [ "scheme"; "latency"; "transmissions" ]
  in
  let stats plan_of =
    let runs =
      seed_map cfg (fun seed ->
          let inst = Experiment.make_instance cfg ~n ~seed in
          let model = Model.create inst.Experiment.net Model.Sync in
          plan_of model ~source:inst.Experiment.source ~start:1)
    in
    ( Stats.mean (List.map (fun p -> float_of_int (Schedule.elapsed p)) runs),
      Stats.mean (List.map (fun p -> float_of_int (Schedule.n_transmissions p)) runs) )
  in
  List.iter
    (fun (label, plan_of) ->
      let l, tx = stats plan_of in
      Tab.add_float_row tab ~label [ l; tx ])
    [
      ("layered, all relays (26-approx)", Mlbs_core.Baseline26.plan);
      ("layered, CDS backbone [4]", Mlbs_core.Baseline_cds.plan);
      ("pipelined (G-OPT)", fun m -> Gopt.plan ~budget:cfg.Config.budget m);
    ];
  tab

let localized_table cfg ~n ~rate =
  let system_of ~seed =
    match rate with
    | None -> Model.Sync
    | Some r ->
        Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed:(seed * 17) ())
  in
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf "Ablation: localized protocol vs centralized E-model, %s, n=%d"
           (match rate with None -> "sync" | Some r -> Printf.sprintf "r=%d" r)
           n)
      [ "protocol"; "latency"; "collisions"; "retransmissions" ]
  in
  let runs =
    seed_map cfg (fun seed ->
        let inst = Experiment.make_instance cfg ~n ~seed in
        let model = Model.create inst.Experiment.net (system_of ~seed) in
        let local = Mlbs_core.Localized.run model ~source:inst.Experiment.source ~start:1 in
        let central =
          Emodel.plan model ~source:inst.Experiment.source ~start:1 |> Schedule.elapsed
        in
        (local, central))
  in
  let meanf f = Stats.mean (List.map f runs) in
  Tab.add_float_row tab ~label:"localized (2-hop views)"
    [
      meanf (fun (l, _) -> float_of_int l.Mlbs_core.Localized.latency);
      meanf (fun (l, _) -> float_of_int l.Mlbs_core.Localized.collisions);
      meanf (fun (l, _) -> float_of_int l.Mlbs_core.Localized.retransmissions);
    ];
  Tab.add_float_row tab ~label:"centralized E-model"
    [ meanf (fun (_, c) -> float_of_int c); 0.; 0. ];
  tab

let shape_table cfg ~n =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf "Robustness: deployment shapes, sync, n=%d (mean rounds)" n)
      [ "shape"; "26-approx"; "G-OPT"; "E-model" ]
  in
  let module Deployment = Mlbs_wsn.Deployment in
  List.iter
    (fun (label, shape) ->
      let run policy seed =
        let rng = Mlbs_prng.Rng.create (seed * 7919) in
        let spec = { (Deployment.paper_spec ~n_nodes:n) with Deployment.shape } in
        let net = Deployment.generate rng spec in
        let source =
          Deployment.select_source rng net ~min_ecc:cfg.Config.min_ecc
            ~max_ecc:cfg.Config.max_ecc
        in
        let model = Model.create net Model.Sync in
        float_of_int
          (Schedule.elapsed (Mlbs_core.Scheduler.run model policy ~source ~start:1))
      in
      let mean policy = Stats.mean (seed_map cfg (run policy)) in
      Tab.add_float_row tab ~label
        [
          mean Mlbs_core.Scheduler.Baseline;
          mean (Mlbs_core.Scheduler.Gopt cfg.Config.budget);
          mean Mlbs_core.Scheduler.Emodel;
        ])
    [
      ("uniform (paper)", Deployment.Uniform);
      ("clustered (4 hotspots)", Deployment.Clustered { clusters = 4; spread = 6. });
      ("corridor (12 ft strip)", Deployment.Corridor { breadth = 12. });
      ("jittered grid", Deployment.Grid_jitter { jitter = 2.5 });
    ];
  tab

let protocol_table cfg ~n =
  let tab =
    Tab.create
      ~title:(Printf.sprintf "Protocol comparison, sync, n=%d (means over seeds)" n)
      [ "protocol"; "latency"; "collisions"; "retransmissions"; "coverage" ]
  in
  let insts = seed_map cfg (fun seed -> Experiment.make_instance cfg ~n ~seed) in
  let pmap f xs = Mlbs_util.Pool.map_list ~jobs:cfg.Config.jobs f xs in
  let row label runs =
    let m f = Stats.mean (List.map f runs) in
    Tab.add_float_row tab ~label
      [
        m (fun (l, _, _, _) -> l);
        m (fun (_, c, _, _) -> c);
        m (fun (_, _, r, _) -> r);
        m (fun (_, _, _, cov) -> cov);
      ]
  in
  let flood variant (inst : Experiment.instance) =
    let model = Model.create inst.Experiment.net Model.Sync in
    let r = Mlbs_core.Flooding.run model variant ~source:inst.Experiment.source ~start:1 in
    ( float_of_int r.Mlbs_core.Flooding.latency,
      float_of_int r.Mlbs_core.Flooding.collisions,
      float_of_int r.Mlbs_core.Flooding.retransmissions,
      float_of_int r.Mlbs_core.Flooding.informed /. float_of_int n )
  in
  let localized (inst : Experiment.instance) =
    let model = Model.create inst.Experiment.net Model.Sync in
    let r = Mlbs_core.Localized.run model ~source:inst.Experiment.source ~start:1 in
    ( float_of_int r.Mlbs_core.Localized.latency,
      float_of_int r.Mlbs_core.Localized.collisions,
      float_of_int r.Mlbs_core.Localized.retransmissions,
      1. )
  in
  let distributed (inst : Experiment.instance) =
    let model = Model.create inst.Experiment.net Model.Sync in
    let r =
      Mlbs_proto.Broadcast_protocol.run model ~source:inst.Experiment.source ~start:1
    in
    ( float_of_int r.Mlbs_proto.Broadcast_protocol.latency,
      float_of_int r.Mlbs_proto.Broadcast_protocol.collisions,
      float_of_int r.Mlbs_proto.Broadcast_protocol.retransmissions,
      1. )
  in
  let central policy (inst : Experiment.instance) =
    let model = Model.create inst.Experiment.net Model.Sync in
    let plan = Mlbs_core.Scheduler.run model policy ~source:inst.Experiment.source ~start:1 in
    (float_of_int (Schedule.elapsed plan), 0., 0., 1.)
  in
  row "blind flooding (once)" (pmap (flood Mlbs_core.Flooding.Once) insts);
  row "flooding (p = 0.3)" (pmap (flood (Mlbs_core.Flooding.Persistent 0.3)) insts);
  row "localized (2-hop oracle)" (pmap localized insts);
  row "distributed (beacons only)" (pmap distributed insts);
  row "centralized E-model" (pmap (central Mlbs_core.Scheduler.Emodel) insts);
  row "centralized G-OPT"
    (pmap (central (Mlbs_core.Scheduler.Gopt cfg.Config.budget)) insts);
  tab

let resilience_table cfg ~n ~kill_fraction =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Failure injection: %.0f%% of nodes crash after scheduling, sync, n=%d \
            (mean surviving coverage)"
           (100. *. kill_fraction) n)
      [ "policy"; "alive nodes reached" ]
  in
  let coverage policy =
    Stats.mean
      (seed_map cfg (fun seed ->
           let inst = Experiment.make_instance cfg ~n ~seed in
           let model = Model.create inst.Experiment.net Model.Sync in
           let plan =
             Mlbs_core.Scheduler.run model policy ~source:inst.Experiment.source ~start:1
           in
           (* Kill a seeded sample of non-source nodes. *)
           let rng = Mlbs_prng.Rng.create (seed * 31337) in
           let victims =
             Mlbs_prng.Rng.sample rng
               ~k:(int_of_float (kill_fraction *. float_of_int n))
               (List.filter (fun v -> v <> inst.Experiment.source) (List.init n Fun.id))
           in
           let failed = Mlbs_util.Bitset.of_list n victims in
           let informed, alive =
             Mlbs_sim.Validate.surviving_coverage model ~failed plan
           in
           float_of_int informed /. float_of_int alive))
  in
  List.iter
    (fun (label, policy) -> Tab.add_float_row tab ~label [ coverage policy ])
    [
      ("26-approx (all relays)", Mlbs_core.Scheduler.Baseline);
      ("G-OPT", Mlbs_core.Scheduler.Gopt cfg.Config.budget);
      ("E-model", Mlbs_core.Scheduler.Emodel);
    ];
  tab

let fault_table cfg ~n ~loss =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Fault injection: %.0f%% per-link loss%s, sync, n=%d (means over %d seeds)"
           (100. *. loss)
           (if cfg.Config.crash_fraction > 0. then
              Printf.sprintf " + %.0f%% crashes" (100. *. cfg.Config.crash_fraction)
            else "")
           n
           (List.length cfg.Config.seeds))
      [ "policy"; "delivery"; "latency"; "stretch"; "retransmissions"; "energy" ]
  in
  let runs =
    seed_map cfg (fun seed ->
        let inst = Experiment.make_instance cfg ~n ~seed in
        Experiment.run_faulty cfg ~inst_seed:seed ~loss inst)
  in
  (match runs with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun (m : Experiment.fault_measurement) ->
          let policy = m.Experiment.policy in
          let of_policy run =
            match
              List.find_opt
                (fun (r : Experiment.fault_measurement) -> r.Experiment.policy = policy)
                run
            with
            | Some r -> r
            | None -> invalid_arg "Ablation.fault_table: ragged runs"
          in
          let mean f = Stats.mean (List.map (fun run -> f (of_policy run)) runs) in
          Tab.add_float_row tab ~label:policy
            [
              mean (fun r -> r.Experiment.delivery);
              mean (fun r -> r.Experiment.latency);
              mean (fun r -> r.Experiment.stretch);
              mean (fun r -> float_of_int r.Experiment.retransmissions);
              mean (fun r -> r.Experiment.energy_overhead);
            ])
        first);
  tab

let lookahead_table cfg ~n =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Ablation: fallback lookahead depth (exact search disabled), sync, n=%d" n)
      [ "lookahead"; "latency" ]
  in
  List.iter
    (fun depth ->
      let budget = { Mcounter.max_states = 0; lookahead = depth; beam = 4; mode = Classic } in
      let plan ~seed:_ (inst : Experiment.instance) =
        let model = Model.create inst.Experiment.net Model.Sync in
        Gopt.plan ~budget model ~source:inst.Experiment.source ~start:1
      in
      Tab.add_float_row tab ~label:(string_of_int depth) [ mean_latency cfg ~n ~plan ])
    [ 0; 1; 2; 3 ];
  tab
