(** Per-figure drivers: each function regenerates one figure of the
    paper's §V as a set of series over the density sweep (plus the
    walkthrough tables). See DESIGN.md §3 for the experiment index. *)

(** One plotted line. *)
type series = { label : string; values : float list }

type figure = {
  id : string;  (** "fig3" .. "fig7", "table2" .. "table4" *)
  title : string;
  x_label : string;
  x_values : float list;  (** densities (nodes / sq ft) *)
  series : series list;
}

(** Figure 3: experimental [P(A)] in the round-based synchronous system
    — 26-approx / OPT / G-OPT / E-model, plus the OPT-analysis bound
    [d + 2] of Theorem 1. *)
val fig3 : Config.t -> figure

(** Figure 4: experimental [P(A)] in the duty-cycle system, [r = 10]. *)
val fig4 : Config.t -> figure

(** Figure 5: analytical upper bounds, [r = 10] — Theorem 1's
    [2r(d + 2)] against the [17·k·d] bound of [12]. *)
val fig5 : Config.t -> figure

(** Figure 6: experimental [P(A)] in the light duty-cycle system,
    [r = 50]. *)
val fig6 : Config.t -> figure

(** Figure 7: analytical upper bounds, [r = 50]. *)
val fig7 : Config.t -> figure

(** The reliability sweep: delivery ratio ([rel-delivery]) and latency
    stretch ([rel-stretch]) versus per-link loss rate
    ([Config.loss_rates], with [Config.crash_fraction] crashes and
    [Config.fault_seed] fixing the plan), at the sweep's first node
    count, for persistent flooding, the distributed protocol, and the
    static G-OPT / E-model schedules — the graceful-degradation picture
    the ideal-radio figures cannot show. One flat [Pool.map] batch:
    byte-identical output at any [jobs]. *)
val fig_reliability : Config.t -> figure list

(** [to_tab ?x_header f] renders a figure as an aligned ASCII table
    (x values as rows, series as columns). [x_header] (default
    ["density"]) names the x column. *)
val to_tab : ?x_header:string -> figure -> Mlbs_util.Tab.t

(** [improvements f ~baseline] is, per non-baseline series, the mean
    fractional latency reduction against [baseline] across the sweep —
    the "70% improvement" numbers of §V.C. *)
val improvements : figure -> baseline:string -> (string * float) list

(** Tables II–IV: the fixture-graph schedule traces rendered as the
    paper prints them. *)
val table2 : unit -> string

val table3 : unit -> string
val table4 : unit -> string
