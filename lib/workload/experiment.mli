(** Running scheduling policies over seeded deployments and collecting
    the per-instance measurements behind each figure. *)

(** One deployed instance: the network, the chosen source, and [d], the
    source's eccentricity (the hop distance to the farthest node, used
    by the analytical bounds). *)
type instance = { net : Mlbs_wsn.Network.t; source : int; d : int }

(** [make_instance cfg ~n ~seed] deterministically generates the
    deployment and source for one (node count, seed) point. *)
val make_instance : Config.t -> n:int -> seed:int -> instance

(** Graceful-degradation measurement of one policy under a fault plan.
    (Declared before {!measurement} so the shared [policy] label keeps
    resolving to [measurement] in unannotated client code.) *)
type fault_measurement = {
  policy : string;
  delivery : float;  (** alive nodes informed / alive nodes *)
  latency : float;  (** observed elapsed slots *)
  stretch : float;
      (** latency vs the same policy's fault-free run (1 for static
          schedules, which cannot adapt; 0 when nothing was delivered) *)
  retransmissions : int;
  energy_overhead : float;
      (** total energy vs the same policy's fault-free run *)
}

(** Result of one policy on one instance. [exactish] is false when the
    M-search fell back to lookahead (baselines and E-model are always
    search-free, reported as true). *)
type measurement = {
  policy : string;
  elapsed : int;  (** end-to-end latency in rounds/slots *)
  transmissions : int;
  valid : bool;  (** radio replay verdict (true when validation is off) *)
}

(** [run_sync cfg inst] measures the paper's four synchronous policies
    (26-approx, OPT, G-OPT, E-model) on the instance. Because the
    greedy classes are a subset of OPT's choice space, the reported OPT
    latency is the better of the OPT and G-OPT schedules — the budget-
    bounded OPT search must never appear worse than its own
    restriction. *)
val run_sync : Config.t -> instance -> measurement list

(** [run_async cfg ~rate inst] measures the duty-cycle policies
    (17-approx, OPT, G-OPT, E-model) with a wake schedule derived
    deterministically from the instance (seeded per node count). *)
val run_async : Config.t -> rate:int -> inst_seed:int -> instance -> measurement list

(** [mean_by_policy runs] averages elapsed latency per policy label over
    a list of per-instance measurement lists, preserving policy
    order. *)
val mean_by_policy : measurement list list -> (string * float) list

(** [fault_plan cfg ~inst_seed ?jitter ~loss inst] compiles the sweep's
    deterministic fault plan for one instance: Bernoulli [loss] on every
    link, plus — when [cfg.crash_fraction > 0] — unrecovered crashes of
    non-source nodes sampled inside the window [1, 8d]. Seeded from
    [cfg.fault_seed] and the instance seed only. *)
val fault_plan :
  Config.t -> inst_seed:int -> ?jitter:int -> loss:float -> instance -> Mlbs_sim.Fault.t

(** [run_faulty cfg ?rate ~inst_seed ?jitter ~loss inst] measures the
    reliability sweep's four policies under the instance's fault plan:
    persistent flooding and the distributed protocol re-run under the
    plan (retransmissions stretch their latency, delivery holds up);
    the static G-OPT and E-model schedules are replayed as-is through
    {!Mlbs_sim.Validate.check_under_faults} (latency fixed, delivery
    pays). [rate] switches the model to duty-cycled; [jitter] (duty
    cycle only) desynchronises wake clocks. *)
val run_faulty :
  Config.t ->
  ?rate:int ->
  inst_seed:int ->
  ?jitter:int ->
  loss:float ->
  instance ->
  fault_measurement list
