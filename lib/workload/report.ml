module Tab = Mlbs_util.Tab

let baseline_label (f : Figures.figure) =
  List.find_opt
    (fun (s : Figures.series) ->
      let n = String.length s.Figures.label in
      n >= 6 && String.sub s.Figures.label (n - 6) 6 = "approx")
    f.Figures.series
  |> Option.map (fun (s : Figures.series) -> s.Figures.label)

(* Historical density figures keep the short "density" column header
   byte-for-byte; other sweeps (the reliability figures) label the
   x column after their own axis. *)
let x_header (f : Figures.figure) =
  if f.Figures.x_label = "density (nodes/sqft)" then "density" else f.Figures.x_label

let figure_chart f =
  let series =
    List.map
      (fun (s : Figures.series) ->
        { Mlbs_util.Chart.label = s.Figures.label;
          points = List.combine f.Figures.x_values s.Figures.values })
      f.Figures.series
  in
  match series with
  | [] -> ""
  | _ ->
      let y =
        if String.length f.Figures.id >= 4 && String.sub f.Figures.id 0 4 = "rel-" then
          "ratio"
        else "P(A)"
      in
      Mlbs_util.Chart.render
        ~y_label:(Printf.sprintf "  [y: %s; x: %s]" y f.Figures.x_label)
        series

let render_figure f =
  let table = Tab.render (Figures.to_tab ~x_header:(x_header f) f) ^ figure_chart f in
  match baseline_label f with
  | None -> table
  | Some baseline ->
      let imps = Figures.improvements f ~baseline in
      let lines =
        List.map
          (fun (label, frac) ->
            Printf.sprintf "  %-22s %5.1f%% mean latency reduction vs %s" label
              (100. *. frac) baseline)
          imps
      in
      table ^ String.concat "\n" lines ^ "\n"

let figure_csv f = Tab.to_csv (Figures.to_tab ~x_header:(x_header f) f)

let write_csv ~dir f =
  let path = Filename.concat dir (f.Figures.id ^ ".csv") in
  let oc = open_out path in
  (try output_string oc (figure_csv f)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  path
