module Tab = Mlbs_util.Tab
module Stats = Mlbs_util.Stats
module Model = Mlbs_core.Model
module Bounds = Mlbs_core.Bounds
module Choices = Mlbs_core.Choices
module Trace = Mlbs_core.Trace

type series = { label : string; values : float list }

type figure = {
  id : string;
  title : string;
  x_label : string;
  x_values : float list;
  series : series list;
}

(* Collect one figure point (a node count): run every seed, average per
   policy, and also report the mean analytical bound via [bound_of_d].

   Every (node count, seed) instance is independent, so the whole sweep
   fans out through the domain pool in one flat batch — [Pool.map]
   returns results in input order, so regrouping by node count (and
   therefore the rendered figure) is byte-identical at any [jobs]. *)
let sweep cfg ~run ~bounds =
  let instances =
    Array.of_list
      (List.concat_map
         (fun n -> List.map (fun seed -> (n, seed)) cfg.Config.seeds)
         cfg.Config.node_counts)
  in
  let outcomes =
    Mlbs_util.Pool.map ~jobs:cfg.Config.jobs
      (fun (n, seed) ->
        let inst = Experiment.make_instance cfg ~n ~seed in
        (run seed inst, inst.Experiment.d))
      instances
  in
  let n_seeds = List.length cfg.Config.seeds in
  let per_count i _n =
    let runs_and_ds =
      Array.to_list (Array.sub outcomes (i * n_seeds) n_seeds)
    in
    let runs = List.map fst runs_and_ds in
    let ds = List.map snd runs_and_ds in
    let policy_means = Experiment.mean_by_policy runs in
    let bound_means =
      List.map
        (fun (label, f) ->
          (label, Stats.mean (List.map (fun d -> float_of_int (f ~d)) ds)))
        bounds
    in
    policy_means @ bound_means
  in
  let per_count_results = List.mapi per_count cfg.Config.node_counts in
  match per_count_results with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (label, _) ->
          {
            label;
            values =
              List.map
                (fun point ->
                  match List.assoc_opt label point with
                  | Some v -> v
                  | None -> invalid_arg "Figures.sweep: ragged points")
                per_count_results;
          })
        first

let fig3 cfg =
  let series =
    sweep cfg
      ~run:(fun _seed inst -> Experiment.run_sync cfg inst)
      ~bounds:[ ("OPT-analysis (d+2)", fun ~d -> Bounds.opt_sync ~d) ]
  in
  {
    id = "fig3";
    title = "Figure 3: P(A) in the round-based synchronous system (rounds)";
    x_label = "density (nodes/sqft)";
    x_values = Config.densities cfg;
    series;
  }

let fig_async cfg ~id ~rate =
  let series =
    sweep cfg
      ~run:(fun seed inst -> Experiment.run_async cfg ~rate ~inst_seed:seed inst)
      ~bounds:[]
  in
  {
    id;
    title =
      Printf.sprintf "Figure %s: P(A) in the duty cycle system with r = %d (slots)"
        (String.sub id 3 (String.length id - 3))
        rate;
    x_label = "density (nodes/sqft)";
    x_values = Config.densities cfg;
    series;
  }

let fig4 cfg = fig_async cfg ~id:"fig4" ~rate:10

let fig6 cfg = fig_async cfg ~id:"fig6" ~rate:50

(* Analytical figures need only the deployments' d values. *)
let fig_bounds cfg ~id ~rate =
  let series =
    sweep cfg
      ~run:(fun _seed _inst -> [])
      ~bounds:
        [
          ("OPT-analysis (2r(d+2))", fun ~d -> Bounds.opt_async ~d ~rate);
          ("Bound of [12] (17kd)", fun ~d -> Bounds.jiao17 ~d ~rate);
        ]
  in
  {
    id;
    title =
      Printf.sprintf
        "Figure %s: analytical upper bounds in the duty cycle system with r = %d (slots)"
        (String.sub id 3 (String.length id - 3))
        rate;
    x_label = "density (nodes/sqft)";
    x_values = Config.densities cfg;
    series;
  }

let fig5 cfg = fig_bounds cfg ~id:"fig5" ~rate:10

let fig7 cfg = fig_bounds cfg ~id:"fig7" ~rate:50

(* ------------------- Reliability sweep (faults) -------------------- *)

(* Delivery ratio and latency stretch vs per-link loss rate, at the
   sweep's smallest node count. Every (loss rate, seed) cell is
   independent, so the whole sweep is one flat [Pool.map] batch —
   byte-identical output at any [jobs], which is exactly what the CI
   determinism gate diffs. *)
let fig_reliability cfg =
  let n = match cfg.Config.node_counts with [] -> 50 | n :: _ -> n in
  let points =
    Array.of_list
      (List.concat_map
         (fun loss -> List.map (fun seed -> (loss, seed)) cfg.Config.seeds)
         cfg.Config.loss_rates)
  in
  let outcomes =
    Mlbs_util.Pool.map ~jobs:cfg.Config.jobs
      (fun (loss, seed) ->
        let inst = Experiment.make_instance cfg ~n ~seed in
        Experiment.run_faulty cfg ~inst_seed:seed ~loss inst)
      points
  in
  let n_seeds = List.length cfg.Config.seeds in
  let per_rate i = Array.to_list (Array.sub outcomes (i * n_seeds) n_seeds) in
  let policies =
    if Array.length outcomes = 0 then []
    else
      List.map (fun (m : Experiment.fault_measurement) -> m.Experiment.policy) outcomes.(0)
  in
  let mk ~id ~title extract =
    let series =
      List.map
        (fun policy ->
          {
            label = policy;
            values =
              List.mapi
                (fun i _loss ->
                  Stats.mean
                    (List.map
                       (fun run ->
                         match
                           List.find_opt
                             (fun (m : Experiment.fault_measurement) ->
                               m.Experiment.policy = policy)
                             run
                         with
                         | Some m -> extract m
                         | None -> invalid_arg "Figures.fig_reliability: ragged runs")
                       (per_rate i)))
                cfg.Config.loss_rates;
          })
        policies
    in
    { id; title; x_label = "loss rate"; x_values = cfg.Config.loss_rates; series }
  in
  [
    mk ~id:"rel-delivery"
      ~title:
        (Printf.sprintf
           "Reliability: delivery ratio vs per-link loss, n=%d (mean over %d seeds)" n
           n_seeds)
      (fun m -> m.Experiment.delivery);
    mk ~id:"rel-stretch"
      ~title:
        (Printf.sprintf
           "Reliability: latency stretch vs per-link loss, n=%d (mean over %d seeds)" n
           n_seeds)
      (fun m -> m.Experiment.stretch);
  ]

let to_tab ?(x_header = "density") f =
  let headers = x_header :: List.map (fun s -> s.label) f.series in
  let tab = Tab.create ~title:f.title headers in
  List.iteri
    (fun i x ->
      let cells =
        Printf.sprintf "%.2f" x
        :: List.map (fun s -> Printf.sprintf "%.2f" (List.nth s.values i)) f.series
      in
      Tab.add_row tab cells)
    f.x_values;
  tab

let improvements f ~baseline =
  match List.find_opt (fun s -> s.label = baseline) f.series with
  | None -> invalid_arg ("Figures.improvements: no baseline series " ^ baseline)
  | Some base ->
      List.filter_map
        (fun s ->
          if s.label = baseline then None
          else
            Some
              ( s.label,
                Stats.mean
                  (List.map2
                     (fun b v -> Stats.improvement ~baseline:b ~ours:v)
                     base.values s.values) ))
        f.series

(* ----------------------- Tables II-IV ----------------------------- *)

let table_of fixture system =
  let { Fixtures.net; source; start; name } = fixture in
  let model = Model.create net system in
  let trace = Trace.run model Choices.Greedy ~source ~start in
  Trace.render ~node_name:name trace

let table2 () =
  "Table II: schedule for Figure 2(a), synchronous, t_s = 1\n"
  ^ table_of Fixtures.fig2 Model.Sync

let table3 () =
  "Table III: schedule for Figure 1(c), synchronous, t_s = 1\n"
  ^ table_of Fixtures.fig1 Model.Sync

let table4 () =
  let fixture, sched = Fixtures.fig2_dc in
  "Table IV: schedule for Figure 2(e), duty cycle r = 10, t_s = 2\n"
  ^ table_of fixture (Model.Async sched)
