(** Per-node wake-up schedules T(u) for the asynchronous duty-cycle
    system (paper §III).

    Each node periodically turns its *sending* channel on at slots drawn
    from "a pseudo-random sequence in the uniform distribution with a
    preset seed"; the receiving channel is always on. The cycle rate [r]
    = |T| / |T(u)| means a node is active on average once every [r]
    slots, "but there is not necessarily a fixed interval r between any
    two consecutive wake-ups". Neighbours can forecast each other's next
    active slot from the seed — which is exactly what [next_wake]
    computes. *)

type t

(** How active slots are drawn. *)
type family =
  | Uniform_per_frame
      (** one active slot, uniform within each consecutive frame of [r]
          slots — the default; matches the paper's description. *)
  | Bernoulli  (** each slot independently active with probability 1/r. *)
  | Fixed_phase
      (** active exactly at slots ≡ phase (mod r), phase uniform per
          node — the degenerate schedule used in Theorem 1's worst case
          discussion; ablation only. *)

(** [create ?family ~rate ~n_nodes ~seed ()] builds schedules for nodes
    [0 .. n_nodes-1]. [rate] is the cycle rate r ≥ 1. Deterministic in
    [seed]. Raises [Invalid_argument] for [rate < 1] or
    [n_nodes < 0]. *)
val create : ?family:family -> rate:int -> n_nodes:int -> seed:int -> unit -> t

(** [of_explicit ~rate slots] wraps explicit per-node sorted wake-slot
    lists (fixtures, e.g. Table IV). Slots must be strictly increasing
    and ≥ 1. The last listed slot is treated as the start of a
    [Fixed_phase]-like tail repeating every [rate] slots, so forecasts
    never run out. *)
val of_explicit : rate:int -> int list array -> t

(** [shifted t ~offsets] is [t] with node [u]'s wake sequence translated
    by [offsets.(u)] slots (positive = later): the result is awake at
    [slot] iff [t] is awake at [slot - offsets.(u)]. Composes with
    earlier shifts. This is the wake-slot jitter primitive of the fault
    model — a node whose clock drifted keeps its cycle rate but no
    longer wakes when its neighbours' forecasts (computed from the
    unshifted seed) expect it to. An all-zero [offsets] returns [t]
    itself. Raises [Invalid_argument] on a length mismatch. *)
val shifted : t -> offsets:int array -> t

(** [rate t] is the cycle rate r. *)
val rate : t -> int

(** [n_nodes t] is the number of nodes covered. *)
val n_nodes : t -> int

(** [awake t u ~slot] is [true] iff [u]'s sending channel is on at
    [slot] (slots count from 1, matching the paper's rounds). *)
val awake : t -> int -> slot:int -> bool

(** [next_wake t u ~after] is the smallest active slot of [u] strictly
    greater than [after] — the neighbour forecast primitive. *)
val next_wake : t -> int -> after:int -> int

(** [wakes_in t u ~from_ ~until] lists [u]'s active slots in
    [[from_, until]], ascending. *)
val wakes_in : t -> int -> from_:int -> until:int -> int list
