module Splitmix64 = Mlbs_prng.Splitmix64

type family = Uniform_per_frame | Bernoulli | Fixed_phase

type source =
  | Generated of { family : family; seed : int }
  | Explicit of int list array

type t = { rate : int; n : int; source : source; shift : int array option }

(* A per-node translation of the wake sequence: node [u] is awake at
   [slot] iff the base schedule is awake at [slot - shift.(u)]. *)
let offset t u = match t.shift with None -> 0 | Some s -> s.(u)

(* Stateless hash of (seed, node, k) -> 64-bit value, so any slot can be
   queried without materialising the schedule: this is the "predictable
   pseudo-random sequence with a preset seed" that lets neighbours
   forecast wake-ups. *)
let hash64 seed node k =
  let open Int64 in
  let g = Splitmix64.create (logxor (of_int seed) (mul (of_int node) 0x9E3779B97F4A7C15L)) in
  let _ = Splitmix64.next g in
  let g2 = Splitmix64.create (logxor (Splitmix64.next g) (mul (of_int k) 0xBF58476D1CE4E5B9L)) in
  Splitmix64.next g2

let hash_mod seed node k m =
  let v = Int64.logand (hash64 seed node k) (Int64.of_int max_int) in
  Int64.to_int (Int64.rem v (Int64.of_int m))

let create ?(family = Uniform_per_frame) ~rate ~n_nodes ~seed () =
  if rate < 1 then invalid_arg "Wake_schedule.create: rate < 1";
  if n_nodes < 0 then invalid_arg "Wake_schedule.create: n_nodes < 0";
  { rate; n = n_nodes; source = Generated { family; seed }; shift = None }

let of_explicit ~rate slots =
  if rate < 1 then invalid_arg "Wake_schedule.of_explicit: rate < 1";
  Array.iteri
    (fun u l ->
      if l = [] then invalid_arg (Printf.sprintf "Wake_schedule.of_explicit: node %d has no wake slots" u);
      let rec check prev = function
        | [] -> ()
        | s :: rest ->
            if s <= prev then
              invalid_arg (Printf.sprintf "Wake_schedule.of_explicit: node %d slots not increasing" u);
            check s rest
      in
      check 0 l)
    slots;
  { rate; n = Array.length slots; source = Explicit slots; shift = None }

let shifted t ~offsets =
  if Array.length offsets <> t.n then
    invalid_arg "Wake_schedule.shifted: offsets length mismatch";
  if Array.for_all (( = ) 0) offsets then t
  else
    let combined =
      match t.shift with
      | None -> Array.copy offsets
      | Some prev -> Array.mapi (fun u o -> o + prev.(u)) offsets
    in
    { t with shift = Some combined }

let rate t = t.rate
let n_nodes t = t.n

(* Frame k (k >= 0) covers slots [k*rate + 1, (k+1)*rate]. *)
let frame_of t slot = (slot - 1) / t.rate

let active_slot_in_frame t seed node k = (k * t.rate) + 1 + hash_mod seed node k t.rate

let check_node t u op =
  if u < 0 || u >= t.n then invalid_arg (Printf.sprintf "Wake_schedule.%s: node %d" op u)

let explicit_awake t slots slot =
  let rec mem = function
    | [] -> false
    | s :: rest -> s = slot || (s < slot && mem rest)
  in
  let last = List.fold_left max 0 slots in
  if slot > last then (slot - last) mod t.rate = 0 else mem slots

let awake t u ~slot =
  check_node t u "awake";
  let slot = slot - offset t u in
  if slot < 1 then false
  else
    match t.source with
    | Explicit slots -> explicit_awake t slots.(u) slot
    | Generated { family; seed } -> (
        match family with
        | Uniform_per_frame -> active_slot_in_frame t seed u (frame_of t slot) = slot
        | Bernoulli -> hash_mod seed u slot (t.rate * 1024) < 1024
        | Fixed_phase -> (slot - 1) mod t.rate = hash_mod seed u 0 t.rate)

let next_wake t u ~after =
  check_node t u "next_wake";
  let off = offset t u in
  let after = max (after - off) 0 in
  off
  +
  match t.source with
  | Explicit slots ->
      let rec scan = function
        | s :: rest -> if s > after then s else scan rest
        | [] ->
            let last = List.fold_left max 0 slots.(u) in
            let k = ((after - last) / t.rate) + 1 in
            let cand = last + (k * t.rate) in
            if cand > after then cand else cand + t.rate
      in
      scan slots.(u)
  | Generated { family; seed } -> (
      match family with
      | Uniform_per_frame ->
          let k = frame_of t (after + 1) in
          let s = active_slot_in_frame t seed u k in
          if s > after then s else active_slot_in_frame t seed u (k + 1)
      | Fixed_phase ->
          let phase = hash_mod seed u 0 t.rate in
          let base = ((after - phase) / t.rate * t.rate) + phase + 1 in
          let rec bump s = if s > after then s else bump (s + t.rate) in
          bump (base - t.rate)
      | Bernoulli ->
          let limit = after + (1024 * t.rate) in
          let rec scan s =
            if s > limit then
              failwith "Wake_schedule.next_wake: no Bernoulli wake-up within bound"
            else if awake t u ~slot:s then s
            else scan (s + 1)
          in
          scan (after + 1))

let wakes_in t u ~from_ ~until =
  let rec collect s acc =
    if s > until then List.rev acc
    else
      let w = next_wake t u ~after:(s - 1) in
      if w > until then List.rev acc else collect (w + 1) (w :: acc)
  in
  collect (max 1 from_) []
