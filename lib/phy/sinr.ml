(** SINR physical interference model ("Towards Tight Bounds for Local
    Broadcasting", arXiv:1207.1836).

    A transmission from [u] is decodable at [x] iff

      P_u(x) / (noise + Σ_{m ≠ u} P_m(x))  ≥  β

    where the sum runs over every other node transmitting in the slot —
    including nodes outside communication range, whose signal is pure
    interference. Received power follows the log-distance path-loss
    law, normalised so a link at exactly the deployment's transmission
    radius receives [power]:

      P_u(x) = power · (radius / d(u, x))^α

    Deliverability is still gated on graph edges (communication range);
    only the denominator sees the whole network. With β ≥ 1 (enforced
    below) at most one sender can be decodable at any receiver — the
    capture effect — which both the class builder and the replay lean
    on. [power ≥ β·noise] is also enforced so a lone sender always
    covers its whole neighbourhood: P_u(x) ≥ power at d ≤ radius, hence
    singleton classes are always feasible and greedy construction
    terminates with full coverage. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Point = Mlbs_geom.Point
module Metrics = Mlbs_obs.Metrics

type params = { alpha : float; beta : float; noise : float; power : float }

let default = { alpha = 3.0; beta = 2.0; noise = 0.2; power = 1.0 }

type t = {
  p : params;
  graph : Graph.t;
  pos : Point.t array;
  r2 : float;  (** radius², so path loss works off squared distances *)
  half_alpha : float;
}

let make net p =
  if p.beta < 1.0 then invalid_arg "Sinr.make: beta must be >= 1 (capture effect)";
  if p.alpha <= 0.0 then invalid_arg "Sinr.make: alpha must be positive";
  if p.noise < 0.0 then invalid_arg "Sinr.make: noise must be non-negative";
  if p.power <= 0.0 then invalid_arg "Sinr.make: power must be positive";
  if p.power < p.beta *. p.noise then
    invalid_arg "Sinr.make: power must be >= beta * noise (a lone sender must reach its whole neighbourhood)";
  let r = Network.radius net in
  let graph = Network.graph net in
  let pos = Network.positions net in
  (* Normalise at the longest graph edge when it exceeds the deployment
     radius. Synthetic geometries (explicit adjacencies, edited graphs)
     place nodes on a unit grid, so an edge can span several radii;
     normalising at the radius alone would leave it undecodable even
     for a lone sender and greedy construction could never cover its
     endpoint. Generated deployments keep every edge within the radius,
     so there this is exactly [radius²]. *)
  let r2 =
    List.fold_left
      (fun acc (u, v) -> Float.max acc (Point.dist2 pos.(u) pos.(v)))
      (r *. r) (Graph.edges graph)
  in
  { p; graph; pos; r2; half_alpha = 0.5 *. p.alpha }

let params t = t.p

let c_power_evals = Metrics.counter "phy/power_evals"

(* Received power of [u] at [x]; positions are distinct (Network checks
   at construction), so d > 0 whenever u ≠ x. *)
let power_at t u x =
  Metrics.incr c_power_evals;
  t.p.power *. ((t.r2 /. Point.dist2 t.pos.(u) t.pos.(x)) ** t.half_alpha)

(* ------------------------- class builder --------------------------- *)

(* Incremental additive-feasibility zone: a class is feasible iff every
   node in (∪_m N(m)) ∩ W̄ can decode *some* adjacent member under the
   interference of the whole class — exactly the condition the replay
   and validator re-check, so a zone-built class is accepted by
   construction.

   State per claimed receiver x: [s.(x)] is the total class power at x,
   [capturer.(x)] the unique decodable member (unique because β ≥ 1)
   and [p_cap.(x)] its power. Admission of [u] only has to re-examine
   the current capturer and [u] itself: every other member already
   failed a smaller denominator, and interference only grows. *)
type zone = {
  z : t;
  mutable ubar : Bitset.t;  (** the slot's uninformed set (borrowed) *)
  s : float array;
  covered : Bitset.t;
  capturer : int array;
  p_cap : float array;
}

let zone z =
  let n = Graph.n_nodes z.graph in
  {
    z;
    ubar = Bitset.create n;
    s = Array.make n 0.0;
    covered = Bitset.create n;
    capturer = Array.make n (-1);
    p_cap = Array.make n 0.0;
  }

let zone_start zn ~uninformed =
  zn.ubar <- uninformed;
  Array.fill zn.s 0 (Array.length zn.s) 0.0;
  Bitset.clear zn.covered

(* Would admitting [u] keep every claimed receiver decodable? *)
let zone_admits zn u =
  let z = zn.z in
  let beta = z.p.beta and noise = z.p.noise in
  let ok = ref true in
  Bitset.iter
    (fun x ->
      if !ok then begin
        let pu = power_at z u x in
        let pc = zn.p_cap.(x) in
        if pc >= beta *. (noise +. zn.s.(x) +. pu -. pc) then ()
        else if Graph.mem_edge z.graph u x && pu >= beta *. (noise +. zn.s.(x)) then ()
        else ok := false
      end)
    zn.covered;
  if !ok then
    Graph.iter_neighbors z.graph u ~f:(fun x ->
        if !ok && Bitset.mem zn.ubar x && not (Bitset.mem zn.covered x) then
          if power_at z u x < beta *. (noise +. zn.s.(x)) then ok := false);
  !ok

(* Commit [u] (must have been admitted): interference accumulates at
   every still-uninformed node — also the ones no member reaches yet,
   whose later admission checks must see it. *)
let zone_accept zn u =
  let z = zn.z in
  let beta = z.p.beta and noise = z.p.noise in
  Bitset.iter
    (fun x ->
      let pu = power_at z u x in
      (if Bitset.mem zn.covered x then begin
         let pc = zn.p_cap.(x) in
         if pc < beta *. (noise +. zn.s.(x) +. pu -. pc) then begin
           zn.capturer.(x) <- u;
           zn.p_cap.(x) <- pu
         end
       end
       else if Graph.mem_edge z.graph u x then begin
         Bitset.add zn.covered x;
         zn.capturer.(x) <- u;
         zn.p_cap.(x) <- pu
       end);
      zn.s.(x) <- zn.s.(x) +. pu)
    zn.ubar

(* The invariant makes coverage and claim coincide: every node of
   (∪_m N(m)) ∩ W̄ is covered, so [covered] is exactly the informed-set
   delta the planner's apply will claim. *)
let zone_coverage zn = zn.covered

(* ---------------------- pairwise conservative ---------------------- *)

(* [conflicts t ~uninformed u v] is the two-element-class infeasibility
   test — the pairwise-conservative predicate the choice enumeration
   prefilters with. Equivalent to zone-building [u] then asking
   admission for [v] (and symmetric by construction). *)
let conflicts t ~uninformed u v =
  u <> v
  &&
  let beta = t.p.beta and noise = t.p.noise in
  let fails_over who other =
    let bad = ref false in
    Graph.iter_neighbors t.graph who ~f:(fun x ->
        if (not !bad) && Bitset.mem uninformed x && x <> other then begin
          let pw = power_at t who x and po = power_at t other x in
          let who_ok = pw >= beta *. (noise +. po) in
          let other_ok =
            Graph.mem_edge t.graph other x && po >= beta *. (noise +. pw)
          in
          if not (who_ok || other_ok) then bad := true
        end);
    !bad
  in
  fails_over u v || fails_over v u

(* --------------------------- reception ----------------------------- *)

(* One receiver's slot outcome: [senders] is every node that actually
   transmitted (all of them interfere); decodability is restricted to
   graph edges. Returns the audible (adjacent) senders and the unique
   capturer, if any decodes. *)
let reception t ~senders ~rx =
  let total = List.fold_left (fun a u -> a +. power_at t u rx) 0.0 senders in
  let beta = t.p.beta and noise = t.p.noise in
  let audible = List.filter (fun u -> Graph.mem_edge t.graph u rx) senders in
  let capturer =
    List.find_opt
      (fun u ->
        let pu = power_at t u rx in
        pu >= beta *. (noise +. total -. pu))
      audible
  in
  (audible, capturer)
