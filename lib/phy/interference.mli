(** Pluggable interference models.

    Everything the scheduler core knows about the radio medium funnels
    through this interface: a pairwise conflict predicate, an
    incremental per-class blocked-set/feasibility builder, a channel
    count, and slot-replay reception. Three backends:

    - {!Udg} — the paper's protocol model (N(u) ∩ N(v) ∩ W̄ ≠ ∅),
      extracted in {!module:Udg} and byte-identical to the historical
      inline code;
    - {!Sinr} — the physical model of arXiv:1207.1836: path-loss
      exponent α, noise floor, decode threshold β ≥ 1, uniform tx
      power (see {!module:Sinr} for the normalisation). Search-side
      classes are built additively feasible, so the scheduled-slot
      validator accepts them by construction, while the pairwise
      {!conflicts} is the conservative prefilter for the G-OPT choice
      enumeration;
    - {!Multichannel} — colours decode to (slot, channel) with
      conflicts only intra-channel (arXiv:2009.09190). Channels are
      derived from the schedule bytes by first-fit grouping
      ({!module:Multichannel}), never stored, so schedules stay
      wire-compatible; [Multichannel 1] reproduces UDG exactly.

    The spec {!t} is pure data (wire-codable, part of the service's
    cache key via {!to_string}); {!bind} attaches it to a deployment's
    geometry to obtain the operational {!instance}. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph

type sinr_params = Sinr.params = {
  alpha : float;  (** path-loss exponent, > 0 *)
  beta : float;  (** decode threshold, ≥ 1 (capture effect) *)
  noise : float;  (** ambient noise floor, ≥ 0 *)
  power : float;  (** uniform tx power, ≥ β·noise *)
}

type t = Udg | Sinr of sinr_params | Multichannel of int

val default_sinr : sinr_params
val equal : t -> t -> bool

(** [channels t] is the number of parallel channels a slot carries
    (1 except under [Multichannel k]). *)
val channels : t -> int

(** [geometry_dependent t]: do conflicts (and hence search memo values)
    depend on node positions rather than the graph alone? True only for
    {!Sinr}. Graph-keyed warm starts — the scheduling service's family
    index, repair snapshot seeding — must be skipped when this holds,
    or a memo computed on one deployment's geometry would steer the
    search on another's. *)
val geometry_dependent : t -> bool

(** [validate t] checks the spec's parameter constraints (the same ones
    {!bind} enforces), for wire decoding and CLI parsing. *)
val validate : t -> (unit, string) result

(** [to_string t] is the stable model id ([udg], [sinr:A,B,N,P],
    [mc:K]) — it round-trips through {!parse} and keys the service
    cache. *)
val to_string : t -> string

val parse : string -> (t, string) result

(** {1 Bound instances} *)

type instance =
  | I_udg of Graph.t
  | I_sinr of Sinr.t
  | I_mc of { graph : Graph.t; k : int }

(** [bind t net] attaches the spec to a deployment. Raises
    [Invalid_argument] when the spec fails {!validate}. *)
val bind : t -> Mlbs_wsn.Network.t -> instance

val spec : instance -> t

(** [conflicts inst ~uninformed u v]: may [u] and [v] not share a slot
    (under multi-channel: a channel)? Symmetric; false for [u = v]. *)
val conflicts : instance -> uninformed:Bitset.t -> int -> int -> bool

(** {1 Greedy class building}

    [classifier] is reusable scratch sized to the instance's network;
    [start_class] opens a class against a slot's uninformed set,
    [admits]/[accept] grow it, [class_coverage] is the informed-set
    delta (valid until the next [start_class]; do not mutate). *)

type classifier

val classifier : instance -> classifier
val start_class : classifier -> uninformed:Bitset.t -> unit
val admits : classifier -> int -> bool
val accept : classifier -> int -> unit
val class_coverage : classifier -> Bitset.t

(** {1 Slot replay} *)

type outcome = Silent | Delivered of int | Collision of int list

type slot_ctx

(** [slot_ctx inst ~uninformed ~scheduled] prepares one slot's replay:
    [uninformed] is the claimed uninformed set entering the slot and
    [scheduled] every sender the schedule names (multi-channel
    receivers tune on the schedule, not on which transmissions
    survived faults). *)
val slot_ctx : instance -> uninformed:Bitset.t -> scheduled:int list -> slot_ctx

(** [slot_channels ctx] is how many channels the slot's first-fit
    grouping uses — the validator's overflow check against k. *)
val slot_channels : slot_ctx -> int

(** [reception ctx ~effective ~rx] is what [rx] hears given the
    transmissions that actually happened. *)
val reception : slot_ctx -> effective:int list -> rx:int -> outcome
