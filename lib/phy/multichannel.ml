(** Multi-channel slots ("Schedule Sequence Design for Broadcast in
    Multi-channel Ad Hoc Networks", arXiv:2009.09190): colours decode
    to (slot, channel) pairs, conflicts apply only within a channel,
    and a receiver tunes a single channel per slot.

    Channels are *derived*, not stored: a slot's sender list is split
    into channel groups by first-fit in list order against the slot's
    claimed uninformed set. The scheduler emits sender lists in
    concatenated-class order, and first-fit over such an order
    reproduces the classes exactly (a member of class j conflicts with
    every earlier class — that is why it was pushed to class j — and
    joins its own class's prefix as it did during construction), so
    the planner, the validator and the replay all reconstruct the same
    (slot, channel) assignment from the schedule bytes alone. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Metrics = Mlbs_obs.Metrics

let c_channel_assignments = Metrics.counter "phy/channel_assignments"

(* First-fit grouping of [senders] (in list order): each sender joins
   the lowest-indexed group it has no intra-channel (UDG vs [uninformed])
   conflict with. Unbounded — the validator checks the group count
   against k. *)
let groups g ~uninformed senders =
  let rec place u = function
    | [] -> [ [ u ] ]
    | grp :: rest ->
        if List.exists (fun v -> Udg.conflicts g ~uninformed u v) grp then
          grp :: place u rest
        else (u :: grp) :: rest
  in
  let gs =
    List.fold_left
      (fun gs u ->
        Metrics.incr c_channel_assignments;
        place u gs)
      [] senders
  in
  List.map List.rev gs

(* Rendezvous reception: [rx] tunes the lowest channel on which any
   *scheduled* sender is adjacent (receivers know the schedule, not the
   fault pattern), then hears exactly the effective adjacent senders of
   that one group. Returns the audible list: [] silent, [u] delivery,
   more a collision. *)
let reception g ~groups ~effective ~rx =
  let rec tune = function
    | [] -> None
    | grp :: rest ->
        if List.exists (fun u -> Graph.mem_edge g u rx) grp then Some grp
        else tune rest
  in
  match tune groups with
  | None -> []
  | Some grp -> List.filter (fun u -> effective u && Graph.mem_edge g u rx) grp
