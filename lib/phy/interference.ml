module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Metrics = Mlbs_obs.Metrics

type sinr_params = Sinr.params = {
  alpha : float;
  beta : float;
  noise : float;
  power : float;
}

type t = Udg | Sinr of sinr_params | Multichannel of int

let default_sinr = Sinr.default

let equal a b =
  match (a, b) with
  | Udg, Udg -> true
  | Sinr p, Sinr q -> p = q
  | Multichannel j, Multichannel k -> j = k
  | _ -> false

let channels = function Multichannel k -> k | Udg | Sinr _ -> 1

(* Under SINR, conflict structure — and with it every search memo
   value — is a function of node positions, not just the graph. Warm
   starts indexed graph-wise (the service's family index, repair
   snapshots) are only sound for graph-determined models. *)
let geometry_dependent = function Sinr _ -> true | Udg | Multichannel _ -> false

let validate = function
  | Udg -> Ok ()
  | Multichannel k ->
      if k >= 1 && k <= 255 then Ok ()
      else Error "multichannel: channel count must be in 1..255"
  | Sinr p ->
      if p.beta < 1.0 then Error "sinr: beta must be >= 1 (capture effect)"
      else if p.alpha <= 0.0 then Error "sinr: alpha must be positive"
      else if p.noise < 0.0 then Error "sinr: noise must be non-negative"
      else if p.power <= 0.0 then Error "sinr: power must be positive"
      else if p.power < p.beta *. p.noise then
        Error "sinr: power must be >= beta * noise"
      else Ok ()

(* The model id — also the cache-key component, so it must be a stable
   function of the spec. %.17g round-trips every float exactly while
   printing common values (2, 0.2, ...) compactly via the shortest
   representation check below. *)
let float_id f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string = function
  | Udg -> "udg"
  | Multichannel k -> Printf.sprintf "mc:%d" k
  | Sinr p ->
      Printf.sprintf "sinr:%s,%s,%s,%s" (float_id p.alpha) (float_id p.beta)
        (float_id p.noise) (float_id p.power)

let parse s =
  let checked t = Result.map (fun () -> t) (validate t) in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "udg" -> Ok Udg
      | "sinr" -> checked (Sinr default_sinr)
      | _ -> Error (Printf.sprintf "unknown interference model %S (expected udg|sinr[:A,B,N,P]|mc:K)" s))
  | Some i -> (
      let head = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "mc" -> (
          match int_of_string_opt rest with
          | Some k -> checked (Multichannel k)
          | None -> Error (Printf.sprintf "mc: bad channel count %S" rest))
      | "sinr" -> (
          match List.map float_of_string_opt (String.split_on_char ',' rest) with
          | [ Some alpha; Some beta; Some noise; Some power ] ->
              checked (Sinr { alpha; beta; noise; power })
          | _ ->
              Error
                (Printf.sprintf "sinr: expected four floats alpha,beta,noise,power, got %S" rest))
      | _ -> Error (Printf.sprintf "unknown interference model %S (expected udg|sinr[:A,B,N,P]|mc:K)" s))

(* ------------------------- bound instances ------------------------- *)

type instance =
  | I_udg of Graph.t
  | I_sinr of Sinr.t
  | I_mc of { graph : Graph.t; k : int }

let bind t net =
  match t with
  | Udg -> I_udg (Network.graph net)
  | Sinr p -> I_sinr (Sinr.make net p)
  | Multichannel k ->
      if k < 1 || k > 255 then invalid_arg "Interference.bind: channel count must be in 1..255";
      I_mc { graph = Network.graph net; k }

let spec = function
  | I_udg _ -> Udg
  | I_sinr s -> Sinr (Sinr.params s)
  | I_mc { k; _ } -> Multichannel k

let c_conflict_checks = Metrics.counter "phy/conflict_checks"

(* Pairwise slot-compatibility. Under multi-channel this is the
   *intra-channel* predicate (cross-channel pairs never conflict; the
   channel structure lives in the class chunking and the first-fit
   grouping, not here). *)
let conflicts inst ~uninformed u v =
  Metrics.incr c_conflict_checks;
  match inst with
  | I_udg g | I_mc { graph = g; _ } -> Udg.conflicts g ~uninformed u v
  | I_sinr s -> Sinr.conflicts s ~uninformed u v

(* ------------------------- class builder --------------------------- *)

(* One greedy-class builder per instance: [start_class] opens a class
   against the slot's uninformed set, [admits] asks whether a candidate
   keeps it feasible, [accept] commits one, [class_coverage] is the
   informed-set delta the class produces. The UDG blocked set doubles
   as coverage, exactly as in the original inline loops. *)
type classifier =
  | C_udg of { graph : Graph.t; blocked : Bitset.t; mutable ubar : Bitset.t }
  | C_sinr of Sinr.zone

let classifier = function
  | I_udg g | I_mc { graph = g; _ } ->
      let blocked = Bitset.create (Graph.n_nodes g) in
      C_udg { graph = g; blocked; ubar = blocked }
  | I_sinr s -> C_sinr (Sinr.zone s)

let start_class c ~uninformed =
  match c with
  | C_udg u ->
      Bitset.clear u.blocked;
      u.ubar <- uninformed
  | C_sinr z -> Sinr.zone_start z ~uninformed

let admits c u =
  match c with
  | C_udg c -> Udg.admits c.graph ~blocked:c.blocked u
  | C_sinr z -> Sinr.zone_admits z u

let accept c u =
  match c with
  | C_udg c -> Udg.accept c.graph ~blocked:c.blocked ~uninformed:c.ubar u
  | C_sinr z -> Sinr.zone_accept z u

let class_coverage = function
  | C_udg c -> c.blocked
  | C_sinr z -> Sinr.zone_coverage z

(* --------------------------- reception ----------------------------- *)

type outcome = Silent | Delivered of int | Collision of int list

(* Per-slot replay context: the claimed uninformed set and the full
   scheduled sender list (multi-channel receivers tune on the schedule,
   not on which transmissions survived faults). *)
type slot_ctx =
  | S_udg of Graph.t
  | S_sinr of Sinr.t
  | S_mc of { graph : Graph.t; groups : int list list }

let slot_ctx inst ~uninformed ~scheduled =
  match inst with
  | I_udg g ->
      ignore uninformed;
      ignore scheduled;
      S_udg g
  | I_sinr s -> S_sinr s
  | I_mc { graph; _ } ->
      S_mc { graph; groups = Multichannel.groups graph ~uninformed scheduled }

let slot_channels = function
  | S_udg _ | S_sinr _ -> 1
  | S_mc { groups; _ } -> List.length groups

let outcome_of_audible = function
  | [] -> Silent
  | [ u ] -> Delivered u
  | several -> Collision several

(* [reception ctx ~effective ~rx] is what [rx] hears given the senders
   whose transmissions actually happened. *)
let reception ctx ~effective ~rx =
  match ctx with
  | S_udg g ->
      outcome_of_audible (List.filter (fun u -> Graph.mem_edge g u rx) effective)
  | S_sinr s -> (
      match Sinr.reception s ~senders:effective ~rx with
      | _, Some u -> Delivered u
      | [], None -> Silent
      | audible, None -> Collision audible)
  | S_mc { graph; groups } ->
      outcome_of_audible
        (Multichannel.reception graph ~groups
           ~effective:(fun u -> List.mem u effective)
           ~rx)
