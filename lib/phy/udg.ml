(** The paper's protocol (UDG) interference model, extracted from the
    scheduler core so every backend answers the same two questions
    through one interface: "may [u] and [v] transmit in the same slot?"
    and "which candidates does an accepted sender block?".

    Two informed senders collide exactly when some still-uninformed
    node hears both — the predicate N(u) ∩ N(v) ∩ W̄ ≠ ∅ that the
    greedy colouring, the G-OPT choice enumeration and the validator
    all share. The blocked-set form is the same fact maintained
    incrementally: accepting [u] into a class claims N(u) ∩ W̄, and a
    later candidate joins iff its neighbourhood misses every claimed
    receiver. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph

let conflicts g ~uninformed u v =
  u <> v
  && Bitset.intersects3 (Graph.neighbor_set g u) (Graph.neighbor_set g v) uninformed

(* [blocked] is the union of N(m) ∩ W̄ over accepted class members — it
   doubles as the class's coverage (the informed-set delta a slot of
   these senders produces), which is why the search keeps a single
   bitset for both roles. *)
let admits g ~blocked u = not (Bitset.intersects (Graph.neighbor_set g u) blocked)

let accept g ~blocked ~uninformed u =
  Bitset.union_inter_into ~into:blocked (Graph.neighbor_set g u) uninformed
