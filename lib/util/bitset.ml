(* Flat int-array bit set, 63 bits per word (sign bit left clear). *)

let bits_per_word = 63

type t = { capacity : int; words : int array }

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let cap s = s.capacity

let copy s = { s with words = Array.copy s.words }

let assign ~into src =
  if into.capacity <> src.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.assign: capacity mismatch (%d vs %d)" into.capacity src.capacity);
  Array.blit src.words 0 into.words 0 (Array.length src.words)

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let check s i op =
  if i < 0 || i >= s.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" op i s.capacity)

let add s i =
  check s i "add";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i "remove";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  if i < 0 || i >= s.capacity then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    s.words.(w) land (1 lsl b) <> 0

(* Kernighan popcount per word; the word count is small (≤ 5 for n = 300)
   so a table-driven popcount is not worth the cache pressure. *)
let popcount_word x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s.words

let is_empty s =
  let rec loop i = i >= Array.length s.words || (s.words.(i) = 0 && loop (i + 1)) in
  loop 0

let same_cap a b op =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" op a.capacity b.capacity)

let union_into ~into src =
  same_cap into src "union_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let inter a b =
  same_cap a b "inter";
  let r = copy a in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- r.words.(i) land b.words.(i)
  done;
  r

let diff a b =
  same_cap a b "diff";
  let r = copy a in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- r.words.(i) land lnot b.words.(i)
  done;
  r

(* Mask for the last word so complement never sets bits past [capacity). *)
let last_word_mask capacity =
  let rem = capacity mod bits_per_word in
  if rem = 0 then (1 lsl bits_per_word) - 1 else (1 lsl rem) - 1

let full_word = (1 lsl bits_per_word) - 1

(* Word-wise comparison against the all-ones pattern: every word but the
   last must be the full 63-bit mask, the last must match the capacity
   mask. Short-circuits on the first hole instead of popcounting. *)
let is_full s =
  s.capacity = 0
  ||
  let n = Array.length s.words in
  let rec loop i =
    if i = n - 1 then s.words.(i) = last_word_mask s.capacity
    else s.words.(i) = full_word && loop (i + 1)
  in
  loop 0

let inter_into ~into src =
  same_cap into src "inter_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land src.words.(i)
  done

let union_inter_into ~into a b =
  same_cap into a "union_inter_into";
  same_cap into b "union_inter_into";
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor (a.words.(i) land b.words.(i))
  done

let complement_into ~into src =
  same_cap into src "complement_into";
  let n = Array.length into.words in
  for i = 0 to n - 1 do
    into.words.(i) <- lnot src.words.(i) land full_word
  done;
  if src.capacity > 0 then into.words.(n - 1) <- into.words.(n - 1) land last_word_mask src.capacity
  else into.words.(0) <- 0

let complement s =
  let r = copy s in
  complement_into ~into:r s;
  r

let intersects a b =
  same_cap a b "intersects";
  let rec loop i =
    i < Array.length a.words && (a.words.(i) land b.words.(i) <> 0 || loop (i + 1))
  in
  loop 0

(* Three-way emptiness test, word-wise: [a ∩ b ∩ c ≠ ∅] without
   materialising the pairwise intersection — the paper's conflict
   predicate [N(u) ∩ N(v) ∩ W̄ ≠ ∅] on the protocol hot path. *)
let intersects3 a b c =
  same_cap a b "intersects3";
  same_cap a c "intersects3";
  let rec loop i =
    i < Array.length a.words
    && (a.words.(i) land b.words.(i) land c.words.(i) <> 0 || loop (i + 1))
  in
  loop 0

let subset a b =
  same_cap a b "subset";
  let rec loop i =
    i >= Array.length a.words || (a.words.(i) land lnot b.words.(i) = 0 && loop (i + 1))
  in
  loop 0

let equal a b = a.capacity = b.capacity && a.words = b.words

let compare a b =
  let c = compare a.capacity b.capacity in
  if c <> 0 then c else compare a.words b.words

(* Per-word mixer for the content hash. The hash is the XOR of one
   well-mixed value per (word index, word value) pair, so flipping a
   single bit re-derives the hash in O(1): XOR out the old word's mix,
   XOR in the new one ([hash_flip]). The mixer is a splitmix-style
   finalizer truncated to OCaml's 63-bit ints. *)
let mix_word j x =
  let h = x lxor ((j + 1) * 0x9e3779b97f4a7c1) in
  let h = (h lxor (h lsr 30)) * 0x27d4eb2f165667c5 land max_int in
  let h = (h lxor (h lsr 27)) * 0x165667b19e3779f9 land max_int in
  h lxor (h lsr 31)

let hash s =
  let h = ref s.capacity in
  Array.iteri (fun j w -> h := !h lxor mix_word j w) s.words;
  !h

let hash_flip s i h =
  check s i "hash_flip";
  let j = i / bits_per_word and b = i mod bits_per_word in
  let old = s.words.(j) in
  h lxor mix_word j old lxor mix_word j (old lxor (1 lsl b))

(* Hash of [s ∪ cov] derived from [h = hash s] without materialising
   the union: per word, XOR out the old mix and XOR in the mix of the
   or-ed word. O(words of cov), no allocation — this is what lets the
   transposition table probe a child key (W ∪ cov) before committing
   to the apply. *)
let hash_union s cov h =
  same_cap s cov "hash_union";
  let h = ref h in
  for j = 0 to Array.length s.words - 1 do
    let w = s.words.(j) in
    let u = w lor cov.words.(j) in
    if u <> w then h := !h lxor mix_word j w lxor mix_word j u
  done;
  !h

(* [equal_union a s cov] ⇔ [a = s ∪ cov], word-wise, no allocation.
   Companion to [hash_union]: verifies a probe hit against the stored
   set without building the union. *)
let equal_union a s cov =
  a.capacity = s.capacity
  && a.capacity = cov.capacity
  &&
  let rec loop j =
    j >= Array.length a.words
    || a.words.(j) = s.words.(j) lor cov.words.(j)
       && loop (j + 1)
  in
  loop 0

(* Member iteration strips the lowest set bit each round instead of
   scanning all 63 positions, so sparse sets iterate in O(members).
   The isolated bit is indexed by a perfect hash: 2 is a primitive
   root mod 67, so [2^k mod 67] is injective over k in [0, 61]; bit 62
   (the word's sign bit) masks to 0 under [land max_int] and 0 is not
   a power-of-two residue, so it gets the spare slot. *)
let lsb_index =
  let t = Array.make 67 0 in
  let p = ref 1 in
  for k = 0 to 61 do
    t.(!p) <- k;
    p := !p * 2 mod 67
  done;
  t.(0) <- 62;
  t

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      let lsb = !word land - !word in
      f (base + lsb_index.(lsb land max_int mod 67));
      word := !word land (!word - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list capacity xs =
  let s = create capacity in
  List.iter (add s) xs;
  s

let full capacity =
  let s = create capacity in
  for i = 0 to capacity - 1 do
    add s i
  done;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int) (elements s)
