(** Fixed-size domain pool for embarrassingly parallel sweeps.

    The experiment engine evaluates many independent (seed, node-count,
    rate) instances; this pool fans them out over OCaml 5 domains while
    keeping results in input order, so figure and table output is
    byte-identical regardless of the worker count. Workers pull tasks
    from a mutex/condition-variable work queue; the submitting domain
    blocks until its whole batch has drained.

    Determinism contract: [map] writes result [i] of input [i] — never
    reordered by completion time — and when several tasks raise, the
    exception of the lowest-indexed failing task is re-raised. *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the
    worker count used when no [--jobs] override is given. *)
val default_jobs : unit -> int

(** [create ~jobs] spawns a pool of [max 1 jobs] workers. [jobs = 1]
    spawns no domains at all: every batch runs inline on the caller. *)
val create : jobs:int -> t

(** [size t] is the worker count the pool was created with. *)
val size : t -> int

(** [map_on t f input] applies [f] to every element of [input] on the
    pool and returns the results in input order. Exceptions raised by
    [f] are captured and re-raised (lowest index first) after the batch
    drains, so the pool is never poisoned by a failing task. *)
val map_on : t -> ('a -> 'b) -> 'a array -> 'b array

(** [shutdown t] stops the workers and joins their domains. Idempotent;
    [map_on] after [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f pool] with creation and shutdown managed,
    shutting down even when [f] raises. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [map ~jobs f input] is a one-shot [with_pool]/[map_on]: the indexed
    parallel map of the experiment engine. [jobs <= 1] computes inline
    with no domain spawned. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ~jobs f xs] is [map] over a list, preserving order. *)
val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
