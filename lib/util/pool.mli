(** Fixed-size domain pool for embarrassingly parallel sweeps.

    The experiment engine evaluates many independent (seed, node-count,
    rate) instances; this pool fans them out over OCaml 5 domains while
    keeping results in input order, so figure and table output is
    byte-identical regardless of the worker count. A pool of [jobs]
    spawns at most [jobs - 1] worker domains — capped so the computing
    domains never exceed the hardware's recommended parallelism, since
    an oversubscribed domain only adds stop-the-world GC handshakes.
    Batches are split into at most [jobs] contiguous chunks, the
    submitting domain runs the first chunk itself and helps drain the
    queue before blocking, so the chunk layout (and hence the output) is
    a function of [jobs] alone while the domain count adapts to the
    machine.

    Determinism contract: [map] writes result [i] of input [i] — never
    reordered by completion time — and when several tasks raise, the
    exception of the lowest-indexed failing task is re-raised. *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the
    worker count used when no [--jobs] override is given. *)
val default_jobs : unit -> int

(** [create ~jobs] builds a pool of [max 1 jobs] computing domains:
    up to [jobs - 1] spawned workers (capped at
    [default_jobs () - 1]) plus the submitter. [jobs = 1] spawns no
    domains at all: every batch runs inline on the caller. *)
val create : jobs:int -> t

(** [size t] is the computing-domain count the pool was created with. *)
val size : t -> int

(** [map_on t f input] applies [f] to every element of [input] on the
    pool and returns the results in input order. The batch is split into
    [min (size t) (Array.length input)] contiguous chunks; the caller
    runs the first inline. Exceptions raised by [f] are captured and
    re-raised (lowest index first) after the batch drains, so the pool
    is never poisoned by a failing task. *)
val map_on : t -> ('a -> 'b) -> 'a array -> 'b array

(** [shutdown t] stops the workers and joins their domains. Idempotent;
    [map_on] after [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f pool] with creation and shutdown managed,
    shutting down even when [f] raises. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [map ~jobs f input] is the indexed parallel map of the experiment
    engine, running on a process-wide pool that stays warm across
    batches (re-created only when [jobs] changes, joined at exit) so
    repeated sweeps pay domain spawning once, not per batch.
    [jobs <= 1] computes inline with no domain spawned. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ~jobs f xs] is [map] over a list, preserving order. *)
val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [prewarm ~jobs ?setup ()] brings the shared pool up before a timed
    region: spawns the shared pool's workers if needed and runs [setup]
    exactly once on the submitter and once on every worker domain (via a
    barrier batch), e.g. to pre-size domain-local scratch. No-op beyond
    [setup ()] when [jobs <= 1]. *)
val prewarm : ?setup:(unit -> unit) -> jobs:int -> unit -> unit
