(** Fixed-capacity bit sets over the integers [0, capacity).

    The scheduler search spaces of this library are keyed by the set [W] of
    informed nodes, so bit sets are on the hot path: they must support O(1)
    membership, cheap unions, and fast hashing/equality for memo tables.
    The representation is a flat [int array] with 63 usable bits per word
    (we deliberately avoid the sign bit so that [compare] on words matches
    unsigned order). *)

type t

(** [create capacity] is the empty set able to hold elements in
    [0 .. capacity - 1]. Raises [Invalid_argument] if [capacity < 0]. *)
val create : int -> t

(** [cap s] is the capacity given at creation time. *)
val cap : t -> int

(** [copy s] is a fresh set equal to [s] that shares no storage with it. *)
val copy : t -> t

(** [assign ~into src] overwrites [into] with the contents of [src] in
    place, allocation-free. The two sets must have the same capacity. *)
val assign : into:t -> t -> unit

(** [clear s] empties [s] in place, keeping its capacity. *)
val clear : t -> unit

(** [add s i] sets bit [i]. Raises [Invalid_argument] when out of range. *)
val add : t -> int -> unit

(** [remove s i] clears bit [i]. *)
val remove : t -> int -> unit

(** [mem s i] is [true] iff bit [i] is set. Out-of-range indices are
    [false] rather than an error so that callers can probe freely. *)
val mem : t -> int -> bool

(** [cardinal s] is the number of set bits (population count). *)
val cardinal : t -> int

(** [is_empty s] is [cardinal s = 0], without counting every word. *)
val is_empty : t -> bool

(** [is_full s] is [true] iff every bit in [0 .. cap s - 1] is set.
    Word-wise against the all-ones masks, short-circuiting on the first
    hole — O(words), no popcount. *)
val is_full : t -> bool

(** [union_into ~into src] adds every element of [src] to [into].
    The two sets must have the same capacity. *)
val union_into : into:t -> t -> unit

(** [union a b] is a fresh set holding [a ∪ b]. *)
val union : t -> t -> t

(** [inter a b] is a fresh set holding [a ∩ b]. *)
val inter : t -> t -> t

(** [inter_into ~into src] restricts [into] to [into ∩ src] in place,
    allocation-free. The two sets must have the same capacity. *)
val inter_into : into:t -> t -> unit

(** [union_inter_into ~into a b] adds [a ∩ b] to [into] in place,
    allocation-free — one word-wise pass, no intermediate set. All
    three sets must share one capacity. *)
val union_inter_into : into:t -> t -> t -> unit

(** [diff a b] is a fresh set holding [a \ b]. *)
val diff : t -> t -> t

(** [complement s] is a fresh set holding [{0..cap-1} \ s]. *)
val complement : t -> t

(** [complement_into ~into src] overwrites [into] with
    [{0..cap-1} \ src] in place, allocation-free. The two sets must have
    the same capacity ([into] may alias [src]). *)
val complement_into : into:t -> t -> unit

(** [intersects a b] is [true] iff [a ∩ b ≠ ∅], allocation-free. *)
val intersects : t -> t -> bool

(** [intersects3 a b c] is [true] iff [a ∩ b ∩ c ≠ ∅], word-wise and
    allocation-free — equivalent to [intersects (inter a b) c] without
    the intermediate set. *)
val intersects3 : t -> t -> t -> bool

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [equal a b] is structural equality of contents (same capacity
    required). *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal], usable as a
    [Map.OrderedType]. *)
val compare : t -> t -> int

(** [hash s] is a content hash suitable for [Hashtbl] keying. Equal sets
    hash equally. The hash is an XOR of independently mixed words, so it
    can be maintained incrementally under single-bit flips via
    [hash_flip]. *)
val hash : t -> int

(** [hash_flip s i h] is [hash] of [s] with bit [i] flipped, given that
    [h = hash s] — an O(1) re-derivation used by incrementally
    maintained informed-set hashes. Call it {e before} mutating [s]
    (it reads the current word). Raises [Invalid_argument] when [i] is
    out of range. *)
val hash_flip : t -> int -> int -> int

(** [hash_union s cov h] is [hash (union s cov)], given that
    [h = hash s] — O(words) with no allocation, used to probe a
    transposition table for a child key [W ∪ cov] without building the
    union. Raises [Invalid_argument] on capacity mismatch. *)
val hash_union : t -> t -> int -> int

(** [equal_union a s cov] is [equal a (union s cov)] without building
    the union — the verification step after a [hash_union] probe hit. *)
val equal_union : t -> t -> t -> bool

(** [iter f s] applies [f] to each member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] is the sorted list of members. *)
val elements : t -> int list

(** [of_list capacity xs] builds a set from a member list. *)
val of_list : int -> int list -> t

(** [full capacity] is the set containing all of [0 .. capacity - 1]. *)
val full : int -> t

(** [choose s] is the smallest member, or [None] when empty. *)
val choose : t -> int option

(** [pp] formats as "{1, 4, 7}". *)
val pp : Format.formatter -> t -> unit
