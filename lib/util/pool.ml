(* Fixed-size domain pool with a mutex/condvar work queue.

   A pool of [jobs] means [jobs - 1] spawned worker domains plus the
   submitting domain itself: a batch is split into at most [jobs]
   contiguous chunks, the submitter runs chunk 0 inline, workers pull
   the rest, and the submitter helps drain the queue before blocking on
   the batch's [pending] counter — so [jobs] is the number of domains
   doing work, never [jobs + 1], and per-item queue traffic collapses
   to per-chunk traffic.

   Chunk tasks record each item's result (or exception) into the
   submitting batch's slot array, so the queue stays monomorphic and one
   pool serves batches of any type. Mutation of the result slots happens
   in worker domains and is read by the submitter only after observing
   [pending = 0] under the pool mutex, which establishes the necessary
   happens-before edge. Results are indexed by input position — never by
   completion order — so [map] output is byte-identical at any worker
   count. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains a task, or on shutdown *)
  drained : Condition.t;  (* signalled when a batch's last chunk finishes *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Observability: batch/chunk counts, a chunk-latency histogram (µs)
   and per-domain busy time land in the metrics registry; each chunk
   also records a span on its executing domain's track, which is where
   per-worker utilisation becomes visible in the trace. All of it is
   behind the registry's disabled branch. *)
let m_batches = Mlbs_obs.Metrics.counter "pool/batches"
let m_chunks = Mlbs_obs.Metrics.counter "pool/chunks"
let m_busy_us = Mlbs_obs.Metrics.counter "pool/busy_us"
let m_chunk_us = Mlbs_obs.Metrics.histogram "pool/chunk_us"

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  (* Spawned workers are capped at the hardware's parallelism, not just
     at [jobs - 1]: a compute-active domain beyond the core count cannot
     run concurrently, but every minor collection still pays a
     stop-the-world handshake with it, so oversubscription turns pure
     overhead. [jobs] above the cap still shapes chunking identically —
     the submitter drains the surplus chunks itself in queue order, and
     results are indexed by input position — so output stays
     byte-identical; only the domain count adapts to the machine. *)
  let spawned = max 0 (min jobs (default_jobs ()) - 1) in
  if spawned > 0 then
    t.workers <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* Extract in index order so the lowest-indexed exception wins —
   deterministic regardless of which domain hit it first. *)
let collect results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* batch drained: every slot was written *))
    results

(* Every item still runs — an exception poisons its slot, not its
   chunk — preserving the all-slots-written invariant [collect] needs. *)
let run_chunk f input results lo hi =
  for i = lo to hi - 1 do
    results.(i) <- Some (try Ok (f input.(i)) with e -> Error e)
  done

(* One clock pair per chunk (not per item) when observability is on:
   the duration feeds both the span and the latency histogram. *)
let run_chunk_obs c f input results lo hi =
  if not (Mlbs_obs.Obs.metrics_enabled () || Mlbs_obs.Obs.tracing_enabled ()) then
    run_chunk f input results lo hi
  else begin
    let t0 = Mlbs_obs.Obs.now_us () in
    run_chunk f input results lo hi;
    let dt = Mlbs_obs.Obs.now_us () -. t0 in
    Mlbs_obs.Metrics.incr m_chunks;
    Mlbs_obs.Metrics.add m_busy_us (int_of_float dt);
    Mlbs_obs.Metrics.observe m_chunk_us (int_of_float dt);
    Mlbs_obs.Trace.complete ~arg:c ~cat:"pool" ~name:"chunk" ~t0_us:t0 ~dur_us:dt ()
  end

let chunk_bounds ~len ~chunks c = (c * len / chunks, (c + 1) * len / chunks)

let map_on t f input =
  let len = Array.length input in
  if len = 0 then [||]
  else if t.jobs = 1 || len = 1 then Array.map f input
  else begin
    let results = Array.make len None in
    let chunks = min t.jobs len in
    Mlbs_obs.Metrics.incr m_batches;
    let pending = ref (chunks - 1) in
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map_on: pool is shut down"
    end;
    for c = 1 to chunks - 1 do
      let lo, hi = chunk_bounds ~len ~chunks c in
      Queue.add
        (fun () ->
          run_chunk_obs c f input results lo hi;
          Mutex.lock t.lock;
          decr pending;
          if !pending = 0 then Condition.broadcast t.drained;
          Mutex.unlock t.lock)
        t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* Chunk 0 inline on the submitting domain. *)
    let lo0, hi0 = chunk_bounds ~len ~chunks 0 in
    run_chunk_obs 0 f input results lo0 hi0;
    (* Help drain (our chunks or a concurrent batch's — either keeps a
       domain busy and makes nested [map_on] deadlock-free), then wait. *)
    Mutex.lock t.lock;
    while !pending > 0 do
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.lock;
          task ();
          Mutex.lock t.lock
      | None -> Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock;
    collect results
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Shared warm pool: [map] used to create and tear down a pool (and    *)
(* its domains) per call, which both cost milliseconds per batch and   *)
(* threw away every domain-local scratch between batches. One process- *)
(* wide pool per worker count now persists across batches and is       *)
(* joined at exit.                                                     *)
(* ------------------------------------------------------------------ *)

let shared_lock = Mutex.create ()
let shared : t option ref = ref None
let exit_hook = ref false

let get_shared ~jobs =
  Mutex.lock shared_lock;
  let t =
    match !shared with
    | Some t when t.jobs = jobs && not t.stopping -> t
    | prev ->
        (match prev with Some old -> shutdown old | None -> ());
        let t = create ~jobs in
        shared := Some t;
        if not !exit_hook then begin
          exit_hook := true;
          at_exit (fun () ->
              Mutex.lock shared_lock;
              let t = !shared in
              shared := None;
              Mutex.unlock shared_lock;
              Option.iter shutdown t)
        end;
        t
  in
  Mutex.unlock shared_lock;
  t

let prewarm ?(setup = fun () -> ()) ~jobs () =
  setup ();
  if jobs > 1 then begin
    let t = get_shared ~jobs in
    let k = List.length t.workers in
    if k > 0 then begin
      (* One barrier task per worker: each runs [setup] and then holds
         its worker until all have arrived, so no worker takes two. *)
      let bl = Mutex.create () and bc = Condition.create () in
      let arrived = ref 0 and release = ref false in
      Mutex.lock t.lock;
      for _ = 1 to k do
        Queue.add
          (fun () ->
            setup ();
            Mutex.lock bl;
            incr arrived;
            Condition.broadcast bc;
            while not !release do
              Condition.wait bc bl
            done;
            Mutex.unlock bl)
          t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      Mutex.lock bl;
      while !arrived < k do
        Condition.wait bc bl
      done;
      release := true;
      Condition.broadcast bc;
      Mutex.unlock bl
    end
  end

let map ~jobs f input =
  if jobs <= 1 || Array.length input <= 1 then Array.map f input
  else map_on (get_shared ~jobs) f input

let map_list ~jobs f xs = Array.to_list (map ~jobs f (Array.of_list xs))
