(* Fixed-size domain pool with a mutex/condvar work queue.

   Tasks are closures that record their own result (or exception) into a
   slot of the submitting batch's result array, so the queue itself is
   monomorphic and one pool serves batches of any type. Joins are
   batch-granular: [map_on] blocks on [drained] until its [pending]
   counter hits zero. Mutation of the result slots happens in worker
   domains and is read by the submitter only after observing
   [pending = 0] under the pool mutex, which establishes the necessary
   happens-before edge. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains a task, or on shutdown *)
  drained : Condition.t;  (* signalled when a batch's last task finishes *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* Extract in index order so the lowest-indexed exception wins —
   deterministic regardless of which worker hit it first. *)
let collect results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* batch drained: every slot was written *))
    results

let map_on t f input =
  let len = Array.length input in
  if len = 0 then [||]
  else if t.jobs = 1 || len = 1 then Array.map f input
  else begin
    let results = Array.make len None in
    let pending = ref len in
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map_on: pool is shut down"
    end;
    for i = 0 to len - 1 do
      Queue.add
        (fun () ->
          let r = try Ok (f input.(i)) with e -> Error e in
          Mutex.lock t.lock;
          results.(i) <- Some r;
          decr pending;
          if !pending = 0 then Condition.broadcast t.drained;
          Mutex.unlock t.lock)
        t.queue
    done;
    Condition.broadcast t.work;
    while !pending > 0 do
      Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock;
    collect results
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ~jobs f input =
  if jobs <= 1 || Array.length input <= 1 then Array.map f input
  else with_pool ~jobs (fun t -> map_on t f input)

let map_list ~jobs f xs = Array.to_list (map ~jobs f (Array.of_list xs))
