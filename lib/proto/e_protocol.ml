module Quadrant = Mlbs_geom.Quadrant
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel
module Fault = Mlbs_sim.Fault
module Metrics = Mlbs_obs.Metrics

let m_rounds = Metrics.counter "eproto/rounds"
let m_messages = Metrics.counter "eproto/messages"
let m_retx = Metrics.counter "eproto/retransmissions"

type result = {
  values : int array array;
  rounds : int;
  messages : int;
  retransmissions : int;
}

let infinity_ = max_int

(* How many rounds an announcer keeps retrying undelivered copies of one
   tuple before giving those neighbours up. *)
let retry_cap = 16

let construct ?(cwt_frames = 4) ?(faults = Fault.none) model views =
  Mlbs_obs.Trace.with_span ~cat:"proto" "e-construct" @@ fun () ->
  let n = Array.length views in
  if n <> Model.n_nodes model then invalid_arg "E_protocol.construct: view count mismatch";
  (* Each node's quadrant partition of its neighbours, from its own
     view (positions learned by beaconing). *)
  let quadrant_nbrs =
    Array.map
      (fun (v : Hello.view) ->
        let buckets = Array.make 4 [] in
        List.iter
          (fun (u, pos) ->
            match Quadrant.classify ~origin:v.Hello.position pos with
            | Some q ->
                let k = Quadrant.to_index q in
                buckets.(k) <- u :: buckets.(k)
            | None -> ())
          v.Hello.neighbor_position;
        buckets)
      views
  in
  let weight u v = Emodel.edge_weight model ~cwt_frames u v in
  (* Local state: own tuple, plus the last tuple received from each
     neighbour (node-indexed table of per-neighbour copies). *)
  let e =
    Array.init n (fun u ->
        Array.init 4 (fun k -> if quadrant_nbrs.(u).(k) = [] then 0 else infinity_))
  in
  let known : (int, int array) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let relax u =
    let changed = ref false in
    for k = 0 to 3 do
      match quadrant_nbrs.(u).(k) with
      | [] -> () (* stays seeded at 0 *)
      | nbrs ->
          let best =
            List.fold_left
              (fun acc v ->
                match Hashtbl.find_opt known.(u) v with
                | Some tup when tup.(k) <> infinity_ -> min acc (weight u v + tup.(k))
                | _ -> acc)
              infinity_ nbrs
          in
          if best < e.(u).(k) then begin
            e.(u).(k) <- best;
            changed := true
          end
    done;
    !changed
  in
  let fault_active = not (Fault.is_noop faults) in
  let all_nbrs u = Array.to_list views.(u).Hello.neighbors in
  let messages = ref 0 and rounds = ref 0 and retransmissions = ref 0 in
  (* Pending copies are the implicit ACK state: an announcer re-sends
     its tuple each round to the neighbours that have not yet received
     it (under loss), up to [retry_cap] rounds per tuple. Fault-free,
     every copy lands first try, so rounds/messages match the original
     single-shot protocol exactly. Each entry is
     (announcer, neighbours still owed the tuple, rounds tried). *)
  let to_announce = ref [] in
  for u = n - 1 downto 0 do
    if Array.exists (fun x -> x <> infinity_) e.(u) then
      to_announce := (u, all_nbrs u, 0) :: !to_announce
  done;
  while !to_announce <> [] do
    incr rounds;
    (* Deliver announcements; track the copies the channel corrupted. *)
    let unresolved = ref [] in
    List.iter
      (fun (u, pending, tries) ->
        incr messages;
        if tries > 0 then incr retransmissions;
        let missed =
          List.filter
            (fun v ->
              if
                (not fault_active)
                || Fault.delivers ~channel:2 ~slot:!rounds ~tx:u ~rx:v faults
              then begin
                Hashtbl.replace known.(v) u (Array.copy e.(u));
                false
              end
              else true)
            pending
        in
        if missed <> [] && tries + 1 < retry_cap then
          unresolved := (u, missed, tries + 1) :: !unresolved)
      !to_announce;
    (* Everyone re-relaxes; improvements are announced next round. An
       improved announcer's fresh tuple supersedes its unresolved
       retries (the new copy goes to every neighbour anyway). *)
    let improved = ref [] in
    for u = n - 1 downto 0 do
      if relax u then improved := u :: !improved
    done;
    let keep =
      List.filter (fun (u, _, _) -> not (List.mem u !improved)) (List.rev !unresolved)
    in
    to_announce := keep @ List.map (fun u -> (u, all_nbrs u, 0)) !improved
  done;
  (* The quadrant relations are DAGs with all sinks seeded, so every
     value is finite at quiescence — unless loss exhausted a tuple's
     retries, in which case the node degrades to a conservative score
     of 0 instead of aborting the deployment. *)
  Array.iteri
    (fun u tup ->
      Array.iteri
        (fun k x ->
          if x = infinity_ then
            if fault_active then tup.(k) <- 0
            else
              failwith
                (Printf.sprintf "E_protocol.construct: node %d quadrant %d never settled" u
                   k))
        tup)
    e;
  Metrics.add m_rounds !rounds;
  Metrics.add m_messages !messages;
  Metrics.add m_retx !retransmissions;
  { values = e; rounds = !rounds; messages = !messages; retransmissions = !retransmissions }
