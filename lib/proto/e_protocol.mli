(** Distributed construction of the E-model 4-tuple — Algorithm 2 as an
    actual message-passing protocol.

    Each node starts from its local quadrant test ([E_i = 0] when its
    quadrant-i neighbourhood is empty, ∞ otherwise — the merged seeding
    of [Mlbs_core.Emodel]), and announces its tuple to its neighbours
    whenever a value improves; receiving an announcement makes a node
    re-relax [E_i(u) = w(u,v) + min E_i(v)] over the stored neighbour
    tuples. Values only decrease and each quadrant relation is a DAG, so
    the protocol terminates; the fixpoint equals the centralized
    [Emodel.compute ~seeding:Merged] (tested).

    Theorem 3 claims the construction costs O(1) updates per node —
    "the total cost of updates is less than 4 × N". [messages] counts
    every announcement so experiments can check that claim. *)

type result = {
  values : int array array;  (** node -> quadrant index -> E *)
  rounds : int;  (** synchronous exchange rounds until quiescence *)
  messages : int;  (** tuple announcements sent in total *)
  retransmissions : int;  (** announcements re-sent to recover lost copies *)
}

(** [construct ?cwt_frames ?faults model views] runs the protocol on the
    views produced by {!Hello.discover}. Under [Async] the edge weights
    are the same proactive CWT forecasts the centralized construction
    uses (computable by a node from its neighbour's seed, §III).

    [faults] injects per-link loss on the construction's control stream
    (channel 2 of the plan): an announcer keeps per-neighbour pending
    copies — the implicit ACK — and re-sends each round until every
    neighbour has the tuple or the retry budget is exhausted, after
    which a value that never settled degrades to a conservative 0
    instead of aborting. With a no-op plan the rounds and message
    counts are identical to the loss-free protocol. *)
val construct :
  ?cwt_frames:int -> ?faults:Mlbs_sim.Fault.t -> Mlbs_core.Model.t -> Hello.view array -> result
