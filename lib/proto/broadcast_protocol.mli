(** The conflict-aware broadcast as a fully distributed protocol: every
    decision is taken from state a node built out of received messages.

    This is the end of the road the paper points down in §VII ("a
    localized color scheme and its selection to provide a more reliable
    and scalable solution"): unlike [Mlbs_core.Localized] — which scopes
    the *decision* to 2 hops but still reads the true informed set —
    nothing here touches global state except the radio itself.

    Per slot:

    + {b beacons} (the §III routine exchange, on the always-on receiving
      channel): each node broadcasts its status — whether it holds the
      message, how many of its neighbours still request it, its Eq.-10
      score — plus a digest of what it believes about its own
      neighbours, which is how information reaches 2 hops. Belief in
      "node x holds the message" is monotone (never revoked), so stale
      digests are harmless.
    + {b decisions}: every awake holder with requesting neighbours
      colors the candidates it can see (itself, and 1-/2-hop nodes it
      believes to be holders with requests), using only edges its
      {!Hello.view} can certify, and transmits iff it places itself in
      the class its (distributed) E values select.
    + {b radio}: one audible transmission delivers; several collide.
      A sender cannot observe its receivers directly — it backs off
      after each attempt and learns the outcome from the next beacons;
      unresolved requests trigger a retransmission.

    Imperfect knowledge (one-slot lag, uncertifiable edges) causes real
    collisions; back-off resolves them. Convergence is checked against
    the ground truth only to stop the simulation. *)

type stats = {
  schedule : Mlbs_core.Schedule.t;  (** data transmissions actually made *)
  latency : int;
  collisions : int;
  retransmissions : int;
  beacon_messages : int;  (** control-channel broadcasts *)
  e_messages : int;  (** announcements spent building E (Theorem 3) *)
  delivered : int;
      (** nodes informed and alive in the plan's end state (once every
          crash window has been applied) *)
  gave_up : int;
      (** alive holders that exhausted their retry budget with
          requests still outstanding *)
  lost_packets : int;  (** collision-free data receptions erased by loss *)
}

(** [run ?max_slots ?faults ?max_attempts model ~source ~start]
    discovers neighbourhoods ({!Hello}), builds E distributedly
    ({!E_protocol}), then runs the broadcast. Raises [Failure] when the
    protocol has not covered the network within [max_slots] (default
    [64 * n * r]) — fault-free only; under an active fault plan running
    out of slots ends the run with partial delivery instead, since
    non-coverage is then the phenomenon being measured.

    [faults] (default {!Mlbs_sim.Fault.none}, a strict no-op) injects
    the plan into every layer: per-link loss on the data radio
    (channel 0), the beacons (channel 1) and the E construction
    (channel 2); crashes silence a node and a recovering node rejoins
    with amnesia — its neighbours' unresolved requests, surfaced by the
    beacons (the implicit ACK stream), pull relays back into the greedy
    re-coloring exactly like a lagged relay; wake jitter desynchronises
    a node's true radio clock from the published schedule its
    neighbours forecast with. The run ends when every alive node is
    informed, or when no alive holder with outstanding requests and
    remaining retries exists (give-up).

    [max_attempts] bounds data transmissions per node (default: 8 when
    the plan is active, unbounded otherwise). *)
val run :
  ?max_slots:int ->
  ?faults:Mlbs_sim.Fault.t ->
  ?max_attempts:int ->
  Mlbs_core.Model.t ->
  source:int ->
  start:int ->
  stats
