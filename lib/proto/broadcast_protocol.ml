module Bitset = Mlbs_util.Bitset
module Coloring = Mlbs_graph.Coloring
module Quadrant = Mlbs_geom.Quadrant
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Fault = Mlbs_sim.Fault

type stats = {
  schedule : Schedule.t;
  latency : int;
  collisions : int;
  retransmissions : int;
  beacon_messages : int;
  e_messages : int;
  delivered : int;
  gave_up : int;
  lost_packets : int;
}

(* What one node believes about another: message-holding is monotone
   (once believed true, never revoked); request counts and scores carry
   the latest value heard, first-hand beacons overriding digests. *)
type belief = { mutable holds : bool; mutable requests : int; mutable score : int }

type nstate = {
  view : Hello.view;
  e : int array;
  beliefs : (int, belief) Hashtbl.t;
  known : int array;  (** the node's 2-hop universe (excluding itself), sorted *)
  local_index : (int, int) Hashtbl.t;  (** id -> index into the local universe *)
  adj : Mlbs_util.Bitset.t array;
      (** per universe index, the certifiable-adjacency mask (universe
          = known ++ [self], self at the last index) *)
  mutable has_msg : bool;
  mutable attempts : int;
  mutable silent_until : int;
  mutable stalled : int;
      (** eligible slots in a row during which this node neither sent
          nor heard any data — divergent local selections can deadlock
          (everyone defers to someone else's class); after
          [stall_limit] such slots the node transmits unconditionally *)
}

let stall_limit = 4

let belief_of st x =
  match Hashtbl.find_opt st.beliefs x with
  | Some b -> b
  | None ->
      let b = { holds = false; requests = 0; score = 0 } in
      Hashtbl.add st.beliefs x b;
      b

(* First-hand data about self, computed from beliefs about neighbours. *)
let own_requests st =
  Array.fold_left
    (fun acc w -> if (belief_of st w).holds then acc else acc + 1)
    0 st.view.Hello.neighbors

let max_applicable_e st =
  (* The largest E_k over quadrants still containing a believed-
     uninformed neighbour — the node's own Eq. (10) score. *)
  let best = ref (-1) in
  List.iter
    (fun (w, pos) ->
      if not (belief_of st w).holds then
        match Quadrant.classify ~origin:st.view.Hello.position pos with
        | Some q -> best := max !best st.e.(Quadrant.to_index q)
        | None -> ())
    st.view.Hello.neighbor_position;
  !best

(* Deterministic exponential back-off, as in [Mlbs_core.Localized]. *)
let backoff u attempts =
  let window = 1 lsl min attempts 6 in
  let h = (u * 2654435761) lxor (attempts * 40503) in
  (h land max_int) mod window

let run ?max_slots ?(faults = Fault.none) ?max_attempts model ~source ~start =
  let n = Model.n_nodes model in
  let fault_active = not (Fault.is_noop faults) in
  (* Unbounded retries are safe fault-free (convergence is guaranteed);
     under faults a partition would retry forever, so attempts default
     to a bound and exhausting it is the per-node give-up. *)
  let max_attempts =
    match max_attempts with Some m -> m | None -> if fault_active then 8 else max_int
  in
  let rate =
    match Model.system model with Model.Sync -> 1 | Model.Async s -> Wake_schedule.rate s
  in
  let max_slots = match max_slots with Some m -> m | None -> 64 * n * rate in
  let { Hello.views; messages = hello_messages } = Hello.discover (Model.network model) in
  let e_result = E_protocol.construct ~faults model views in
  let states =
    Array.init n (fun u ->
        let view = views.(u) in
        let known = Array.of_list (Hello.two_hop view) in
        let size = Array.length known + 1 in
        let local_index = Hashtbl.create (2 * size) in
        Array.iteri (fun i x -> Hashtbl.add local_index x i) known;
        Hashtbl.add local_index u (size - 1);
        (* Certifiable edges: (u, nbr) from the view itself, and
           (nbr, x) from each neighbour's reported list. *)
        let adj = Array.init size (fun _ -> Mlbs_util.Bitset.create size) in
        let add_edge a b =
          match (Hashtbl.find_opt local_index a, Hashtbl.find_opt local_index b) with
          | Some ia, Some ib ->
              Mlbs_util.Bitset.add adj.(ia) ib;
              Mlbs_util.Bitset.add adj.(ib) ia
          | _ -> ()
        in
        Array.iter (fun nbr -> add_edge u nbr) view.Hello.neighbors;
        List.iter
          (fun (nbr, l) -> Array.iter (fun x -> if x <> u then add_edge nbr x) l)
          view.Hello.neighbor_lists;
        {
          view;
          e = e_result.E_protocol.values.(u);
          beliefs = Hashtbl.create 16;
          known;
          local_index;
          adj;
          has_msg = u = source;
          attempts = 0;
          silent_until = 0;
          stalled = 0;
        })
  in
  (* Forecasts of neighbours' wake slots come from the published (base)
     schedule; a node's own radio follows its true, possibly jittered,
     clock. The gap between the two is exactly the fault being
     injected — with zero jitter both schedules are the same value. *)
  let self_sched =
    match Model.system model with
    | Model.Sync -> None
    | Model.Async sched -> Some (Fault.jittered faults sched)
  in
  let awake u ~slot =
    match Model.system model with
    | Model.Sync -> true
    | Model.Async sched -> Wake_schedule.awake sched u ~slot
  in
  let awake_self u ~slot =
    match self_sched with None -> true | Some sched -> Wake_schedule.awake sched u ~slot
  in
  let nth_wake u t k =
    let rec go t k =
      if k <= 0 then t
      else
        let t' =
          match self_sched with
          | None -> t + 1
          | Some sched -> Wake_schedule.next_wake sched u ~after:t
        in
        go t' (k - 1)
    in
    go t k
  in
  let beacon_messages = ref hello_messages in
  let collisions = ref 0 in
  let lost_packets = ref 0 in
  let steps = ref [] in
  (* Ground truth, used by the radio and the stop condition only. *)
  let truly_informed = Bitset.create n in
  Bitset.add truly_informed source;

  let beacon_phase ~slot =
    (* Each node broadcasts (holds, requests, score) for itself plus a
       digest of its 1-hop beliefs; neighbours integrate. Digests are
       applied first so first-hand data wins within the slot. *)
    let payloads =
      Array.map
        (fun st ->
          let digest =
            Array.to_list
              (Array.map
                 (fun w ->
                   let b = belief_of st w in
                   (w, b.holds, b.requests, b.score))
                 st.view.Hello.neighbors)
          in
          (st.view.Hello.id, st.has_msg, own_requests st, max_applicable_e st, digest))
        states
    in
    Array.iteri
      (fun u st ->
        ignore st;
        if (not fault_active) || Fault.alive faults ~slot u then begin
          incr beacon_messages;
          Array.iter
            (fun v ->
              if
                (not fault_active)
                || (Fault.alive faults ~slot v
                   && Fault.delivers ~channel:1 ~slot ~tx:u ~rx:v faults)
              then begin
                let dst = states.(v) in
                let id, holds, requests, score, digest = payloads.(u) in
                List.iter
                  (fun (w, h, r, s) ->
                    if w <> v then begin
                      let is_nbr = Array.exists (( = ) w) dst.view.Hello.neighbors in
                      let b = belief_of dst w in
                      (* Under faults, a node's holdership can regress
                         (crash + recovery loses the message), so
                         second-hand claims about a direct neighbour —
                         whose own beacons are authoritative and arrive
                         here first-hand — are ignored rather than
                         monotonically believed. Fault-free the two
                         rules coincide: a digest only ever lags the
                         first-hand beacon it was built from. *)
                      if (not fault_active) || not is_nbr then b.holds <- b.holds || h;
                      (* Second-hand counts only fill in 2-hop nodes. *)
                      if not is_nbr then begin
                        b.requests <- r;
                        b.score <- s
                      end
                    end)
                  digest;
                let b = belief_of dst id in
                if fault_active then b.holds <- holds else b.holds <- b.holds || holds;
                b.requests <- requests;
                b.score <- score
              end)
            states.(u).view.Hello.neighbors
        end)
      states
  in

  let eligible u ~slot =
    let st = states.(u) in
    st.has_msg
    && ((not fault_active) || Fault.alive faults ~slot u)
    && awake_self u ~slot
    && st.silent_until <= slot
    && own_requests st > 0
    && st.attempts < max_attempts
  in
  let decide u ~slot =
    let st = states.(u) in
    if not (eligible u ~slot) then false
    else if st.stalled >= stall_limit then true
    else begin
      (* Candidates this node can see: itself plus believed holders with
         requests in its 2-hop view, filtered by wake forecast. *)
      let mine = (u, own_requests st) in
      let others =
        List.filter_map
          (fun x ->
            let b = belief_of st x in
            if b.holds && b.requests > 0 && awake x ~slot then Some (x, b.requests)
            else None)
          (Array.to_list st.known)
      in
      let cands = mine :: others in
      (* Believed-uninformed mask over the local universe; the conflict
         test is then two bitset intersections. *)
      let size = Array.length st.known + 1 in
      let uninformed = Bitset.create size in
      Array.iteri
        (fun i x -> if not (belief_of st x).holds then Bitset.add uninformed i)
        st.known;
      let order (a, ca) (b, cb) = if ca <> cb then compare cb ca else compare a b in
      let conflict (a, _) (b, _) =
        a <> b
        &&
        match (Hashtbl.find_opt st.local_index a, Hashtbl.find_opt st.local_index b) with
        | Some ia, Some ib -> Bitset.intersects3 st.adj.(ia) st.adj.(ib) uninformed
        | _ -> false
      in
      let classes = Coloring.greedy ~order ~conflicts:conflict cands in
      let score cls =
        List.fold_left
          (fun acc (x, _) ->
            max acc (if x = u then max_applicable_e st else (belief_of st x).score))
          (-1) cls
      in
      match classes with
      | [] -> false
      | first :: _ ->
          let best = ref first and best_score = ref (score first) in
          List.iter
            (fun cls ->
              let s = score cls in
              if s > !best_score then begin
                best := cls;
                best_score := s
              end)
            classes;
          List.mem_assoc u !best
    end
  in

  (* Per-slot radio scratch, reused across slots: who sent, who is in
     radio range of a sender (the sender set plus its neighbourhoods),
     and how many senders cover each node — replacing the old
     O(n·|senders|) [List.mem]/[mem_edge] scans with one pass over the
     senders' adjacency lists and O(1) probes. *)
  let graph = Model.graph model in
  let sender_set = Bitset.create n in
  let heard_set = Bitset.create n in
  let sender_count = Array.make n 0 in
  let last_sender = Array.make n (-1) in
  (* A recovering node rejoins with amnesia: no message (unless it is
     the source, which re-originates), no beliefs, a fresh retry
     budget. Its neighbours re-learn its true state from its first
     authoritative beacon and the unresolved requests pull the relays
     back into the greedy re-coloring. *)
  let recoveries =
    if not fault_active then []
    else
      List.filter_map
        (fun (c : Fault.crash) ->
          match c.Fault.recover with Some r -> Some (r, c.Fault.node) | None -> None)
        (Fault.spec faults).Fault.crashes
  in
  let last_recovery = List.fold_left (fun acc (r, _) -> max acc r) 0 recoveries in
  let revive node =
    let st = states.(node) in
    Hashtbl.reset st.beliefs;
    st.has_msg <- node = source;
    st.attempts <- 0;
    st.silent_until <- 0;
    st.stalled <- 0;
    if node <> source then Bitset.remove truly_informed node
  in
  let all_alive_informed slot =
    let ok = ref true in
    for u = 0 to n - 1 do
      if Fault.alive faults ~slot u && not (Bitset.mem truly_informed u) then ok := false
    done;
    !ok
  in
  let progress_possible slot =
    let any = ref false in
    Array.iteri
      (fun u st ->
        if
          Fault.alive faults ~slot u
          && st.has_msg
          && st.attempts < max_attempts
          && own_requests st > 0
        then any := true)
      states;
    !any
  in
  let rec loop slot =
    let finished =
      if fault_active then slot > last_recovery && all_alive_informed slot
      else Bitset.is_full truly_informed
    in
    if finished then slot - 1
    else if slot - start >= max_slots then
      if fault_active then slot - 1
      else
        failwith
          (Printf.sprintf "Broadcast_protocol.run: no coverage within %d slots" max_slots)
    else if fault_active && slot > last_recovery && not (progress_possible slot) then
      (* Give-up: every remaining request is unservable — the holders
         that could satisfy it are dead, partitioned away, or out of
         retries — and no recovery is pending that could change that. *)
      slot - 1
    else begin
      if fault_active then
        List.iter (fun (r, node) -> if r = slot then revive node) recoveries;
      beacon_phase ~slot;
      let senders = List.filter (fun u -> decide u ~slot) (List.init n Fun.id) in
      Bitset.clear sender_set;
      Bitset.clear heard_set;
      Array.fill sender_count 0 n 0;
      List.iter
        (fun u ->
          Bitset.add sender_set u;
          Bitset.add heard_set u;
          Mlbs_graph.Graph.iter_neighbors graph u ~f:(fun v ->
              Bitset.add heard_set v;
              sender_count.(v) <- sender_count.(v) + 1;
              last_sender.(v) <- u))
        senders;
      (* Stall accounting: an eligible node that deferred and heard no
         data this slot edges toward its unconditional escalation. *)
      for u = 0 to n - 1 do
        if Bitset.mem sender_set u then states.(u).stalled <- 0
        else if eligible u ~slot && not (Bitset.mem heard_set u) then
          states.(u).stalled <- states.(u).stalled + 1
        else if Bitset.mem heard_set u then states.(u).stalled <- 0
      done;
      if senders = [] then loop (slot + 1)
      else begin
        let received = ref [] in
        for v = 0 to n - 1 do
          if
            (not (Bitset.mem truly_informed v))
            && ((not fault_active) || Fault.alive faults ~slot v)
          then begin
            match sender_count.(v) with
            | 0 -> ()
            | 1 ->
                (* Lone audible sender: the per-link roll decides
                   whether the payload survives. A corrupted copy
                   delivers nothing — the unresolved request shows up
                   in the next beacons and triggers a retransmission. *)
                if Fault.delivers ~slot ~tx:last_sender.(v) ~rx:v faults then begin
                  received := v :: !received;
                  let dst = states.(v) in
                  dst.has_msg <- true;
                  (belief_of dst last_sender.(v)).holds <- true
                end
                else incr lost_packets
            | _ -> incr collisions
          end
        done;
        List.iter
          (fun u ->
            let st = states.(u) in
            st.attempts <- st.attempts + 1;
            (* Transmit-then-listen: back off and let the next beacons
               say whether requests remain. *)
            st.silent_until <- nth_wake u slot (backoff u st.attempts + 1))
          senders;
        List.iter (Bitset.add truly_informed) !received;
        steps :=
          { Schedule.slot; senders; informed = List.sort compare !received } :: !steps;
        loop (slot + 1)
      end
    end
  in
  let finish = loop start in
  let schedule = Schedule.make ~n_nodes:n ~source ~start (List.rev !steps) in
  let retransmissions =
    Array.fold_left (fun acc st -> acc + max 0 (st.attempts - 1)) 0 states
  in
  (* End-state accounting: a node is counted iff it survives every
     crash window of the plan, so delivery ratios computed against the
     plan's own end-state alive count never exceed 1. *)
  let delivered = ref 0 and gave_up = ref 0 in
  Array.iter
    (fun st ->
      let u = st.view.Hello.id in
      if (not fault_active) || Fault.alive faults ~slot:max_int u then begin
        if Bitset.mem truly_informed u then incr delivered;
        if st.attempts >= max_attempts && own_requests st > 0 then incr gave_up
      end)
    states;
  {
    schedule;
    latency = finish - start + 1;
    collisions = !collisions;
    retransmissions;
    beacon_messages = !beacon_messages;
    e_messages = e_result.E_protocol.messages;
    delivered = !delivered;
    gave_up = !gave_up;
    lost_packets = !lost_packets;
  }
