module Bitset = Mlbs_util.Bitset
module Coloring = Mlbs_graph.Coloring
module Quadrant = Mlbs_geom.Quadrant
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Interference = Mlbs_phy.Interference
module Sinr = Mlbs_phy.Sinr
module Fault = Mlbs_sim.Fault
module Metrics = Mlbs_obs.Metrics
module Otrace = Mlbs_obs.Trace

(* Protocol observability (all behind the disabled-registry branch).
   The waiting split mirrors the paper's cost decomposition: after a
   transmission a sender is silent for its conflict-avoidance backoff
   (k slots) plus however long the duty cycle then keeps it asleep —
   the contention-waiting time (CWT) — and the two accumulate into
   separate counters. *)
let m_slots = Metrics.counter "proto/slots"
let m_sends = Metrics.counter "proto/sends"
let m_collisions = Metrics.counter "proto/collisions"
let m_lost = Metrics.counter "proto/lost_packets"
let m_beacons = Metrics.counter "proto/beacon_messages"
let m_retx = Metrics.counter "proto/retransmissions"
let m_wait_conflict = Metrics.counter "proto/wait_conflict_slots"
let m_wait_cwt = Metrics.counter "proto/wait_cwt_slots"

type stats = {
  schedule : Schedule.t;
  latency : int;
  collisions : int;
  retransmissions : int;
  beacon_messages : int;
  e_messages : int;
  delivered : int;
  gave_up : int;
  lost_packets : int;
}

(* What one node believes about another: message-holding is monotone
   (once believed true, never revoked); request counts and scores carry
   the latest value heard, first-hand beacons overriding digests.

   Beliefs live in flat arrays indexed by the node's local universe
   (known ++ [self], self at the last index) rather than a hashtable:
   every id a beacon can mention is within two hops of the receiver, so
   the universe index is total and belief access is a plain array read.

   The per-slot beacon payload — the digest of 1-hop beliefs plus the
   node's own request count and Eq. (10) score — is cached in
   [dig_*]/[pay_*] and rebuilt only when a belief about a 1-hop
   neighbour changed since the last slot ([pay_dirty]); a settled
   region of the network stops paying for its beacons' contents. *)
type nstate = {
  view : Hello.view;
  e : int array;
  known : int array;  (** the node's 2-hop universe (excluding itself), sorted *)
  local_index : (int, int) Hashtbl.t;  (** id -> index into the local universe *)
  adj : Bitset.t array;
      (** per universe index, the certifiable-adjacency mask (universe
          = known ++ [self], self at the last index) *)
  b_holds : bool array;  (** belief: universe index holds the message *)
  b_requests : int array;  (** belief: its uninformed-neighbour count *)
  b_score : int array;  (** belief: its Eq. (10) score *)
  is_nbr : bool array;  (** universe index is a 1-hop neighbour *)
  nbr_li : int array;  (** per 1-hop neighbour position, its universe index *)
  edge_tgt : int array array;
      (** per 1-hop neighbour position [j]: digest slot [k] -> index of
          this node's [k]-th neighbour in neighbour [j]'s universe, or
          [-1] when that slot names neighbour [j] itself *)
  edge_self : int array;
      (** per 1-hop neighbour position [j]: this node's index in
          neighbour [j]'s universe *)
  q_idx : int array;  (** per positioned neighbour, its universe index *)
  q_e : int array;
      (** per positioned neighbour, the E value of its quadrant ([-1]
          when the neighbour sits on a quadrant boundary) *)
  dig_h : bool array;  (** payload snapshot of 1-hop [b_holds] *)
  dig_r : int array;  (** payload snapshot of 1-hop [b_requests] *)
  dig_s : int array;  (** payload snapshot of 1-hop [b_score] *)
  mutable pay_req : int;  (** payload snapshot of [own_req] *)
  mutable pay_e : int;  (** payload snapshot of the own score *)
  mutable pay_dirty : bool;
  mutable own_req : int;
      (** live count of 1-hop neighbours believed uninformed, maintained
          on every holds flip *)
  mutable own_e : int;  (** cached own score, valid unless [own_e_dirty] *)
  mutable own_e_dirty : bool;
  uninformed : Bitset.t;  (** scratch for [decide], over the universe *)
  mutable has_msg : bool;
  mutable attempts : int;
  mutable silent_until : int;
  mutable stalled : int;
      (** eligible slots in a row during which this node neither sent
          nor heard any data — divergent local selections can deadlock
          (everyone defers to someone else's class); after
          [stall_limit] such slots the node transmits unconditionally *)
}

let stall_limit = 4

(* Belief writers: flips of a 1-hop neighbour's state invalidate the
   cached payload (and, for holds, the maintained request count and
   score); writes about 2-hop nodes touch nothing cached. *)
let set_holds st i h =
  if st.b_holds.(i) <> h then begin
    st.b_holds.(i) <- h;
    if st.is_nbr.(i) then begin
      st.pay_dirty <- true;
      st.own_e_dirty <- true;
      st.own_req <- (st.own_req + if h then -1 else 1)
    end
  end

let set_requests st i r =
  if st.b_requests.(i) <> r then begin
    st.b_requests.(i) <- r;
    if st.is_nbr.(i) then st.pay_dirty <- true
  end

let set_score st i s =
  if st.b_score.(i) <> s then begin
    st.b_score.(i) <- s;
    if st.is_nbr.(i) then st.pay_dirty <- true
  end

let max_applicable_e st =
  (* The largest E_k over quadrants still containing a believed-
     uninformed neighbour — the node's own Eq. (10) score. *)
  if st.own_e_dirty then begin
    let best = ref (-1) in
    Array.iteri
      (fun k i -> if not st.b_holds.(i) then best := max !best st.q_e.(k))
      st.q_idx;
    st.own_e <- !best;
    st.own_e_dirty <- false
  end;
  st.own_e

let refresh_payload st =
  if st.pay_dirty then begin
    Array.iteri
      (fun j i ->
        st.dig_h.(j) <- st.b_holds.(i);
        st.dig_r.(j) <- st.b_requests.(i);
        st.dig_s.(j) <- st.b_score.(i))
      st.nbr_li;
    st.pay_req <- st.own_req;
    st.pay_e <- max_applicable_e st;
    st.pay_dirty <- false
  end

(* Deterministic exponential back-off, as in [Mlbs_core.Localized]. *)
let backoff u attempts =
  let window = 1 lsl min attempts 6 in
  let h = (u * 2654435761) lxor (attempts * 40503) in
  (h land max_int) mod window

let run ?max_slots ?(faults = Fault.none) ?max_attempts model ~source ~start =
  Otrace.with_span ~arg:start ~cat:"proto" "broadcast" @@ fun () ->
  let n = Model.n_nodes model in
  let fault_active = not (Fault.is_noop faults) in
  (* Unbounded retries are safe fault-free (convergence is guaranteed);
     under faults a partition would retry forever, so attempts default
     to a bound and exhausting it is the per-node give-up. *)
  let max_attempts =
    match max_attempts with Some m -> m | None -> if fault_active then 8 else max_int
  in
  let rate =
    match Model.system model with Model.Sync -> 1 | Model.Async s -> Wake_schedule.rate s
  in
  let max_slots = match max_slots with Some m -> m | None -> 64 * n * rate in
  let { Hello.views; messages = hello_messages } = Hello.discover (Model.network model) in
  let e_result = E_protocol.construct ~faults model views in
  let states =
    Array.init n (fun u ->
        let view = views.(u) in
        let known = Array.of_list (Hello.two_hop view) in
        let size = Array.length known + 1 in
        let deg = Array.length view.Hello.neighbors in
        let local_index = Hashtbl.create (2 * size) in
        Array.iteri (fun i x -> Hashtbl.add local_index x i) known;
        Hashtbl.add local_index u (size - 1);
        (* Certifiable edges: (u, nbr) from the view itself, and
           (nbr, x) from each neighbour's reported list. *)
        let adj = Array.init size (fun _ -> Bitset.create size) in
        let add_edge a b =
          match (Hashtbl.find_opt local_index a, Hashtbl.find_opt local_index b) with
          | Some ia, Some ib ->
              Bitset.add adj.(ia) ib;
              Bitset.add adj.(ib) ia
          | _ -> ()
        in
        Array.iter (fun nbr -> add_edge u nbr) view.Hello.neighbors;
        List.iter
          (fun (nbr, l) -> Array.iter (fun x -> if x <> u then add_edge nbr x) l)
          view.Hello.neighbor_lists;
        let e = e_result.E_protocol.values.(u) in
        let nbr_li = Array.map (Hashtbl.find local_index) view.Hello.neighbors in
        let is_nbr = Array.make size false in
        Array.iter (fun i -> is_nbr.(i) <- true) nbr_li;
        let npos = Array.of_list view.Hello.neighbor_position in
        {
          view;
          e;
          known;
          local_index;
          adj;
          b_holds = Array.make size false;
          b_requests = Array.make size 0;
          b_score = Array.make size 0;
          is_nbr;
          nbr_li;
          edge_tgt = Array.make deg [||];
          edge_self = Array.make deg (-1);
          q_idx = Array.map (fun (w, _) -> Hashtbl.find local_index w) npos;
          q_e =
            Array.map
              (fun (_, pos) ->
                match Quadrant.classify ~origin:view.Hello.position pos with
                | Some q -> e.(Quadrant.to_index q)
                | None -> -1)
              npos;
          dig_h = Array.make deg false;
          dig_r = Array.make deg 0;
          dig_s = Array.make deg 0;
          pay_req = 0;
          pay_e = -1;
          pay_dirty = true;
          own_req = deg;
          own_e = -1;
          own_e_dirty = true;
          uninformed = Bitset.create size;
          has_msg = u = source;
          attempts = 0;
          silent_until = 0;
          stalled = 0;
        })
  in
  (* Resolve each directed edge once: where every digest slot of u's
     beacon lands in the receiver's universe, and where u itself lands.
     The per-slot integration below is then pure array traffic. *)
  Array.iteri
    (fun u st ->
      Array.iteri
        (fun j v ->
          let dst = states.(v) in
          st.edge_tgt.(j) <-
            Array.map
              (fun w -> if w = v then -1 else Hashtbl.find dst.local_index w)
              st.view.Hello.neighbors;
          st.edge_self.(j) <- Hashtbl.find dst.local_index u)
        st.view.Hello.neighbors)
    states;
  (* Forecasts of neighbours' wake slots come from the published (base)
     schedule; a node's own radio follows its true, possibly jittered,
     clock. The gap between the two is exactly the fault being
     injected — with zero jitter both schedules are the same value. *)
  let self_sched =
    match Model.system model with
    | Model.Sync -> None
    | Model.Async sched -> Some (Fault.jittered faults sched)
  in
  let awake u ~slot =
    match Model.system model with
    | Model.Sync -> true
    | Model.Async sched -> Wake_schedule.awake sched u ~slot
  in
  let awake_self u ~slot =
    match self_sched with None -> true | Some sched -> Wake_schedule.awake sched u ~slot
  in
  let nth_wake u t k =
    let rec go t k =
      if k <= 0 then t
      else
        let t' =
          match self_sched with
          | None -> t + 1
          | Some sched -> Wake_schedule.next_wake sched u ~after:t
        in
        go t' (k - 1)
    in
    go t k
  in
  let beacon_messages = ref hello_messages in
  let collisions = ref 0 in
  let lost_packets = ref 0 in
  let steps = ref [] in
  (* Ground truth, used by the radio and the stop condition only. *)
  let truly_informed = Bitset.create n in
  Bitset.add truly_informed source;

  let beacon_phase ~slot =
    (* Each node broadcasts (holds, requests, score) for itself plus a
       digest of its 1-hop beliefs; neighbours integrate. The payload
       caches are refreshed for every node before any integration runs,
       so payloads carry the slot-start beliefs; digests are applied
       first so first-hand data wins within the slot. *)
    Array.iter refresh_payload states;
    Array.iteri
      (fun u st ->
        if (not fault_active) || Fault.alive faults ~slot u then begin
          incr beacon_messages;
          Array.iteri
            (fun j v ->
              if
                (not fault_active)
                || (Fault.alive faults ~slot v
                   && Fault.delivers ~channel:1 ~slot ~tx:u ~rx:v faults)
              then begin
                let dst = states.(v) in
                let tgt = st.edge_tgt.(j) in
                for k = 0 to Array.length tgt - 1 do
                  let i = tgt.(k) in
                  if i >= 0 then begin
                    (* Under faults, a node's holdership can regress
                       (crash + recovery loses the message), so
                       second-hand claims about a direct neighbour —
                       whose own beacons are authoritative and arrive
                       here first-hand — are ignored rather than
                       monotonically believed. Fault-free the two
                       rules coincide: a digest only ever lags the
                       first-hand beacon it was built from. *)
                    if ((not fault_active) || not dst.is_nbr.(i)) && st.dig_h.(k) then
                      set_holds dst i true;
                    (* Second-hand counts only fill in 2-hop nodes. *)
                    if not dst.is_nbr.(i) then begin
                      set_requests dst i st.dig_r.(k);
                      set_score dst i st.dig_s.(k)
                    end
                  end
                done;
                let i = st.edge_self.(j) in
                if fault_active then set_holds dst i st.has_msg
                else if st.has_msg then set_holds dst i true;
                set_requests dst i st.pay_req;
                set_score dst i st.pay_e
              end)
            st.view.Hello.neighbors
        end)
      states
  in

  let eligible u ~slot =
    let st = states.(u) in
    st.has_msg
    && ((not fault_active) || Fault.alive faults ~slot u)
    && awake_self u ~slot
    && st.silent_until <= slot
    && st.own_req > 0
    && st.attempts < max_attempts
  in
  let decide u ~slot =
    let st = states.(u) in
    if not (eligible u ~slot) then false
    else if st.stalled >= stall_limit then true
    else begin
      (* Candidates this node can see: itself plus believed holders with
         requests in its 2-hop view, filtered by wake forecast. Each
         candidate carries its universe index so the conflict test needs
         no id lookup. *)
      let size = Array.length st.known + 1 in
      let others = ref [] in
      for i = Array.length st.known - 1 downto 0 do
        let x = st.known.(i) in
        if st.b_holds.(i) && st.b_requests.(i) > 0 && awake x ~slot then
          others := (x, st.b_requests.(i), i) :: !others
      done;
      let cands = (u, st.own_req, size - 1) :: !others in
      (* Believed-uninformed mask over the local universe; the conflict
         test is then two bitset intersections. *)
      Bitset.clear st.uninformed;
      for i = 0 to size - 2 do
        if not st.b_holds.(i) then Bitset.add st.uninformed i
      done;
      let order (a, ca, _) (b, cb, _) = if ca <> cb then compare cb ca else compare a b in
      let conflict (a, _, ia) (b, _, ib) =
        a <> b && Bitset.intersects3 st.adj.(ia) st.adj.(ib) st.uninformed
      in
      let classes = Coloring.greedy ~order ~conflicts:conflict cands in
      let score cls =
        List.fold_left
          (fun acc (x, _, i) ->
            max acc (if x = u then max_applicable_e st else st.b_score.(i)))
          (-1) cls
      in
      match classes with
      | [] -> false
      | first :: _ ->
          let best = ref first and best_score = ref (score first) in
          List.iter
            (fun cls ->
              let s = score cls in
              if s > !best_score then begin
                best := cls;
                best_score := s
              end)
            classes;
          List.exists (fun (x, _, _) -> x = u) !best
    end
  in

  (* Per-slot radio scratch, reused across slots: who sent, who is in
     radio range of a sender (the sender set plus its neighbourhoods),
     and how many senders cover each node — replacing the old
     O(n·|senders|) [List.mem]/[mem_edge] scans with one pass over the
     senders' adjacency lists and O(1) probes. *)
  let graph = Model.graph model in
  (* Ground-truth radio physics. Under SINR the additive physical model
     decides delivery — capture can rescue a receiver that hears several
     transmissions, and a strong non-adjacent interferer can drown an
     adjacent one. UDG and multi-channel both keep the audible-count
     rule: distributed nodes share one common hopping sequence (they
     cannot negotiate per-slot channel assignments from 2-hop views), so
     every transmission lands on the same channel and multi-channel
     operation degenerates to UDG (see DESIGN.md §13). *)
  let sinr_inst =
    match Model.phy_instance model with Interference.I_sinr s -> Some s | _ -> None
  in
  let sender_set = Bitset.create n in
  let heard_set = Bitset.create n in
  let sender_count = Array.make n 0 in
  let last_sender = Array.make n (-1) in
  (* A recovering node rejoins with amnesia: no message (unless it is
     the source, which re-originates), no beliefs, a fresh retry
     budget. Its neighbours re-learn its true state from its first
     authoritative beacon and the unresolved requests pull the relays
     back into the greedy re-coloring. *)
  let recoveries =
    if not fault_active then []
    else
      List.filter_map
        (fun (c : Fault.crash) ->
          match c.Fault.recover with Some r -> Some (r, c.Fault.node) | None -> None)
        (Fault.spec faults).Fault.crashes
  in
  let last_recovery = List.fold_left (fun acc (r, _) -> max acc r) 0 recoveries in
  let revive node =
    let st = states.(node) in
    Array.fill st.b_holds 0 (Array.length st.b_holds) false;
    Array.fill st.b_requests 0 (Array.length st.b_requests) 0;
    Array.fill st.b_score 0 (Array.length st.b_score) 0;
    st.own_req <- Array.length st.view.Hello.neighbors;
    st.own_e_dirty <- true;
    st.pay_dirty <- true;
    st.has_msg <- node = source;
    st.attempts <- 0;
    st.silent_until <- 0;
    st.stalled <- 0;
    if node <> source then Bitset.remove truly_informed node
  in
  let all_alive_informed slot =
    let ok = ref true in
    for u = 0 to n - 1 do
      if Fault.alive faults ~slot u && not (Bitset.mem truly_informed u) then ok := false
    done;
    !ok
  in
  let progress_possible slot =
    let any = ref false in
    Array.iteri
      (fun u st ->
        if
          Fault.alive faults ~slot u
          && st.has_msg
          && st.attempts < max_attempts
          && st.own_req > 0
        then any := true)
      states;
    !any
  in
  (* One slot's work, factored out of the recursion so the per-slot
     span covers exactly this body and slots appear as sibling spans
     in the trace; both the silent and the sending path fall through
     to the caller's [loop (slot + 1)]. *)
  let slot_body slot =
      Metrics.incr m_slots;
      if fault_active then
        List.iter (fun (r, node) -> if r = slot then revive node) recoveries;
      beacon_phase ~slot;
      let senders = List.filter (fun u -> decide u ~slot) (List.init n Fun.id) in
      if Mlbs_obs.Obs.metrics_enabled () then Metrics.add m_sends (List.length senders);
      Bitset.clear sender_set;
      Bitset.clear heard_set;
      Array.fill sender_count 0 n 0;
      List.iter
        (fun u ->
          Bitset.add sender_set u;
          Bitset.add heard_set u;
          Mlbs_graph.Graph.iter_neighbors graph u ~f:(fun v ->
              Bitset.add heard_set v;
              sender_count.(v) <- sender_count.(v) + 1;
              last_sender.(v) <- u))
        senders;
      (* Stall accounting: an eligible node that deferred and heard no
         data this slot edges toward its unconditional escalation. *)
      for u = 0 to n - 1 do
        if Bitset.mem sender_set u then states.(u).stalled <- 0
        else if eligible u ~slot && not (Bitset.mem heard_set u) then
          states.(u).stalled <- states.(u).stalled + 1
        else if Bitset.mem heard_set u then states.(u).stalled <- 0
      done;
      if senders <> [] then begin
        let received = ref [] in
        for v = 0 to n - 1 do
          if
            (not (Bitset.mem truly_informed v))
            && ((not fault_active) || Fault.alive faults ~slot v)
          then begin
            let outcome =
              match sinr_inst with
              | None -> (
                  match sender_count.(v) with
                  | 0 -> `Silent
                  | 1 -> `Decoded last_sender.(v)
                  | _ -> `Collision)
              | Some s -> (
                  match Sinr.reception s ~senders ~rx:v with
                  | _, Some u -> `Decoded u
                  | [], None -> `Silent
                  | _ :: _, None -> `Collision)
            in
            match outcome with
            | `Silent -> ()
            | `Decoded tx ->
                (* Decodable transmission: the per-link roll decides
                   whether the payload survives. A corrupted copy
                   delivers nothing — the unresolved request shows up
                   in the next beacons and triggers a retransmission. *)
                if Fault.delivers ~slot ~tx ~rx:v faults then begin
                  received := v :: !received;
                  let dst = states.(v) in
                  dst.has_msg <- true;
                  set_holds dst (Hashtbl.find dst.local_index tx) true
                end
                else begin
                  incr lost_packets;
                  Metrics.incr m_lost
                end
            | `Collision ->
                incr collisions;
                Metrics.incr m_collisions
          end
        done;
        List.iter
          (fun u ->
            let st = states.(u) in
            st.attempts <- st.attempts + 1;
            (* Transmit-then-listen: back off and let the next beacons
               say whether requests remain. The silence decomposes into
               the backoff itself ([k] slots of conflict avoidance) and
               the extra slots the duty cycle keeps the node asleep
               beyond it — the CWT share. *)
            let k = backoff u st.attempts + 1 in
            let until = nth_wake u slot k in
            Metrics.add m_wait_conflict k;
            Metrics.add m_wait_cwt (until - slot - k);
            st.silent_until <- until)
          senders;
        List.iter (Bitset.add truly_informed) !received;
        steps :=
          { Schedule.slot; senders; informed = List.sort compare !received } :: !steps
      end
  in
  let rec loop slot =
    let finished =
      if fault_active then slot > last_recovery && all_alive_informed slot
      else Bitset.is_full truly_informed
    in
    if finished then slot - 1
    else if slot - start >= max_slots then
      if fault_active then slot - 1
      else
        failwith
          (Printf.sprintf "Broadcast_protocol.run: no coverage within %d slots" max_slots)
    else if fault_active && slot > last_recovery && not (progress_possible slot) then
      (* Give-up: every remaining request is unservable — the holders
         that could satisfy it are dead, partitioned away, or out of
         retries — and no recovery is pending that could change that. *)
      slot - 1
    else begin
      Otrace.with_span ~arg:slot ~cat:"proto" "slot" (fun () -> slot_body slot);
      loop (slot + 1)
    end
  in
  let finish = loop start in
  let schedule = Schedule.make ~n_nodes:n ~source ~start (List.rev !steps) in
  let retransmissions =
    Array.fold_left (fun acc st -> acc + max 0 (st.attempts - 1)) 0 states
  in
  Metrics.add m_retx retransmissions;
  Metrics.add m_beacons !beacon_messages;
  (* End-state accounting: a node is counted iff it survives every
     crash window of the plan, so delivery ratios computed against the
     plan's own end-state alive count never exceed 1. *)
  let delivered = ref 0 and gave_up = ref 0 in
  Array.iter
    (fun st ->
      let u = st.view.Hello.id in
      if (not fault_active) || Fault.alive faults ~slot:max_int u then begin
        if Bitset.mem truly_informed u then incr delivered;
        if st.attempts >= max_attempts && st.own_req > 0 then incr gave_up
      end)
    states;
  {
    schedule;
    latency = finish - start + 1;
    collisions = !collisions;
    retransmissions;
    beacon_messages = !beacon_messages;
    e_messages = e_result.E_protocol.messages;
    delivered = !delivered;
    gave_up = !gave_up;
    lost_packets = !lost_packets;
  }
