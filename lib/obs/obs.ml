(* Global observability switches.

   Everything in this library is built around one invariant: when both
   switches are off, an instrumented hot path pays exactly one atomic
   load and one branch per probe — no allocation, no clock read, no
   table lookup — so instrumentation can live inside the search and
   protocol inner loops without moving the benchmarks.

   [metrics] and [tracing] switch independently: the metrics registry
   is cheap enough to leave on for a whole sweep, while span tracing
   reads the clock twice per span and is meant for single-scenario
   runs.

   Cross-domain publication: every configuration write (the trace
   epoch, ring capacities, …) happens before the corresponding flag is
   set, and instrumented code reads the flag first, so the atomics
   provide the necessary release/acquire edge for the plain fields
   behind them. *)

let metrics_flag = Atomic.make false
let tracing_flag = Atomic.make false

let metrics_enabled () = Atomic.get metrics_flag
let tracing_enabled () = Atomic.get tracing_flag

(* Wall-clock microseconds. Spans subtract the epoch captured at
   [enable] so trace timestamps start near zero (Perfetto renders
   absolute epochs as year-52k otherwise). *)
let now_us () = Unix.gettimeofday () *. 1e6

let epoch = ref 0.
let epoch_us () = !epoch

let enable ?(metrics = true) ?(tracing = true) () =
  if tracing && not (Atomic.get tracing_flag) then epoch := now_us ();
  if metrics then Atomic.set metrics_flag true;
  if tracing then Atomic.set tracing_flag true

let disable () =
  Atomic.set metrics_flag false;
  Atomic.set tracing_flag false
