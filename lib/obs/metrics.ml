(* Metrics registry: named counters, gauges and fixed-bucket
   histograms with O(1) hot-path updates and per-domain sharded
   storage.

   Layout. Every metric owns a contiguous block of int cells —
   counters and gauges one cell, histograms [n_buckets + 2] (total
   count, value sum, then the buckets) — at a registration-time offset
   into a flat array. Each domain holds its own copy of that array (its
   shard, reached through domain-local storage), so an update is:
   flag branch, DLS read, one or three int stores. No atomics, no
   locks, no false sharing between domains on the hot path.

   Determinism. [snapshot] merges the shards with order-independent
   folds only — counters and histogram cells sum, gauges take the max —
   so the collected totals are a function of the multiset of updates,
   not of which domain performed them or of shard creation order. A
   sweep whose per-instance work is deterministic therefore reports
   byte-identical counters at any [--jobs] (asserted in
   test/test_obs.ml).

   Quiescence. Shards are written racily by their owning domains;
   [snapshot] and [reset] are meant for quiescent points (between pool
   batches, after a run). Int cells never tear, so a mid-flight
   snapshot is merely stale, not corrupt. *)

type kind = Kcounter | Kgauge | Khist

type meta = { name : string; kind : kind; off : int; width : int }

(* Handles are just the meta record: the hot path reads [off] only. *)
type counter = meta
type gauge = meta
type histogram = meta

let n_buckets = 40

(* Bucket [0] holds values <= 0; bucket [i >= 1] holds
   [2^(i-1) <= v < 2^i], saturating at the last bucket. *)
let bucket_lt i = if i >= 62 then max_int else 1 lsl i

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v <> 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let lock = Mutex.create ()
let metas : meta list ref = ref []
let total_width = ref 0
let by_name : (string, meta) Hashtbl.t = Hashtbl.create 64

let register name kind width =
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt by_name name with
    | Some m ->
        if m.kind <> kind then begin
          Mutex.unlock lock;
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered with another kind" name)
        end;
        m
    | None ->
        let m = { name; kind; off = !total_width; width } in
        total_width := !total_width + width;
        metas := m :: !metas;
        Hashtbl.add by_name name m;
        m
  in
  Mutex.unlock lock;
  m

let counter name = register name Kcounter 1
let gauge name = register name Kgauge 1
let histogram name = register name Khist (n_buckets + 2)

(* ------------------------------ shards ----------------------------- *)

type shard = { mutable cells : int array }

let shards_lock = Mutex.create ()
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock lock;
      let w = max 64 !total_width in
      Mutex.unlock lock;
      let s = { cells = Array.make w 0 } in
      Mutex.lock shards_lock;
      shards := s :: !shards;
      Mutex.unlock shards_lock;
      s)

(* The calling domain's shard, grown (domain-locally) when metrics were
   registered after the shard was created. Growth copies the old cells,
   so no update is lost. *)
let my_shard (m : meta) =
  let s = Domain.DLS.get shard_key in
  if Array.length s.cells < m.off + m.width then begin
    Mutex.lock lock;
    let w = !total_width in
    Mutex.unlock lock;
    let cells = Array.make (max w (m.off + m.width)) 0 in
    Array.blit s.cells 0 cells 0 (Array.length s.cells);
    s.cells <- cells
  end;
  s

(* ----------------------------- hot path ---------------------------- *)

let add (c : counter) n =
  if Obs.metrics_enabled () then begin
    let s = my_shard c in
    s.cells.(c.off) <- s.cells.(c.off) + n
  end

let incr (c : counter) = add c 1

let set (g : gauge) v =
  if Obs.metrics_enabled () then begin
    let s = my_shard g in
    s.cells.(g.off) <- v
  end

let observe (h : histogram) v =
  if Obs.metrics_enabled () then begin
    let s = my_shard h in
    s.cells.(h.off) <- s.cells.(h.off) + 1;
    s.cells.(h.off + 1) <- s.cells.(h.off + 1) + max 0 v;
    let b = h.off + 2 + bucket_of v in
    s.cells.(b) <- s.cells.(b) + 1
  end

(* ---------------------------- collection --------------------------- *)

type value =
  | Count of int
  | Level of int
  | Dist of { counts : int array; total : int; sum : int }

let cell_or_zero (s : shard) i = if i < Array.length s.cells then s.cells.(i) else 0

let snapshot () =
  Mutex.lock lock;
  let metas = !metas in
  Mutex.unlock lock;
  Mutex.lock shards_lock;
  let shards = !shards in
  Mutex.unlock shards_lock;
  let fold f init off = List.fold_left (fun acc s -> f acc (cell_or_zero s off)) init shards in
  let merged =
    List.map
      (fun m ->
        let v =
          match m.kind with
          | Kcounter -> Count (fold ( + ) 0 m.off)
          | Kgauge -> Level (fold max 0 m.off)
          | Khist ->
              Dist
                {
                  total = fold ( + ) 0 m.off;
                  sum = fold ( + ) 0 (m.off + 1);
                  counts = Array.init n_buckets (fun i -> fold ( + ) 0 (m.off + 2 + i));
                }
        in
        (m.name, v))
      metas
  in
  List.sort (fun (a, _) (b, _) -> compare a b) merged

let counter_value name =
  match List.assoc_opt name (snapshot ()) with
  | Some (Count n) -> n
  | Some (Level n) -> n
  | Some (Dist d) -> d.total
  | None -> 0

let reset () =
  Mutex.lock shards_lock;
  List.iter (fun s -> Array.fill s.cells 0 (Array.length s.cells) 0) !shards;
  Mutex.unlock shards_lock
