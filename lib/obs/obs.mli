(** Global observability switches — the single-branch no-op fast path.

    Both {!Metrics} updates and {!Trace} spans test one of these flags
    before doing anything; with the flags off (the default) an
    instrumented call site costs one atomic load and one branch, so
    probes can sit inside the M-search and protocol inner loops without
    perturbing BENCH_SMOKE.json.

    The flags are process-global: the experiment pool's worker domains
    observe an [enable] performed by the submitting domain before the
    batch is queued (publication rides the pool's own mutex as well as
    the flag's atomic). *)

(** [metrics_enabled ()] — the branch guarding every counter, gauge and
    histogram update. *)
val metrics_enabled : unit -> bool

(** [tracing_enabled ()] — the branch guarding every span record. *)
val tracing_enabled : unit -> bool

(** [enable ?metrics ?tracing ()] turns the selected subsystems on
    (both by default). The first transition into tracing captures the
    trace epoch: subsequent span timestamps are relative to it. *)
val enable : ?metrics:bool -> ?tracing:bool -> unit -> unit

(** [disable ()] turns both subsystems off. Recorded data is retained
    and can still be snapshotted or exported. *)
val disable : unit -> unit

(** [now_us ()] is the wall clock in microseconds — the time base of
    every span. *)
val now_us : unit -> float

(** [epoch_us ()] is the trace origin captured by the last transition
    into tracing; span timestamps are [now_us () - epoch_us ()]. *)
val epoch_us : unit -> float
