(** Metrics registry: named counters, gauges and fixed-bucket
    histograms with O(1) hot-path updates.

    Storage is sharded per domain (reached through domain-local
    storage), so updates from the experiment pool's workers never
    contend; {!snapshot} merges the shards with order-independent folds
    only — counters and histogram buckets sum, gauges take the max — so
    collected totals are identical at any [--jobs] when the underlying
    work is deterministic.

    Every update is guarded by {!Obs.metrics_enabled}: with the
    registry disabled (the default) a probe costs one branch.

    Registration is idempotent: [counter name] returns the same handle
    for the same name (and raises [Invalid_argument] if the name is
    already bound to a different kind). Handles are cheap and intended
    to be created once, at module initialisation.

    [snapshot] and [reset] are meant for quiescent points (between
    batches / after a run): a mid-flight snapshot can miss in-flight
    updates but never observes torn values. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** [incr c] / [add c n] bump a counter. Counters merge by summing
    across domains. *)
val incr : counter -> unit

val add : counter -> int -> unit

(** [set g v] records a gauge level. Gauges merge by taking the max
    across domains (order-independent); set them from one domain, or
    use them as high-watermarks. *)
val set : gauge -> int -> unit

(** [observe h v] adds one observation to a histogram. Buckets are
    powers of two: bucket [0] holds [v <= 0], bucket [i >= 1] holds
    [2^(i-1) <= v < 2^i], saturating at {!n_buckets}[- 1]. *)
val observe : histogram -> int -> unit

val n_buckets : int

(** [bucket_lt i] is the exclusive upper bound of bucket [i]. *)
val bucket_lt : int -> int

type value =
  | Count of int  (** counter total *)
  | Level of int  (** gauge, max across domains *)
  | Dist of { counts : int array; total : int; sum : int }
      (** histogram: per-bucket counts, observation count, value sum *)

(** [snapshot ()] merges every domain's shard and returns the metrics
    sorted by name. *)
val snapshot : unit -> (string * value) list

(** [counter_value name] is the merged total of [name] (0 when never
    registered or never updated; a histogram reports its observation
    count, a gauge its level). *)
val counter_value : string -> int

(** [reset ()] zeroes every shard. Call at a quiescent point. *)
val reset : unit -> unit
