(* Exporters: Chrome-trace/Perfetto JSON, a compact JSONL event log,
   and the metrics JSON object (written standalone and embedded in the
   bench dumps).

   Output is deliberately canonical — metrics sorted by name, fixed
   field order, %d/%.3f formatting — so two runs with equal counters
   produce byte-identical files (the determinism gate diffs them). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ---------------------------- trace JSON --------------------------- *)

(* The Trace Event Format's "complete" events (ph:"X"), timestamps in
   microseconds — loadable by Perfetto (ui.perfetto.dev) and
   chrome://tracing. One metadata event names the process; domains
   appear as one track per tid. *)
let write_chrome_trace path evs =
  with_out path (fun oc ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
      p
        "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"mlbs\"}}";
      List.iter
        (fun (e : Trace.ev) ->
          p
            ",\n\
            \  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
             \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {\"v\": %d}}"
            (escape e.Trace.name) (escape e.Trace.cat) e.Trace.ts_us e.Trace.dur_us
            e.Trace.tid e.Trace.arg)
        evs;
      p "\n]}\n")

let write_events_jsonl path evs =
  with_out path (fun oc ->
      List.iter
        (fun (e : Trace.ev) ->
          Printf.fprintf oc
            "{\"ts\": %.3f, \"dur\": %.3f, \"tid\": %d, \"cat\": \"%s\", \"name\": \
             \"%s\", \"v\": %d}\n"
            e.Trace.ts_us e.Trace.dur_us e.Trace.tid (escape e.Trace.cat)
            (escape e.Trace.name) e.Trace.arg)
        evs)

let jsonl_path trace_file =
  if Filename.check_suffix trace_file ".json" then
    Filename.chop_suffix trace_file ".json" ^ ".jsonl"
  else trace_file ^ ".jsonl"

(* --------------------------- metrics JSON -------------------------- *)

let metrics_object ?(indent = "") snap =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let counters = List.filter (fun (_, v) -> match v with Metrics.Count _ -> true | _ -> false) snap in
  let gauges = List.filter (fun (_, v) -> match v with Metrics.Level _ -> true | _ -> false) snap in
  let hists = List.filter (fun (_, v) -> match v with Metrics.Dist _ -> true | _ -> false) snap in
  let scalar_block title extract items =
    p "%s  \"%s\": {" indent title;
    List.iteri
      (fun i (name, v) ->
        p "%s%s    \"%s\": %d" (if i = 0 then "\n" else ",\n") indent (escape name)
          (extract v))
      items;
    if items = [] then p "},\n" else p "\n%s  },\n" indent
  in
  p "{\n";
  p "%s  \"schema\": \"mlbs-metrics-1\",\n" indent;
  scalar_block "counters" (function Metrics.Count n -> n | _ -> 0) counters;
  scalar_block "gauges" (function Metrics.Level n -> n | _ -> 0) gauges;
  p "%s  \"histograms\": {" indent;
  List.iteri
    (fun i (name, v) ->
      match v with
      | Metrics.Dist { counts; total; sum } ->
          p "%s%s    \"%s\": {\"total\": %d, \"sum\": %d, \"buckets\": ["
            (if i = 0 then "\n" else ",\n")
            indent (escape name) total sum;
          let first = ref true in
          Array.iteri
            (fun b c ->
              if c > 0 then begin
                p "%s{\"lt\": %d, \"count\": %d}" (if !first then "" else ", ")
                  (Metrics.bucket_lt b) c;
                first := false
              end)
            counts;
          p "]}"
      | _ -> ())
    hists;
  if hists = [] then p "}\n" else p "\n%s  }\n" indent;
  p "%s}" indent;
  Buffer.contents buf

let write_metrics path snap =
  with_out path (fun oc ->
      output_string oc (metrics_object snap);
      output_char oc '\n')

(* ----------------------------- one-stop ---------------------------- *)

let dump ?trace_file ?metrics_file () =
  (match trace_file with
  | Some path ->
      let evs = Trace.events () in
      write_chrome_trace path evs;
      write_events_jsonl (jsonl_path path) evs
  | None -> ());
  match metrics_file with
  | Some path -> write_metrics path (Metrics.snapshot ())
  | None -> ()
