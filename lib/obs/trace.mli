(** Structured span tracing into per-domain ring buffers.

    Spans are nestable (recorded as complete events on close, so
    nesting falls out of timestamps) and bounded: each domain owns a
    fixed-capacity ring that overwrites its oldest events when full —
    a long run always keeps the newest spans. Recording is guarded by
    {!Obs.tracing_enabled}; disabled, a span is one branch plus the
    wrapped call.

    Export via {!Export.write_chrome_trace} (Perfetto-loadable) or
    {!Export.write_events_jsonl}. *)

type ev = {
  name : string;
  cat : string;  (** coarse grouping: "search", "proto", "pool", … *)
  ts_us : float;  (** start, microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** recording domain's id — Perfetto renders one track per tid *)
  arg : int;  (** free numeric payload (slot number, chunk index, …) *)
}

(** [with_span ?arg ~cat name f] runs [f ()] inside a span; the span is
    recorded when [f] returns or raises. *)
val with_span : ?arg:int -> cat:string -> string -> (unit -> 'a) -> 'a

(** [instant ?arg ~cat name] records a zero-duration event. *)
val instant : ?arg:int -> cat:string -> string -> unit

(** [complete ?arg ~cat ~name ~t0_us ~dur_us ()] records a span whose
    bounds the caller already measured ([t0_us] from {!Obs.now_us}) —
    for instrumentation that times work anyway (pool chunks). *)
val complete : ?arg:int -> cat:string -> name:string -> t0_us:float -> dur_us:float -> unit -> unit

(** [events ()] merges every domain's ring, oldest first (sorted by
    timestamp). Call at a quiescent point. *)
val events : unit -> ev list

(** [set_capacity n] sets the per-domain ring capacity for rings
    created afterwards; call {!reset} to re-size existing rings.
    Default [32768]. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** [reset ()] empties every ring and applies the current capacity. *)
val reset : unit -> unit
