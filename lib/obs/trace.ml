(* Structured span tracing into per-domain ring buffers.

   Each domain records complete spans (name, category, start, duration,
   numeric argument) into its own fixed-capacity ring; when a ring
   fills, the oldest spans are overwritten, so a bounded-memory trace
   always keeps the newest events. Rings are reached through
   domain-local storage — recording never locks or contends.

   [events] merges every ring at a quiescent point and sorts by
   timestamp, ready for the Chrome-trace / JSONL exporters in
   {!Export}. *)

type ev = {
  name : string;
  cat : string;
  ts_us : float;  (* start, relative to the trace epoch *)
  dur_us : float;
  tid : int;  (* recording domain *)
  arg : int;
}

let dummy = { name = ""; cat = ""; ts_us = 0.; dur_us = 0.; tid = 0; arg = 0 }

type ring = {
  tid : int;
  mutable buf : ev array;
  mutable next : int;  (* slot of the next write *)
  mutable count : int;  (* events currently held, <= capacity *)
}

let default_capacity = 1 lsl 15

(* Configure before recording (or call [reset] after): existing rings
   are re-sized by [reset], new rings are born at the current value. *)
let capacity_ref = ref default_capacity
let capacity () = !capacity_ref

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          tid = (Domain.self () :> int);
          buf = Array.make (max 1 !capacity_ref) dummy;
          next = 0;
          count = 0;
        }
      in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      r)

let record ev =
  let r = Domain.DLS.get ring_key in
  let cap = Array.length r.buf in
  r.buf.(r.next) <- ev;
  r.next <- (r.next + 1) mod cap;
  if r.count < cap then r.count <- r.count + 1

let complete ?(arg = 0) ~cat ~name ~t0_us ~dur_us () =
  if Obs.tracing_enabled () then
    record
      {
        name;
        cat;
        ts_us = t0_us -. Obs.epoch_us ();
        dur_us;
        tid = (Domain.self () :> int);
        arg;
      }

let with_span ?(arg = 0) ~cat name f =
  if not (Obs.tracing_enabled ()) then f ()
  else begin
    let t0 = Obs.now_us () in
    Fun.protect
      ~finally:(fun () -> complete ~arg ~cat ~name ~t0_us:t0 ~dur_us:(Obs.now_us () -. t0) ())
      f
  end

let instant ?(arg = 0) ~cat name =
  if Obs.tracing_enabled () then complete ~arg ~cat ~name ~t0_us:(Obs.now_us ()) ~dur_us:0. ()

(* Oldest-to-newest walk of one ring: the ring holds [count] events
   ending just before [next]. Prepending newest-first leaves the list
   oldest-first, which the stable sort below preserves for events whose
   timestamps coincide within clock resolution. *)
let ring_events r acc =
  let cap = Array.length r.buf in
  let acc = ref acc in
  for i = 1 to r.count do
    (* i-th newest is at next - i (mod cap) *)
    let j = ((r.next - i) mod cap + cap) mod cap in
    acc := r.buf.(j) :: !acc
  done;
  !acc

let events () =
  Mutex.lock rings_lock;
  let rings = !rings in
  Mutex.unlock rings_lock;
  let all = List.fold_left (fun acc r -> ring_events r acc) [] rings in
  List.sort
    (fun a b ->
      let c = compare a.ts_us b.ts_us in
      if c <> 0 then c
      else
        let c = compare a.tid b.tid in
        if c <> 0 then c else compare a.name b.name)
    all

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  capacity_ref := n

let reset () =
  Mutex.lock rings_lock;
  List.iter
    (fun r ->
      r.buf <- Array.make (max 1 !capacity_ref) dummy;
      r.next <- 0;
      r.count <- 0)
    !rings;
  Mutex.unlock rings_lock
