(** Exporters for {!Trace} events and {!Metrics} snapshots.

    Output is canonical (sorted metrics, fixed field order), so runs
    with equal counters produce byte-identical files — the property the
    jobs-determinism gate diffs. *)

(** [write_chrome_trace path evs] writes the Trace Event Format JSON
    ("complete" events, µs timestamps) that Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and chrome://tracing
    load directly. *)
val write_chrome_trace : string -> Trace.ev list -> unit

(** [write_events_jsonl path evs] writes one JSON object per line — the
    compact log for ad-hoc grepping/jq. *)
val write_events_jsonl : string -> Trace.ev list -> unit

(** [jsonl_path "x.trace.json"] is ["x.trace.jsonl"] — where {!dump}
    puts the event log next to a trace file. *)
val jsonl_path : string -> string

(** [metrics_object ?indent snap] renders a snapshot as a JSON object
    ([{"schema": …, "counters": …, "gauges": …, "histograms": …}]);
    [indent] prefixes every line after the first, for embedding into an
    enclosing document (the bench JSON). *)
val metrics_object : ?indent:string -> (string * Metrics.value) list -> string

(** [write_metrics path snap] writes [metrics_object snap] to [path]. *)
val write_metrics : string -> (string * Metrics.value) list -> unit

(** [dump ?trace_file ?metrics_file ()] writes whichever artifacts were
    requested: the Chrome trace plus its JSONL sibling, and the metrics
    JSON of a fresh snapshot. *)
val dump : ?trace_file:string -> ?metrics_file:string -> unit -> unit
