(** Breadth-first search: hop distances, layers, parents.

    BFS drives the baseline schedulers (layer-synchronised broadcast of
    [2] and [12]), the admissible lower bound of the M-counter search
    (hop distance from the informed set to the farthest uninformed
    node), and source selection (the paper picks sources 5–8 hops from
    the farthest node). *)

(** Result of a BFS: [dist.(v)] is the hop distance from the source set
    ([max_int] when unreachable); [parent.(v)] is a predecessor on a
    shortest path ([-1] for sources and unreachable nodes). *)
type result = { dist : int array; parent : int array }

(** [run g ~source] is single-source BFS. *)
val run : Graph.t -> source:int -> result

(** [run_multi g ~sources] is BFS from a set of sources at distance 0 —
    used to lower-bound remaining broadcast time from an informed set. *)
val run_multi : Graph.t -> sources:int list -> result

(** Caller-owned BFS workspace for the allocation-free variant below:
    a distance array and a flat ring queue, both sized to the node
    count. One scratch serves any number of successive runs. *)
type scratch

(** [scratch n] allocates a workspace for graphs of up to [n] nodes. *)
val scratch : int -> scratch

(** [scratch_capacity sc] is the node count [sc] was sized for. *)
val scratch_capacity : scratch -> int

(** [run_multi_into sc g ~sources] runs multi-source BFS from the member
    set of [sources], writing hop distances into [sc] (no parents, no
    allocation). Raises [Invalid_argument] if [sc] is too small. *)
val run_multi_into : scratch -> Graph.t -> sources:Mlbs_util.Bitset.t -> unit

(** [max_dist_from sc ~within] is the maximum distance recorded by the
    last [run_multi_into] over the members of [within] — 0 when empty,
    [max_int] if any member was not reached. *)
val max_dist_from : scratch -> within:Mlbs_util.Bitset.t -> int

(** [layers g ~source] groups nodes by hop distance: element [k] is the
    sorted list of nodes at distance [k]. Unreachable nodes are
    omitted. *)
val layers : Graph.t -> source:int -> int list list

(** [eccentricity g ~source] is the maximum finite hop distance from
    [source]; raises [Invalid_argument] if some node is unreachable
    (callers should check connectivity first). *)
val eccentricity : Graph.t -> source:int -> int

(** [max_dist_in r ~within] is the maximum distance in [r] over the
    members of [within], or 0 when [within] is empty; [max_int] if any
    member is unreachable. *)
val max_dist_in : result -> within:Mlbs_util.Bitset.t -> int
