module Bitset = Mlbs_util.Bitset

type t = {
  n : int;
  m : int;
  adj : int array array; (* sorted neighbour lists *)
  sets : Bitset.t array; (* same adjacency as bit sets *)
}

let build n adj_lists =
  let adj =
    Array.map
      (fun l ->
        let arr = Array.of_list (List.sort_uniq compare l) in
        arr)
      adj_lists
  in
  let sets =
    Array.map
      (fun arr ->
        let s = Bitset.create n in
        Array.iter (Bitset.add s) arr;
        s)
      adj
  in
  let m = Array.fold_left (fun acc arr -> acc + Array.length arr) 0 adj / 2 in
  { n; m; adj; sets }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let adj_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.of_edges: edge (%d,%d) outside [0,%d)" u v n);
      if u = v then invalid_arg (Printf.sprintf "Graph.of_edges: self-loop at %d" u);
      adj_lists.(u) <- v :: adj_lists.(u);
      adj_lists.(v) <- u :: adj_lists.(v))
    edges;
  build n adj_lists

let of_adjacency adj_lists =
  let n = Array.length adj_lists in
  let g = build n adj_lists in
  (* Verify symmetry: u ∈ N(v) ⟺ v ∈ N(u); also reject self-loops. *)
  Array.iteri
    (fun u arr ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg (Printf.sprintf "Graph.of_adjacency: neighbour %d of %d out of range" v u);
          if v = u then invalid_arg (Printf.sprintf "Graph.of_adjacency: self-loop at %d" u);
          if not (Bitset.mem g.sets.(v) u) then
            invalid_arg (Printf.sprintf "Graph.of_adjacency: asymmetric edge %d->%d" u v))
        arr)
    g.adj;
  g

let n_nodes g = g.n
let n_edges g = g.m
let degree g u = Array.length g.adj.(u)
let neighbors g u = g.adj.(u)
let neighbor_set g u = g.sets.(u)

let mem_edge g u v = Bitset.mem g.sets.(u) v

let iter_neighbors g u ~f = Array.iter f g.adj.(u)

let fold_neighbors g u ~init ~f = Array.fold_left f init g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let arr = g.adj.(u) in
    for i = Array.length arr - 1 downto 0 do
      if u < arr.(i) then acc := (u, arr.(i)) :: !acc
    done
  done;
  !acc

let max_degree g = Array.fold_left (fun acc arr -> max acc (Array.length arr)) 0 g.adj

let common_neighbor_in g u v ~candidates =
  (* Scan the smaller adjacency list; probe the other's bit set and the
     candidate set. *)
  let a, b = if degree g u <= degree g v then (u, v) else (v, u) in
  let arr = g.adj.(a) in
  let other = g.sets.(b) in
  let rec loop i =
    i < Array.length arr
    && ((Bitset.mem other arr.(i) && Bitset.mem candidates arr.(i)) || loop (i + 1))
  in
  loop 0

(* Canonical digest: fold a splitmix64-style finalizer over the sorted
   CSR rows, so the value depends on the labelled edge set alone and
   never on how the graph was presented to the constructor. *)
let dmix h x =
  let open Int64 in
  let h = add h x in
  let h = mul (logxor h (shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = mul (logxor h (shift_right_logical h 27)) 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

let digest g =
  let h = ref (dmix 0x6d6c62732d676468L (Int64.of_int g.n)) in
  for u = 0 to g.n - 1 do
    let arr = g.adj.(u) in
    for i = 0 to Array.length arr - 1 do
      let v = arr.(i) in
      if u < v then h := dmix (dmix !h (Int64.of_int u)) (Int64.of_int v)
    done
  done;
  !h

(* ---------------------------- deltas ------------------------------- *)

(* Topology edits keep the node count fixed: churn in the service is
   edge-level (links appear and vanish, moved nodes swap their whole
   neighbourhood), so repaired schedules stay comparable index-for-index
   with the schedules they patch. *)

let edit g ~add ~remove ~rewire =
  let n = g.n in
  let check ctx u =
    if u < 0 || u >= n then
      invalid_arg (Printf.sprintf "Graph.edit: %s endpoint %d outside [0,%d)" ctx u n)
  in
  let sets = Array.init n (fun u -> Bitset.copy g.sets.(u)) in
  let drop u v =
    Bitset.remove sets.(u) v;
    Bitset.remove sets.(v) u
  in
  let put ctx u v =
    if u = v then invalid_arg (Printf.sprintf "Graph.edit: %s self-loop at %d" ctx u);
    Bitset.add sets.(u) v;
    Bitset.add sets.(v) u
  in
  List.iter
    (fun (u, v) ->
      check "remove" u;
      check "remove" v;
      drop u v)
    remove;
  (* Rewires apply in list order: each replaces the node's whole
     neighbourhood, so later entries win over earlier ones (generators
     emitting one consistent entry per moved node are order-free). *)
  List.iter
    (fun (u, nbrs) ->
      check "rewire" u;
      List.iter (fun v -> drop u v) (Bitset.elements sets.(u));
      List.iter
        (fun v ->
          check "rewire" v;
          put "rewire" u v)
        nbrs)
    rewire;
  List.iter
    (fun (u, v) ->
      check "add" u;
      check "add" v;
      put "add" u v)
    add;
  build n (Array.map Bitset.elements sets)

let diff_endpoints a b =
  if a.n <> b.n then invalid_arg "Graph.diff_endpoints: node counts differ";
  let out = ref [] in
  for u = a.n - 1 downto 0 do
    if not (Bitset.equal a.sets.(u) b.sets.(u)) then out := u :: !out
  done;
  !out

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
