(** Immutable undirected graphs over nodes [0 .. n-1], CSR-style.

    This is the topology substrate shared by the WSN network layer, the
    schedulers and the radio simulator. Adjacency is stored as sorted
    arrays (compressed sparse rows) for cache-friendly neighbour scans,
    plus per-node [Bitset]s for O(1) membership and O(words) neighbour
    intersections — the conflict test [N(u) ∩ N(v) ∩ W̄ ≠ ∅] runs
    millions of times per experiment. *)

type t

(** [of_edges ~n edges] builds the graph with node count [n] from an
    undirected edge list. Self-loops are rejected, duplicates collapse.
    Raises [Invalid_argument] for endpoints outside [0, n). *)
val of_edges : n:int -> (int * int) list -> t

(** [of_adjacency adj] builds from an explicit neighbour list per node
    (must be symmetric; raises [Invalid_argument] if not). *)
val of_adjacency : int list array -> t

(** [n_nodes g] is the node count. *)
val n_nodes : t -> int

(** [n_edges g] is the undirected edge count. *)
val n_edges : t -> int

(** [degree g u] is [|N(u)|]. *)
val degree : t -> int -> int

(** [neighbors g u] is the sorted neighbour array of [u]. The returned
    array is the internal one: callers must not mutate it. *)
val neighbors : t -> int -> int array

(** [neighbor_set g u] is [N(u)] as a bit set (internal, do not
    mutate). *)
val neighbor_set : t -> int -> Mlbs_util.Bitset.t

(** [mem_edge g u v] is O(log degree) edge membership. *)
val mem_edge : t -> int -> int -> bool

(** [iter_neighbors g u ~f] applies [f] to each neighbour of [u]. *)
val iter_neighbors : t -> int -> f:(int -> unit) -> unit

(** [fold_neighbors g u ~init ~f] folds over neighbours of [u]. *)
val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [edges g] lists each undirected edge once as [(u, v)] with
    [u < v]. *)
val edges : t -> (int * int) list

(** [max_degree g] is the maximum degree, 0 for an empty graph. *)
val max_degree : t -> int

(** [common_neighbor_in g u v ~candidates] is [true] iff some node in
    [candidates] is adjacent to both [u] and [v] — the paper's conflict
    predicate with [candidates = W̄]. Allocation-free. *)
val common_neighbor_in : t -> int -> int -> candidates:Mlbs_util.Bitset.t -> bool

(** [digest g] is a canonical 64-bit digest of the labelled adjacency:
    two graphs digest equal iff they have the same node count and the
    same edge set, however they were presented — edge-list order,
    duplicate edges and [of_edges]-vs-[of_adjacency] construction all
    collapse to the same value, while flipping a single edge changes
    it (with overwhelming probability). This is the content-address
    primitive of the scheduling service's schedule cache. *)
val digest : t -> int64

(** [edit g ~add ~remove ~rewire] is [g] with the delta applied, node
    count unchanged: [remove]d edges dropped first, then each
    [(u, nbrs)] in [rewire] replaces [u]'s entire neighbourhood (in
    list order — one consistent entry per moved node makes the order
    irrelevant), then [add]ed edges inserted. Duplicates collapse;
    self-loops and out-of-range endpoints raise [Invalid_argument].
    This is the churn primitive behind the scheduling service's delta
    requests: the edited graph's {!digest} is the repaired schedule's
    new content address, while the base digest keys the warm-start
    family (see lib/server). *)
val edit :
  t ->
  add:(int * int) list ->
  remove:(int * int) list ->
  rewire:(int * int list) list ->
  t

(** [diff_endpoints a b] is the sorted list of nodes whose neighbour
    sets differ between [a] and [b] — both endpoints of every changed
    edge. A memoised search value for informed set [W] survives a
    topology delta iff every one of these nodes is inside [W] (the
    search below [W] never looks at an edge between two informed
    nodes), which is exactly the re-validation predicate the
    reschedule engine feeds to the seeded search. Raises
    [Invalid_argument] when node counts differ. *)
val diff_endpoints : t -> t -> int list

(** [pp] prints a summary "graph(n=…, m=…)". *)
val pp : Format.formatter -> t -> unit
