module Bitset = Mlbs_util.Bitset

type result = { dist : int array; parent : int array }

let run_multi g ~sources =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg (Printf.sprintf "Bfs.run_multi: source %d" s);
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Graph.iter_neighbors g u ~f:(fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
  done;
  { dist; parent }

let run g ~source = run_multi g ~sources:[ source ]

(* ------------------------------------------------------------------ *)
(* Reusable-scratch variant: the M-counter lower bound runs a
   multi-source BFS per candidate successor, so the arrays are hoisted
   into a caller-owned scratch and the frontier queue is a flat ring
   (each node enqueues at most once, so capacity n suffices). *)

type scratch = { sdist : int array; squeue : int array }

let scratch n =
  if n < 0 then invalid_arg "Bfs.scratch: negative capacity";
  { sdist = Array.make (max 1 n) max_int; squeue = Array.make (max 1 n) 0 }

let scratch_capacity sc = Array.length sc.sdist

let run_multi_into sc g ~sources =
  let n = Graph.n_nodes g in
  if scratch_capacity sc < n then
    invalid_arg "Bfs.run_multi_into: scratch smaller than graph";
  Array.fill sc.sdist 0 n max_int;
  let tail = ref 0 in
  Bitset.iter
    (fun s ->
      sc.sdist.(s) <- 0;
      sc.squeue.(!tail) <- s;
      incr tail)
    sources;
  let head = ref 0 in
  while !head < !tail do
    let u = sc.squeue.(!head) in
    incr head;
    let du = sc.sdist.(u) + 1 in
    Graph.iter_neighbors g u ~f:(fun v ->
        if sc.sdist.(v) = max_int then begin
          sc.sdist.(v) <- du;
          sc.squeue.(!tail) <- v;
          incr tail
        end)
  done

let max_dist_from sc ~within =
  Bitset.fold
    (fun v acc ->
      let d = sc.sdist.(v) in
      if d = max_int || acc = max_int then max_int else max acc d)
    within 0

let layers g ~source =
  let r = run g ~source in
  let n = Graph.n_nodes g in
  let maxd = Array.fold_left (fun acc d -> if d <> max_int then max acc d else acc) 0 r.dist in
  let buckets = Array.make (maxd + 1) [] in
  for v = n - 1 downto 0 do
    if r.dist.(v) <> max_int then buckets.(r.dist.(v)) <- v :: buckets.(r.dist.(v))
  done;
  Array.to_list buckets

let eccentricity g ~source =
  let r = run g ~source in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Bfs.eccentricity: disconnected graph" else max acc d)
    0 r.dist

let max_dist_in r ~within =
  Bitset.fold
    (fun v acc ->
      let d = r.dist.(v) in
      if d = max_int || acc = max_int then max_int else max acc d)
    within 0
