(** A deployed WSN: node positions plus the induced unit-disk graph.

    This is the paper's network model (§III): [N(u)] is every node
    within the communication radius of [u]. The graph, hull membership
    and per-quadrant neighbour partition are all precomputed here
    because the schedulers consult them constantly. *)

type t

(** [create ~radius points] builds the UDG over [points]. Raises
    [Invalid_argument] when [radius <= 0] or two nodes coincide (the
    UDG and quadrant models assume distinct positions). *)
val create : radius:float -> Mlbs_geom.Point.t array -> t

(** [of_graph ~radius ~points g] wraps a pre-built graph (used by
    fixtures whose adjacency is specified explicitly rather than
    geometrically). [points] still drive quadrants and hull. Raises
    [Invalid_argument] when sizes disagree. *)
val of_graph : radius:float -> points:Mlbs_geom.Point.t array -> Mlbs_graph.Graph.t -> t

(** [synthetic g] wraps a bare connectivity graph in a deterministic
    unit-grid geometry (node [i] at [(i mod cols, i / cols)],
    [cols = ceil (sqrt n)], radius 1.0) — for adjacencies that carry no
    positions. Quadrants and hull derive from the fake geometry, so two
    calls on equal graphs yield networks the schedulers treat
    identically; the scheduling service and the reschedule engine both
    rely on this to keep derived schedules byte-reproducible. *)
val synthetic : Mlbs_graph.Graph.t -> t

(** [graph t] is the connectivity graph. *)
val graph : t -> Mlbs_graph.Graph.t

(** [n_nodes t] is the node count. *)
val n_nodes : t -> int

(** [radius t] is the communication radius. *)
val radius : t -> float

(** [position t u] is node [u]'s coordinates. *)
val position : t -> int -> Mlbs_geom.Point.t

(** [positions t] is the full coordinate array (internal; do not
    mutate). *)
val positions : t -> Mlbs_geom.Point.t array

(** [neighbors t u] is [N(u)], sorted. *)
val neighbors : t -> int -> int array

(** [neighbors_in_quadrant t u q] is [N(u) ∩ Q_q(u)], sorted — the set
    Algorithm 2 relaxes over. *)
val neighbors_in_quadrant : t -> int -> Mlbs_geom.Quadrant.t -> int array

(** [on_hull t u] is [true] iff [u] lies on the convex hull of the
    deployment. *)
val on_hull : t -> int -> bool

(** [is_connected t] is connectivity of the UDG. *)
val is_connected : t -> bool

(** [density t ~area] is nodes per unit area. *)
val density : t -> area:float -> float

(** [pp] prints a short summary. *)
val pp : Format.formatter -> t -> unit
