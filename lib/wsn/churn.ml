module Point = Mlbs_geom.Point
module Graph = Mlbs_graph.Graph
module Rng = Mlbs_prng.Rng

type delta = {
  network : Network.t;
  moved : int list;
  rewired : (int * int list) list;
}

(* The k nodes nearest the centre, centre included — a contiguous blob,
   matching how physical drift perturbs a deployment. *)
let nearest points ~centre ~k =
  let n = Array.length points in
  let order = Array.init n (fun i -> i) in
  let d2 i = Point.dist2 points.(centre) points.(i) in
  Array.sort (fun a b -> compare (d2 a, a) (d2 b, b)) order;
  Array.sub order 0 k

let rewires_between g g' =
  let n = Graph.n_nodes g in
  let out = ref [] in
  for u = n - 1 downto 0 do
    if Graph.neighbors g u <> Graph.neighbors g' u then
      out := (u, Array.to_list (Graph.neighbors g' u)) :: !out
  done;
  !out

let drift ?(max_attempts = 100) rng net ~k ~jitter =
  let n = Network.n_nodes net in
  if k < 1 || k > n then invalid_arg "Churn.drift: k out of range";
  if jitter <= 0. then invalid_arg "Churn.drift: jitter <= 0";
  let radius = Network.radius net in
  let base = Network.positions net in
  let centre = Rng.int rng n in
  let moved = nearest base ~centre ~k in
  let attempt () =
    let points = Array.copy base in
    Array.iter
      (fun u ->
        let dx = Rng.float rng (2. *. jitter) -. jitter in
        let dy = Rng.float rng (2. *. jitter) -. jitter in
        let p = points.(u) in
        points.(u) <- Point.v (p.Point.x +. dx) (p.Point.y +. dy))
      moved;
    match Network.create ~radius points with
    | net' when Network.is_connected net' -> Some net'
    | _ -> None
    | exception Invalid_argument _ -> None (* jitter collided two nodes *)
  in
  let rec retry i =
    if i >= max_attempts then
      failwith
        (Printf.sprintf "Churn.drift: no connected drift in %d attempts" max_attempts)
    else match attempt () with Some net' -> net' | None -> retry (i + 1)
  in
  let network = retry 0 in
  {
    network;
    moved = List.sort compare (Array.to_list moved);
    rewired = rewires_between (Network.graph net) (Network.graph network);
  }
