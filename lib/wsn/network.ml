module Point = Mlbs_geom.Point
module Quadrant = Mlbs_geom.Quadrant
module Hull = Mlbs_geom.Hull
module Graph = Mlbs_graph.Graph
module Components = Mlbs_graph.Components

type t = {
  radius : float;
  points : Point.t array;
  graph : Graph.t;
  hull : bool array;
  by_quadrant : int array array array; (* node -> quadrant index -> sorted neighbours *)
}

let check_distinct points =
  let tbl = Hashtbl.create (Array.length points) in
  Array.iteri
    (fun i p ->
      match Hashtbl.find_opt tbl (p.Point.x, p.Point.y) with
      | Some j ->
          invalid_arg (Printf.sprintf "Network: nodes %d and %d share position" j i)
      | None -> Hashtbl.add tbl (p.Point.x, p.Point.y) i)
    points

let partition_quadrants points graph =
  Array.mapi
    (fun u origin ->
      let buckets = Array.make 4 [] in
      Array.iter
        (fun v ->
          match Quadrant.classify ~origin points.(v) with
          | Some q ->
              let k = Quadrant.to_index q in
              buckets.(k) <- v :: buckets.(k)
          | None -> ())
        (Graph.neighbors graph u);
      Array.map (fun l -> Array.of_list (List.rev l)) buckets)
    points

let of_graph ~radius ~points graph =
  if radius <= 0. then invalid_arg "Network.of_graph: radius <= 0";
  if Array.length points <> Graph.n_nodes graph then
    invalid_arg "Network.of_graph: points/graph size mismatch";
  check_distinct points;
  {
    radius;
    points;
    graph;
    hull = Hull.on_hull points;
    by_quadrant = partition_quadrants points graph;
  }

let synthetic graph =
  let n = Graph.n_nodes graph in
  let cols = max 1 (int_of_float (ceil (sqrt (float_of_int (max n 1))))) in
  let points =
    Array.init n (fun i -> Point.v (float_of_int (i mod cols)) (float_of_int (i / cols)))
  in
  of_graph ~radius:1.0 ~points graph

let create ~radius points =
  if radius <= 0. then invalid_arg "Network.create: radius <= 0";
  check_distinct points;
  let grid = Grid.create ~cell:radius points in
  let graph = Graph.of_edges ~n:(Array.length points) (Grid.pairs_within grid ~radius) in
  of_graph ~radius ~points graph

let graph t = t.graph
let n_nodes t = Array.length t.points
let radius t = t.radius
let position t u = t.points.(u)
let positions t = t.points
let neighbors t u = Graph.neighbors t.graph u

let neighbors_in_quadrant t u q = t.by_quadrant.(u).(Quadrant.to_index q)

let on_hull t u = t.hull.(u)

let is_connected t = Components.is_connected t.graph

let density t ~area =
  if area <= 0. then invalid_arg "Network.density: area <= 0";
  float_of_int (n_nodes t) /. area

let pp ppf t =
  Format.fprintf ppf "network(n=%d, r=%.1f, m=%d)" (n_nodes t) t.radius
    (Graph.n_edges t.graph)
