(** Localised topology churn for dynamic-network experiments.

    Sensor deployments drift locally — a cluster of nodes shifts (wind,
    water, vehicles) while the rest of the field stays put. [drift]
    models exactly that: it picks a random drift centre, displaces the
    [k] nodes nearest to it by a bounded jitter, rebuilds the unit-disk
    graph, and reports the change as the rewire delta
    {!Mlbs_graph.Graph.edit} and the reschedule engine consume. Node
    count and identities are preserved; only edges change. *)

(** A drift event: the moved deployment and its graph delta. *)
type delta = {
  network : Network.t;  (** the deployment after the drift *)
  moved : int list;  (** the nodes that were displaced, ascending *)
  rewired : (int * int list) list;
      (** full new adjacency for every node whose neighbour set
          changed — exactly the [rewire] argument of
          {!Mlbs_graph.Graph.edit}; empty when the drift did not cross
          any radius threshold *)
}

(** [drift rng net ~k ~jitter] displaces the [k] nodes nearest a random
    centre node by independent uniform offsets in
    [[-jitter, +jitter]²], resampling offsets until the drifted UDG is
    both collision-free and connected (a broadcast must still reach
    every node). Raises [Invalid_argument] when [k] is not in
    [1..n] or [jitter <= 0], and [Failure] after [max_attempts]
    (default 100) failed resamples. *)
val drift :
  ?max_attempts:int ->
  Mlbs_prng.Rng.t ->
  Network.t ->
  k:int ->
  jitter:float ->
  delta
