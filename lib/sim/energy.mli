(** Energy accounting for a broadcast schedule — the paper's future-work
    direction ("the further optimization can be conducted with other
    constraints, such as energy saving").

    The duty-cycle system exists to save energy: sending dominates
    consumption, receiving is cheap, idle listening cheaper still
    (§III). This module charges a schedule under a simple parametric
    model so policies can be compared on energy as well as latency. *)

(** Energy prices in arbitrary units. Defaults follow the usual WSN
    radio ratios (send ≫ receive > idle-listen per slot). *)
type prices = {
  tx : float;  (** one neighbor-cast *)
  rx : float;  (** one successful reception *)
  idle_per_slot : float;  (** listening, per node per slot of the broadcast *)
}

val default_prices : prices

type report = {
  total : float;
  tx_energy : float;
  rx_energy : float;
  idle_energy : float;
  per_node : float array;  (** indexed by node id *)
}

(** [charge ?prices ?allow_resend ?faults model schedule] replays the
    schedule on the radio simulator and prices every transmission,
    reception and idle slot between [start] and [finish]. Receptions are
    the radio's (a node caught in a collision pays nothing — it decoded
    nothing). Under a fault plan, senders the replay silenced (crashed,
    message-less, jitter-asleep) pay no transmit energy, and corrupted
    receptions pay nothing; with {!Fault.is_noop} the report is
    byte-identical to the fault-free one. *)
val charge :
  ?prices:prices ->
  ?allow_resend:bool ->
  ?faults:Fault.t ->
  Mlbs_core.Model.t ->
  Mlbs_core.Schedule.t ->
  report
