module Splitmix64 = Mlbs_prng.Splitmix64
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type loss =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of {
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
    }

type crash = { node : int; at : int; recover : int option }

type spec = { loss : loss; crashes : crash list; wake_jitter : int; seed : int }

type ge_state = Good | Bad

type t = {
  spec : spec;
  crash_tbl : (int, (int * int option) list) Hashtbl.t;
  (* Gilbert–Elliott per-directed-link memo: the chain state after the
     transitions of slots 1..slot. Purely an accelerator — the state at
     any slot is a function of (seed, link, slot) alone, so recomputing
     from slot 0 gives the same answer in any query order. *)
  ge_memo : (int, int * ge_state) Hashtbl.t option;
}

(* Stateless hash of the master seed and up to four coordinates to a
   unit float — the plan's only source of randomness. Feeding the
   coordinates through separate SplitMix64 steps (same construction as
   [Wake_schedule]) keeps streams for different links/slots/channels
   statistically independent. *)
let unit_roll seed a b c d =
  let open Int64 in
  let feed z x =
    let g = Splitmix64.create (logxor z (mul (of_int x) 0x9E3779B97F4A7C15L)) in
    Splitmix64.next g
  in
  let z = feed (of_int seed) a in
  let z = feed z b in
  let z = feed z c in
  let z = feed z d in
  Splitmix64.next_float (Splitmix64.create z)

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Fault.make: %s = %g outside [0, 1]" what p)

let validate spec =
  (match spec.loss with
  | No_loss -> ()
  | Bernoulli p -> check_prob "loss" p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      check_prob "p_gb" p_gb;
      check_prob "p_bg" p_bg;
      check_prob "loss_good" loss_good;
      check_prob "loss_bad" loss_bad);
  if spec.wake_jitter < 0 then invalid_arg "Fault.make: negative wake_jitter";
  List.iter
    (fun { node; at; recover } ->
      match recover with
      | Some r when r <= at ->
          invalid_arg
            (Printf.sprintf "Fault.make: node %d recovers at %d <= crash slot %d" node r
               at)
      | _ -> ())
    spec.crashes

let make spec =
  validate spec;
  let crash_tbl = Hashtbl.create (2 * List.length spec.crashes) in
  List.iter
    (fun { node; at; recover } ->
      let prev = Option.value (Hashtbl.find_opt crash_tbl node) ~default:[] in
      Hashtbl.replace crash_tbl node ((at, recover) :: prev))
    spec.crashes;
  let ge_memo =
    match spec.loss with
    | Gilbert_elliott _ -> Some (Hashtbl.create 256)
    | _ -> None
  in
  { spec; crash_tbl; ge_memo }

let none = make { loss = No_loss; crashes = []; wake_jitter = 0; seed = 0 }

let spec t = t.spec

let is_noop t =
  (match t.spec.loss with No_loss | Bernoulli 0. -> true | _ -> false)
  && t.spec.crashes = []
  && t.spec.wake_jitter = 0

(* Channel tags < 0 are reserved for the plan's own internal streams so
   user channels (data 0, beacon 1, E-construction 2, ...) never collide
   with them. *)
let tag_ge_transition = -1
let tag_jitter = -2
let tag_crash = -3

let ge_state t ~link ~slot p_gb p_bg =
  match t.ge_memo with
  | None -> Good
  | Some memo ->
      let advance state s =
        let u = unit_roll t.spec.seed tag_ge_transition s (link lsr 24) (link land 0xFFFFFF) in
        match state with
        | Good -> if u < p_gb then Bad else Good
        | Bad -> if u < p_bg then Good else Bad
      in
      let from_slot, from_state =
        match Hashtbl.find_opt memo link with
        | Some (s, st) when s <= slot -> (s, st)
        | _ -> (0, Good)
      in
      let state = ref from_state in
      for s = from_slot + 1 to slot do
        state := advance !state s
      done;
      (match Hashtbl.find_opt memo link with
      | Some (s, _) when s >= slot -> ()
      | _ -> Hashtbl.replace memo link (slot, !state));
      !state

let delivers ?(channel = 0) ~slot ~tx ~rx t =
  if channel < 0 then invalid_arg "Fault.delivers: negative channel";
  match t.spec.loss with
  | No_loss -> true
  | Bernoulli p ->
      p = 0. || unit_roll t.spec.seed channel slot tx rx >= p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      let link = (tx lsl 24) lor (rx land 0xFFFFFF) in
      let p =
        match ge_state t ~link ~slot p_gb p_bg with
        | Good -> loss_good
        | Bad -> loss_bad
      in
      p = 0. || unit_roll t.spec.seed channel slot tx rx >= p

let alive t ~slot u =
  match Hashtbl.find_opt t.crash_tbl u with
  | None -> true
  | Some windows ->
      not
        (List.exists
           (fun (at, recover) ->
             at <= slot && match recover with None -> true | Some r -> slot < r)
           windows)

let jittered t sched =
  let j = t.spec.wake_jitter in
  if j = 0 then sched
  else
    let n = Wake_schedule.n_nodes sched in
    let offsets =
      Array.init n (fun u ->
          let u01 = unit_roll t.spec.seed tag_jitter u 0 0 in
          int_of_float (u01 *. float_of_int ((2 * j) + 1)) - j)
    in
    Wake_schedule.shifted sched ~offsets

let sample_crashes ~n_nodes ~fraction ~window:(lo, hi) ?(avoid = []) ~seed () =
  if not (fraction >= 0. && fraction <= 1.) then
    invalid_arg "Fault.sample_crashes: fraction outside [0, 1]";
  if hi < lo then invalid_arg "Fault.sample_crashes: empty window";
  let crashes = ref [] in
  for u = n_nodes - 1 downto 0 do
    if not (List.mem u avoid) then
      if unit_roll seed tag_crash u 0 0 < fraction then begin
        let at = lo + int_of_float (unit_roll seed tag_crash u 1 0 *. float_of_int (hi - lo + 1)) in
        crashes := { node = u; at = min at hi; recover = None } :: !crashes
      end
  done;
  !crashes
