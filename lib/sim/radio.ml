module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Interference = Mlbs_phy.Interference

type slot_event = {
  slot : int;
  senders : int list;
  received : int list;
  collided : (int * int list) list;
}

type outcome = {
  events : slot_event list;
  informed : Bitset.t;
  violations : string list;
  dropped : (int * int) list;
  lost : (int * int * int) list;
}

let replay ?(allow_resend = false) ?failed ?(faults = Fault.none) model schedule =
  let g = Model.graph model in
  let n = Model.n_nodes model in
  let failed = match failed with Some f -> f | None -> Bitset.create n in
  let fault_active = not (Fault.is_noop faults) in
  let inject_failures = not (Bitset.is_empty failed) || fault_active in
  let alive ~slot u = (not (Bitset.mem failed u)) && Fault.alive faults ~slot u in
  (* Under jitter a node's true wake sequence drifts from the one the
     scheduler planned against; the replay judges senders by the truth. *)
  let jittered_sched =
    match Model.system model with
    | Model.Sync -> None
    | Model.Async sched -> Some (Fault.jittered faults sched)
  in
  let w = Bitset.create n in
  Bitset.add w (Schedule.source schedule);
  let inst = Model.phy_instance model in
  let is_udg = match inst with Interference.I_udg _ -> true | _ -> false in
  (* Non-UDG reception needs the *claimed* informed set: multi-channel
     receivers derive their tuning from the schedule's plan (they cannot
     observe faults), so the slot context is built against the informed
     set the schedule claims, not the replay's ground truth. *)
  let claimed_w = Bitset.create n in
  Bitset.add claimed_w (Schedule.source schedule);
  let has_sent = Bitset.create n in
  let violations = ref [] in
  let dropped = ref [] in
  let lost = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let events =
    List.map
      (fun (step : Schedule.step) ->
        let slot = step.Schedule.slot in
        (* Crashed/failed senders emit nothing. *)
        let senders, crashed =
          List.partition (fun u -> alive ~slot u) step.Schedule.senders
        in
        List.iter (fun u -> dropped := (slot, u) :: !dropped) crashed;
        let effective =
          if not fault_active then begin
            (* Fault-free path: exactly the original well-formedness
               checks, byte-identical violations. *)
            List.iter
              (fun u ->
                if not (Bitset.mem w u) then
                  violate "slot %d: sender %d does not hold the message" slot u;
                if Bitset.mem has_sent u && not allow_resend then
                  violate "slot %d: sender %d already transmitted" slot u;
                (match Model.system model with
                | Model.Sync -> ()
                | Model.Async sched ->
                    if not (Wake_schedule.awake sched u ~slot) then
                      violate "slot %d: sender %d is asleep" slot u);
                Bitset.add has_sent u)
              senders;
            (* A sender that does not hold the message has nothing to
               emit: it is flagged above but cannot deliver (or
               interfere). *)
            List.filter (fun u -> Bitset.mem w u) senders
          end
          else begin
            (* Under faults a scheduled sender may legitimately lack the
               message (its own copy was lost upstream) or be asleep
               (jitter): it simply stays silent. Double transmission
               remains a schedule bug. *)
            List.iter
              (fun u ->
                if Bitset.mem has_sent u && not allow_resend then
                  violate "slot %d: sender %d already transmitted" slot u;
                Bitset.add has_sent u)
              senders;
            List.filter
              (fun u ->
                let holds = Bitset.mem w u in
                let awake =
                  match jittered_sched with
                  | None -> true
                  | Some sched -> Wake_schedule.awake sched u ~slot
                in
                if not (holds && awake) then dropped := (slot, u) :: !dropped;
                holds && awake)
              senders
          end
        in
        (* Reception: an uninformed node hearing exactly one transmission
           receives — if the payload survives the link; corrupted
           packets still interfere. Hearing several is a collision.
           Crashed nodes hear nothing. *)
        let received = ref [] and collided = ref [] in
        (if is_udg then
           for v = n - 1 downto 0 do
             if (not (Bitset.mem w v)) && alive ~slot v then begin
               let hearers = List.filter (fun u -> Graph.mem_edge g u v) effective in
               match hearers with
               | [] -> ()
               | [ u ] ->
                   if Fault.delivers ~slot ~tx:u ~rx:v faults then
                     received := v :: !received
                   else lost := (slot, u, v) :: !lost
               | several -> collided := (v, several) :: !collided
             end
           done
         else begin
           let uninformed_claimed = Bitset.complement claimed_w in
           let ctx =
             Interference.slot_ctx inst ~uninformed:uninformed_claimed
               ~scheduled:step.Schedule.senders
           in
           (match inst with
           | Interference.I_mc { k; _ } ->
               let used = Interference.slot_channels ctx in
               if used > k then
                 violate "slot %d: senders need %d channels but only %d exist" slot used k
           | _ -> ());
           for v = n - 1 downto 0 do
             if (not (Bitset.mem w v)) && alive ~slot v then
               match Interference.reception ctx ~effective ~rx:v with
               | Interference.Silent -> ()
               | Interference.Delivered u ->
                   if Fault.delivers ~slot ~tx:u ~rx:v faults then
                     received := v :: !received
                   else lost := (slot, u, v) :: !lost
               | Interference.Collision several -> collided := (v, several) :: !collided
           done;
           List.iter (Bitset.add claimed_w) step.Schedule.informed
         end);
        List.iter (Bitset.add w) !received;
        (* Cross-check the scheduler's claim against the replay (not
           meaningful when failures were injected). *)
        if
          (not inject_failures)
          && !received <> List.sort_uniq compare step.Schedule.informed
        then violate "slot %d: claimed informed set differs from radio outcome" slot;
        { slot; senders; received = !received; collided = !collided })
      (Schedule.steps schedule)
  in
  {
    events;
    informed = w;
    violations = List.rev !violations;
    dropped = List.rev !dropped;
    lost = List.rev !lost;
  }
