(** Schedule validation on top of the radio replay.

    A valid broadcast schedule must (a) be well-formed (informed, awake,
    send-once senders and truthful claims), (b) be collision-free —
    conflict awareness is the paper's whole point — and (c) inform every
    node. Every scheduler's output is pushed through this check in the
    test suite and (optionally) in the experiment harness. *)

type report = {
  ok : bool;
  collisions : int;  (** collided (node, slot) pairs observed *)
  missing : int list;  (** nodes never informed *)
  violations : string list;  (** well-formedness problems *)
}

(** [check model schedule] replays and summarises. *)
val check : Mlbs_core.Model.t -> Mlbs_core.Schedule.t -> report

(** [check_exn model schedule] raises [Failure] with a descriptive
    message when the schedule is invalid. *)
val check_exn : Mlbs_core.Model.t -> Mlbs_core.Schedule.t -> unit

(** [check_lossy model schedule] validates the run of a lossy protocol
    (e.g. [Mlbs_core.Localized]): collisions and retransmissions are
    tolerated and merely counted; [ok] still requires full coverage,
    truthful per-slot claims, and senders that are informed and awake. *)
val check_lossy : Mlbs_core.Model.t -> Mlbs_core.Schedule.t -> report

(** [surviving_coverage model ~failed schedule] replays the schedule
    with the crash failures injected and reports which {e alive} nodes
    the broadcast still reaches — the failure-injection measurement.
    Returns (alive nodes informed, alive nodes total). *)
val surviving_coverage :
  Mlbs_core.Model.t -> failed:Mlbs_util.Bitset.t -> Mlbs_core.Schedule.t -> int * int

(** Verdict of a replay under a {!Fault} plan. Full coverage is not
    required — crashes legitimately cut nodes off — but every reception
    the replay granted must be {e conflict-free under the fault trace}:
    explainable as exactly one audible (alive, informed, truly-awake)
    adjacent sender whose packet survived its per-link loss roll. *)
type fault_report = {
  ok : bool;  (** no violations — all receptions conflict-free *)
  delivered : int;
      (** nodes informed and alive in the plan's end state (once every
          crash window has been applied) *)
  alive : int;  (** nodes alive in the plan's end state *)
  delivery_ratio : float;  (** delivered / alive (0 when none alive) *)
  latency : int;  (** schedule elapsed slots *)
  collisions : int;
  lost : int;  (** receptions erased by packet corruption *)
  violations : string list;
}

(** [check_under_faults ?allow_resend model ~faults schedule] replays
    the schedule under the fault plan and independently re-derives the
    informed progression from the outcome events, re-querying the plan
    ([Fault.delivers]/[alive] are pure) for every granted reception.
    [allow_resend] defaults to false; pass [true] for retransmitting
    protocols. *)
val check_under_faults :
  ?allow_resend:bool ->
  Mlbs_core.Model.t ->
  faults:Fault.t ->
  Mlbs_core.Schedule.t ->
  fault_report
