(** Slot-level radio replay — the custom simulator's ground truth.

    Schedulers claim which nodes each advance informs; this module does
    not trust them. It replays a schedule transmission by transmission
    under the model of §III: a transmission reaches every neighbour of
    the sender; an uninformed node that hears exactly one transmission
    in a slot receives the message; two or more overlapping
    transmissions collide at their common neighbour and deliver
    nothing. Senders must hold the message, be awake (duty cycle), and
    transmit at most once overall (each relay's neighbourhood empties
    after its cast, so a correct scheduler never re-sends).

    With a {!Fault} plan the same replay also models packet corruption
    (a lost packet still interferes but cannot deliver), node crashes
    (a dead node neither sends nor hears) and wake-slot jitter (a
    scheduled sender that drifted asleep stays silent). *)

module Bitset = Mlbs_util.Bitset

(** What happened at one slot of the replay. *)
type slot_event = {
  slot : int;
  senders : int list;
  received : int list;  (** newly informed, ascending *)
  collided : (int * int list) list;
      (** (node, the ≥2 senders it heard) — the node stays uninformed *)
}

type outcome = {
  events : slot_event list;  (** ascending by slot *)
  informed : Bitset.t;  (** final informed set *)
  violations : string list;  (** empty iff the schedule was well-formed *)
  dropped : (int * int) list;
      (** (slot, node): sends that never aired — crashed, message-less
          or jitter-asleep senders under injected failures *)
  lost : (int * int * int) list;
      (** (slot, tx, rx): airborne packets corrupted by the fault
          plan — the receiver heard only noise *)
}

(** [replay ?allow_resend ?failed ?faults model schedule] runs the radio
    simulation. Never raises on a malformed schedule — problems are
    reported in [violations] (and collisions in the per-slot events) so
    tests can assert on them.

    [allow_resend] (default false) suppresses the send-once violation:
    lossy protocols such as [Mlbs_core.Localized] legitimately
    retransmit after collisions.

    [failed] injects permanent crash failures: a failed node's
    transmissions are silently dropped (reported in [dropped], not as
    violations) and it never receives.

    [faults] (default {!Fault.none}) injects the full fault plan. When
    the plan {!Fault.is_noop}, the replay is byte-identical to the
    fault-free one. Otherwise senders lacking the message or asleep
    under jitter are dropped silently (the schedule was computed for a
    kinder world — diverging from it is the experiment), per-link loss
    rolls decide whether a collision-free reception actually delivers,
    and the per-slot claim check is skipped. *)
val replay :
  ?allow_resend:bool ->
  ?failed:Bitset.t ->
  ?faults:Fault.t ->
  Mlbs_core.Model.t ->
  Mlbs_core.Schedule.t ->
  outcome
