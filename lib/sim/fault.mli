(** Seeded, deterministic fault plans for the radio and the protocols.

    The paper's model is ideal: a slot either collides or delivers, and
    every node survives the broadcast. This module describes what a real
    low-duty-cycle deployment does instead — per-link packet corruption,
    node crashes (with optional recovery), and wake-slot clock jitter —
    as a {e plan}: a pure function of [(seed, slot, link)] that any
    component can query without sharing state. Two consumers asking the
    same question always get the same answer, in any order, so the radio
    replay, the protocols and the independent validator all see one
    consistent fault trace, and an experiment is exactly reproducible
    from [--fault-seed].

    {b Loss is corruption, not silence.} A lost packet still arrives as
    energy at the receiver — its payload fails the checksum. So a lossy
    transmission still {e interferes} (two audible senders collide
    whether or not either payload would have survived), it just cannot
    deliver. This keeps the delivered set monotone non-increasing in the
    loss rate under a fixed seed: raising [--loss] can only erase
    receptions, never mint new ones (tested by qcheck).

    A plan with zero loss, no crashes and no jitter is recognised by
    {!is_noop}; every consumer treats it as a strict no-op, so fault-
    free runs stay byte-identical to the pre-fault code paths.

    The Gilbert–Elliott chain memoises per-link state internally; a
    plan is therefore cheap to query repeatedly but must not be shared
    across domains (create one per worker task). *)

(** Per-link packet-loss model. Probabilities are loss probabilities in
    [0, 1]. *)
type loss =
  | No_loss
  | Bernoulli of float  (** i.i.d. loss per (slot, link) *)
  | Gilbert_elliott of {
      p_gb : float;  (** per-slot transition good → bad *)
      p_bg : float;  (** per-slot transition bad → good *)
      loss_good : float;  (** loss probability in the good state *)
      loss_bad : float;  (** loss probability in the bad state (bursts) *)
    }

(** One crash event: [node] dies at slot [at] (inclusive) and, with
    [recover = Some r], comes back — without the message or any state it
    learned — at slot [r] (exclusive: dead during [at, r)). *)
type crash = { node : int; at : int; recover : int option }

type spec = {
  loss : loss;
  crashes : crash list;
  wake_jitter : int;
      (** max |offset| of per-node wake-slot translation (duty cycle
          only); 0 disables *)
  seed : int;  (** master seed of every roll the plan makes *)
}

type t

(** The strict no-op plan (no loss, no crashes, no jitter). *)
val none : t

(** [make spec] compiles a plan. Raises [Invalid_argument] on
    probabilities outside [0, 1], negative jitter, or a crash/recover
    pair with [recover <= at]. *)
val make : spec -> t

val spec : t -> spec

(** [is_noop t] is [true] iff the plan can never drop, kill or shift
    anything — [No_loss] (or [Bernoulli 0.]), no crashes, zero jitter.
    Consumers use this to keep the fault-free fast path byte-identical
    to the pre-fault code. *)
val is_noop : t -> bool

(** [delivers ?channel ~slot ~tx ~rx t] — does the packet sent by [tx]
    at [slot] survive the link to [rx]? Deterministic in
    [(seed, channel, slot, tx, rx)] and independent of query order.
    [channel] separates the data radio (0, default) from the beacon (1)
    and E-construction (2) control streams so their rolls do not
    correlate. Rolls are {e coupled across loss rates}: with the same
    seed, every delivery that survives [Bernoulli p] also survives
    [Bernoulli p'] for [p' <= p]. *)
val delivers : ?channel:int -> slot:int -> tx:int -> rx:int -> t -> bool

(** [alive t ~slot u] is [false] while [u] is inside one of its crash
    windows. Nodes not named in any crash are always alive. *)
val alive : t -> slot:int -> int -> bool

(** [jittered t sched] applies the plan's wake-slot jitter to a wake
    schedule: each node's sequence is translated by a seeded offset in
    [[-wake_jitter, wake_jitter]]. Identity when [wake_jitter = 0].
    Neighbour forecasts computed from the {e unshifted} schedule go
    stale — exactly the failure the retry machinery must absorb. *)
val jittered : t -> Mlbs_dutycycle.Wake_schedule.t -> Mlbs_dutycycle.Wake_schedule.t

(** [sample_crashes ~n_nodes ~fraction ~window ?avoid ~seed] draws a
    deterministic crash schedule: each node outside [avoid] crashes with
    probability [fraction], at a slot uniform in the inclusive
    [window], without recovery. Raises [Invalid_argument] for
    [fraction] outside [0, 1] or an empty window. *)
val sample_crashes :
  n_nodes:int ->
  fraction:float ->
  window:int * int ->
  ?avoid:int list ->
  seed:int ->
  unit ->
  crash list
