module Bitset = Mlbs_util.Bitset
module Interference = Mlbs_phy.Interference

type report = {
  ok : bool;
  collisions : int;
  missing : int list;
  violations : string list;
}

let summarize outcome ~collision_free =
  let collisions =
    List.fold_left (fun acc e -> acc + List.length e.Radio.collided) 0 outcome.Radio.events
  in
  let missing = Bitset.elements (Bitset.complement outcome.Radio.informed) in
  let ok =
    ((not collision_free) || collisions = 0)
    && missing = []
    && outcome.Radio.violations = []
  in
  { ok; collisions; missing; violations = outcome.Radio.violations }

let check model schedule = summarize (Radio.replay model schedule) ~collision_free:true

let check_lossy model schedule =
  summarize (Radio.replay ~allow_resend:true model schedule) ~collision_free:false

let surviving_coverage model ~failed schedule =
  let outcome = Radio.replay ~allow_resend:true ~failed model schedule in
  let n = Mlbs_core.Model.n_nodes model in
  let informed_alive = ref 0 and alive = ref 0 in
  for v = 0 to n - 1 do
    if not (Bitset.mem failed v) then begin
      incr alive;
      if Bitset.mem outcome.Radio.informed v then incr informed_alive
    end
  done;
  (!informed_alive, !alive)

type fault_report = {
  ok : bool;
  delivered : int;
  alive : int;
  delivery_ratio : float;
  latency : int;
  collisions : int;
  lost : int;
  violations : string list;
}

let check_under_faults ?(allow_resend = false) model ~faults schedule =
  let outcome = Radio.replay ~allow_resend ~faults model schedule in
  let n = Mlbs_core.Model.n_nodes model in
  let g = Mlbs_core.Model.graph model in
  (* Independent re-derivation: every reception the replay granted must
     be explainable as exactly one audible (alive, informed, awake)
     sender whose packet survived its link roll. This re-asks the fault
     plan directly — [Fault.delivers]/[alive] are pure in (seed, slot,
     link), so agreement means the delivered receptions really are
     conflict-free under the fault trace, not just self-consistent. *)
  let jittered_sched =
    match Mlbs_core.Model.system model with
    | Mlbs_core.Model.Sync -> None
    | Mlbs_core.Model.Async sched -> Some (Fault.jittered faults sched)
  in
  let informed = Bitset.create n in
  Bitset.add informed (Mlbs_core.Schedule.source schedule);
  let inst = Mlbs_core.Model.phy_instance model in
  let is_udg = match inst with Interference.I_udg _ -> true | _ -> false in
  (* Non-UDG reception depends on the *claimed* informed progression
     (multi-channel tuning, SINR interference sums over the planned
     slot), replayed from the schedule's own steps — the same inputs
     [Radio.replay] uses, re-derived here independently. *)
  let claimed = Bitset.create n in
  Bitset.add claimed (Mlbs_core.Schedule.source schedule);
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  List.iter2
    (fun (e : Radio.slot_event) (step : Mlbs_core.Schedule.step) ->
      let slot = e.Radio.slot in
      let audible =
        List.filter
          (fun u ->
            Fault.alive faults ~slot u
            && Bitset.mem informed u
            &&
            match jittered_sched with
            | None -> true
            | Some sched -> Mlbs_dutycycle.Wake_schedule.awake sched u ~slot)
          e.Radio.senders
      in
      let ctx =
        if is_udg then None
        else
          Some
            (Interference.slot_ctx inst
               ~uninformed:(Bitset.complement claimed)
               ~scheduled:step.Mlbs_core.Schedule.senders)
      in
      List.iter
        (fun v ->
          if Bitset.mem informed v then
            issue "slot %d: node %d received while already informed" slot v;
          if not (Fault.alive faults ~slot v) then
            issue "slot %d: dead node %d received" slot v;
          match ctx with
          | None -> (
              match List.filter (fun u -> Mlbs_graph.Graph.mem_edge g u v) audible with
              | [ u ] ->
                  if not (Fault.delivers ~slot ~tx:u ~rx:v faults) then
                    issue "slot %d: reception at %d but link %d->%d was corrupted" slot v
                      u v
              | hearers ->
                  issue "slot %d: reception at %d amid %d audible transmissions" slot v
                    (List.length hearers))
          | Some ctx -> (
              match Interference.reception ctx ~effective:audible ~rx:v with
              | Interference.Delivered u ->
                  if not (Fault.delivers ~slot ~tx:u ~rx:v faults) then
                    issue "slot %d: reception at %d but link %d->%d was corrupted" slot v
                      u v
              | Interference.Silent ->
                  issue "slot %d: reception at %d amid 0 audible transmissions" slot v
              | Interference.Collision several ->
                  issue "slot %d: reception at %d amid %d audible transmissions" slot v
                    (List.length several)))
        e.Radio.received;
      List.iter (Bitset.add informed) e.Radio.received;
      List.iter (Bitset.add claimed) step.Mlbs_core.Schedule.informed)
    outcome.Radio.events
    (Mlbs_core.Schedule.steps schedule);
  (* End-state accounting (alive once every crash window has been
     applied) so delivered/alive is comparable across policies whose
     runs end at different slots. *)
  let delivered = ref 0 and alive = ref 0 in
  for v = 0 to n - 1 do
    if Fault.alive faults ~slot:max_int v then begin
      incr alive;
      if Bitset.mem outcome.Radio.informed v then incr delivered
    end
  done;
  let collisions =
    List.fold_left (fun acc e -> acc + List.length e.Radio.collided) 0 outcome.Radio.events
  in
  let violations = outcome.Radio.violations @ List.rev !issues in
  {
    ok = violations = [];
    delivered = !delivered;
    alive = !alive;
    delivery_ratio =
      (if !alive = 0 then 0. else float_of_int !delivered /. float_of_int !alive);
    latency = Mlbs_core.Schedule.elapsed schedule;
    collisions;
    lost = List.length outcome.Radio.lost;
    violations;
  }

let check_exn model schedule =
  let r = check model schedule in
  if not r.ok then begin
    let parts =
      (if r.collisions > 0 then [ Printf.sprintf "%d collisions" r.collisions ] else [])
      @ (if r.missing <> [] then
           [ Printf.sprintf "%d nodes never informed" (List.length r.missing) ]
         else [])
      @ r.violations
    in
    failwith ("Validate.check_exn: invalid schedule: " ^ String.concat "; " parts)
  end
