module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule

type prices = { tx : float; rx : float; idle_per_slot : float }

let default_prices = { tx = 20.; rx = 5.; idle_per_slot = 0.1 }

type report = {
  total : float;
  tx_energy : float;
  rx_energy : float;
  idle_energy : float;
  per_node : float array;
}

let charge ?(prices = default_prices) ?(allow_resend = false) ?(faults = Fault.none)
    model schedule =
  let n = Model.n_nodes model in
  let per_node = Array.make n 0. in
  let outcome = Radio.replay ~allow_resend ~faults model schedule in
  (* Senders the replay silenced (crashed, message-less or jitter-asleep
     under faults) spent no transmit energy. *)
  let aired =
    if Fault.is_noop faults then fun _ _ -> true
    else begin
      let tbl = Hashtbl.create 64 in
      List.iter (fun (slot, u) -> Hashtbl.replace tbl (slot, u) ()) outcome.Radio.dropped;
      fun slot u -> not (Hashtbl.mem tbl (slot, u))
    end
  in
  let tx_energy = ref 0. and rx_energy = ref 0. in
  List.iter
    (fun e ->
      List.iter
        (fun u ->
          if aired e.Radio.slot u then begin
            per_node.(u) <- per_node.(u) +. prices.tx;
            tx_energy := !tx_energy +. prices.tx
          end)
        e.Radio.senders;
      List.iter
        (fun v ->
          per_node.(v) <- per_node.(v) +. prices.rx;
          rx_energy := !rx_energy +. prices.rx)
        e.Radio.received)
    outcome.Radio.events;
  let duration = float_of_int (max 0 (Schedule.elapsed schedule)) in
  let idle_one = prices.idle_per_slot *. duration in
  Array.iteri (fun i e -> per_node.(i) <- e +. idle_one) per_node;
  let idle_energy = idle_one *. float_of_int n in
  {
    total = !tx_energy +. !rx_energy +. idle_energy;
    tx_energy = !tx_energy;
    rx_energy = !rx_energy;
    idle_energy;
    per_node;
  }
