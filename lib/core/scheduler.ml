type policy =
  | Baseline
  | Emodel
  | Gopt of Mcounter.budget
  | Opt of { budget : Mcounter.budget; max_sets : int }

let gopt = Gopt Mcounter.default_budget

let opt = Opt { budget = Mcounter.default_budget; max_sets = Opt.default_max_sets }

let name ~system = function
  | Baseline -> ( match system with Model.Sync -> "26-approx" | Model.Async _ -> "17-approx")
  | Emodel -> "E-model"
  | Gopt _ -> "G-OPT"
  | Opt _ -> "OPT"

(* One top-level span per schedule construction, named after the
   policy, so a trace shows which scheduler each round tree belongs
   to. Disabled tracing costs one branch. *)
let run model policy ~source ~start =
  Mlbs_obs.Trace.with_span ~arg:start ~cat:"sched"
    (name ~system:(Model.system model) policy)
  @@ fun () ->
  match policy with
  | Baseline -> (
      match Model.system model with
      | Model.Sync -> Baseline26.plan model ~source ~start
      | Model.Async _ -> Baseline17.plan model ~source ~start)
  | Emodel -> Emodel.plan model ~source ~start
  | Gopt budget -> Gopt.plan ~budget model ~source ~start
  | Opt { budget; max_sets } -> Opt.plan ~budget ~max_sets model ~source ~start

let all_policies = [ Baseline; opt; gopt; Emodel ]
