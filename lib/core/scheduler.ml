type policy =
  | Baseline
  | Emodel
  | Gopt of Mcounter.budget
  | Opt of { budget : Mcounter.budget; max_sets : int }

let gopt = Gopt Mcounter.default_budget

let opt = Opt { budget = Mcounter.default_budget; max_sets = Opt.default_max_sets }

let name ~system = function
  | Baseline -> ( match system with Model.Sync -> "26-approx" | Model.Async _ -> "17-approx")
  | Emodel -> "E-model"
  | Gopt _ -> "G-OPT"
  | Opt _ -> "OPT"

(* One top-level span per schedule construction, named after the
   policy, so a trace shows which scheduler each round tree belongs
   to. Disabled tracing costs one branch. *)
let run model policy ~source ~start =
  Mlbs_obs.Trace.with_span ~arg:start ~cat:"sched"
    (name ~system:(Model.system model) policy)
  @@ fun () ->
  match policy with
  | Baseline -> (
      match Model.system model with
      | Model.Sync -> Baseline26.plan model ~source ~start
      | Model.Async _ -> Baseline17.plan model ~source ~start)
  | Emodel -> Emodel.plan model ~source ~start
  | Gopt budget -> Gopt.plan ~budget model ~source ~start
  | Opt { budget; max_sets } -> Opt.plan ~budget ~max_sets model ~source ~start

(* The search space a policy's M-counter runs over, when it has one. *)
let space_of = function
  | Baseline | Emodel -> None
  | Gopt _ -> Some Choices.Greedy
  | Opt { max_sets; _ } -> Some (Choices.All { max_sets })

(* Gate a snapshot for reuse under [policy]: search-based policy, same
   choice space, exact capture, comfortable budget margin (see
   [Mcounter.snapshot_reusable]). The validity predicate is the
   caller's soundness obligation. *)
let warm_seeds policy snap ~n ~valid =
  match policy with
  | Baseline | Emodel -> None
  | Gopt budget ->
      if Mcounter.snapshot_reusable snap ~space:Choices.Greedy ~budget ~n then
        Some (snap, valid)
      else None
  | Opt { budget; max_sets } ->
      if Mcounter.snapshot_reusable snap ~space:(Choices.All { max_sets }) ~budget ~n
      then Some (snap, valid)
      else None

(* Warm entry point: same schedules as [run], byte for byte, but the
   search-based policies capture their memo snapshot for later reuse
   and accept seeds from a previous one. Policies without a search
   (Baseline, E-model) are already microseconds-cheap: they re-run
   plainly and carry no snapshot. *)
let run_warm model policy ?seeds ~source ~start () =
  match policy with
  | Baseline | Emodel -> (run model policy ~source ~start, None)
  | Gopt budget ->
      Mlbs_obs.Trace.with_span ~arg:start ~cat:"sched"
        (name ~system:(Model.system model) policy)
      @@ fun () ->
      let s, snap =
        Mcounter.plan_snapshot ?seeds model Choices.Greedy ~budget ~source ~start
      in
      (s, Some snap)
  | Opt { budget; max_sets } ->
      Mlbs_obs.Trace.with_span ~arg:start ~cat:"sched"
        (name ~system:(Model.system model) policy)
      @@ fun () ->
      let s, snap =
        Mcounter.plan_snapshot ?seeds model
          (Choices.All { max_sets })
          ~budget ~source ~start
      in
      (s, Some snap)

let all_policies = [ Baseline; opt; gopt; Emodel ]
