module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph

let opt_sync ~d = d + 2

let opt_async ~d ~rate = 2 * rate * (d + 2)

let jiao17 ~d ~rate = 17 * (2 * rate) * d

let chen26 ~d = 26 * d

let source_depth model ~source =
  Mlbs_graph.Bfs.eccentricity (Model.graph model) ~source

(* ------------------------------------------------------------------ *)
(* Search-side admissible lower bounds on the remaining advance count, *)
(* read straight off the Istate's maintained distance structure.       *)
(*                                                                     *)
(* Eccentricity: every advance informs only distance-1 nodes, so no    *)
(* distance drops by more than one per advance and a node at distance  *)
(* d needs >= d further advances — [Istate.lb] carries this for free.  *)
(*                                                                     *)
(* Packing refutation: suppose exactly d = dmax advances sufficed.     *)
(* A node at distance d can be informed at advance k only if its       *)
(* distance reached 1 by advance k-1, i.e. k >= d — so the whole top   *)
(* layer L_d is informed in the single final advance (sync round or    *)
(* async slot). Its senders are informed before that advance and       *)
(* adjacent to L_d, hence lie in L_{d-1} (or in W itself when d = 1):  *)
(* L_d nodes are informed too late to send, deeper nodes do not exist. *)
(* When some x in L_d has a unique candidate parent u, that u is       *)
(* forced to transmit in the final advance. Two forced parents         *)
(* adjacent to one still-uninformed y in L_d conflict under the        *)
(* paper's predicate (N(u) ∩ N(v) ∩ W̄ ∋ y), refuting the d-advance    *)
(* completion: the bound tightens to d + 1. The same argument holds    *)
(* under duty cycling — wake constraints only delay advances further.  *)
(* ------------------------------------------------------------------ *)

type kind = Ecc | Packing

(* Domain-local forced-parent scratch, keyed per domain like Mcounter's
   BFS scratch so parallel sweeps never race; resized lazily when the
   node count changes between instances. *)
let forced_key : Bitset.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_forced n =
  let slot = Domain.DLS.get forced_key in
  match !slot with
  | Some f when Bitset.cap f = n -> f
  | _ ->
      let f = Bitset.create n in
      slot := Some f;
      f

(* The packing argument leans on the UDG conflict predicate: under SINR
   the capture effect can let two forced parents transmit together (one
   wins at y), and under multi-channel they can sit on distinct
   channels — either way the refutation is unsound, so only the
   eccentricity bound applies (every advance still informs only
   distance-1 nodes under every backend). *)
let packing_applies st =
  match Model.phy (Istate.model st) with
  | Mlbs_phy.Interference.Udg -> true
  | Mlbs_phy.Interference.Sinr _ | Mlbs_phy.Interference.Multichannel _ -> false

let remaining st =
  if Istate.complete st then (0, Ecc)
  else
    let d = Istate.lb st in
    if d = max_int then (max_int, Ecc)
    else if not (packing_applies st) then (d, Ecc)
    else begin
      let g = Model.graph (Istate.model st) in
      let top = Istate.layer st ~d in
      let parents = if d = 1 then Istate.w st else Istate.layer st ~d:(d - 1) in
      let forced = local_forced (Istate.capacity st) in
      Bitset.clear forced;
      let any_forced = ref false in
      Bitset.iter
        (fun x ->
          let cnt = ref 0 and last = ref (-1) in
          Graph.iter_neighbors g x ~f:(fun v ->
              if Bitset.mem parents v then begin
                incr cnt;
                last := v
              end);
          if !cnt = 1 then begin
            Bitset.add forced !last;
            any_forced := true
          end)
        top;
      let refuted = ref false in
      if !any_forced then
        Bitset.iter
          (fun x ->
            if not !refuted then begin
              let cnt = ref 0 in
              Graph.iter_neighbors g x ~f:(fun v ->
                  if Bitset.mem forced v then incr cnt);
              if !cnt >= 2 then refuted := true
            end)
          top;
      if !refuted then (d + 1, Packing) else (d, Ecc)
    end
