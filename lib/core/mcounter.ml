module Bitset = Mlbs_util.Bitset
module Bfs = Mlbs_graph.Bfs
module Metrics = Mlbs_obs.Metrics
module Otrace = Mlbs_obs.Trace

(* Search observability (all behind the disabled-registry branch):
   nodes expanded, memo traffic for both tables, pre-apply child memo
   hits, branch-and-bound prunes, rollouts, budget exhaustions. Summed
   across domains these are identical at any [--jobs]: each instance's
   search is deterministic and runs whole on one domain. *)
let m_states = Metrics.counter "search/states"
let m_memo_hit = Metrics.counter "search/memo_hit"
let m_memo_miss = Metrics.counter "search/memo_miss"
let m_child_hit = Metrics.counter "search/child_memo_hit"
let m_prunes = Metrics.counter "search/bnb_prunes"
let m_rollouts = Metrics.counter "search/rollouts"
let m_exhausted = Metrics.counter "search/exhausted"
let m_seeded = Metrics.counter "search/seeded_entries"

(* Strong-mode pruning, by decisive bound: candidates cut off once the
   incumbent meets the parent's eccentricity / packing floor, and
   siblings skipped by coverage-subset domination. All zero in Classic
   mode, whose traversal is the bit-for-bit seed reference. *)
let m_prune_ecc = Metrics.counter "search/bound_prune_ecc"
let m_prune_pack = Metrics.counter "search/bound_prune_packing"
let m_prune_dom = Metrics.counter "search/dominance_prunes"

(* [Classic] reproduces the seed search traversal bit for bit — same
   expansions, same state counts, same exhaustion points — so the
   figure sweeps stay byte-identical across releases. [Strong] layers
   the admissible-bound candidate skip, parent-floor early exit and
   sibling dominance on top; in exact mode it provably returns the
   same schedule (every skipped candidate is proved unable to displace
   the incumbent, and ties keep the earlier candidate), it just gets
   there with far fewer expansions — the service cold-solve path. *)
type mode = Classic | Strong

type budget = { max_states : int; lookahead : int; beam : int; mode : mode }

let default_budget = { max_states = 200_000; lookahead = 2; beam = 4; mode = Strong }

type evaluation = { finish : int; exact : bool; states : int }

exception Exhausted

(* ------------------------------------------------------------------ *)
(* Hop lower bound: multi-source BFS into a domain-local workspace.    *)
(* The scratch is keyed per domain (not global) so parallel sweeps in  *)
(* the experiment pool never race on it; it is resized lazily when the *)
(* node count changes between instances. The search itself never runs  *)
(* this BFS per candidate any more — it carries the same bound         *)
(* incrementally in its [Istate] — but the from-scratch form stays the *)
(* public reference (and the property-test oracle).                    *)
(* ------------------------------------------------------------------ *)

type scratch = { bfs : Bfs.scratch; ubar : Bitset.t }

let scratch_key : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_scratch n =
  let slot = Domain.DLS.get scratch_key in
  match !slot with
  | Some sc when Bfs.scratch_capacity sc.bfs = n -> sc
  | _ ->
      let sc = { bfs = Bfs.scratch n; ubar = Bitset.create n } in
      slot := Some sc;
      sc

let hop_lower_bound model ~w =
  if Model.complete model ~w then 0
  else begin
    let sc = local_scratch (Model.n_nodes model) in
    Bfs.run_multi_into sc.bfs (Model.graph model) ~sources:w;
    Bitset.complement_into ~into:sc.ubar w;
    Bfs.max_dist_from sc.bfs ~within:sc.ubar
  end

let unreachable_msg = "Mcounter: some node is unreachable from the informed set"

(* ------------------------------------------------------------------ *)
(* Domain-local incremental state. One [Istate] per domain, resized    *)
(* when the node count changes; [prewarm] builds it ahead of the first *)
(* timed run so worker domains never allocate scratch mid-sweep.       *)
(* ------------------------------------------------------------------ *)

let istate_key : Istate.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let prewarm ~n =
  let slot = Domain.DLS.get istate_key in
  (match !slot with
  | Some st when Istate.capacity st = n -> ()
  | _ -> slot := Some (Istate.create n));
  ignore (local_scratch n)

let local_istate model ~w =
  let n = Model.n_nodes model in
  prewarm ~n;
  let st = Option.get !(Domain.DLS.get istate_key) in
  Istate.reset st model ~w;
  st

(* ------------------------------------------------------------------ *)
(* Transposition table, keyed by the informed set with its carried     *)
(* hash: lookups probe with the istate's live bitset (and its          *)
(* incrementally maintained hash) so they never copy or re-hash; only  *)
(* insertions intern a copy. One open-addressing [Ttable] per context  *)
(* replaces the former sync/async [Hashtbl] pair — sync values depend  *)
(* on [W] alone and use the sentinel slot 0, async entries key on the  *)
(* true (W, slot). The table grows and never evicts here, so it hits   *)
(* exactly when the hashtables did and the Classic traversal (state    *)
(* counts, exhaustion points) is unchanged.                            *)
(* ------------------------------------------------------------------ *)

type ctx = {
  st : Istate.t;
  space : Choices.t;
  budget : budget;
  tt : Ttable.t;
  mutable states : int;
}

let make_ctx st space budget = { st; space; budget; tt = Ttable.create (); states = 0 }

(* Rank successors: fewest remaining hops first, then most coverage, then
   enumeration order (stable sort keeps it deterministic). The ranking
   keys come from the seeded probe — the same (bound, |W'|) pair an
   apply/undo round-trip would read off, without paying for one — and
   each successor carries its coverage set so the search can build child
   memo keys without applying either. *)
let ranked_successors ctx ~slot =
  let base = Istate.n_informed ctx.st in
  let score_cov (c, cov) =
    let lb, k = Istate.probe_seeded ctx.st ~seeds:cov in
    (lb, -(base + k), c, cov)
  in
  let scored =
    match ctx.space with
    | Choices.Greedy -> List.map score_cov (Istate.greedy_classes_cov ctx.st ~slot)
    | Choices.All _ ->
        List.map
          (fun c -> score_cov (c, Istate.coverage ctx.st ~senders:c))
          (Choices.enumerate_incremental ctx.st ctx.space ~slot)
  in
  List.stable_sort
    (fun (lb1, cov1, _, _) (lb2, cov2, _, _) ->
      if lb1 < lb2 then -1
      else if lb1 > lb2 then 1
      else if cov1 < cov2 then -1
      else if cov1 > cov2 then 1
      else 0)
    scored

(* Child memo probe without applying: derive the child key (W ∪ cov)
   hash-and-all from the coverage set — [hash_union] re-mixes only the
   touched words, [equal_union] verifies a hit word-wise — so the probe
   allocates nothing and never materialises the union. [Some 0] for a
   completing advance mirrors the complete-check a recursive call would
   have short-circuited on. *)
let child_cached ctx ~cov =
  let st = ctx.st in
  let r =
    if Istate.n_informed st + Bitset.cardinal cov = Istate.capacity st then Some 0
    else
      let w = Istate.w st in
      let h = Bitset.hash_union w cov (Istate.whash st) in
      Ttable.find_union ctx.tt ~h ~slot:0 ~base:w ~cov
  in
  if r <> None then Metrics.incr m_child_hit;
  r

(* ------------------------------------------------------------------ *)
(* Deterministic rollout: a cheap, always-terminating upper bound.     *)
(* ------------------------------------------------------------------ *)

let rollout_step ctx ~slot =
  match Istate.next_active_slot ctx.st ~after:(slot - 1) with
  | None -> None
  | Some t' -> (
      match ranked_successors ctx ~slot:t' with
      | (_, _, c, _) :: _ -> Some (t', c)
      | [] -> None)

let rollout_finish_i ctx ~slot =
  Metrics.incr m_rollouts;
  if Istate.lb ctx.st = max_int then failwith unreachable_msg;
  let d0 = Istate.depth ctx.st in
  let rec loop slot last =
    if Istate.complete ctx.st then last
    else
      match rollout_step ctx ~slot with
      | None ->
          Istate.rewind ctx.st ~depth:d0;
          failwith "Mcounter.rollout_finish: stuck before completion"
      | Some (t', c) ->
          Istate.apply ctx.st ~senders:c;
          loop (t' + 1) t'
  in
  let r = loop slot (slot - 1) in
  Istate.rewind ctx.st ~depth:d0;
  r

let rollout_finish model space ~w ~slot =
  let st = local_istate model ~w in
  rollout_finish_i (make_ctx st space default_budget) ~slot

(* ------------------------------------------------------------------ *)
(* Exact memoised branch-and-bound. The traversal (choice order,       *)
(* pruning tests, memo keys, state counting, budget exhaustion) is     *)
(* intentionally identical to the from-scratch implementation it       *)
(* replaced — only the per-state work is incremental — so evaluated    *)
(* finishes, [states] counts and schedules are unchanged.              *)
(* ------------------------------------------------------------------ *)

(* Strong-mode sibling helpers. The parent floor is [Bounds.remaining]:
   once the incumbent meets it no candidate can improve, so the rest of
   the sibling list is cut off (each skip counted under the decisive
   bound's kind). Dominance skips a candidate whose coverage is a
   subset of an earlier sibling's: by memo monotonicity (W ⊆ W' ⇒ the
   value from W' is no worse) its value is ≥ the dominator's, and the
   incumbent is already ≤ every earlier sibling's value — whether that
   sibling was scored, bound-pruned (its value ≥ the then-incumbent) or
   itself dominated (inductively) — so the skip can change neither the
   minimum nor, with ties keeping the earlier candidate, the selection.
   The kept list is capped: domination is an optimisation, not a
   correctness device, so forgetting old covers is free. *)
let max_kept_covs = 16

let bound_counter = function
  | Bounds.Ecc -> m_prune_ecc
  | Bounds.Packing -> m_prune_pack

let dominated kept cov =
  List.exists (fun cov' -> Bitset.subset cov cov') kept

(* Sync: remaining advance count depends on W only. *)
let rec sync_remaining ctx =
  if Istate.complete ctx.st then 0
  else begin
    match
      Ttable.find ctx.tt ~h:(Istate.whash ctx.st) ~slot:0 ~set:(Istate.w ctx.st)
    with
    | Some v ->
        Metrics.incr m_memo_hit;
        v
    | None ->
        Metrics.incr m_memo_miss;
        let succs = ranked_successors ctx ~slot:1 in
        if succs = [] then failwith "Mcounter: no candidates before completion";
        let strong = ctx.budget.mode = Strong in
        let floor_r, floor_k =
          if strong then Bounds.remaining ctx.st else (0, Bounds.Ecc)
        in
        let best = ref max_int in
        let kept = ref [] and n_kept = ref 0 in
        List.iter
          (fun (lb, _, c, cov) ->
            if strong && !best <= floor_r then Metrics.incr (bound_counter floor_k)
            else if lb <> max_int && 1 + lb < !best then begin
              (* Admissible pruning: this branch needs ≥ 1 + lb advances. *)
              if strong && !best < max_int && dominated !kept cov then
                Metrics.incr m_prune_dom
              else begin
                let v =
                  (* A memoised (or completing) child costs no apply. *)
                  match child_cached ctx ~cov with
                  | Some v0 -> 1 + v0
                  | None ->
                      Istate.apply ctx.st ~senders:c;
                      let v = 1 + sync_remaining ctx in
                      Istate.undo ctx.st;
                      v
                in
                if v < !best then best := v
              end;
              if strong && !n_kept < max_kept_covs then begin
                kept := cov :: !kept;
                incr n_kept
              end
            end
            else Metrics.incr m_prunes)
          succs;
        if !best = max_int then failwith "Mcounter: dead end in sync search";
        Metrics.incr m_states;
        ctx.states <- ctx.states + 1;
        if ctx.states > ctx.budget.max_states then raise Exhausted;
        Ttable.add ctx.tt ~h:(Istate.whash ctx.st) ~slot:0 ~set:(Istate.w ctx.st) !best;
        !best
  end

(* Async: finish time depends on (W, slot); idle gaps are skipped by
   jumping to the next slot at which some frontier node is awake. *)
let rec async_finish ctx ~slot =
  if Istate.complete ctx.st then slot - 1
  else
    match Istate.next_active_slot ctx.st ~after:(slot - 1) with
    | None -> failwith "Mcounter: empty frontier before completion"
    | Some t -> (
        match
          Ttable.find ctx.tt ~h:(Istate.whash ctx.st) ~slot:t ~set:(Istate.w ctx.st)
        with
        | Some v ->
            Metrics.incr m_memo_hit;
            v
        | None ->
            Metrics.incr m_memo_miss;
            let succs = ranked_successors ctx ~slot:t in
            if succs = [] then failwith "Mcounter: active slot without candidates";
            let strong = ctx.budget.mode = Strong in
            let floor_r, floor_k =
              if strong then Bounds.remaining ctx.st else (0, Bounds.Ecc)
            in
            let best = ref max_int in
            let kept = ref [] and n_kept = ref 0 in
            List.iter
              (fun (lb, _, c, cov) ->
                (* [r] remaining advances, the first at slot [t], finish
                   at ≥ t + r - 1. *)
                if strong && !best <> max_int && !best <= t + floor_r - 1 then
                  Metrics.incr (bound_counter floor_k)
                else if lb <> max_int && (!best = max_int || t + lb < !best) then begin
                  (* finish ≥ t + lb: each remaining hop costs ≥ 1 slot. *)
                  if strong && !best < max_int && dominated !kept cov then
                    Metrics.incr m_prune_dom
                  else begin
                    Istate.apply ctx.st ~senders:c;
                    let v = async_finish ctx ~slot:(t + 1) in
                    Istate.undo ctx.st;
                    if v < !best then best := v
                  end;
                  if strong && !n_kept < max_kept_covs then begin
                    kept := cov :: !kept;
                    incr n_kept
                  end
                end
                else Metrics.incr m_prunes)
              succs;
            if !best = max_int then failwith "Mcounter: dead end in async search";
            Metrics.incr m_states;
            ctx.states <- ctx.states + 1;
            if ctx.states > ctx.budget.max_states then raise Exhausted;
            Ttable.add ctx.tt ~h:(Istate.whash ctx.st) ~slot:t ~set:(Istate.w ctx.st)
              !best;
            !best)

(* ------------------------------------------------------------------ *)
(* Beam-limited lookahead fallback.                                    *)
(* ------------------------------------------------------------------ *)

let take k xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go (max 0 k) xs

let rec lookahead_value ctx ~slot ~depth =
  if Istate.complete ctx.st then slot - 1
  else if depth = 0 then rollout_finish_i ctx ~slot
  else
    match Istate.next_active_slot ctx.st ~after:(slot - 1) with
    | None -> failwith "Mcounter: empty frontier before completion"
    | Some t -> (
        let succs = take ctx.budget.beam (ranked_successors ctx ~slot:t) in
        match succs with
        | [] -> failwith "Mcounter: active slot without candidates"
        | _ ->
            List.fold_left
              (fun acc (lb, _, c, _) ->
                (* Branch-and-bound, value-preserving: any completion
                   below this child finishes at ≥ t + lb, so a child
                   whose bound already reaches [acc] cannot lower the
                   minimum. *)
                if lb = max_int || (acc <> max_int && t + lb >= acc) then begin
                  Metrics.incr m_prunes;
                  acc
                end
                else begin
                  Istate.apply ctx.st ~senders:c;
                  let v = lookahead_value ctx ~slot:(t + 1) ~depth:(depth - 1) in
                  Istate.undo ctx.st;
                  min acc v
                end)
              max_int succs)

(* ------------------------------------------------------------------ *)
(* Public interface.                                                   *)
(* ------------------------------------------------------------------ *)

let evaluate model space ~budget ~w ~slot =
  Otrace.with_span ~arg:slot ~cat:"search" "evaluate" @@ fun () ->
  let st = local_istate model ~w in
  if Istate.lb st = max_int then failwith unreachable_msg;
  let ctx = make_ctx st space budget in
  match Model.system model with
  | Model.Sync -> (
      try
        let r = sync_remaining ctx in
        { finish = slot - 1 + r; exact = true; states = ctx.states }
      with Exhausted ->
        Metrics.incr m_exhausted;
        Istate.rewind st ~depth:0;
        let finish = lookahead_value ctx ~slot ~depth:budget.lookahead in
        { finish; exact = false; states = ctx.states })
  | Model.Async _ -> (
      try
        let finish = async_finish ctx ~slot in
        { finish; exact = true; states = ctx.states }
      with Exhausted ->
        Metrics.incr m_exhausted;
        Istate.rewind st ~depth:0;
        let finish = lookahead_value ctx ~slot ~depth:budget.lookahead in
        { finish; exact = false; states = ctx.states })

(* ------------------------------------------------------------------ *)
(* Snapshots: a completed plan's transposition table, frozen for       *)
(* reuse. The stored informed sets are the private copies the table    *)
(* interned at insertion time and are never mutated afterwards, so a   *)
(* safe to publish across domains and to share between chained        *)
(* snapshots. Reusing an entry is sound exactly when the caller's      *)
(* validity predicate certifies its value unchanged — see              *)
(* [plan_snapshot] in the interface for the contract.                  *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_n : int;
  snap_space : Choices.t;
  snap_sync : (int * Bitset.t * int) array;  (* (hash, W, remaining) *)
  snap_async : (int * Bitset.t * int * int) array;  (* (hash, W, slot, finish) *)
  snap_exact : bool;
  snap_states : int;
}

let snapshot_entries s = Array.length s.snap_sync + Array.length s.snap_async
let snapshot_exact s = s.snap_exact

(* Seeds only ever shrink the explored state count, so a seeded search
   that exhausts the budget implies the unseeded one would too — but
   not conversely. Near the budget cliff a seeded run could stay exact
   where a cold run degrades, which would break schedule equality; the
   4x margin keeps warm starts well clear of that cliff (churn deltas
   move the state count by far less). *)
let snapshot_reusable s ~space ~budget ~n =
  s.snap_exact && s.snap_space = space && s.snap_n = n
  && s.snap_states <= budget.max_states / 4

(* Raised when a seeded plan hits the budget: rerun without seeds so
   the degraded path is byte-identical to a cold solve's. *)
exception Restart_unseeded

(* Plan construction: walk greedily, scoring each choice with the same
   evaluator the top-level used, so the realised schedule matches the
   evaluated finish time in exact mode. [seeds] pre-populates the memo
   with still-valid entries from a previous solve: every value the
   search reads is the same pure function of (graph, wake schedules,
   informed set) either way, so the constructed schedule is unchanged —
   only the work to re-derive it shrinks. *)
let rec plan_gen model space ~budget ~source ~start ~seeds ~capture =
  try
    Otrace.with_span ~arg:start ~cat:"search" "plan" @@ fun () ->
    let w0 = Model.initial_w model ~source in
    let st = local_istate model ~w:w0 in
    if Istate.lb st = max_int then failwith unreachable_msg;
    let ctx = make_ctx st space budget in
    let n_seeded =
      match seeds with
      | None -> 0
      | Some (snap, valid) ->
          if snap.snap_n <> Model.n_nodes model || snap.snap_space <> space then 0
          else begin
            let k = ref 0 in
            (match Model.system model with
            | Model.Sync ->
                Array.iter
                  (fun (h, set, v) ->
                    if valid set then begin
                      Ttable.add_shared ctx.tt ~h ~slot:0 ~set v;
                      incr k
                    end)
                  snap.snap_sync
            | Model.Async _ ->
                Array.iter
                  (fun (h, set, slot, v) ->
                    if valid set then begin
                      Ttable.add_shared ctx.tt ~h ~slot ~set v;
                      incr k
                    end)
                  snap.snap_async);
            Metrics.add m_seeded !k;
            !k
          end
    in
    let is_sync = match Model.system model with Model.Sync -> true | Model.Async _ -> false in
    (* The warm path (snapshot capture / seeded repair) prunes the
       round scoring below with the same admissible floor the search
       uses — and so does every Strong-mode solve, warm or cold: the
       skip rule only elides candidates proved unable to displace the
       incumbent, so the schedule is unchanged and only the exhaustive
       re-scoring cost disappears. Classic [plan] keeps that exhaustive
       re-scoring as the reference the property tests compare against. *)
    let warm = capture || seeds <> None || budget.mode = Strong in
    let degraded = ref false in
    (* Root search first: if the budget holds, candidate scores reuse its
       memo; otherwise every score degrades to the lookahead policy. *)
    let exact_ok =
      match Model.system model with
      | Model.Sync -> (
          try
            ignore (sync_remaining ctx);
            true
          with Exhausted ->
            if n_seeded > 0 then raise Restart_unseeded;
            Metrics.incr m_exhausted;
            Istate.rewind st ~depth:0;
            false)
      | Model.Async _ -> (
          try
            ignore (async_finish ctx ~slot:start);
            true
          with Exhausted ->
            if n_seeded > 0 then raise Restart_unseeded;
            Metrics.incr m_exhausted;
            Istate.rewind st ~depth:0;
            false)
    in
    (* Score the already-applied candidate for an advance at slot [t]. *)
    let fallback_score ~t =
      degraded := true;
      lookahead_value ctx ~slot:(t + 1) ~depth:budget.lookahead
    in
    let exact_score ~t =
      match Model.system model with
      | Model.Sync -> t + sync_remaining ctx
      | Model.Async _ -> async_finish ctx ~slot:(t + 1)
    in
    let score ~t =
      if exact_ok then (
        (* Replanning can touch sibling states the root search never
           expanded; degrade to lookahead if that blows the budget. *)
        let d = Istate.depth st in
        try exact_score ~t
        with Exhausted ->
          if n_seeded > 0 then raise Restart_unseeded;
          Metrics.incr m_exhausted;
          Istate.rewind st ~depth:d;
          fallback_score ~t)
      else fallback_score ~t
    in
  let rec loop slot steps =
    if Istate.complete st then List.rev steps
    else
      match Istate.next_active_slot st ~after:(slot - 1) with
      | None -> failwith "Mcounter.plan: empty frontier before completion"
      | Some t ->
          (* The round span covers this slot's selection only — the
             recursion continues outside it, so rounds appear as
             siblings (with nested color-selection) in the trace. *)
          let step =
            Otrace.with_span ~arg:t ~cat:"sched" "round" @@ fun () ->
            let succs =
              Otrace.with_span ~arg:t ~cat:"search" "color-select" (fun () ->
                  ranked_successors ctx ~slot:t)
            in
            match succs with
            | [] -> failwith "Mcounter.plan: active slot without candidates"
            | _ ->
                let strong = budget.mode = Strong in
                let floor_r, floor_k =
                  if strong then Bounds.remaining st else (0, Bounds.Ecc)
                in
                let kept = ref [] and n_kept = ref 0 in
                let best =
                List.fold_left
                  (fun acc (lb, _, c, cov) ->
                    match acc with
                    | Some (bv, _, _)
                      when strong && bv <> max_int && bv <= t + floor_r - 1 ->
                        (* Any completion advancing at slot [t] needs
                           ≥ floor_r further advances, so no sibling can
                           score below the incumbent. *)
                        Metrics.incr (bound_counter floor_k);
                        acc
                    | Some (bv, _, _)
                      when ((not exact_ok) || warm) && lb <> max_int && bv <= t + lb ->
                        (* Scores (exact or lookahead) are bounded below
                           by t + lb, and ties keep the earlier
                           candidate, so this candidate cannot displace
                           the incumbent. Exact mode only elides the
                           bound on the reference path, where every
                           sibling's score is re-derived in full. *)
                        acc
                    | Some (bv, _, _)
                      when strong && bv <> max_int && dominated !kept cov ->
                        (* Coverage-subset domination: this candidate's
                           score is ≥ an earlier sibling's, and the
                           incumbent is already ≤ every earlier
                           sibling's score. *)
                        Metrics.incr m_prune_dom;
                        acc
                    | _ -> (
                        if strong && !n_kept < max_kept_covs then begin
                          kept := cov :: !kept;
                          incr n_kept
                        end;
                        (* In exact sync mode an already-memoised (or
                           completing) child scores without an apply;
                           its informed list is the coverage set. *)
                        let pre =
                          if exact_ok && is_sync then child_cached ctx ~cov
                          else None
                        in
                        match pre with
                        | Some v0 ->
                            let v = t + v0 in
                            let keep =
                              match acc with Some (bv, _, _) -> bv <= v | None -> false
                            in
                            if keep then acc else Some (v, c, Bitset.elements cov)
                        | None ->
                            Istate.apply st ~senders:c;
                            let v = score ~t in
                            let keep =
                              match acc with Some (bv, _, _) -> bv <= v | None -> false
                            in
                            if keep then begin
                              Istate.undo st;
                              acc
                            end
                            else begin
                              let informed = List.sort compare (Istate.last_added st) in
                              Istate.undo st;
                              Some (v, c, informed)
                            end))
                  None succs
                in
                let _, c, informed = Option.get best in
                Istate.apply st ~senders:c;
                { Schedule.slot = t; senders = c; informed }
          in
          loop (t + 1) (step :: steps)
  in
    let steps = loop start [] in
    let schedule = Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start steps in
    let snap =
      if not capture then None
      else
        Some
          {
            snap_n = Model.n_nodes model;
            snap_space = space;
            snap_sync =
              (if not is_sync then [||]
               else begin
                 let acc = ref [] in
                 Ttable.iter
                   (fun ~h ~slot:_ ~set ~value -> acc := (h, set, value) :: !acc)
                   ctx.tt;
                 Array.of_list !acc
               end);
            snap_async =
              (if is_sync then [||]
               else begin
                 let acc = ref [] in
                 Ttable.iter
                   (fun ~h ~slot ~set ~value -> acc := (h, set, slot, value) :: !acc)
                   ctx.tt;
                 Array.of_list !acc
               end);
            snap_exact = exact_ok && not !degraded;
            (* Chained repairs carry the base's state count forward so
               the reuse margin reflects the whole lineage, not just the
               (small) incremental re-exploration. *)
            snap_states =
              (ctx.states + match seeds with Some (s, _) -> s.snap_states | None -> 0);
          }
    in
    (schedule, snap)
  with Restart_unseeded -> plan_gen model space ~budget ~source ~start ~seeds:None ~capture

let plan model space ~budget ~source ~start =
  fst (plan_gen model space ~budget ~source ~start ~seeds:None ~capture:false)

let plan_snapshot ?seeds model space ~budget ~source ~start =
  match plan_gen model space ~budget ~source ~start ~seeds ~capture:true with
  | schedule, Some snap -> (schedule, snap)
  | _, None -> assert false
