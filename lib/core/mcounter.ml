module Bitset = Mlbs_util.Bitset
module Bfs = Mlbs_graph.Bfs

type budget = { max_states : int; lookahead : int; beam : int }

let default_budget = { max_states = 200_000; lookahead = 2; beam = 4 }

type evaluation = { finish : int; exact : bool; states : int }

exception Exhausted

(* ------------------------------------------------------------------ *)
(* Hop lower bound: multi-source BFS into a domain-local workspace.    *)
(* The scratch is keyed per domain (not global) so parallel sweeps in  *)
(* the experiment pool never race on it; it is resized lazily when the *)
(* node count changes between instances.                               *)
(* ------------------------------------------------------------------ *)

type scratch = { bfs : Bfs.scratch; ubar : Bitset.t }

let scratch_key : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_scratch n =
  let slot = Domain.DLS.get scratch_key in
  match !slot with
  | Some sc when Bfs.scratch_capacity sc.bfs = n -> sc
  | _ ->
      let sc = { bfs = Bfs.scratch n; ubar = Bitset.create n } in
      slot := Some sc;
      sc

let hop_lower_bound model ~w =
  if Model.complete model ~w then 0
  else begin
    let sc = local_scratch (Model.n_nodes model) in
    Bfs.run_multi_into sc.bfs (Model.graph model) ~sources:w;
    Bitset.complement_into ~into:sc.ubar w;
    Bfs.max_dist_from sc.bfs ~within:sc.ubar
  end

let check_reachable model ~w =
  if hop_lower_bound model ~w = max_int then
    failwith "Mcounter: some node is unreachable from the informed set"

(* ------------------------------------------------------------------ *)
(* Memo tables.                                                        *)
(* ------------------------------------------------------------------ *)

module Wtbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

module Wstbl = Hashtbl.Make (struct
  type t = Bitset.t * int

  let equal (w1, s1) (w2, s2) = s1 = s2 && Bitset.equal w1 w2
  let hash (w, s) = Bitset.hash w lxor (s * 0x9e3779b1)
end)

(* The hop lower bound depends only on the informed set, so one memo
   (keyed by the successor bitset) is shared across the whole search:
   sibling branches reaching the same [W'] stop recomputing identical
   BFS frontiers. *)
type lb_memo = int Wtbl.t

let lb_cached (memo : lb_memo) model ~w =
  match Wtbl.find_opt memo w with
  | Some v -> v
  | None ->
      let v = hop_lower_bound model ~w in
      Wtbl.add memo w v;
      v

(* Rank successors: fewest remaining hops first, then most coverage, then
   enumeration order (stable sort keeps it deterministic). *)
let ranked_successors model choices ~w ~lb_memo =
  let scored =
    List.map
      (fun c ->
        let w' = Model.apply model ~w ~senders:c in
        let lb = lb_cached lb_memo model ~w:w' in
        (lb, -Bitset.cardinal w', c, w'))
      choices
  in
  List.stable_sort
    (fun (lb1, cov1, _, _) (lb2, cov2, _, _) ->
      if lb1 <> lb2 then compare lb1 lb2 else compare cov1 cov2)
    scored
  |> List.map (fun (lb, _, c, w') -> (lb, c, w'))

(* ------------------------------------------------------------------ *)
(* Deterministic rollout: a cheap, always-terminating upper bound.     *)
(* ------------------------------------------------------------------ *)

let rollout_step model space ~w ~slot ~lb_memo =
  match Model.next_active_slot model ~w ~after:(slot - 1) with
  | None -> None
  | Some t' -> (
      match Choices.enumerate model space ~w ~slot:t' with
      | [] -> None
      | choices -> (
          match ranked_successors model choices ~w ~lb_memo with
          | (_, c, w') :: _ -> Some (t', c, w')
          | [] -> None))

let rollout_finish_memo model space ~w ~slot ~lb_memo =
  check_reachable model ~w;
  let rec loop w slot last =
    if Model.complete model ~w then last
    else
      match rollout_step model space ~w ~slot ~lb_memo with
      | None -> failwith "Mcounter.rollout_finish: stuck before completion"
      | Some (t', _, w') -> loop w' (t' + 1) t'
  in
  loop w slot (slot - 1)

let rollout_finish model space ~w ~slot =
  rollout_finish_memo model space ~w ~slot ~lb_memo:(Wtbl.create 256)

(* ------------------------------------------------------------------ *)
(* Exact memoised branch-and-bound.                                    *)
(* ------------------------------------------------------------------ *)

(* Sync: remaining advance count depends on W only. *)
type sync_search = {
  memo : int Wtbl.t;
  lb : lb_memo;
  mutable states : int;
  budget : budget;
}

let rec sync_remaining model space s ~w =
  if Model.complete model ~w then 0
  else
    match Wtbl.find_opt s.memo w with
    | Some v -> v
    | None ->
        let choices = Choices.enumerate model space ~w ~slot:1 in
        if choices = [] then failwith "Mcounter: no candidates before completion";
        let succs = ranked_successors model choices ~w ~lb_memo:s.lb in
        let best = ref max_int in
        List.iter
          (fun (lb, _, w') ->
            (* Admissible pruning: this branch needs ≥ 1 + lb advances. *)
            if lb <> max_int && 1 + lb < !best then begin
              let v = 1 + sync_remaining model space s ~w:w' in
              if v < !best then best := v
            end)
          succs;
        if !best = max_int then failwith "Mcounter: dead end in sync search";
        s.states <- s.states + 1;
        if s.states > s.budget.max_states then raise Exhausted;
        Wtbl.add s.memo w !best;
        !best

(* Async: finish time depends on (W, slot); idle gaps are skipped by
   jumping to the next slot at which some frontier node is awake. *)
type async_search = {
  amemo : int Wstbl.t;
  alb : lb_memo;
  mutable astates : int;
  abudget : budget;
}

let rec async_finish model space s ~w ~slot =
  if Model.complete model ~w then slot - 1
  else
    match Model.next_active_slot model ~w ~after:(slot - 1) with
    | None -> failwith "Mcounter: empty frontier before completion"
    | Some t ->
        let key = (w, t) in
        (match Wstbl.find_opt s.amemo key with
        | Some v -> v
        | None ->
            let choices = Choices.enumerate model space ~w ~slot:t in
            if choices = [] then
              failwith "Mcounter: active slot without candidates";
            let succs = ranked_successors model choices ~w ~lb_memo:s.alb in
            let best = ref max_int in
            List.iter
              (fun (lb, _, w') ->
                (* finish ≥ t + lb: each remaining hop costs ≥ 1 slot. *)
                if lb <> max_int && (!best = max_int || t + lb < !best) then begin
                  let v = async_finish model space s ~w:w' ~slot:(t + 1) in
                  if v < !best then best := v
                end)
              succs;
            if !best = max_int then failwith "Mcounter: dead end in async search";
            s.astates <- s.astates + 1;
            if s.astates > s.abudget.max_states then raise Exhausted;
            Wstbl.add s.amemo key !best;
            !best)

(* ------------------------------------------------------------------ *)
(* Beam-limited lookahead fallback.                                    *)
(* ------------------------------------------------------------------ *)

let take k xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go (max 0 k) xs

let rec lookahead_value model space ~budget ~w ~slot ~depth ~lb_memo =
  if Model.complete model ~w then slot - 1
  else if depth = 0 then rollout_finish_memo model space ~w ~slot ~lb_memo
  else
    match Model.next_active_slot model ~w ~after:(slot - 1) with
    | None -> failwith "Mcounter: empty frontier before completion"
    | Some t -> (
        let choices = Choices.enumerate model space ~w ~slot:t in
        let succs = take budget.beam (ranked_successors model choices ~w ~lb_memo) in
        match succs with
        | [] -> failwith "Mcounter: active slot without candidates"
        | _ ->
            List.fold_left
              (fun acc (_, _, w') ->
                min acc
                  (lookahead_value model space ~budget ~w:w' ~slot:(t + 1)
                     ~depth:(depth - 1) ~lb_memo))
              max_int succs)

(* ------------------------------------------------------------------ *)
(* Public interface.                                                   *)
(* ------------------------------------------------------------------ *)

let evaluate model space ~budget ~w ~slot =
  check_reachable model ~w;
  let lb_memo = Wtbl.create 4096 in
  match Model.system model with
  | Model.Sync -> (
      let s = { memo = Wtbl.create 4096; lb = lb_memo; states = 0; budget } in
      try
        let r = sync_remaining model space s ~w in
        { finish = slot - 1 + r; exact = true; states = s.states }
      with Exhausted ->
        let finish =
          lookahead_value model space ~budget ~w ~slot ~depth:budget.lookahead ~lb_memo
        in
        { finish; exact = false; states = s.states })
  | Model.Async _ -> (
      let s = { amemo = Wstbl.create 4096; alb = lb_memo; astates = 0; abudget = budget } in
      try
        let finish = async_finish model space s ~w ~slot in
        { finish; exact = true; states = s.astates }
      with Exhausted ->
        let finish =
          lookahead_value model space ~budget ~w ~slot ~depth:budget.lookahead ~lb_memo
        in
        { finish; exact = false; states = s.astates })

(* Plan construction: walk greedily, scoring each choice with the same
   evaluator the top-level used, so the realised schedule matches the
   evaluated finish time in exact mode. *)
let plan model space ~budget ~source ~start =
  let w0 = Model.initial_w model ~source in
  check_reachable model ~w:w0;
  let lb_memo = Wtbl.create 4096 in
  let exact_scorer =
    match Model.system model with
    | Model.Sync -> (
        let s = { memo = Wtbl.create 4096; lb = lb_memo; states = 0; budget } in
        try
          ignore (sync_remaining model space s ~w:w0);
          (* Budget held: score = t + remaining(w') - 1 for advance at t. *)
          Some (fun ~w' ~t -> t + sync_remaining model space s ~w:w')
        with Exhausted -> None)
    | Model.Async _ -> (
        let s = { amemo = Wstbl.create 4096; alb = lb_memo; astates = 0; abudget = budget } in
        try
          ignore (async_finish model space s ~w:w0 ~slot:start);
          Some (fun ~w' ~t -> async_finish model space s ~w:w' ~slot:(t + 1))
        with Exhausted -> None)
  in
  let fallback ~w' ~t =
    lookahead_value model space ~budget ~w:w' ~slot:(t + 1) ~depth:budget.lookahead
      ~lb_memo
  in
  let score =
    match exact_scorer with
    | Some f ->
        (* Replanning can touch sibling states the root search never
           expanded; degrade to lookahead if that blows the budget. *)
        fun ~w' ~t -> ( try f ~w' ~t with Exhausted -> fallback ~w' ~t)
    | None -> fallback
  in
  let rec loop w slot steps =
    if Model.complete model ~w then List.rev steps
    else
      match Model.next_active_slot model ~w ~after:(slot - 1) with
      | None -> failwith "Mcounter.plan: empty frontier before completion"
      | Some t -> (
          let choices = Choices.enumerate model space ~w ~slot:t in
          let succs = ranked_successors model choices ~w ~lb_memo in
          match succs with
          | [] -> failwith "Mcounter.plan: active slot without candidates"
          | _ ->
              let best =
                List.fold_left
                  (fun acc (_, c, w') ->
                    let v = score ~w' ~t in
                    match acc with
                    | Some (bv, _, _) when bv <= v -> acc
                    | _ -> Some (v, c, w'))
                  None succs
              in
              let _, c, w' = Option.get best in
              let informed = Bitset.elements (Bitset.diff w' w) in
              let step = { Schedule.slot = t; senders = c; informed } in
              loop w' (t + 1) (step :: steps))
  in
  let steps = loop w0 start [] in
  Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start steps
