(** Unified entry point over the four scheduling policies of the paper
    (Algorithm 3 plus the prior-work baselines) — what the experiment
    harness, CLI and examples drive. *)

(** A scheduling policy:
    - [Baseline]: the hop-distance layered scheme — the
      26-approximation under [Sync], the 17-approximation under
      [Async];
    - [Emodel]: greedy colors + Eq. (10) selection by the proactive
      4-tuple [E];
    - [Gopt]: greedy colors + exact/bounded [M] search (Eq. 7/8);
    - [Opt]: all color sets + exact/bounded [M] search (Eq. 5/6). *)
type policy =
  | Baseline
  | Emodel
  | Gopt of Mcounter.budget
  | Opt of { budget : Mcounter.budget; max_sets : int }

(** [Gopt]/[Opt] with default budgets. *)
val gopt : policy

val opt : policy

(** [name p] is the short label used in reports ("26-approx" /
    "17-approx" / "E-model" / "G-OPT" / "OPT"); the baseline label
    depends on the model, so [name] takes the system. *)
val name : system:Model.system -> policy -> string

(** [run model policy ~source ~start] computes the broadcast schedule
    under the policy. *)
val run : Model.t -> policy -> source:int -> start:int -> Schedule.t

(** [space_of p] is the M-counter choice space of a search-based
    policy, [None] for the closed-form ones. *)
val space_of : policy -> Choices.t option

(** [warm_seeds policy snap ~n ~valid] packages [snap] as a [?seeds]
    argument for {!run_warm} when the policy can reuse it — a
    search-based policy whose choice space and budget pass
    {!Mcounter.snapshot_reusable} for [n]-node models — and [None]
    otherwise. [valid] is the per-entry validity predicate; its
    soundness contract is documented at {!Mcounter.plan_snapshot}. *)
val warm_seeds :
  policy ->
  Mcounter.snapshot ->
  n:int ->
  valid:(Model.Bitset.t -> bool) ->
  (Mcounter.snapshot * (Model.Bitset.t -> bool)) option

(** [run_warm model policy ?seeds ~source ~start ()] is {!run} with
    warm-start plumbing: for the search-based policies ([Gopt], [Opt])
    it returns the memo {!Mcounter.snapshot} of the solve and accepts
    seeds from a previous one (see {!Mcounter.plan_snapshot} for the
    validity contract); for [Baseline]/[Emodel] it runs plainly and
    returns no snapshot. The schedule is byte-identical to [run]'s on
    the same inputs, seeded or not — the scheduling service's
    cache-transparency invariant depends on this. *)
val run_warm :
  Model.t ->
  policy ->
  ?seeds:Mcounter.snapshot * (Model.Bitset.t -> bool) ->
  source:int ->
  start:int ->
  unit ->
  Schedule.t * Mcounter.snapshot option

(** [all_policies] in the order the paper's figures list them:
    baseline, OPT, G-OPT, E-model. *)
val all_policies : policy list
