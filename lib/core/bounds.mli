(** Analytical latency bounds (paper Theorem 1 and §VI) — the
    "OPT-analysis" curves of Figures 3, 5 and 7.

    All bounds are expressed as an elapsed latency (rounds/slots from
    the source's transmission), with [d] the hop distance from the
    source to the farthest node. *)

(** Theorem 1, synchronous: [P(A) − t_s < d + 2], i.e. the pipelined
    optimum needs fewer than [d + 2] rounds. *)
val opt_sync : d:int -> int

(** Theorem 1, duty cycle: [P(A) − t_s < 2r(d + 2)] slots. *)
val opt_async : d:int -> rate:int -> int

(** The upper bound of Jiao et al. [12] the paper quotes: total delay up
    to [17·k·d] where [k] is the maximum wait between neighbours —
    [k = 2r] in our wake model. *)
val jiao17 : d:int -> rate:int -> int

(** The 26-approximation guarantee of Chen et al. [2]: latency within
    [26·d] of the optimal's trivial lower bound [d]. *)
val chen26 : d:int -> int

(** [source_depth model ~source] computes [d] for a concrete instance. *)
val source_depth : Model.t -> source:int -> int

(** {1 Search-side lower bounds}

    Admissible, incrementally-maintained bounds on the number of
    advances still needed from an {!Istate} position, used by the
    Strong-mode branch-and-bound in {!Mcounter}. *)

(** Which bound was decisive. *)
type kind =
  | Ecc  (** remaining eccentricity: the farthest uninformed node's BFS
             distance, carried by the istate's distance histogram *)
  | Packing
      (** uninformed-neighbour packing at the top distance layer: two
          forced parents sharing an uninformed neighbour must conflict
          in the final advance, so completion needs one extra advance *)

(** [remaining st] is [(r, k)] where [r] lower-bounds the advances
    (sync rounds / async active slots) still needed to complete the
    broadcast from [st]'s position — [0] when complete, [max_int] when
    some node is unreachable — and [k] names the decisive bound. Both
    bounds are admissible for synchronous and duty-cycled systems: the
    true remaining advance count is always ≥ [r], hence any completion
    from an advance at slot [t] finishes at slot ≥ [t + r - 1]. *)
val remaining : Istate.t -> int * kind
