module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type variant = Once | Persistent of float

type result = {
  schedule : Schedule.t;
  covered : bool;
  informed : int;
  latency : int;
  collisions : int;
  retransmissions : int;
}

(* Reproducible coin: does node [u] fire at [slot] under persistence
   [p]?  Hash to a unit float. *)
let coin u slot p =
  let h = ((u * 0x9E3779B1) lxor (slot * 0x85EBCA77)) land max_int in
  float_of_int (h mod 1_000_000) /. 1_000_000. < p

let run ?max_slots ?delivers ?alive model variant ~source ~start =
  (match variant with
  | Persistent p when p <= 0. || p > 1. ->
      invalid_arg "Flooding.run: persistence outside (0, 1]"
  | _ -> ());
  (* Fault hooks (plain closures: core cannot depend on the simulator's
     [Fault] plans). Defaults are the ideal radio. *)
  let alive u ~slot = match alive with None -> true | Some f -> f ~slot u in
  let delivered ~slot ~tx ~rx =
    match delivers with None -> true | Some f -> f ~slot ~tx ~rx
  in
  let g = Model.graph model in
  let n = Model.n_nodes model in
  let rate =
    match Model.system model with Model.Sync -> 1 | Model.Async s -> Wake_schedule.rate s
  in
  let max_slots = match max_slots with Some m -> m | None -> 64 * n * rate in
  let w = ref (Model.initial_w model ~source) in
  let has_sent = Array.make n 0 in
  let steps = ref [] in
  let collisions = ref 0 in
  let awake u ~slot =
    match Model.system model with
    | Model.Sync -> true
    | Model.Async sched -> Wake_schedule.awake sched u ~slot
  in
  let wants u ~slot =
    Bitset.mem !w u
    && alive u ~slot
    && awake u ~slot
    && Model.n_receivers model ~w:!w u > 0
    &&
    match variant with
    | Once -> has_sent.(u) = 0
    | Persistent p -> coin u slot p
  in
  let pending_exists () =
    (* For [Once]: someone informed, un-sent, with uninformed
       neighbours, might still fire at a future wake. *)
    List.exists
      (fun u ->
        Bitset.mem !w u && has_sent.(u) = 0 && Model.n_receivers model ~w:!w u > 0)
      (List.init n Fun.id)
  in
  let rec loop slot last_tx =
    if Model.complete model ~w:!w then (true, last_tx)
    else if slot - start >= max_slots then (false, last_tx)
    else if variant = Once && not (pending_exists ()) then (false, last_tx)
    else begin
      let senders = List.filter (fun u -> wants u ~slot) (List.init n Fun.id) in
      if senders = [] then loop (slot + 1) last_tx
      else begin
        let received = ref [] in
        for v = 0 to n - 1 do
          if (not (Bitset.mem !w v)) && alive v ~slot then begin
            (* A corrupted packet still interferes, so the hearer count
               is taken before the per-link delivery roll. *)
            match List.filter (fun u -> Graph.mem_edge g u v) senders with
            | [] -> ()
            | [ u ] -> if delivered ~slot ~tx:u ~rx:v then received := v :: !received
            | _ -> incr collisions
          end
        done;
        List.iter (fun u -> has_sent.(u) <- has_sent.(u) + 1) senders;
        List.iter (Bitset.add !w) !received;
        steps := { Schedule.slot; senders; informed = List.sort compare !received } :: !steps;
        loop (slot + 1) slot
      end
    end
  in
  let covered, last_tx = loop start (start - 1) in
  let schedule = Schedule.make ~n_nodes:n ~source ~start (List.rev !steps) in
  {
    schedule;
    covered;
    informed = Bitset.cardinal !w;
    latency = (if last_tx < start then 0 else last_tx - start + 1);
    collisions = !collisions;
    retransmissions = Array.fold_left (fun acc k -> acc + max 0 (k - 1)) 0 has_sent;
  }
