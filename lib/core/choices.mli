(** Choice spaces for the M-counter search — which color sets a
    scheduler may launch from the current progress [W] at slot [t].

    - [Greedy] (Eq. 2/3): the λ classes produced by Algorithm 1 — the
      G-OPT space.
    - [All] (Eq. 1): any valid color set. Because the broadcast model is
      monotone, only maximal conflict-free candidate subsets matter;
      [max_sets] caps the enumeration on dense frontiers (the cap is a
      documented approximation: when hit, OPT explores a deterministic
      subset of its full space). *)

type t = Greedy | All of { max_sets : int }

(** [enumerate model space ~w ~slot] is the list of color sets (each a
    sender list) available at this state. Empty iff there is no awake
    candidate. *)
val enumerate : Model.t -> t -> w:Model.Bitset.t -> slot:int -> int list list

(** [enumerate_incremental ist space ~slot] is [enumerate] evaluated at
    the current position of an incremental state — the same sets in the
    same order, without rebuilding the frontier or the complement. *)
val enumerate_incremental : Istate.t -> t -> slot:int -> int list list
