module Bitset = Mlbs_util.Bitset
module Bfs = Mlbs_graph.Bfs
module Cds = Mlbs_graph.Cds
module Coloring = Mlbs_graph.Coloring
module Graph = Mlbs_graph.Graph

let plan model ~source ~start =
  (match Model.system model with
  | Model.Sync -> ()
  | Model.Async _ -> invalid_arg "Baseline_cds.plan: synchronous model required");
  let g = Model.graph model in
  let n = Model.n_nodes model in
  let backbone = Bitset.of_list n (Cds.greedy g) in
  Bitset.add backbone source;
  (* The message travels along the backbone only, so layers are hop
     distances *within* the induced backbone subgraph (a graph-wide BFS
     layer could contain a backbone node whose backbone path is longer,
     which would strand it). The backbone is connected and the source
     is adjacent to it, so the induced BFS reaches every relay. *)
  let backbone_edges =
    List.filter (fun (u, v) -> Bitset.mem backbone u && Bitset.mem backbone v) (Graph.edges g)
  in
  let induced = Graph.of_edges ~n backbone_edges in
  let layers = Bfs.layers induced ~source in
  let w = ref (Model.initial_w model ~source) in
  let t = ref start in
  let steps = ref [] in
  List.iter
    (fun layer ->
      let relays = List.filter (fun u -> Model.n_receivers model ~w:!w u > 0) layer in
      let uninformed = Bitset.complement !w in
      let counts = List.map (fun u -> (u, Model.n_receivers model ~w:!w u)) relays in
      let classes = Model.color_classes model ~uninformed counts in
      List.iter
        (fun senders ->
          let w' = Model.apply model ~w:!w ~senders in
          let informed = Bitset.elements (Bitset.diff w' !w) in
          steps := { Schedule.slot = !t; senders; informed } :: !steps;
          incr t;
          w := w')
        classes)
    layers;
  if not (Model.complete model ~w:!w) then
    failwith "Baseline_cds.plan: broadcast did not cover the network";
  Schedule.make ~n_nodes:n ~source ~start (List.rev !steps)
