module Bitset = Mlbs_util.Bitset
module Bfs = Mlbs_graph.Bfs
module Coloring = Mlbs_graph.Coloring
module Graph = Mlbs_graph.Graph

(* Colour the relays of one BFS layer: relays are the layer members with
   an uninformed neighbour; "uninformed" for both receivers and the
   conflict clique is everything deeper than the layer — that is what a
   hop-distance scheme knows. *)
let layer_classes model ~w layer =
  let relays = List.filter (fun u -> Model.n_receivers model ~w u > 0) layer in
  let uninformed = Bitset.complement w in
  let counts = List.map (fun u -> (u, Model.n_receivers model ~w u)) relays in
  Model.color_classes model ~uninformed counts

let plan model ~source ~start =
  (match Model.system model with
  | Model.Sync -> ()
  | Model.Async _ -> invalid_arg "Baseline26.plan: synchronous model required");
  let layers = Bfs.layers (Model.graph model) ~source in
  let w = ref (Model.initial_w model ~source) in
  let t = ref start in
  let steps = ref [] in
  List.iter
    (fun layer ->
      (* One layer's colors fire in consecutive rounds before the next
         layer may start. *)
      let classes = layer_classes model ~w:!w layer in
      List.iter
        (fun senders ->
          let w' = Model.apply model ~w:!w ~senders in
          let informed = Bitset.elements (Bitset.diff w' !w) in
          steps := { Schedule.slot = !t; senders; informed } :: !steps;
          incr t;
          w := w')
        classes)
    layers;
  if not (Model.complete model ~w:!w) then
    failwith "Baseline26.plan: broadcast did not cover the network (disconnected?)";
  Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start (List.rev !steps)
