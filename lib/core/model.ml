module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Coloring = Mlbs_graph.Coloring
module Network = Mlbs_wsn.Network
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Interference = Mlbs_phy.Interference

type system = Sync | Async of Wake_schedule.t

type t = {
  net : Network.t;
  graph : Graph.t;
  system : system;
  phy : Interference.t;
  inst : Interference.instance;
}

let create ?(phy = Interference.Udg) net system =
  (match system with
  | Sync -> ()
  | Async sched ->
      if Wake_schedule.n_nodes sched < Network.n_nodes net then
        invalid_arg "Model.create: wake schedule covers fewer nodes than the network");
  { net; graph = Network.graph net; system; phy; inst = Interference.bind phy net }

let network t = t.net
let graph t = t.graph
let system t = t.system
let phy t = t.phy
let phy_instance t = t.inst
let n_nodes t = Network.n_nodes t.net

let initial_w t ~source =
  let n = n_nodes t in
  if source < 0 || source >= n then invalid_arg "Model.initial_w: source out of range";
  let w = Bitset.create n in
  Bitset.add w source;
  w

let receivers t ~w u =
  Graph.fold_neighbors t.graph u ~init:[] ~f:(fun acc v ->
      if Bitset.mem w v then acc else v :: acc)
  |> List.rev

let n_receivers t ~w u =
  Graph.fold_neighbors t.graph u ~init:0 ~f:(fun acc v ->
      if Bitset.mem w v then acc else acc + 1)

let has_receiver t ~w u = n_receivers t ~w u > 0

let awake t u ~slot =
  match t.system with
  | Sync -> true
  | Async sched -> Wake_schedule.awake sched u ~slot

let frontier t ~w =
  List.rev (Bitset.fold (fun u acc -> if has_receiver t ~w u then u :: acc else acc) w [])

let candidates t ~w ~slot =
  List.filter (fun u -> awake t u ~slot) (frontier t ~w)

(* The conflict predicate [N(u) ∩ N(v) ∩ W̄ ≠ ∅] as one fused word-wise
   probe over the stored neighbour bitsets — boolean-equivalent to
   scanning the smaller adjacency list, without the scan. Under
   multi-channel the same predicate applies (it is the intra-channel
   rule; channel parallelism lives in the class chunking); under SINR
   the backend's pairwise-conservative test takes over. *)
let conflicts_with_uninformed t ~uninformed u v =
  match t.inst with
  | Interference.I_udg _ | Interference.I_mc _ ->
      u <> v
      && Bitset.intersects3 (Graph.neighbor_set t.graph u)
           (Graph.neighbor_set t.graph v) uninformed
  | Interference.I_sinr _ -> Interference.conflicts t.inst ~uninformed u v

let conflicts t ~w u v =
  u <> v
  &&
  let uninformed = Bitset.complement w in
  conflicts_with_uninformed t ~uninformed u v

(* Merge runs of [k] colour classes into one (slot, channel)
   super-class. Concatenated-class order is load-bearing: first-fit
   grouping over it (Multichannel.groups) reconstructs exactly these
   classes from the schedule bytes, so channels never need storing. *)
let rec chunk k = function
  | [] -> []
  | classes ->
      let rec take i acc rest =
        if i = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | c :: tl -> take (i - 1) (c :: acc) tl
      in
      let head, tl = take k [] classes in
      List.concat head :: chunk k tl

let greedy_order (u, cu) (v, cv) = if cu <> cv then compare cv cu else compare u v

(* Algorithm 1 under a feasibility-based backend: the same candidate
   order and repeated-pass structure as [Coloring.greedy], but class
   membership is the backend's incremental admission (for SINR:
   additive feasibility of the class built so far). *)
let greedy_classes_via_classifier t ~uninformed counts =
  let sorted = List.stable_sort greedy_order counts in
  let cls = Interference.classifier t.inst in
  let rec assign remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        Interference.start_class cls ~uninformed;
        let cl, rest =
          List.fold_left
            (fun (cl, rest) ((u, _) as item) ->
              if Interference.admits cls u then begin
                Interference.accept cls u;
                (u :: cl, rest)
              end
              else (cl, item :: rest))
            ([], []) remaining
        in
        assign (List.rev rest) (List.rev cl :: acc)
  in
  assign sorted []

(* The layer-structured baselines colour pre-counted candidate lists of
   their own making; they share the backend-aware core but never chunk
   (a single-channel schedule is valid under any channel count). Under
   UDG the classifier reproduces [Coloring.greedy] exactly — admission
   against the running blocked set is "conflicts with some member". *)
let color_classes t ~uninformed counts = greedy_classes_via_classifier t ~uninformed counts

let greedy_classes t ~w ~slot =
  let cands = candidates t ~w ~slot in
  let uninformed = Bitset.complement w in
  let count u = n_receivers t ~w u in
  (* Precompute receiver counts so the sort comparator is O(1). *)
  let counts = List.map (fun u -> (u, count u)) cands in
  match t.inst with
  | Interference.I_sinr _ -> greedy_classes_via_classifier t ~uninformed counts
  | Interference.I_udg _ | Interference.I_mc _ -> (
      let conflicts (u, _) (v, _) = conflicts_with_uninformed t ~uninformed u v in
      let classes =
        Coloring.greedy ~order:greedy_order ~conflicts counts |> List.map (List.map fst)
      in
      match t.inst with
      | Interference.I_mc { k; _ } when k > 1 -> chunk k classes
      | _ -> classes)

let apply t ~w ~senders =
  let w' = Bitset.copy w in
  List.iter
    (fun u ->
      if not (Bitset.mem w u) then
        invalid_arg (Printf.sprintf "Model.apply: sender %d not informed" u);
      Graph.iter_neighbors t.graph u ~f:(fun v -> Bitset.add w' v))
    senders;
  w'

let newly_informed t ~w ~senders =
  let w' = apply t ~w ~senders in
  Bitset.elements (Bitset.diff w' w)

let next_active_slot t ~w ~after =
  match frontier t ~w with
  | [] -> None
  | front -> (
      match t.system with
      | Sync -> Some (after + 1)
      | Async sched ->
          let earliest =
            List.fold_left
              (fun acc u -> min acc (Wake_schedule.next_wake sched u ~after))
              max_int front
          in
          Some earliest)

let complete _t ~w = Bitset.is_full w
