module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Coloring = Mlbs_graph.Coloring
module Network = Mlbs_wsn.Network
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type system = Sync | Async of Wake_schedule.t

type t = { net : Network.t; graph : Graph.t; system : system }

let create net system =
  (match system with
  | Sync -> ()
  | Async sched ->
      if Wake_schedule.n_nodes sched < Network.n_nodes net then
        invalid_arg "Model.create: wake schedule covers fewer nodes than the network");
  { net; graph = Network.graph net; system }

let network t = t.net
let graph t = t.graph
let system t = t.system
let n_nodes t = Network.n_nodes t.net

let initial_w t ~source =
  let n = n_nodes t in
  if source < 0 || source >= n then invalid_arg "Model.initial_w: source out of range";
  let w = Bitset.create n in
  Bitset.add w source;
  w

let receivers t ~w u =
  Graph.fold_neighbors t.graph u ~init:[] ~f:(fun acc v ->
      if Bitset.mem w v then acc else v :: acc)
  |> List.rev

let n_receivers t ~w u =
  Graph.fold_neighbors t.graph u ~init:0 ~f:(fun acc v ->
      if Bitset.mem w v then acc else acc + 1)

let has_receiver t ~w u = n_receivers t ~w u > 0

let awake t u ~slot =
  match t.system with
  | Sync -> true
  | Async sched -> Wake_schedule.awake sched u ~slot

let frontier t ~w =
  List.rev (Bitset.fold (fun u acc -> if has_receiver t ~w u then u :: acc else acc) w [])

let candidates t ~w ~slot =
  List.filter (fun u -> awake t u ~slot) (frontier t ~w)

(* The conflict predicate [N(u) ∩ N(v) ∩ W̄ ≠ ∅] as one fused word-wise
   probe over the stored neighbour bitsets — boolean-equivalent to
   scanning the smaller adjacency list, without the scan. *)
let conflicts_with_uninformed t ~uninformed u v =
  u <> v
  && Bitset.intersects3 (Graph.neighbor_set t.graph u) (Graph.neighbor_set t.graph v)
       uninformed

let conflicts t ~w u v =
  u <> v
  &&
  let uninformed = Bitset.complement w in
  conflicts_with_uninformed t ~uninformed u v

let greedy_classes t ~w ~slot =
  let cands = candidates t ~w ~slot in
  let uninformed = Bitset.complement w in
  let count u = n_receivers t ~w u in
  (* Precompute receiver counts so the sort comparator is O(1). *)
  let counts = List.map (fun u -> (u, count u)) cands in
  let order (u, cu) (v, cv) = if cu <> cv then compare cv cu else compare u v in
  let conflicts (u, _) (v, _) = conflicts_with_uninformed t ~uninformed u v in
  Coloring.greedy ~order ~conflicts counts |> List.map (List.map fst)

let apply t ~w ~senders =
  let w' = Bitset.copy w in
  List.iter
    (fun u ->
      if not (Bitset.mem w u) then
        invalid_arg (Printf.sprintf "Model.apply: sender %d not informed" u);
      Graph.iter_neighbors t.graph u ~f:(fun v -> Bitset.add w' v))
    senders;
  w'

let newly_informed t ~w ~senders =
  let w' = apply t ~w ~senders in
  Bitset.elements (Bitset.diff w' w)

let next_active_slot t ~w ~after =
  match frontier t ~w with
  | [] -> None
  | front -> (
      match t.system with
      | Sync -> Some (after + 1)
      | Async sched ->
          let earliest =
            List.fold_left
              (fun acc u -> min acc (Wake_schedule.next_wake sched u ~after))
              max_int front
          in
          Some earliest)

let complete _t ~w = Bitset.is_full w
