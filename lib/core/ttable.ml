module Bitset = Mlbs_util.Bitset
module Metrics = Mlbs_obs.Metrics

(* Transposition-table observability (behind the disabled-registry
   branch, like the search counters). Hits/misses count probes from
   both the node-entry lookup and the pre-apply child probe; collisions
   count probe-chain displacements (occupied slots walked past);
   evictions count capacity-policy replacements (and declined inserts
   at capacity); grows count capacity doublings. *)
let m_hit = Metrics.counter "search/tt_hit"
let m_miss = Metrics.counter "search/tt_miss"
let m_collision = Metrics.counter "search/tt_collision"
let m_evict = Metrics.counter "search/tt_evict"
let m_grow = Metrics.counter "search/tt_grow"

(* Open-addressing table keyed by (informed-set hash, slot) with linear
   probing. Sync searches use the sentinel slot 0 (their values depend
   on W alone); async searches key on the true (W, slot) pair. The
   stored sets are hash-consed through a side intern table, so the
   async entries for one informed set at many slots share a single
   bitset copy. Slots are never cleared — replacement overwrites in
   place — so probe chains stay intact and every lookup terminates on
   the first empty slot. *)
type t = {
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable hkey : int array;  (* informed-set hash *)
  mutable slot : int array;  (* -1 = empty *)
  mutable set : Bitset.t array;
  mutable value : int array;
  mutable size : int;
  max_entries : int;  (* 0 = unbounded (grow, never evict) *)
  dummy : Bitset.t;
  (* intern store: content-addressed informed-set copies *)
  mutable imask : int;
  mutable ihash : int array;
  mutable iset : Bitset.t array;  (* physically [dummy] = empty *)
  mutable isize : int;
}

let pow2_at_least n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 16

let create ?(max_entries = 0) () =
  let cap = if max_entries > 0 then pow2_at_least (2 * max_entries) else 1024 in
  let dummy = Bitset.create 0 in
  {
    mask = cap - 1;
    hkey = Array.make cap 0;
    slot = Array.make cap (-1);
    set = Array.make cap dummy;
    value = Array.make cap 0;
    size = 0;
    max_entries;
    dummy;
    imask = cap - 1;
    ihash = Array.make cap 0;
    iset = Array.make cap dummy;
    isize = 0;
  }

let length t = t.size

(* Probe-start index: one splitmix-style finalizer over the combined
   (hash, slot) key, so sync (slot 0) and async entries for the same W
   land on distinct chains. *)
let mixkey h slot =
  let x = h + (slot * 0x9e3779b97f4a7c1) in
  let x = (x lxor (x lsr 30)) * 0x27d4eb2f165667c5 land max_int in
  x lxor (x lsr 27)

let find t ~h ~slot ~set =
  let rec probe i =
    let j = i land t.mask in
    if t.slot.(j) < 0 then begin
      Metrics.incr m_miss;
      None
    end
    else if t.hkey.(j) = h && t.slot.(j) = slot && Bitset.equal t.set.(j) set
    then begin
      Metrics.incr m_hit;
      Some t.value.(j)
    end
    else begin
      Metrics.incr m_collision;
      probe (i + 1)
    end
  in
  probe (mixkey h slot)

(* Probe for the child key [base ∪ cov] without materialising the
   union: the caller derives [h] with [Bitset.hash_union] and equality
   is verified word-wise by [Bitset.equal_union]. *)
let find_union t ~h ~slot ~base ~cov =
  let rec probe i =
    let j = i land t.mask in
    if t.slot.(j) < 0 then begin
      Metrics.incr m_miss;
      None
    end
    else if t.hkey.(j) = h && t.slot.(j) = slot && Bitset.equal_union t.set.(j) base cov
    then begin
      Metrics.incr m_hit;
      Some t.value.(j)
    end
    else begin
      Metrics.incr m_collision;
      probe (i + 1)
    end
  in
  probe (mixkey h slot)

let igrow t =
  let old_set = t.iset and old_hash = t.ihash in
  let cap = (t.imask + 1) * 2 in
  t.imask <- cap - 1;
  t.ihash <- Array.make cap 0;
  t.iset <- Array.make cap t.dummy;
  Array.iteri
    (fun j s ->
      if s != t.dummy then begin
        let h = old_hash.(j) in
        let rec place i =
          let j' = i land t.imask in
          if t.iset.(j') == t.dummy then begin
            t.ihash.(j') <- h;
            t.iset.(j') <- s
          end
          else place (i + 1)
        in
        place (mixkey h 0)
      end)
    old_set

(* Return the canonical stored copy of [set]: an existing interned set
   with equal content, or a fresh copy ([shared] stores the caller's
   set itself — used when seeding from a snapshot, whose sets are
   already immutable). *)
let intern t ~h ~shared set =
  let rec probe i =
    let j = i land t.imask in
    if t.iset.(j) == t.dummy then begin
      let stored = if shared then set else Bitset.copy set in
      t.ihash.(j) <- h;
      t.iset.(j) <- stored;
      t.isize <- t.isize + 1;
      if (t.isize + 1) * 2 > t.imask + 1 then igrow t;
      stored
    end
    else if t.ihash.(j) = h && Bitset.equal t.iset.(j) set then t.iset.(j)
    else probe (i + 1)
  in
  probe (mixkey h 0)

let grow t =
  Metrics.incr m_grow;
  let old_hkey = t.hkey and old_slot = t.slot in
  let old_set = t.set and old_value = t.value in
  let cap = (t.mask + 1) * 2 in
  t.mask <- cap - 1;
  t.hkey <- Array.make cap 0;
  t.slot <- Array.make cap (-1);
  t.set <- Array.make cap t.dummy;
  t.value <- Array.make cap 0;
  Array.iteri
    (fun j s ->
      if s >= 0 then begin
        let rec place i =
          let j' = i land t.mask in
          if t.slot.(j') < 0 then begin
            t.hkey.(j') <- old_hkey.(j);
            t.slot.(j') <- s;
            t.set.(j') <- old_set.(j);
            t.value.(j') <- old_value.(j)
          end
          else place (i + 1)
        in
        place (mixkey old_hkey.(j) s)
      end)
    old_slot

let store t j ~h ~slot ~stored v =
  t.hkey.(j) <- h;
  t.slot.(j) <- slot;
  t.set.(j) <- stored;
  t.value.(j) <- v

let insert t ~h ~slot ~shared ~set v =
  let home = mixkey h slot land t.mask in
  let rec probe i =
    let j = i land t.mask in
    if t.slot.(j) < 0 then
      if t.max_entries > 0 && t.size >= t.max_entries then begin
        (* Value-safe replacement at capacity: overwrite the entry at
           this key's home slot when occupied (the evicted key simply
           recomputes on its next miss), otherwise decline the insert.
           Either way no slot is ever cleared, so every existing probe
           chain — including through the overwritten slot — survives. *)
        Metrics.incr m_evict;
        if t.slot.(home) >= 0 then
          store t home ~h ~slot ~stored:(intern t ~h ~shared set) v
      end
      else begin
        store t j ~h ~slot ~stored:(intern t ~h ~shared set) v;
        t.size <- t.size + 1;
        if t.max_entries = 0 && (t.size + 1) * 2 > t.mask + 1 then grow t
      end
    else if t.hkey.(j) = h && t.slot.(j) = slot && Bitset.equal t.set.(j) set
    then t.value.(j) <- v
    else probe (i + 1)
  in
  probe home

let add t ~h ~slot ~set v = insert t ~h ~slot ~shared:false ~set v
let add_shared t ~h ~slot ~set v = insert t ~h ~slot ~shared:true ~set v

let iter f t =
  Array.iteri
    (fun j s -> if s >= 0 then f ~h:t.hkey.(j) ~slot:s ~set:t.set.(j) ~value:t.value.(j))
    t.slot
