(** Delta repair for dynamic topologies: patch a solved broadcast after
    a localised graph change instead of re-solving from scratch.

    The engine takes the model and schedule of a completed solve, a
    topology delta (edges added/removed, nodes rewired), and optionally
    the solve's memo {!Mcounter.snapshot}. It

    + applies the delta with {!Mlbs_graph.Graph.edit} and identifies
      the {e changed endpoints} — the nodes whose neighbourhood the
      delta touched ({!Mlbs_graph.Graph.diff_endpoints});
    + replays the old schedule on the edited model through an
      {!Istate}, then rewinds exactly the frames the affected region
      touches via the watermarked undo log
      ({!Istate.rewind_region}) — certifying how long a prefix of the
      broadcast the delta provably leaves intact;
    + re-solves with {!Scheduler.run_warm}, seeding the M-counter memo
      with every snapshot entry whose informed set already contains
      all changed endpoints: the search below such a set only reads
      edges with an uninformed endpoint, and every changed edge has
      both endpoints in the diff, so the seeded values are exactly
      what a cold search would recompute.

    Consequently the repaired schedule is byte-identical to a full
    {!Scheduler.run} on the edited model (property-tested in
    [test/test_reschedule.ml]); the seeds only skip re-deriving values
    that cannot have changed. Under small deltas most of the memo
    survives, which is where the repair-vs-resolve speedup of BENCH_4
    comes from.

    The edited model's geometry is synthesised with
    {!Mlbs_wsn.Network.synthetic} — the same recipe the scheduling
    service uses for explicit adjacencies — so daemon-side repairs and
    direct calls agree byte for byte. *)

module Bitset = Mlbs_util.Bitset

(** What a repair did, beyond the schedule itself. *)
type report = {
  schedule : Schedule.t;  (** the repaired schedule *)
  model : Model.t;  (** the edited model the schedule is for *)
  changed : int list;
      (** changed endpoints: nodes whose adjacency differs, ascending *)
  region : Bitset.t;
      (** the affected region — changed endpoints plus their 1-hop
          neighbourhoods on the edited graph *)
  clear_steps : int;
      (** length of the certified-intact prefix: leading old-schedule
          steps whose senders and newly-informed nodes all avoid the
          changed endpoints (these replay identically on both graphs) *)
  warm : bool;
      (** whether snapshot seeding was actually engaged (a reusable
          snapshot was supplied and passed {!Mcounter.snapshot_reusable}) *)
  snapshot : Mcounter.snapshot option;
      (** the repair's own memo snapshot, for chaining further repairs
          (search policies only) *)
}

(** [reschedule model policy ?snapshot ?snapshot_graph ?source
    ~old_schedule ~added ~removed ~rewired ()] repairs [old_schedule]
    after the topology delta. [model] must be the model
    [old_schedule] was solved on; the node count is fixed — deltas
    change edges only (see {!Mlbs_graph.Graph.edit} for the delta
    semantics and ordering). [source] defaults to
    [Schedule.source old_schedule]; the start slot is always
    [Schedule.start old_schedule].

    [snapshot] warm-starts the re-solve; it is ignored unless
    {!Scheduler.warm_seeds} accepts it for this policy.
    [snapshot_graph] names the graph the snapshot's solve ran on and
    defaults to [model]'s graph — pass it when chaining repairs, where
    the freshest snapshot belongs to the previously edited graph
    rather than the base. Seed validity is derived from the diff
    between [snapshot_graph] and the edited graph, so a stale or
    unrelated (same-size) graph only shrinks the usable seed set,
    never the correctness of the result.

    Raises [Invalid_argument] on malformed deltas and [Failure] when
    the edited graph disconnects the source from some node. *)
val reschedule :
  Model.t ->
  Scheduler.policy ->
  ?snapshot:Mcounter.snapshot ->
  ?snapshot_graph:Mlbs_graph.Graph.t ->
  ?source:int ->
  old_schedule:Schedule.t ->
  added:(int * int) list ->
  removed:(int * int) list ->
  rewired:(int * int list) list ->
  unit ->
  report
