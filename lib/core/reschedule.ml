module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Interference = Mlbs_phy.Interference
module Metrics = Mlbs_obs.Metrics
module Trace = Mlbs_obs.Trace

type report = {
  schedule : Schedule.t;
  model : Model.t;
  changed : int list;
  region : Bitset.t;
  clear_steps : int;
  warm : bool;
  snapshot : Mcounter.snapshot option;
}

(* Domain-local replay state, sized on first use — repairs land on the
   daemon's worker domains, and a churn stream repairs the same
   deployment many times over. *)
let istate_key : Istate.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_istate n =
  let slot = Domain.DLS.get istate_key in
  match !slot with
  | Some st when Istate.capacity st = n -> st
  | _ ->
      let st = Istate.create n in
      slot := Some st;
      st

let m_repairs = Metrics.counter "reschedule/repairs"
let m_warm = Metrics.counter "reschedule/warm"
let m_clear = Metrics.counter "reschedule/clear_steps"

(* Changed endpoints plus their 1-hop neighbourhoods on the edited
   graph — the only nodes whose candidate sets, receiver counts or
   conflict relations the delta can perturb directly. *)
let region_of g changed =
  let r = Bitset.create (Graph.n_nodes g) in
  List.iter
    (fun u ->
      Bitset.add r u;
      Array.iter (fun v -> Bitset.add r v) (Graph.neighbors g u))
    changed;
  r

(* Replay the old schedule's steps on the edited model, stopping at the
   first step that cannot replay verbatim: a sender that is a changed
   endpoint (its coverage may differ between the graphs), a sender the
   replay has not informed, or a step whose newly-informed set differs
   from the recorded one. Every frame pushed before the stop informs
   the same nodes on both graphs, so [Istate.frames_clear_of] over the
   changed-endpoint set then counts the provably intact prefix, and
   [rewind_region] pops exactly the frames the delta touches. *)
let certified_prefix st old_schedule ~endpoints =
  let w = Istate.w st in
  let rec replay = function
    | [] -> ()
    | { Schedule.senders; informed; _ } :: rest ->
        if
          List.for_all (fun u -> Bitset.mem w u && not (Bitset.mem endpoints u)) senders
          && List.for_all (fun v -> not (Bitset.mem endpoints v)) informed
        then begin
          let before = Istate.n_informed st in
          Istate.apply st ~senders;
          if Istate.n_informed st - before = List.length informed then replay rest
          else Istate.undo st
        end
  in
  replay (Schedule.steps old_schedule);
  let d = Istate.rewind_region st ~region:endpoints in
  assert (d = Istate.depth st);
  d

let reschedule model policy ?snapshot ?snapshot_graph ?source ~old_schedule ~added
    ~removed ~rewired () =
  Trace.with_span ~arg:(List.length added + List.length removed + List.length rewired)
    ~cat:"sched" "reschedule"
  @@ fun () ->
  let source = match source with Some s -> s | None -> Schedule.source old_schedule in
  let start = Schedule.start old_schedule in
  let n = Model.n_nodes model in
  if Schedule.n_nodes old_schedule <> n then
    invalid_arg "Reschedule.reschedule: schedule/model node counts differ";
  let g = Model.graph model in
  let g' = Graph.edit g ~add:added ~remove:removed ~rewire:rewired in
  let changed = Graph.diff_endpoints g g' in
  let endpoints = Bitset.of_list n changed in
  (* The repaired model inherits the interference backend: a daemon-side
     repair and a direct re-solve of the edited adjacency must bind the
     same model (and, for SINR, the same synthetic geometry) or their
     schedules stop being byte-comparable. *)
  let model' =
    Model.create ~phy:(Model.phy model) (Network.synthetic g') (Model.system model)
  in
  (* Certified-intact prefix, through the watermarked undo log. *)
  let st = local_istate n in
  Istate.reset st model' ~w:(Model.initial_w model' ~source);
  let clear_steps = certified_prefix st old_schedule ~endpoints in
  (* Warm start: seed the search with every memo entry whose informed
     set contains all endpoints of the diff between the snapshot's
     graph (the base graph unless the snapshot came from another
     family member, e.g. a previous repair in a churn chain) and the
     edited graph. Below such a set the search only reads edges with
     an uninformed endpoint, and both endpoints of every differing
     edge are in the diff, so the entry's value is the same on both
     graphs. *)
  let seeds =
    match snapshot with
    | None -> None
    (* The subset-validity argument below is graph-wise; a
       geometry-dependent model makes the snapshot's memo values a
       function of the deployment it was computed on, so it must not
       steer this solve (the edited model lives on synthetic
       geometry). *)
    | Some _ when Interference.geometry_dependent (Model.phy model) -> None
    | Some snap ->
        let snap_g = Option.value snapshot_graph ~default:g in
        if Graph.n_nodes snap_g <> n then None
        else
          let seps = Bitset.of_list n (Graph.diff_endpoints snap_g g') in
          Scheduler.warm_seeds policy snap ~n ~valid:(fun w -> Bitset.subset seps w)
  in
  let warm = seeds <> None in
  let schedule, snapshot' = Scheduler.run_warm model' policy ?seeds ~source ~start () in
  Metrics.incr m_repairs;
  if warm then Metrics.incr m_warm;
  Metrics.add m_clear clear_steps;
  {
    schedule;
    model = model';
    changed;
    region = region_of g' changed;
    clear_steps;
    warm;
    snapshot = snapshot';
  }
