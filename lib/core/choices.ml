module Bitset = Mlbs_util.Bitset
module Indep = Mlbs_graph.Indep

type t = Greedy | All of { max_sets : int }

let enumerate_all ~graph ~uninformed ~max_sets cands =
  match cands with
  | [] -> []
  | _ ->
      let arr = Array.of_list cands in
      let conflict i j =
        Bitset.intersects3
          (Mlbs_graph.Graph.neighbor_set graph arr.(i))
          (Mlbs_graph.Graph.neighbor_set graph arr.(j))
          uninformed
      in
      Indep.maximal ~n:(Array.length arr) ~conflict ~limit:max_sets
      |> List.map (List.map (fun i -> arr.(i)))

let enumerate model space ~w ~slot =
  match space with
  | Greedy -> Model.greedy_classes model ~w ~slot
  | All { max_sets } ->
      let uninformed = Bitset.complement w in
      enumerate_all ~graph:(Model.graph model) ~uninformed ~max_sets
        (Model.candidates model ~w ~slot)

(* Same choice sets, computed from the incremental state: the greedy
   classes reuse the maintained uninformed-neighbour counts, and the
   OPT enumeration reuses the maintained complement instead of
   materialising one per call. *)
let enumerate_incremental ist space ~slot =
  match space with
  | Greedy -> Istate.greedy_classes ist ~slot
  | All { max_sets } ->
      enumerate_all
        ~graph:(Model.graph (Istate.model ist))
        ~uninformed:(Istate.ubar ist) ~max_sets
        (Istate.candidates ist ~slot)
