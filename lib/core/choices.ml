module Bitset = Mlbs_util.Bitset
module Indep = Mlbs_graph.Indep
module Interference = Mlbs_phy.Interference

type t = Greedy | All of { max_sets : int }

let enumerate_all ~graph ~uninformed ~max_sets cands =
  match cands with
  | [] -> []
  | _ ->
      let arr = Array.of_list cands in
      let conflict i j =
        Bitset.intersects3
          (Mlbs_graph.Graph.neighbor_set graph arr.(i))
          (Mlbs_graph.Graph.neighbor_set graph arr.(j))
          uninformed
      in
      Indep.maximal ~n:(Array.length arr) ~conflict ~limit:max_sets
      |> List.map (List.map (fun i -> arr.(i)))

(* Backend-aware OPT choice sets. UDG takes the historical path above.
   SINR prefilters with the pairwise-conservative predicate, then trims
   each maximal set through the additive zone in order — pairwise
   compatibility is necessary but not sufficient under summed
   interference, and only zone-built sets are guaranteed to validate.
   Multi-channel extends each maximal set (channel 1) with greedy
   classes of the leftover candidates on channels 2..k, in
   concatenated-class order so first-fit reconstruction recovers the
   channel assignment from the sender list alone. *)
let enumerate_all_phy inst ~uninformed ~max_sets cands =
  match inst with
  | Interference.I_udg graph -> enumerate_all ~graph ~uninformed ~max_sets cands
  | Interference.I_sinr _ -> (
      match cands with
      | [] -> []
      | _ ->
          let arr = Array.of_list cands in
          let conflict i j = Interference.conflicts inst ~uninformed arr.(i) arr.(j) in
          let sets =
            Indep.maximal ~n:(Array.length arr) ~conflict ~limit:max_sets
            |> List.map (List.map (fun i -> arr.(i)))
          in
          let cls = Interference.classifier inst in
          List.map
            (fun set ->
              Interference.start_class cls ~uninformed;
              List.filter
                (fun u ->
                  if Interference.admits cls u then begin
                    Interference.accept cls u;
                    true
                  end
                  else false)
                set)
            sets)
  | Interference.I_mc { graph = g; k } ->
      let sets = enumerate_all ~graph:g ~uninformed ~max_sets cands in
      if k = 1 then sets
      else
        let cap = Bitset.cap uninformed in
        List.map
          (fun s1 ->
            let taken = Bitset.create cap in
            List.iter (Bitset.add taken) s1;
            let remaining = List.filter (fun u -> not (Bitset.mem taken u)) cands in
            let blocked = Bitset.create cap in
            let rec channels ch senders remaining =
              if ch >= k || remaining = [] then senders
              else begin
                Bitset.clear blocked;
                let cls, rest =
                  List.fold_left
                    (fun (cls, rest) u ->
                      if Bitset.intersects (Mlbs_graph.Graph.neighbor_set g u) blocked
                      then (cls, u :: rest)
                      else begin
                        Bitset.union_inter_into ~into:blocked
                          (Mlbs_graph.Graph.neighbor_set g u)
                          uninformed;
                        (u :: cls, rest)
                      end)
                    ([], []) remaining
                in
                channels (ch + 1) (senders @ List.rev cls) (List.rev rest)
              end
            in
            channels 1 s1 remaining)
          sets

let enumerate model space ~w ~slot =
  match space with
  | Greedy -> Model.greedy_classes model ~w ~slot
  | All { max_sets } ->
      let uninformed = Bitset.complement w in
      enumerate_all_phy (Model.phy_instance model) ~uninformed ~max_sets
        (Model.candidates model ~w ~slot)

(* Same choice sets, computed from the incremental state: the greedy
   classes reuse the maintained uninformed-neighbour counts, and the
   OPT enumeration reuses the maintained complement instead of
   materialising one per call. *)
let enumerate_incremental ist space ~slot =
  match space with
  | Greedy -> Istate.greedy_classes ist ~slot
  | All { max_sets } ->
      enumerate_all_phy
        (Model.phy_instance (Istate.model ist))
        ~uninformed:(Istate.ubar ist) ~max_sets
        (Istate.candidates ist ~slot)
