(* Incremental search state for the M-counter (paper Eq. 4–8).

   The branch-and-bound search over informed sets used to rebuild, for
   every candidate advance, the frontier (a scan of [W] with per-node
   receiver counts), the conflict structure (a fresh complement bitset),
   and the hop lower bound (a full multi-source BFS). This module keeps
   all of that as mutable scratch updated in O(affected nodes) by
   [apply], and restored exactly by [undo] from a watermarked log:

   - [w] / [ubar]: the informed set and its complement;
   - [whash]: [Bitset.hash w], maintained via [Bitset.hash_flip] so memo
     probes never re-hash the full word array;
   - [uncov.(u)]: |N(u) ∩ W̄| — zero iff [u] has nothing left to cover,
     so the frontier is {u ∈ W : uncov u > 0} and greedy-colouring
     receiver counts come for free;
   - [dist.(v)]: hop distance from [W] (0 on [W] itself). Informing A
     only ever shrinks distances, by a BFS relaxation seeded at A, so a
     distance histogram [dcnt] plus [dmax]/[unreach] give the hop lower
     bound without re-running the BFS from scratch.

   Each [apply] pushes one frame (watermarks into the shared logs plus
   the saved [dmax]); [undo] pops a frame by replaying the logs in
   reverse. The per-frame dist log records (node, old distance) pairs;
   their informed/uninformed status at undo time equals their status
   when logged, because within a frame every inform precedes every
   relaxation and frames unwind LIFO. *)

module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Coloring = Mlbs_graph.Coloring
module Metrics = Mlbs_obs.Metrics
module Interference = Mlbs_phy.Interference

(* Hot-path probes: one disabled-registry branch each (see lib/obs). *)
let m_apply = Metrics.counter "istate/apply"
let m_undo = Metrics.counter "istate/undo"
let m_probe = Metrics.counter "istate/probe"
let m_color = Metrics.counter "search/color_selections"

type t = {
  cap : int;
  mutable model : Model.t option;
  w : Bitset.t;
  ubar : Bitset.t;
  mutable whash : int;
  mutable ninf : int;  (* |W| *)
  uncov : int array;
  dist : int array;
  dcnt : int array;  (* per distance d >= 1, # uninformed reachable nodes at d *)
  mutable dmax : int;
  mutable unreach : int;  (* # uninformed nodes with dist = max_int *)
  queue : int array;  (* BFS ring, each node enqueued at most once per apply *)
  (* Watermarked undo logs, shared by all frames. *)
  mutable added : int array;
  mutable n_added : int;
  mutable dlog_node : int array;
  mutable dlog_dist : int array;
  mutable n_dlog : int;
  mutable f_added : int array;  (* per frame: added watermark *)
  mutable f_dlog : int array;  (* per frame: dist-log watermark *)
  mutable f_dmax : int array;  (* per frame: dmax before the apply *)
  mutable n_frames : int;
  (* Non-mutating child-probe scratch: per-distance layer bitsets of
     the current position, built lazily once per state and shared by
     every probe at it, plus two wave-front scratch sets. *)
  lay : Bitset.t array;
  mutable lay_max : int;  (* layers filled by the last build *)
  mutable lay_valid : bool;
  pfront : Bitset.t;
  pnext : Bitset.t;
  pblocked : Bitset.t;  (* greedy-colouring scratch: class blocked zone *)
  (* Interference-backend class builder, created lazily on the first
     colouring under a non-UDG model (reset drops it with the model). *)
  mutable phy_cls : Interference.classifier option;
}

let create cap =
  if cap < 0 then invalid_arg "Istate.create: negative capacity";
  let sz = max 1 cap in
  {
    cap;
    model = None;
    w = Bitset.create cap;
    ubar = Bitset.create cap;
    whash = 0;
    ninf = 0;
    uncov = Array.make sz 0;
    dist = Array.make sz max_int;
    dcnt = Array.make (sz + 1) 0;
    dmax = 0;
    unreach = 0;
    queue = Array.make sz 0;
    added = Array.make sz 0;
    n_added = 0;
    dlog_node = Array.make sz 0;
    dlog_dist = Array.make sz 0;
    n_dlog = 0;
    f_added = Array.make 16 0;
    f_dlog = Array.make 16 0;
    f_dmax = Array.make 16 0;
    n_frames = 0;
    lay = Array.init (sz + 1) (fun _ -> Bitset.create cap);
    lay_max = 0;
    lay_valid = false;
    pfront = Bitset.create cap;
    pnext = Bitset.create cap;
    pblocked = Bitset.create cap;
    phy_cls = None;
  }

let capacity st = st.cap

let model st =
  match st.model with
  | Some m -> m
  | None -> invalid_arg "Istate: not reset to a model yet"

let graph st = Model.graph (model st)

(* -------------------------- log plumbing --------------------------- *)

let grow a used = if used < Array.length a then a else Array.append a (Array.make (Array.length a) 0)

let push_added st v =
  st.added <- grow st.added st.n_added;
  st.added.(st.n_added) <- v;
  st.n_added <- st.n_added + 1

let push_dlog st v d =
  st.dlog_node <- grow st.dlog_node st.n_dlog;
  st.dlog_dist <- grow st.dlog_dist st.n_dlog;
  st.dlog_node.(st.n_dlog) <- v;
  st.dlog_dist.(st.n_dlog) <- d;
  st.n_dlog <- st.n_dlog + 1

let push_frame st =
  st.f_added <- grow st.f_added st.n_frames;
  st.f_dlog <- grow st.f_dlog st.n_frames;
  st.f_dmax <- grow st.f_dmax st.n_frames;
  st.f_added.(st.n_frames) <- st.n_added;
  st.f_dlog.(st.n_frames) <- st.n_dlog;
  st.f_dmax.(st.n_frames) <- st.dmax;
  st.n_frames <- st.n_frames + 1

(* ------------------------------ reset ------------------------------ *)

let reset st m ~w =
  let n = Model.n_nodes m in
  if n <> st.cap then invalid_arg "Istate.reset: model size does not match capacity";
  if Bitset.cap w <> st.cap then invalid_arg "Istate.reset: informed set capacity mismatch";
  st.model <- Some m;
  st.lay_valid <- false;
  st.phy_cls <- None;
  Bitset.assign ~into:st.w w;
  Bitset.complement_into ~into:st.ubar w;
  st.whash <- Bitset.hash st.w;
  st.ninf <- Bitset.cardinal st.w;
  st.n_added <- 0;
  st.n_dlog <- 0;
  st.n_frames <- 0;
  let g = Model.graph m in
  (* Full multi-source BFS from W, once per reset. *)
  Array.fill st.dist 0 (max 1 n) max_int;
  let tail = ref 0 in
  Bitset.iter
    (fun s ->
      st.dist.(s) <- 0;
      st.queue.(!tail) <- s;
      incr tail)
    st.w;
  let head = ref 0 in
  while !head < !tail do
    let u = st.queue.(!head) in
    incr head;
    let du = st.dist.(u) + 1 in
    Graph.iter_neighbors g u ~f:(fun v ->
        if st.dist.(v) = max_int then begin
          st.dist.(v) <- du;
          st.queue.(!tail) <- v;
          incr tail
        end)
  done;
  Array.fill st.dcnt 0 (n + 1) 0;
  st.dmax <- 0;
  st.unreach <- 0;
  for v = 0 to n - 1 do
    st.uncov.(v) <-
      Graph.fold_neighbors g v ~init:0 ~f:(fun acc x ->
          if Bitset.mem st.w x then acc else acc + 1);
    if not (Bitset.mem st.w v) then begin
      let d = st.dist.(v) in
      if d = max_int then st.unreach <- st.unreach + 1
      else begin
        st.dcnt.(d) <- st.dcnt.(d) + 1;
        if d > st.dmax then st.dmax <- d
      end
    end
  done

(* --------------------------- apply / undo -------------------------- *)

let apply st ~senders =
  Metrics.incr m_apply;
  let g = graph st in
  st.lay_valid <- false;
  push_frame st;
  let base_added = st.n_added in
  (* Phase 1: inform every uninformed neighbour of a sender. *)
  List.iter
    (fun u ->
      if not (Bitset.mem st.w u) then
        invalid_arg (Printf.sprintf "Istate.apply: sender %d not informed" u);
      Graph.iter_neighbors g u ~f:(fun v ->
          if not (Bitset.mem st.w v) then begin
            st.whash <- Bitset.hash_flip st.w v st.whash;
            Bitset.add st.w v;
            Bitset.remove st.ubar v;
            st.ninf <- st.ninf + 1;
            let d = st.dist.(v) in
            if d = max_int then st.unreach <- st.unreach - 1
            else st.dcnt.(d) <- st.dcnt.(d) - 1;
            Graph.iter_neighbors g v ~f:(fun x -> st.uncov.(x) <- st.uncov.(x) - 1);
            push_added st v
          end))
    senders;
  (* Phase 2: distances can only shrink — BFS relaxation seeded at the
     newly informed set, logging every overwritten distance. *)
  let tail = ref 0 in
  for i = base_added to st.n_added - 1 do
    let v = st.added.(i) in
    if st.dist.(v) <> 0 then begin
      push_dlog st v st.dist.(v);
      st.dist.(v) <- 0
    end;
    st.queue.(!tail) <- v;
    incr tail
  done;
  let head = ref 0 in
  while !head < !tail do
    let x = st.queue.(!head) in
    incr head;
    let dd = st.dist.(x) + 1 in
    Graph.iter_neighbors g x ~f:(fun y ->
        if st.dist.(y) > dd then begin
          push_dlog st y st.dist.(y);
          (* Only uninformed nodes sit in the histogram; every node
             relaxed here is uninformed (informed nodes are at 0). *)
          if st.dist.(y) = max_int then st.unreach <- st.unreach - 1
          else st.dcnt.(st.dist.(y)) <- st.dcnt.(st.dist.(y)) - 1;
          st.dcnt.(dd) <- st.dcnt.(dd) + 1;
          st.dist.(y) <- dd;
          st.queue.(!tail) <- y;
          incr tail
        end)
  done;
  if st.ninf = st.cap then st.dmax <- 0
  else begin
    let d = ref st.dmax in
    while !d > 0 && st.dcnt.(!d) = 0 do
      decr d
    done;
    st.dmax <- !d
  end

let undo st =
  Metrics.incr m_undo;
  if st.n_frames = 0 then invalid_arg "Istate.undo: no frame to pop";
  let g = graph st in
  st.lay_valid <- false;
  st.n_frames <- st.n_frames - 1;
  let ba = st.f_added.(st.n_frames)
  and bd = st.f_dlog.(st.n_frames)
  and saved_dmax = st.f_dmax.(st.n_frames) in
  for i = st.n_dlog - 1 downto bd do
    let y = st.dlog_node.(i) and old = st.dlog_dist.(i) in
    if Bitset.mem st.ubar y then begin
      st.dcnt.(st.dist.(y)) <- st.dcnt.(st.dist.(y)) - 1;
      if old = max_int then st.unreach <- st.unreach + 1
      else st.dcnt.(old) <- st.dcnt.(old) + 1
    end;
    st.dist.(y) <- old
  done;
  st.n_dlog <- bd;
  for i = st.n_added - 1 downto ba do
    let v = st.added.(i) in
    st.whash <- Bitset.hash_flip st.w v st.whash;
    Bitset.remove st.w v;
    Bitset.add st.ubar v;
    st.ninf <- st.ninf - 1;
    let d = st.dist.(v) in
    if d = max_int then st.unreach <- st.unreach + 1
    else st.dcnt.(d) <- st.dcnt.(d) + 1;
    Graph.iter_neighbors g v ~f:(fun x -> st.uncov.(x) <- st.uncov.(x) + 1)
  done;
  st.n_added <- ba;
  st.dmax <- saved_dmax

let depth st = st.n_frames

let rewind st ~depth =
  if depth < 0 then invalid_arg "Istate.rewind: negative depth";
  while st.n_frames > depth do
    undo st
  done

(* Region watermarks: the frame boundaries recorded in [f_added] slice
   the shared [added] log into per-frame informed sets, so asking which
   leading frames stay clear of a region is one scan of the log — no
   undo, no per-frame allocation. *)
let frames_clear_of st ~region =
  if Bitset.cap region <> st.cap then
    invalid_arg "Istate.frames_clear_of: region capacity mismatch";
  let d = ref 0 and stop = ref false in
  while (not !stop) && !d < st.n_frames do
    let lo = st.f_added.(!d) in
    let hi = if !d + 1 < st.n_frames then st.f_added.(!d + 1) else st.n_added in
    let touched = ref false in
    for i = lo to hi - 1 do
      if Bitset.mem region st.added.(i) then touched := true
    done;
    if !touched then stop := true else incr d
  done;
  !d

let rewind_region st ~region =
  let d = frames_clear_of st ~region in
  rewind st ~depth:d;
  d

let last_added st =
  if st.n_frames = 0 then invalid_arg "Istate.last_added: no frame";
  let base = st.f_added.(st.n_frames - 1) in
  let rec collect i acc = if i < base then acc else collect (i - 1) (st.added.(i) :: acc) in
  collect (st.n_added - 1) []

(* ---------------------------- queries ------------------------------ *)

let w st = st.w
let ubar st = st.ubar
let whash st = st.whash
let n_informed st = st.ninf
let complete st = st.ninf = st.cap
let uncov st u = st.uncov.(u)

let lb st = if complete st then 0 else if st.unreach > 0 then max_int else st.dmax

(* [probe_child] answers the two ranking queries the search asks of
   every candidate advance — coverage and the child's hop lower bound —
   without mutating anything, so ranking candidates no longer costs an
   apply/undo pair each. It leans on facts the apply relaxation
   guarantees: every newly informed node sits at distance 1 from [W],
   hence no distance drops by more than one per advance, [unreach] is
   invariant, and the dropped-to distance is always [old - 1]. The
   child's [dmax] is therefore [dmax - 1] exactly when every uninformed
   node at distance [dmax] is reached by the improvement cone — the BFS
   over nodes whose distance shrinks, stamped per probe so the scratch
   never needs clearing. Nodes already at [dmax] cannot relax anyone
   further (no distance exceeds [dmax]), so they are counted but not
   expanded, and the wave stops early once every [dmax] node dropped. *)
(* Per-distance layers of the current position, built lazily from the
   dist array on the first probe at a state (apply/undo invalidate).
   Every node at distance >= 1 is uninformed, so the layers partition
   the reachable uninformed set and the top layer is exactly the set
   the lower bound hangs on. *)
let ensure_layers st =
  if not st.lay_valid then begin
    for d = 1 to st.lay_max do
      Bitset.clear st.lay.(d)
    done;
    for v = 0 to st.cap - 1 do
      let d = st.dist.(v) in
      if d >= 1 && d <> max_int then Bitset.add st.lay.(d) v
    done;
    st.lay_max <- st.dmax;
    st.lay_valid <- true
  end

let layer st ~d =
  if d < 1 || d > st.dmax then
    invalid_arg (Printf.sprintf "Istate.layer: distance %d out of [1,%d]" d st.dmax);
  ensure_layers st;
  st.lay.(d)

(* The wave of shrinking distances, bit-parallel: every newly informed
   node sits at distance 1, so distances drop by at most one per
   advance, the drop is always to [old - 1], and [unreach] is
   invariant. Cone layer j — the distance-(j+1) nodes that drop — is
   [N(layer j-1) ∩ lay.(j+1)], seeded by the advance's coverage set.
   The child's bound is [dmax - 1] exactly when the final cone layer
   reaches the whole top layer. *)
let probe_seeded st ~seeds =
  Metrics.incr m_probe;
  let cov = Bitset.cardinal seeds in
  let lb =
    if st.ninf + cov = st.cap then 0
    else if st.unreach > 0 then max_int
    else if st.dmax <= 1 then st.dmax
    else begin
      ensure_layers st;
      let g = graph st in
      Bitset.assign ~into:st.pfront seeds;
      let j = ref 1 and dead = ref false in
      while (not !dead) && !j <= st.dmax - 1 do
        Bitset.clear st.pnext;
        Bitset.iter
          (fun x -> Bitset.union_into ~into:st.pnext (Graph.neighbor_set g x))
          st.pfront;
        Bitset.inter_into ~into:st.pnext st.lay.(!j + 1);
        if Bitset.is_empty st.pnext then dead := true
        else begin
          Bitset.assign ~into:st.pfront st.pnext;
          incr j
        end
      done;
      if (not !dead) && Bitset.equal st.pfront st.lay.(st.dmax) then st.dmax - 1
      else st.dmax
    end
  in
  (lb, cov)

let coverage st ~senders =
  let g = graph st in
  let c = Bitset.create st.cap in
  List.iter
    (fun u ->
      if not (Bitset.mem st.w u) then
        invalid_arg (Printf.sprintf "Istate.coverage: sender %d not informed" u);
      Bitset.union_inter_into ~into:c (Graph.neighbor_set g u) st.ubar)
    senders;
  c

let probe_child st ~senders = probe_seeded st ~seeds:(coverage st ~senders)

let candidates st ~slot =
  let m = model st in
  List.rev
    (Bitset.fold
       (fun u acc -> if st.uncov.(u) > 0 && Model.awake m u ~slot then u :: acc else acc)
       st.w [])

(* Same classes as [Coloring.greedy] over the paper's conflict
   predicate (receiver count descending, id ascending, prefix-greedy),
   but conflict-with-class collapses to one intersection test: item [v]
   conflicts with some class member [c] — N(c) ∩ N(v) ∩ W̄ ≠ ∅ — iff
   N(v) meets the running union of the members' uninformed coverage
   zones, kept in a scratch bitset. O(|class|) pair tests become one. *)
let greedy_classes_cov st ~slot =
  Metrics.incr m_color;
  let m = model st in
  let counts =
    Bitset.fold
      (fun u acc ->
        if st.uncov.(u) > 0 && Model.awake m u ~slot then (u, st.uncov.(u)) :: acc
        else acc)
      st.w []
  in
  match counts with
  | [] -> []
  | _ ->
      let g = graph st in
      (* The order (count desc, id asc) is total — ids are distinct — so
         sorting the unreversed fold output lands on the same list. *)
      let sorted =
        List.stable_sort
          (fun (u, cu) (v, cv) ->
            if cu <> cv then (if cu > cv then -1 else 1)
            else if u < v then -1
            else if u > v then 1
            else 0)
          counts
      in
      let blocked = st.pblocked in
      let rec assign remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            Bitset.clear blocked;
            let cls, rest =
              List.fold_left
                (fun (cls, rest) ((u, _) as item) ->
                  if Bitset.intersects (Graph.neighbor_set g u) blocked then
                    (cls, item :: rest)
                  else begin
                    Bitset.union_inter_into ~into:blocked (Graph.neighbor_set g u)
                      st.ubar;
                    (u :: cls, rest)
                  end)
                ([], []) remaining
            in
            (* At this point [blocked] is exactly the set of nodes the
               class informs — the search reuses it as probe seeds and
               child memo keys, so hand out a copy alongside. *)
            assign (List.rev rest) ((List.rev cls, Bitset.copy blocked) :: acc)
      in
      (* The backend's class builder replaces the blocked-set test when
         admission is feasibility-based (SINR); under multi-channel the
         UDG classes merge k at a time into (slot, channel)
         super-classes, coverage unioned, concatenated-class sender
         order preserved for first-fit channel reconstruction. *)
      let rec assign_phy cls remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            Interference.start_class cls ~uninformed:st.ubar;
            let cl, rest =
              List.fold_left
                (fun (cl, rest) ((u, _) as item) ->
                  if Interference.admits cls u then begin
                    Interference.accept cls u;
                    (u :: cl, rest)
                  end
                  else (cl, item :: rest))
                ([], []) remaining
            in
            assign_phy cls (List.rev rest)
              ((List.rev cl, Bitset.copy (Interference.class_coverage cls)) :: acc)
      in
      let rec chunk_cov k = function
        | [] -> []
        | rows ->
            let rec take i acc rest =
              if i = 0 then (List.rev acc, rest)
              else
                match rest with
                | [] -> (List.rev acc, [])
                | r :: tl -> take (i - 1) (r :: acc) tl
            in
            let head, tl = take k [] rows in
            let senders = List.concat_map fst head in
            let cov =
              match head with
              | (_, c0) :: more ->
                  List.iter (fun (_, c) -> Bitset.union_into ~into:c0 c) more;
                  c0
              | [] -> assert false
            in
            (senders, cov) :: chunk_cov k tl
      in
      (match Model.phy_instance m with
      | Interference.I_udg _ -> assign sorted []
      | Interference.I_mc { k; _ } ->
          let rows = assign sorted [] in
          if k > 1 then chunk_cov k rows else rows
      | Interference.I_sinr _ ->
          let cls =
            match st.phy_cls with
            | Some c -> c
            | None ->
                let c = Interference.classifier (Model.phy_instance m) in
                st.phy_cls <- Some c;
                c
          in
          assign_phy cls sorted [])

let greedy_classes st ~slot = List.map fst (greedy_classes_cov st ~slot)

let next_active_slot st ~after =
  let m = model st in
  match Model.system m with
  | Model.Sync ->
      (* Some informed node has an uninformed neighbour iff some
         uninformed node is reachable at all: BFS layers are contiguous,
         so [dmax >= 1] implies an uninformed node at distance 1. *)
      if st.ninf < st.cap && st.dmax >= 1 then Some (after + 1) else None
  | Model.Async sched ->
      let earliest = ref max_int in
      Bitset.iter
        (fun u ->
          if st.uncov.(u) > 0 then
            earliest := min !earliest (Mlbs_dutycycle.Wake_schedule.next_wake sched u ~after))
        st.w;
      if !earliest = max_int then None else Some !earliest
