(** The broadcast-state model shared by every scheduler (paper §III–IV).

    A broadcast is a sequence of *advances*: at round/slot [t], a set of
    informed senders neighbor-casts simultaneously, and every uninformed
    neighbour of a sender that hears exactly one transmission becomes
    informed. All scheduling policies manipulate the same three
    primitives defined here:

    - the candidate set (Eq. 1 constraints 1–2; Eq. 3 adds wake-up),
    - the conflict predicate [N(u) ∩ N(v) ∩ W̄ ≠ ∅] (constraint 3),
    - the extended greedy colouring of candidates (Algorithm 1). *)

module Bitset = Mlbs_util.Bitset

(** Which system model the broadcast runs under. *)
type system =
  | Sync  (** round-based synchronous: any informed node may send *)
  | Async of Mlbs_dutycycle.Wake_schedule.t
      (** asynchronous duty cycle: a node sends only at its wake slots *)

type t

(** [create net system] fixes network, system model and interference
    backend ([?phy], default the paper's UDG protocol model). For
    [Async], the schedule must cover at least [Network.n_nodes net]
    nodes. Raises [Invalid_argument] when [phy] fails
    [Interference.validate]. *)
val create : ?phy:Mlbs_phy.Interference.t -> Mlbs_wsn.Network.t -> system -> t

val network : t -> Mlbs_wsn.Network.t
val graph : t -> Mlbs_graph.Graph.t
val system : t -> system

(** [phy t] is the interference spec the model was created under;
    [phy_instance t] its network-bound form (conflict predicate, class
    builder, slot replay). *)
val phy : t -> Mlbs_phy.Interference.t

val phy_instance : t -> Mlbs_phy.Interference.instance
val n_nodes : t -> int

(** [initial_w t ~source] is [W(t_s) = {s}]. *)
val initial_w : t -> source:int -> Bitset.t

(** [receivers t ~w u] is [N(u) ∩ W̄] — the nodes that would gain the
    message from [u]'s relay — sorted ascending. *)
val receivers : t -> w:Bitset.t -> int -> int list

(** [n_receivers t ~w u] is [|N(u) ∩ W̄|] without building the list. *)
val n_receivers : t -> w:Bitset.t -> int -> int

(** [awake t u ~slot] is [true] under [Sync]; under [Async] it is the
    wake schedule's verdict for [u] at [slot]. *)
val awake : t -> int -> slot:int -> bool

(** [candidates t ~w ~slot] is every node satisfying Eq. (1) constraints
    1–2 (informed, with an uninformed neighbour) — and, under [Async],
    awake at [slot] (Eq. 3). Sorted ascending. *)
val candidates : t -> w:Bitset.t -> slot:int -> int list

(** [frontier t ~w] is the candidate set ignoring wake-ups — the nodes
    that could ever still relay from [w]. *)
val frontier : t -> w:Bitset.t -> int list

(** [conflicts t ~w u v] is the signal-conflict predicate: [u] and [v]
    share an uninformed common neighbour, which would observe a
    collision if both sent simultaneously. Symmetric, irreflexive. *)
val conflicts : t -> w:Bitset.t -> int -> int -> bool

(** [greedy_classes t ~w ~slot] is Algorithm 1: colour classes
    [C_1 .. C_λ] of the candidates, visiting candidates in descending
    receiver count (ties: ascending node id, making runs
    deterministic). Under [Multichannel k] runs of [k] classes merge
    into one (slot, channel) super-class in concatenated order; under
    [Sinr] admission is the additive-feasibility zone. *)
val greedy_classes : t -> w:Bitset.t -> slot:int -> int list list

(** [color_classes t ~uninformed counts] colours a caller-supplied
    candidate list [(u, receiver count)] under the model's interference
    backend — the shared core the layer-structured baselines use. Same
    order as [greedy_classes]; never chunks channels. *)
val color_classes : t -> uninformed:Bitset.t -> (int * int) list -> int list list

(** [apply t ~w ~senders] is the new informed set
    [W + A] = [w ∪ (∪_{u ∈ senders} N(u) ∩ W̄)]. Fresh set; [w] is not
    mutated. Raises [Invalid_argument] if some sender is not informed
    in [w]. *)
val apply : t -> w:Bitset.t -> senders:int list -> Bitset.t

(** [newly_informed t ~w ~senders] is the sorted list of nodes gaining
    the message — [apply] minus [w]. *)
val newly_informed : t -> w:Bitset.t -> senders:int list -> int list

(** [next_active_slot t ~w ~after] is, under [Async], the earliest slot
    > [after] at which some frontier node is awake ([None] when the
    frontier is empty); under [Sync] it is [after + 1] (every round is
    active) unless the frontier is empty. *)
val next_active_slot : t -> w:Bitset.t -> after:int -> int option

(** [complete t ~w] is [W = N]. *)
val complete : t -> w:Bitset.t -> bool
