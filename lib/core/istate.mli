(** Incremental evaluation state for the M-counter search.

    A reusable mutable view of one search position: the informed set
    [W], its complement, an incrementally maintained [Bitset.hash] of
    [W], per-node uninformed-neighbour counts (frontier + greedy
    receiver counts), and the hop-distance structure backing the
    admissible lower bound. [apply] advances by one sender set in
    O(affected nodes); [undo] restores the previous position exactly
    from a watermarked log. Query results agree, state for state, with
    the from-scratch recomputations in {!Model} and {!Mcounter}
    (property-tested in [test/test_incremental.ml]).

    One instance is intended per domain (see [Mcounter]'s domain-local
    scratch); instances are never shared across domains. *)

module Bitset = Mlbs_util.Bitset

type t

(** [create n] allocates state for [n]-node models; no model is bound
    yet. *)
val create : int -> t

(** [capacity t] is the node count given at creation. *)
val capacity : t -> int

(** [reset t model ~w] binds [model] (whose node count must equal the
    capacity) and rebuilds every structure from scratch for the
    informed set [w] — one multi-source BFS plus one adjacency sweep.
    Clears the undo log. *)
val reset : t -> Model.t -> w:Bitset.t -> unit

(** [model t] is the model bound by the last [reset]. *)
val model : t -> Model.t

(** [apply t ~senders] advances: informs every uninformed neighbour of
    a sender and pushes one undo frame. Raises [Invalid_argument] when
    a sender is not informed. *)
val apply : t -> senders:int list -> unit

(** [undo t] pops the most recent [apply] frame, restoring the previous
    position exactly. *)
val undo : t -> unit

(** [depth t] is the number of un-undone [apply] frames. *)
val depth : t -> int

(** [rewind t ~depth] undoes frames until [depth t = depth] — the
    exception-unwind path of the search. *)
val rewind : t -> depth:int -> unit

(** [last_added t] is the nodes informed by the most recent frame, in
    application order (not sorted). *)
val last_added : t -> int list

(** [frames_clear_of t ~region] is the number of leading frames whose
    informed nodes all avoid [region] — one scan of the watermarked
    undo log, no undo performed. A frame informing a node in [region]
    caps the count; frames above it are not inspected (LIFO rewind
    cannot skip them anyway). Raises [Invalid_argument] on capacity
    mismatch. *)
val frames_clear_of : t -> region:Bitset.t -> int

(** [rewind_region t ~region] rewinds until every remaining frame is
    clear of [region] — i.e. to depth [frames_clear_of t ~region],
    popping exactly the frames the region touches (and everything
    stacked above them) — and returns the new depth. The reschedule
    engine uses this to certify how much of a broadcast's history a
    topology delta leaves intact. *)
val rewind_region : t -> region:Bitset.t -> int

(** [w t] is the current informed set. The returned value is the live
    internal set: it mutates with [apply]/[undo], so callers must
    [Bitset.copy] it before retaining it. *)
val w : t -> Bitset.t

(** [ubar t] is the live complement of [w t] (same sharing caveat). *)
val ubar : t -> Bitset.t

(** [whash t] is [Bitset.hash (w t)], maintained incrementally. *)
val whash : t -> int

(** [n_informed t] is [Bitset.cardinal (w t)], maintained
    incrementally. *)
val n_informed : t -> int

(** [complete t] is [W = N]. *)
val complete : t -> bool

(** [uncov t u] is [|N(u) ∩ W̄|] — [Model.n_receivers] without the
    scan. *)
val uncov : t -> int -> int

(** [lb t] is the hop lower bound: the largest distance from [W] to an
    uninformed node, [max_int] when one is unreachable, [0] when
    complete — equal to [Mcounter.hop_lower_bound]. *)
val lb : t -> int

(** [layer t ~d] is the set of (uninformed) nodes at BFS distance [d]
    from [W], for [1 ≤ d ≤ lb t] — the per-distance layers the lower
    bounds in {!Bounds} hang on. Built lazily from the maintained
    distance array; the returned set is live scratch, invalidated by
    the next [apply]/[undo]/[reset]. Raises [Invalid_argument] when [d]
    is out of range. *)
val layer : t -> d:int -> Bitset.t

(** [probe_child t ~senders] is [(lb', k)] where [k] is the number of
    nodes [apply t ~senders] would inform and [lb'] the value [lb]
    would take in the resulting position — computed by a bit-parallel
    cone walk over per-distance layer bitsets without mutating [t] (no
    undo frame is pushed). Raises
    [Invalid_argument] when a sender is not informed. *)
val probe_child : t -> senders:int list -> int * int

(** [probe_seeded t ~seeds] is [probe_child] with the coverage set
    already known: [seeds] must equal [N(senders) ∩ W̄] (as produced by
    [coverage] or [greedy_classes_cov]), skipping the per-sender
    neighbourhood scan. *)
val probe_seeded : t -> seeds:Bitset.t -> int * int

(** [coverage t ~senders] is a fresh set holding [N(senders) ∩ W̄] —
    exactly the nodes [apply t ~senders] would inform. Raises
    [Invalid_argument] when a sender is not informed. *)
val coverage : t -> senders:int list -> Bitset.t

(** [candidates t ~slot] equals [Model.candidates] at the current
    position. *)
val candidates : t -> slot:int -> int list

(** [greedy_classes t ~slot] equals [Model.greedy_classes] at the
    current position. *)
val greedy_classes : t -> slot:int -> int list list

(** [greedy_classes_cov t ~slot] is [greedy_classes] paired with each
    class's coverage set [N(class) ∩ W̄] — a byproduct of the colouring
    that the search reuses as probe seeds and child memo keys. The
    returned sets are fresh copies. *)
val greedy_classes_cov : t -> slot:int -> (int list * Bitset.t) list

(** [next_active_slot t ~after] equals [Model.next_active_slot] at the
    current position. *)
val next_active_slot : t -> after:int -> int option
