(** Open-addressing transposition table for the exact search.

    Entries are keyed by the informed set (content equality, probed via
    its incrementally-carried hash) plus a slot: sync searches — whose
    values depend on [W] alone — use the sentinel slot [0], async
    searches the true [(W, slot)] pair, so one table per search context
    replaces the two boxed [Hashtbl]s it grew out of. Stored sets are
    hash-consed: async entries for one informed set at several slots
    share a single immutable copy.

    Unbounded tables ([max_entries = 0], the search default) grow and
    never evict, so lookups hit exactly when a [Hashtbl] would — the
    Classic-mode traversal (and its state counts) is preserved
    bit-for-bit. Bounded tables overwrite in place at capacity
    (value-safe: a memo entry's value is a pure function of its key, so
    dropping one only costs recomputation); no slot is ever cleared, so
    probe chains stay intact either way.

    Counters: [search/tt_hit], [tt_miss], [tt_collision] (probe-chain
    displacements), [tt_evict] (capacity-policy replacements or
    declined inserts), [tt_grow]. *)

module Bitset = Mlbs_util.Bitset

type t

(** [create ?max_entries ()] makes an empty table. [max_entries = 0]
    (default) means unbounded; a positive bound fixes the capacity and
    enables in-place replacement. *)
val create : ?max_entries:int -> unit -> t

(** Number of live entries. *)
val length : t -> int

(** [find t ~h ~slot ~set] looks up [(set, slot)] given [h = Bitset.hash
    set]. Equality is verified against the stored set, so hash
    collisions can cost probes but never wrong values. *)
val find : t -> h:int -> slot:int -> set:Bitset.t -> int option

(** [find_union t ~h ~slot ~base ~cov] looks up the child key
    [(base ∪ cov, slot)] without materialising the union, given
    [h = Bitset.hash_union base cov (Bitset.hash base)]. *)
val find_union : t -> h:int -> slot:int -> base:Bitset.t -> cov:Bitset.t -> int option

(** [add t ~h ~slot ~set v] binds [(set, slot) ↦ v], replacing any
    existing binding. The stored set is a private (interned) copy, so
    the caller's set may be mutated afterwards. *)
val add : t -> h:int -> slot:int -> set:Bitset.t -> int -> unit

(** [add_shared] is [add] but stores the caller's set without copying —
    for seeding from snapshot entries, which are already immutable. *)
val add_shared : t -> h:int -> slot:int -> set:Bitset.t -> int -> unit

(** [iter f t] applies [f] to every live entry (deterministic slot
    order) — the snapshot-capture walk. *)
val iter : (h:int -> slot:int -> set:Bitset.t -> value:int -> unit) -> t -> unit
