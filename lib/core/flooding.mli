(** Blind flooding — the broadcast-storm reference point ([17] in the
    paper, Ni et al.).

    Every informed node relays without any conflict awareness. In dense
    networks simultaneous relays collide at their common neighbours and
    the storm can leave nodes permanently uninformed — precisely the
    failure mode conflict-aware scheduling exists to prevent. Two
    variants:

    - [Once]: the classic protocol — each node relays exactly once, at
      its first opportunity after receiving. May not cover the network.
    - [Persistent p]: each node with uninformed neighbours relays with
      probability [p] at every active slot (deterministically hashed,
      so runs are reproducible) until its neighbourhood is informed.
      Converges with probability 1 for [0 < p < 1]; the price is
      retransmissions.

    Used by the motivation example and the bench's protocol-comparison
    table. *)

type variant = Once | Persistent of float

type result = {
  schedule : Schedule.t;  (** every transmission attempted *)
  covered : bool;  (** did the message reach every node? *)
  informed : int;  (** nodes holding the message at the end *)
  latency : int;  (** slots until coverage (or until the run stopped) *)
  collisions : int;
  retransmissions : int;
}

(** [run ?max_slots ?delivers ?alive model variant ~source ~start]
    simulates flooding. [Once] stops when no transmission is pending;
    [Persistent] stops at coverage or [max_slots] (default [64 * n * r]),
    whichever first — running out of slots reports [covered = false]
    rather than raising, since non-coverage is the phenomenon being
    measured. Raises [Invalid_argument] for [Persistent p] outside
    (0, 1].

    [delivers] and [alive] are fault-injection hooks (see
    [Mlbs_sim.Fault], which this layer cannot depend on): [alive]
    excludes crashed nodes from sending and hearing; [delivers] decides
    whether an otherwise collision-free reception actually delivers —
    a corrupted packet still interferes. Defaults are the ideal radio,
    leaving fault-free runs untouched. A permanently crashed pending
    relay under [Once] idles the run out to [max_slots]. *)
val run :
  ?max_slots:int ->
  ?delivers:(slot:int -> tx:int -> rx:int -> bool) ->
  ?alive:(slot:int -> int -> bool) ->
  Model.t ->
  variant ->
  source:int ->
  start:int ->
  result
