module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Coloring = Mlbs_graph.Coloring


module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type result = {
  schedule : Schedule.t;
  latency : int;
  collisions : int;
  retransmissions : int;
}

(* Deterministic per-(node, failure-count) back-off: after the k-th
   failed attempt a node stays silent for a pseudo-random number of its
   own active slots drawn from a window that doubles with k (classic
   binary exponential back-off, but reproducible). *)
let backoff u fails =
  let window = 1 lsl min fails 6 in
  let h = (u * 2654435761) lxor (fails * 40503) in
  (h land max_int) mod window

let run ?tuples ?max_slots model ~source ~start =
  let tuples = match tuples with Some t -> t | None -> Emodel.compute model in
  let g = Model.graph model in
  let n = Model.n_nodes model in
  let rate = match Model.system model with Model.Sync -> 1 | Model.Async s -> Wake_schedule.rate s in
  let max_slots = match max_slots with Some m -> m | None -> 64 * n * rate in
  let w = ref (Model.initial_w model ~source) in
  let has_sent = Array.make n 0 in
  let silent_until = Array.make n 0 in
  let fails = Array.make n 0 in
  let steps = ref [] in
  let collisions = ref 0 in
  (* 2-hop visibility, precomputed once. *)
  let two_hop =
    Array.init n (fun u ->
        let seen = Bitset.create n in
        Graph.iter_neighbors g u ~f:(fun v ->
            Bitset.add seen v;
            Graph.iter_neighbors g v ~f:(Bitset.add seen));
        Bitset.add seen u;
        seen)
  in
  let awake u ~slot =
    match Model.system model with
    | Model.Sync -> true
    | Model.Async sched -> Wake_schedule.awake sched u ~slot
  in
  (* One node's local decision: colour the candidates inside its 2-hop
     view and fire iff it sits in the Eq.-10-selected class. *)
  let wants_to_send u ~slot ~candidates =
    let visible = List.filter (fun v -> Bitset.mem two_hop.(u) v) candidates in
    let uninformed = Bitset.complement !w in
    let counts = List.map (fun v -> (v, Model.n_receivers model ~w:!w v)) visible in
    let classes = Model.color_classes model ~uninformed counts in
    ignore slot;
    match classes with
    | [] -> false
    | _ ->
        let chosen = Emodel.select tuples model ~w:!w ~classes in
        List.mem u (List.nth classes chosen)
  in
  let rec loop slot =
    if Model.complete model ~w:!w then slot - 1
    else if slot - start >= max_slots then
      failwith
        (Printf.sprintf "Localized.run: no convergence within %d slots (protocol livelock?)"
           max_slots)
    else begin
      let candidates =
        List.filter
          (fun u ->
            Bitset.mem !w u
            && Model.n_receivers model ~w:!w u > 0
            && awake u ~slot
            && silent_until.(u) <= slot)
          (List.init n Fun.id)
      in
      let senders = List.filter (fun u -> wants_to_send u ~slot ~candidates) candidates in
      if senders = [] then loop (slot + 1)
      else begin
        (* Radio semantics: one audible transmission delivers, two or
           more collide. *)
        let received = ref [] in
        for v = 0 to n - 1 do
          if not (Bitset.mem !w v) then begin
            match List.filter (fun u -> Graph.mem_edge g u v) senders with
            | [] -> ()
            | [ _ ] -> received := v :: !received
            | _ -> incr collisions
          end
        done;
        List.iter
          (fun u ->
            has_sent.(u) <- has_sent.(u) + 1;
            (* Did this relay finish its neighbourhood? Overhearing and
               the absence of beacon requests tell it; if receivers
               remain it backs off before retrying. *)
            let remaining =
              Graph.fold_neighbors g u ~init:0 ~f:(fun acc v ->
                  if Bitset.mem !w v || List.mem v !received then acc else acc + 1)
            in
            if remaining > 0 then begin
              fails.(u) <- fails.(u) + 1;
              (* Back off for a number of own active slots. *)
              let skip = backoff u fails.(u) in
              let rec nth_wake t k =
                if k <= 0 then t
                else
                  let t' =
                    match Model.system model with
                    | Model.Sync -> t + 1
                    | Model.Async sched -> Wake_schedule.next_wake sched u ~after:t
                  in
                  nth_wake t' (k - 1)
              in
              silent_until.(u) <- nth_wake slot (skip + 1)
            end)
          senders;
        List.iter (Bitset.add !w) !received;
        steps := { Schedule.slot; senders; informed = List.sort compare !received } :: !steps;
        loop (slot + 1)
      end
    end
  in
  let finish = loop start in
  let schedule = Schedule.make ~n_nodes:n ~source ~start (List.rev !steps) in
  let retransmissions = Array.fold_left (fun acc k -> acc + max 0 (k - 1)) 0 has_sent in
  { schedule; latency = finish - start + 1; collisions = !collisions; retransmissions }
