(** The time counter [M] (paper Eq. 4) and the schedule search built on
    it (Eq. 5–8).

    [M(W, t)] is the earliest finish time of a broadcast whose progress
    is [W] just before slot [t], assuming every later advance is also
    chosen optimally within the given choice space:

    - [M(N, t) = t − 1]  (nothing left to send), and
    - [M(W, t) = min over color sets C of M(W + A_C, t + 1)].

    The paper computes this "with an off-line calculation" in its
    simulator. We realise it as an exact, memoised branch-and-bound —
    monotonicity of the model (larger [W] never finishes later) makes
    the hop-distance lower bound admissible — with a budget on explored
    states. When an instance exhausts the budget, evaluation degrades to
    a beam-limited lookahead with greedy-rollout tails, which is the
    standard realisation of such heuristics; DESIGN.md §4 documents the
    substitution. The fixture graphs of Tables II–IV are solved exactly.

    Two structural facts the implementation exploits (both are covered
    by property tests):
    - {b monotonicity}: [W ⊆ W'] implies [M(W', t) ≤ M(W, t)], so only
      maximal conflict-free sender sets need be searched, and idling at
      an active slot is never beneficial;
    - {b time-shift invariance} (sync only): [M(W, t) − t] depends only
      on [W], so the memo table can key on [W] alone. *)

module Bitset = Mlbs_util.Bitset

(** Search discipline. [Classic] reproduces the seed traversal bit for
    bit — same expansions, state counts and exhaustion points — keeping
    the figure sweeps byte-identical across releases; the experiment
    configs use it. [Strong] additionally prunes with the admissible
    {!Bounds} floors, skips candidates the incumbent already beats, and
    applies coverage-subset dominance between siblings. Every Strong
    skip is value-safe, and ties keep the earlier candidate, so in
    exact mode a Strong solve returns the same schedule as a Classic
    one — with far fewer expansions; the service cold-solve path uses
    it. The two modes may diverge only when a budget exhausts (Strong
    explores fewer states, so it can stay exact where Classic
    degrades). *)
type mode = Classic | Strong

(** Search budget. [max_states]: memo entries before the exact search
    gives up. [lookahead]: fallback search depth. [beam]: choices
    expanded per fallback node (ranked by hop lower bound, then
    coverage). [mode]: the pruning discipline above. *)
type budget = { max_states : int; lookahead : int; beam : int; mode : mode }

(** [{ max_states = 200_000; lookahead = 2; beam = 4; mode = Strong }]. *)
val default_budget : budget

(** Result of evaluating [M]: the finish slot, whether it is exact, and
    how many memo states the search used. *)
type evaluation = { finish : int; exact : bool; states : int }

(** [evaluate model space ~budget ~w ~slot] is [M(w, slot)] within the
    choice space. Raises [Failure] when some node is unreachable (the
    broadcast cannot complete). *)
val evaluate :
  Model.t -> Choices.t -> budget:budget -> w:Bitset.t -> slot:int -> evaluation

(** [plan model space ~budget ~source ~start] runs the search and
    materialises a schedule achieving the evaluated finish time (exact
    mode) or the lookahead policy's finish time (fallback mode). *)
val plan :
  Model.t -> Choices.t -> budget:budget -> source:int -> start:int -> Schedule.t

(** A completed plan's memo tables, frozen: every (informed set →
    value) the search established, plus enough metadata to decide
    whether they may seed a later search. Snapshots are immutable and
    safe to share across domains. *)
type snapshot

(** Number of frozen memo entries. *)
val snapshot_entries : snapshot -> int

(** Whether the capturing solve stayed exact end to end. *)
val snapshot_exact : snapshot -> bool

(** [snapshot_reusable s ~space ~budget ~n] gates warm starts: the
    capture must have been exact, over the same choice space and node
    count, and comfortably inside the state budget (a 4x margin), so a
    seeded re-solve can never stay exact where a cold one would have
    degraded to the lookahead fallback. *)
val snapshot_reusable : snapshot -> space:Choices.t -> budget:budget -> n:int -> bool

(** [plan_snapshot ?seeds model space ~budget ~source ~start] is
    {!plan} that also captures the snapshot of its memo tables, and
    optionally seeds the search from a previous snapshot.

    [seeds = (snap, valid)] pre-loads every entry of [snap] whose
    informed set satisfies [valid] before the search runs. Soundness is
    the caller's contract: [valid w] must certify that the entry's
    value is unchanged on this model. Two predicates are used in this
    repository:
    - same graph, different [source]/[start]: every entry is valid
      (the value function never depends on the source), so
      [fun _ -> true];
    - edited graph: valid iff every {!Mlbs_graph.Graph.diff_endpoints}
      node is inside [w] — the search below [w] only reads edges with
      an uninformed endpoint, and every changed edge has both
      endpoints in the diff.

    Because seeded values equal what the search would have recomputed,
    the returned schedule is byte-identical to an unseeded
    {!plan} in exact mode; a seeded search that hits the budget is
    transparently rerun without seeds so the degraded path matches a
    cold solve's exactly. Callers should gate with
    {!snapshot_reusable}. *)
val plan_snapshot :
  ?seeds:snapshot * (Bitset.t -> bool) ->
  Model.t ->
  Choices.t ->
  budget:budget ->
  source:int ->
  start:int ->
  Schedule.t * snapshot

(** [rollout_finish model space ~w ~slot] is the finish slot of the
    cheap deterministic rollout policy (at every state, take the choice
    minimising the hop lower bound, then maximising coverage) — an upper
    bound on [M]. *)
val rollout_finish : Model.t -> Choices.t -> w:Bitset.t -> slot:int -> int

(** [hop_lower_bound model ~w] is the largest hop distance from [W] to
    an uninformed node — an admissible bound on remaining advances
    ([max_int] when unreachable, [0] when complete). *)
val hop_lower_bound : Model.t -> w:Bitset.t -> int

(** [prewarm ~n] pre-sizes this domain's search scratch (the
    incremental {!Istate} and the BFS workspace) for [n]-node models,
    so the first evaluation on a worker domain does not allocate it
    inside a timed region. Idempotent. *)
val prewarm : n:int -> unit
