(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation studies, and times the schedulers with
   Bechamel.

     dune exec bench/main.exe                 # everything, full sweep
     dune exec bench/main.exe -- --quick      # reduced sweep
     dune exec bench/main.exe -- fig3 table2  # selected targets
     dune exec bench/main.exe -- --jobs 4 fig3  # 4 worker domains
     dune exec bench/main.exe -- --smoke      # CI-sized, no JSON

   Targets: table2 table3 table4 fig3 fig4 fig5 fig6 fig7 reliability
   ablation micro (default: all).

   Flags: --quick (reduced sweep), --smoke (Config.smoke — the CI
   gate: smallest sweep, JSON suppressed unless --json is given
   explicitly), --jobs N (worker domains, default all cores),
   --json FILE (machine-readable timings, default BENCH_1.json),
   --no-json.

   Unless --no-json is given, the harness writes per-section wall-clock
   (figures additionally re-run at jobs=1 for a parallel-speedup
   baseline, with a byte-identity check on the rendered output) plus the
   Bechamel ns/run estimates. *)

module Config = Mlbs_workload.Config
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report
module Ablation = Mlbs_workload.Ablation
module Experiment = Mlbs_workload.Experiment
module Model = Mlbs_core.Model
module Scheduler = Mlbs_core.Scheduler
module Emodel = Mlbs_core.Emodel
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Bitset = Mlbs_util.Bitset

(* Monotonic nanoseconds (CLOCK_MONOTONIC via bechamel's stubs), so
   section timings survive wall-clock adjustments mid-run. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n%!" bar title bar

let timed f =
  let t0 = now_s () in
  f ();
  let dt = now_s () -. t0 in
  Printf.printf "(%.1fs)\n\n%!" dt;
  dt

(* One row of BENCH_1.json: wall-clock at the configured jobs, plus the
   jobs=1 comparison run for figure sweeps. *)
type entry = { name : string; seconds : float; seconds_jobs1 : float option }

let log : entry list ref = ref []

let record name ?seconds_jobs1 seconds =
  log := { name; seconds; seconds_jobs1 } :: !log

(* ------------------------ paper tables ----------------------------- *)

let run_table n target render =
  section (Printf.sprintf "Table %s (fixture walkthrough)" n);
  record target (timed (fun () -> print_string (render ())))

(* ------------------------ paper figures ---------------------------- *)

let run_figure cfg ~compare_jobs1 name build =
  section
    (Printf.sprintf "%s (density sweep: %s seeds x %s node counts, jobs=%d)"
       (String.capitalize_ascii name)
       (string_of_int (List.length cfg.Config.seeds))
       (string_of_int (List.length cfg.Config.node_counts))
       cfg.Config.jobs);
  let rendered = ref "" in
  let dt =
    timed (fun () ->
        rendered := Report.render_figure (build cfg);
        print_string !rendered)
  in
  let dt1 =
    if (not compare_jobs1) || cfg.Config.jobs <= 1 then None
    else begin
      (* Silent re-run on one domain: the speedup baseline, and a live
         check of the pool's determinism guarantee. *)
      let t0 = now_s () in
      let rendered1 = Report.render_figure (build { cfg with Config.jobs = 1 }) in
      let dt1 = now_s () -. t0 in
      if rendered1 <> !rendered then
        Printf.printf "WARNING: %s output differs between jobs=%d and jobs=1\n%!" name
          cfg.Config.jobs;
      Some dt1
    end
  in
  record name ?seconds_jobs1:dt1 dt

(* Same shape for multi-chart sweeps (the reliability pair): render the
   concatenation, cross-check the concatenation at jobs=1. *)
let run_figure_group cfg ~compare_jobs1 name title build =
  section (Printf.sprintf "%s (jobs=%d)" title cfg.Config.jobs);
  let render cfg =
    String.concat "\n" (List.map Report.render_figure (build cfg))
  in
  let rendered = ref "" in
  let dt =
    timed (fun () ->
        rendered := render cfg;
        print_string !rendered)
  in
  let dt1 =
    if (not compare_jobs1) || cfg.Config.jobs <= 1 then None
    else begin
      let t0 = now_s () in
      let rendered1 = render { cfg with Config.jobs = 1 } in
      let dt1 = now_s () -. t0 in
      if rendered1 <> !rendered then
        Printf.printf "WARNING: %s output differs between jobs=%d and jobs=1\n%!" name
          cfg.Config.jobs;
      Some dt1
    end
  in
  record name ?seconds_jobs1:dt1 dt

(* -------------------------- ablations ------------------------------ *)

let run_ablation cfg =
  section (Printf.sprintf "Ablations (DESIGN.md design choices, jobs=%d)" cfg.Config.jobs);
  record "ablation"
    (timed (fun () ->
         let small = { cfg with Config.seeds = [ 1; 2; 3 ] } in
         Mlbs_util.Tab.print (Ablation.selector_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.wake_family_table small ~n:100 ~rate:10);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.lookahead_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.relay_set_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.localized_table small ~n:150 ~rate:None);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.localized_table small ~n:100 ~rate:(Some 10));
         print_newline ();
         Mlbs_util.Tab.print (Ablation.shape_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.protocol_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.resilience_table small ~n:150 ~kill_fraction:0.1);
         print_newline ();
         Mlbs_util.Tab.print
           (Ablation.fault_table { small with Config.crash_fraction = 0.1 } ~n:100 ~loss:0.2)))

(* ------------------------ bechamel micro --------------------------- *)

let micro_tests cfg =
  let open Bechamel in
  let inst = Experiment.make_instance cfg ~n:150 ~seed:1 in
  let net = inst.Experiment.net in
  let n = Mlbs_wsn.Network.n_nodes net in
  let sync_model = Model.create net Model.Sync in
  let wake = Wake_schedule.create ~rate:10 ~n_nodes:n ~seed:1 () in
  let async_model = Model.create net (Model.Async wake) in
  let source = inst.Experiment.source in
  let run model policy () = ignore (Scheduler.run model policy ~source ~start:1) in
  let budget = cfg.Config.budget in
  (* Conflict-test kernel, old vs new: the paper's predicate
     N(u) ∩ N(v) ∩ W̄ ≠ ∅ on two adjacent relays of the n=150 instance,
     as one allocating intersection versus the fused word-wise probe. *)
  let g = Mlbs_wsn.Network.graph net in
  let u = source in
  let v = (Mlbs_graph.Graph.neighbors g u).(0) in
  let nu = Mlbs_graph.Graph.neighbor_set g u in
  let nv = Mlbs_graph.Graph.neighbor_set g v in
  let w = Model.initial_w sync_model ~source in
  let ubar = Bitset.complement w in
  [
    Test.make ~name:"kernel/conflict-test old (inter alloc)"
      (Staged.stage (fun () -> ignore (Bitset.intersects (Bitset.inter nu nv) ubar)));
    Test.make ~name:"kernel/conflict-test new (intersects3)"
      (Staged.stage (fun () -> ignore (Bitset.intersects3 nu nv ubar)));
    Test.make ~name:"kernel/hop lower bound (scratch BFS)"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Mcounter.hop_lower_bound sync_model ~w)));
    Test.make ~name:"fig3/26-approx" (Staged.stage (run sync_model Scheduler.Baseline));
    Test.make ~name:"fig3/G-OPT" (Staged.stage (run sync_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig3/E-model" (Staged.stage (run sync_model Scheduler.Emodel));
    Test.make ~name:"fig4/17-approx" (Staged.stage (run async_model Scheduler.Baseline));
    Test.make ~name:"fig4/G-OPT" (Staged.stage (run async_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig4/E-model" (Staged.stage (run async_model Scheduler.Emodel));
    Test.make ~name:"table2/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table2 ())));
    Test.make ~name:"table3/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table3 ())));
    Test.make ~name:"table4/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table4 ())));
    Test.make ~name:"extension/localized protocol"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Localized.run sync_model ~source ~start:1)));
    Test.make ~name:"extension/CDS baseline"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Baseline_cds.plan sync_model ~source ~start:1)));
    Test.make ~name:"extension/distributed protocol (beacons)"
      (Staged.stage (fun () ->
           ignore (Mlbs_proto.Broadcast_protocol.run sync_model ~source ~start:1)));
    Test.make ~name:"substrate/E-tuple construction"
      (Staged.stage (fun () -> ignore (Emodel.compute sync_model)));
    Test.make ~name:"substrate/UDG deployment (n=150)"
      (Staged.stage (fun () ->
           ignore
             (Mlbs_wsn.Deployment.generate (Mlbs_prng.Rng.create 1)
                (Mlbs_wsn.Deployment.paper_spec ~n_nodes:150))));
  ]

let run_micro cfg =
  section "Bechamel micro-benchmarks (one scheduling run, n=150)";
  let estimates = ref [] in
  let dt =
    timed (fun () ->
        let open Bechamel in
        let test = Test.make_grouped ~name:"mlbs" (micro_tests cfg) in
        let instances = Toolkit.Instance.[ monotonic_clock ] in
        let cfg_b = Benchmark.cfg ~quota:(Time.second 0.5) ~limit:200 () in
        let raw = Benchmark.all cfg_b instances test in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            Toolkit.Instance.monotonic_clock raw
        in
        let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
        List.iter
          (fun (name, result) ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                estimates := (name, est) :: !estimates;
                Printf.printf "  %-44s %14.0f ns/run\n" name est
            | _ -> Printf.printf "  %-44s (no estimate)\n" name)
          (List.sort compare rows))
  in
  record "micro" dt;
  List.sort compare !estimates

(* --------------------------- JSON dump ----------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~quick ~jobs ~total entries micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"recommended_domains\": %d,\n" (Mlbs_util.Pool.default_jobs ());
  p "  \"total_seconds\": %.3f,\n" total;
  p "  \"sections\": [\n";
  List.iteri
    (fun i e ->
      p "    {\"name\": \"%s\", \"seconds\": %.3f" (json_escape e.name) e.seconds;
      (match e.seconds_jobs1 with
      | Some s -> p ", \"seconds_jobs1\": %.3f" s
      | None -> ());
      p "}%s\n" (if i = List.length entries - 1 then "" else ","))
    entries;
  p "  ],\n";
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, est) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) est
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----------------------------- main -------------------------------- *)

let () =
  (* [json] is [None] until --json/--no-json appears, so --smoke can
     default to no file without overriding an explicit request. *)
  let rec parse targets jobs json = function
    | [] -> (List.rev targets, jobs, json)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> parse targets (Some j) json rest
        | _ -> failwith (Printf.sprintf "bad --jobs value %S" v))
    | [ "--jobs" ] -> failwith "--jobs needs a value"
    | "--json" :: v :: rest -> parse targets jobs (Some (Some v)) rest
    | [ "--json" ] -> failwith "--json needs a value"
    | "--no-json" :: rest -> parse targets jobs (Some None) rest
    | a :: rest -> parse (a :: targets) jobs json rest
  in
  let args, jobs, json_arg = parse [] None None (List.tl (Array.to_list Sys.argv)) in
  let quick = List.mem "--quick" args in
  let smoke = List.mem "--smoke" args in
  let targets = List.filter (fun a -> a <> "--quick" && a <> "--smoke") args in
  let json =
    match json_arg with
    | Some j -> j
    | None -> if smoke then None else Some "BENCH_1.json"
  in
  let targets = if targets = [] then [ "all" ] else targets in
  let known =
    [ "all"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
      "reliability"; "ablation"; "micro" ]
  in
  (match List.filter (fun t -> not (List.mem t known)) targets with
  | [] -> ()
  | bad ->
      failwith
        (Printf.sprintf "unknown target(s): %s (expected: %s)" (String.concat ", " bad)
           (String.concat "|" known)));
  let want t = List.mem t targets || List.mem "all" targets in
  let cfg =
    if smoke then Config.smoke else if quick then Config.quick else Config.default
  in
  let cfg = match jobs with Some j -> { cfg with Config.jobs = j } | None -> cfg in
  let compare_jobs1 = json <> None in
  let total0 = now_s () in
  if want "table2" then run_table "II" "table2" Figures.table2;
  if want "table3" then run_table "III" "table3" Figures.table3;
  if want "table4" then run_table "IV" "table4" Figures.table4;
  if want "fig3" then run_figure cfg ~compare_jobs1 "fig3" Figures.fig3;
  if want "fig4" then run_figure cfg ~compare_jobs1 "fig4" Figures.fig4;
  if want "fig5" then run_figure cfg ~compare_jobs1 "fig5" Figures.fig5;
  if want "fig6" then run_figure cfg ~compare_jobs1 "fig6" Figures.fig6;
  if want "fig7" then run_figure cfg ~compare_jobs1 "fig7" Figures.fig7;
  if want "reliability" then
    run_figure_group cfg ~compare_jobs1 "reliability"
      (Printf.sprintf "Reliability (loss sweep: %d rates x %d seeds)"
         (List.length cfg.Config.loss_rates)
         (List.length cfg.Config.seeds))
      Figures.fig_reliability;
  if want "ablation" then run_ablation cfg;
  let micro = if want "micro" then run_micro cfg else [] in
  let total = now_s () -. total0 in
  Printf.printf "total: %.1fs (jobs=%d)\n" total cfg.Config.jobs;
  match json with
  | Some path -> write_json path ~quick ~jobs:cfg.Config.jobs ~total (List.rev !log) micro
  | None -> ()
