(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation studies, and times the schedulers with
   Bechamel.

     dune exec bench/main.exe                 # everything, full sweep
     dune exec bench/main.exe -- --quick      # reduced sweep
     dune exec bench/main.exe -- fig3 table2  # selected targets
     dune exec bench/main.exe -- --jobs 4 fig3  # 4 worker domains
     dune exec bench/main.exe -- --smoke      # CI-sized, no JSON
     dune exec bench/main.exe -- --smoke --compare BENCH_SMOKE.json

   Targets: table2 table3 table4 fig3 fig4 fig5 fig6 fig7 reliability
   ablation service churn fleet micro search models improve
   (default: all).
   The service target drives an in-process scheduling daemon over its
   Unix socket — cold (distinct instances) then warm (cache hits) — and
   dumps throughput and p50/p95/p99 to BENCH_3.json (suppressed with
   the other JSON under --smoke). The search target times the Strong
   default-budget cold-solve kernels on fixed instances and dumps them
   to BENCH_6.json. The models target compares the interference
   backends (udg / sinr / mc:2 / mc:3) on shared deployments — solve
   ns/run plus scheduled rounds and transmissions — and dumps them to
   BENCH_7.json. The improve target sweeps the GLS/VNS anytime
   improver over fixed G-OPT starts at increasing evaluation budgets
   (best of a small seed portfolio per point, every improved schedule
   re-validated by radio replay) — the quality-vs-budget curve behind
   BENCH_8.json — plus two ns/run gate kernels.

   Flags: --quick (reduced sweep), --smoke (Config.smoke — the CI
   gate: smallest sweep, JSON suppressed unless --json is given
   explicitly), --micro-quick (run only a representative subset of the
   Bechamel micro kernels — the bulk of a smoke run's wall clock),
   --jobs N (worker domains, default all cores),
   --json FILE (machine-readable timings, default BENCH_2.json),
   --no-json, --compare FILE (diff this run against a previous JSON
   dump: per-kernel old/new/Δ, exit non-zero when any tracked micro
   kernel regresses beyond --compare-threshold percent, default 25;
   section timings are reported but never gate), --trace FILE /
   --metrics FILE (record observability artifacts for the whole run;
   off by default so timed sections pay only the registry's disabled
   branch — which is exactly what the --compare gate then measures).

   Unless --no-json is given, the harness writes per-section wall-clock
   (figures additionally run at jobs=1 first — a parallel-speedup
   baseline and warm-up — with a byte-identity check on the rendered
   output) plus the Bechamel ns/run estimates. *)

module Config = Mlbs_workload.Config
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report
module Ablation = Mlbs_workload.Ablation
module Experiment = Mlbs_workload.Experiment
module Model = Mlbs_core.Model
module Scheduler = Mlbs_core.Scheduler
module Schedule = Mlbs_core.Schedule
module Interference = Mlbs_phy.Interference
module Emodel = Mlbs_core.Emodel
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Bitset = Mlbs_util.Bitset
module Pool = Mlbs_util.Pool
module Validate = Mlbs_sim.Validate
module Improve = Mlbs_search.Improve
module Obs = Mlbs_obs.Obs
module Obs_metrics = Mlbs_obs.Metrics
module Obs_export = Mlbs_obs.Export
module Telemetry = Mlbs_workload.Telemetry

(* Monotonic nanoseconds (CLOCK_MONOTONIC via bechamel's stubs), so
   section timings survive wall-clock adjustments mid-run. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n%!" bar title bar

let timed f =
  let t0 = now_s () in
  f ();
  let dt = now_s () -. t0 in
  Printf.printf "(%.1fs)\n\n%!" dt;
  dt

(* One row of BENCH_2.json: wall-clock at the configured jobs, plus the
   jobs=1 comparison run for figure sweeps (defaulting to the timed run
   itself for single-run sections, so the field is always present). *)
type entry = { name : string; seconds : float; seconds_jobs1 : float }

let log : entry list ref = ref []

(* Section timings also feed the registry (a no-op unless --metrics is
   on), so a telemetry-enabled bench run ships its phase profile. *)
let h_section_ms = Obs_metrics.histogram "bench/section_ms"

let record name ?seconds_jobs1 seconds =
  Obs_metrics.observe h_section_ms (int_of_float (seconds *. 1000.));
  let seconds_jobs1 = Option.value seconds_jobs1 ~default:seconds in
  log := { name; seconds; seconds_jobs1 } :: !log

(* ------------------------ paper tables ----------------------------- *)

let run_table n target render =
  section (Printf.sprintf "Table %s (fixture walkthrough)" n);
  record target (timed (fun () -> print_string (render ())))

(* ------------------------ paper figures ---------------------------- *)

(* The jobs=1 baseline runs before the timed configured-jobs run: it is
   both the parallel-speedup denominator and the warm-up, so the timed
   run starts with hot code, a warm shared pool, and sized scratch —
   the regime a long sweep actually operates in. Its render is kept for
   a live check of the pool's determinism guarantee. *)
let jobs1_baseline cfg ~compare_jobs1 render =
  if (not compare_jobs1) || cfg.Config.jobs <= 1 then None
  else begin
    let t0 = now_s () in
    let rendered1 = render { cfg with Config.jobs = 1 } in
    Some (now_s () -. t0, rendered1)
  end

let check_identical name cfg baseline rendered =
  match baseline with
  | Some (_, r1) when r1 <> rendered ->
      Printf.printf "WARNING: %s output differs between jobs=%d and jobs=1\n%!" name
        cfg.Config.jobs
  | _ -> ()

(* The configured-jobs render is timed twice and the faster pass kept:
   the second pass runs at steady state (hot code, sized scratch, heap
   settled by the [Gc.full_major] below), which is the regime a long
   sweep operates in and the one the recorded number represents. The
   jobs=1 baseline pass above doubles as the first-touch warm-up, and
   the rendered output (identical across passes — checked against the
   baseline) is printed outside the clock. *)
let timed_render render cfg rendered =
  let pass () =
    Gc.full_major ();
    let t0 = now_s () in
    rendered := render cfg;
    now_s () -. t0
  in
  let d1 = pass () in
  let d2 = pass () in
  let dt = Float.min d1 d2 in
  Printf.printf "(%.1fs)\n\n%!" dt;
  dt

let run_figure cfg ~compare_jobs1 name build =
  section
    (Printf.sprintf "%s (density sweep: %s seeds x %s node counts, jobs=%d)"
       (String.capitalize_ascii name)
       (string_of_int (List.length cfg.Config.seeds))
       (string_of_int (List.length cfg.Config.node_counts))
       cfg.Config.jobs);
  let render cfg = Report.render_figure (build cfg) in
  let baseline = jobs1_baseline cfg ~compare_jobs1 render in
  let rendered = ref "" in
  let dt = timed_render render cfg rendered in
  print_string !rendered;
  check_identical name cfg baseline !rendered;
  record name ?seconds_jobs1:(Option.map fst baseline) dt

(* Same shape for multi-chart sweeps (the reliability pair): render the
   concatenation, cross-check the concatenation at jobs=1. *)
let run_figure_group cfg ~compare_jobs1 name title build =
  section (Printf.sprintf "%s (jobs=%d)" title cfg.Config.jobs);
  let render cfg =
    String.concat "\n" (List.map Report.render_figure (build cfg))
  in
  let baseline = jobs1_baseline cfg ~compare_jobs1 render in
  let rendered = ref "" in
  let dt = timed_render render cfg rendered in
  print_string !rendered;
  check_identical name cfg baseline !rendered;
  record name ?seconds_jobs1:(Option.map fst baseline) dt

(* -------------------------- ablations ------------------------------ *)

let run_ablation cfg =
  section (Printf.sprintf "Ablations (DESIGN.md design choices, jobs=%d)" cfg.Config.jobs);
  record "ablation"
    (timed (fun () ->
         let small = { cfg with Config.seeds = [ 1; 2; 3 ] } in
         Mlbs_util.Tab.print (Ablation.selector_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.wake_family_table small ~n:100 ~rate:10);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.lookahead_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.relay_set_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.localized_table small ~n:150 ~rate:None);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.localized_table small ~n:100 ~rate:(Some 10));
         print_newline ();
         Mlbs_util.Tab.print (Ablation.shape_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.protocol_table small ~n:150);
         print_newline ();
         Mlbs_util.Tab.print (Ablation.resilience_table small ~n:150 ~kill_fraction:0.1);
         print_newline ();
         Mlbs_util.Tab.print
           (Ablation.fault_table { small with Config.crash_fraction = 0.1 } ~n:100 ~loss:0.2)))

(* ------------------------- service bench --------------------------- *)

module Sv_daemon = Mlbs_server.Daemon
module Sv_client = Mlbs_server.Client
module Sv_codec = Mlbs_server.Codec

(* One phase of the service benchmark (BENCH_3.json). *)
type phase = {
  pname : string;
  requests : int;
  p_seconds : float;
  rps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  hits : int;
}

let percentile sorted q =
  if Array.length sorted = 0 then 0.0
  else
    sorted.(min
              (Array.length sorted - 1)
              (int_of_float (ceil (q *. float_of_int (Array.length sorted))) - 1))

let service_phase name ~socket ~concurrency ~requests req_of =
  let lat = Array.make requests 0.0 in
  let hits = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let worker w () =
    let c, _, _ = Sv_client.connect (Sv_client.Unix_socket socket) in
    Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
    let i = ref w in
    while !i < requests do
      let t0 = now_s () in
      (match Sv_client.request_retry ~attempts:8 c (req_of !i) with
      | Sv_client.Ok ok -> if ok.Sv_codec.cache_hit then Atomic.incr hits
      | Sv_client.Rejected _ | Sv_client.Error _ -> Atomic.incr errors);
      lat.(!i) <- (now_s () -. t0) *. 1e6;
      i := !i + concurrency
    done
  in
  let t0 = now_s () in
  let threads = List.init concurrency (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let dt = now_s () -. t0 in
  if Atomic.get errors > 0 then
    Printf.printf "  WARNING: %d failed requests in %s phase\n%!" (Atomic.get errors) name;
  Array.sort compare lat;
  {
    pname = name;
    requests;
    p_seconds = dt;
    rps = float_of_int requests /. dt;
    p50_us = percentile lat 0.50;
    p95_us = percentile lat 0.95;
    p99_us = percentile lat 0.99;
    hits = Atomic.get hits;
  }

(* Cold phase: every request is a distinct instance — pays deployment
   generation, source selection and the solve. Warm phase: the same
   instances again, repeatedly — served from the content-addressed
   cache. The speedup between the two is the cache's service-level
   value, gated at >= 10x in the acceptance criteria. *)
let run_service cfg ~smoke =
  section
    (Printf.sprintf "Scheduling service (daemon + wire protocol, jobs=%d)"
       cfg.Config.jobs);
  (* The daemon force-enables the metrics registry; restore the bench's
     registry state afterwards so later timed sections (micro!) still
     run with the disabled-branch cost the baseline JSON was recorded
     under. *)
  let metrics0 = Obs.metrics_enabled () and tracing0 = Obs.tracing_enabled () in
  let n = List.fold_left max 50 cfg.Config.node_counts in
  let instances = if smoke then 8 else 32 in
  let concurrency = if smoke then 4 else 8 in
  let warm_requests = if smoke then 200 else 2000 in
  let socket = Filename.temp_file "mlbs-bench" ".sock" in
  let dcfg =
    {
      (Sv_daemon.default_config ~socket_path:socket) with
      Sv_daemon.jobs = cfg.Config.jobs;
      queue_capacity = 256;
      cache_capacity = 2 * instances;
    }
  in
  let req_of i =
    {
      Sv_codec.policy = Sv_codec.Gopt;
      rate = None;
      seed = 1 + (i mod instances);
      topology = Sv_codec.Gen { n; radius = Config.default.Config.radius };
      source = None;
      start = 1;
      model = Mlbs_phy.Interference.Udg;
    }
  in
  let t0 = now_s () in
  let d = Sv_daemon.start dcfg in
  let cold, warm =
    Fun.protect
      ~finally:(fun () ->
        Sv_daemon.stop d;
        Sv_daemon.wait d;
        if not metrics0 then begin
          Obs.disable ();
          if tracing0 then Obs.enable ~metrics:false ~tracing:true ()
        end)
      (fun () ->
        let cold = service_phase "cold" ~socket ~concurrency ~requests:instances req_of in
        let warm = service_phase "warm" ~socket ~concurrency ~requests:warm_requests req_of in
        (cold, warm))
  in
  let dt = now_s () -. t0 in
  let speedup = warm.rps /. cold.rps in
  Printf.printf "  %d instances (n=%d), %d clients over a Unix socket\n" instances n
    concurrency;
  List.iter
    (fun p ->
      Printf.printf
        "  %-5s %5d requests  %8.0f req/s  p50=%.0fus p95=%.0fus p99=%.0fus  (%d hits)\n"
        p.pname p.requests p.rps p.p50_us p.p95_us p.p99_us p.hits)
    [ cold; warm ];
  Printf.printf "  warm/cold throughput: %.1fx\n" speedup;
  Printf.printf "(%.1fs)\n\n%!" dt;
  record "service" dt;
  (cold, warm, speedup, n, instances, concurrency)

let write_bench3 path ~jobs (cold, warm, speedup, n, instances, concurrency) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-3\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"n_nodes\": %d,\n" n;
  p "  \"instances\": %d,\n" instances;
  p "  \"concurrency\": %d,\n" concurrency;
  p "  \"phases\": [\n";
  List.iteri
    (fun i ph ->
      p
        "    {\"name\": \"%s\", \"requests\": %d, \"seconds\": %.3f, \"rps\": %.1f, \
         \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, \"cache_hits\": %d}%s\n"
        ph.pname ph.requests ph.p_seconds ph.rps ph.p50_us ph.p95_us ph.p99_us ph.hits
        (if i = 1 then "" else ","))
    [ cold; warm ];
  p "  ],\n";
  p "  \"warm_over_cold_speedup\": %.1f\n" speedup;
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------- churn bench ----------------------------- *)

module Reschedule = Mlbs_core.Reschedule
module Churn = Mlbs_wsn.Churn
module Deployment = Mlbs_wsn.Deployment
module Network = Mlbs_wsn.Network
module Rng = Mlbs_prng.Rng

(* One churn level of BENCH_4.json: [c_k] nodes drift per event, the
   repaired schedule is byte-compared against a full re-solve of the
   edited model every time (the re-solve doubles as the resolve
   timing). *)
type churn_level = {
  c_pct : int;
  c_k : int;
  c_events : int;
  repair_mean_us : float;
  repair_p50_us : float;
  resolve_mean_us : float;
  resolve_p50_us : float;
  speedup_mean : float;  (** mean over events of resolve/repair, paired *)
  speedup_p50 : float;
  c_mismatches : int;
}

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (max 1 (Array.length a))

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  percentile s 0.50

(* The position jitter of one drift event: 20% of the paper deployment's
   transmission radius — local enough that most deltas touch a handful
   of neighbourhoods, large enough that every event rewires someone. *)
let drift_jitter = 2.0

let run_churn_level ~net ~model ~source ~policy ~snap ~sched ~rng ~events ~pct =
  let n = Network.n_nodes net in
  let k = max 1 (n * pct / 100) in
  let rep_us = Array.make events 0.0 in
  let res_us = Array.make events 0.0 in
  let mismatches = ref 0 in
  for e = 0 to events - 1 do
    let d = Churn.drift rng net ~k ~jitter:drift_jitter in
    let t0 = now_s () in
    let rep =
      Reschedule.reschedule model policy ?snapshot:snap ~old_schedule:sched ~added:[]
        ~removed:[] ~rewired:d.Churn.rewired ()
    in
    rep_us.(e) <- (now_s () -. t0) *. 1e6;
    let t1 = now_s () in
    let full = Scheduler.run rep.Reschedule.model policy ~source ~start:1 in
    res_us.(e) <- (now_s () -. t1) *. 1e6;
    if Sv_codec.schedule_bytes full <> Sv_codec.schedule_bytes rep.Reschedule.schedule
    then incr mismatches
  done;
  (* Speedup is paired per event — each edited instance is its own
     baseline, so a hard instance inflating both sides does not skew
     the ratio the way a ratio of means would. *)
  let ratios = Array.init events (fun e -> res_us.(e) /. rep_us.(e)) in
  {
    c_pct = pct;
    c_k = k;
    c_events = events;
    repair_mean_us = mean rep_us;
    repair_p50_us = median rep_us;
    resolve_mean_us = mean res_us;
    resolve_p50_us = median res_us;
    speedup_mean = mean ratios;
    speedup_p50 = median ratios;
    c_mismatches = !mismatches;
  }

(* A churn instance: paper-spec deployment re-anchored on synthetic
   geometry — the exact network the scheduling service resolves for the
   same adjacency, so daemon-side repairs and these in-process numbers
   describe one code path. *)
let churn_instance ~n ~seed =
  let rng = Rng.create seed in
  let net = Deployment.generate rng (Deployment.paper_spec ~n_nodes:n) in
  let model = Model.create (Network.synthetic (Network.graph net)) Model.Sync in
  let source = Deployment.select_source rng net ~min_ecc:5 ~max_ecc:8 in
  (rng, net, model, source)

let run_churn_levels ~n ~seed ~events ~pcts =
  let rng, net, model, source = churn_instance ~n ~seed in
  let policy = Scheduler.gopt in
  let sched, snap = Scheduler.run_warm model policy ~source ~start:1 () in
  List.map
    (fun pct -> run_churn_level ~net ~model ~source ~policy ~snap ~sched ~rng ~events ~pct)
    pcts

(* The service-side half of the churn story: one daemon, one base solve
   (cold), then a stream of [Reschedule] frames — every one a cache
   miss on the edited digest, served by warm-started repair. *)
type churn_service = {
  s_n : int;
  s_events : int;
  s_cold_us : float;
  s_warm_us : float;
      (* near-miss solves: the same broadcast re-issued at later start
         slots — family hits with an empty diff, so the whole memo
         seeds and the sync search replays from it *)
  s_repair_mean_us : float;
  s_repair_p50_us : float;
  s_warm_hits : int;
  s_errors : int;
}

let run_churn_service cfg ~n ~seed ~events ~pct =
  let metrics0 = Obs.metrics_enabled () and tracing0 = Obs.tracing_enabled () in
  let rng, net, _, source = churn_instance ~n ~seed in
  let g = Network.graph net in
  let adj =
    Array.init (Mlbs_graph.Graph.n_nodes g) (fun u ->
        Array.to_list (Mlbs_graph.Graph.neighbors g u))
  in
  let base =
    {
      Sv_codec.policy = Sv_codec.Gopt;
      rate = None;
      seed;
      topology = Sv_codec.Adj adj;
      source = Some source;
      start = 1;
      model = Mlbs_phy.Interference.Udg;
    }
  in
  let socket = Filename.temp_file "mlbs-churn" ".sock" in
  let dcfg =
    {
      (Sv_daemon.default_config ~socket_path:socket) with
      Sv_daemon.jobs = cfg.Config.jobs;
      queue_capacity = 64;
      cache_capacity = 2 * events;
    }
  in
  let d = Sv_daemon.start dcfg in
  Fun.protect
    ~finally:(fun () ->
      Sv_daemon.stop d;
      Sv_daemon.wait d;
      if not metrics0 then begin
        Obs.disable ();
        if tracing0 then Obs.enable ~metrics:false ~tracing:true ()
      end)
  @@ fun () ->
  let c, _, _ = Sv_client.connect (Sv_client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
  let errors = ref 0 in
  let timed_request req =
    let t = now_s () in
    (match Sv_client.request_retry ~attempts:8 c req with
    | Sv_client.Ok _ -> ()
    | Sv_client.Rejected _ | Sv_client.Error _ -> incr errors);
    (now_s () -. t) *. 1e6
  in
  (* Warm-start near misses vs family misses, paired per family: the
     warm index is keyed on node count (not digest), so deployments at
     distinct [n] are distinct families. For each, the first request
     is the family-miss (cold) sample; re-issues of the same broadcast
     at later start slots are the near-miss (warm) samples — a
     different content address (cache miss) but a family hit whose
     graph diff is empty, so every memo entry seeds, and the sync memo
     is keyed on the informed set alone, so the re-solve replays the
     whole search from it. Several families beat one: a single cold
     sample is too noisy to compare against. *)
  (* One untimed solve first: the daemon's first search pays one-time
     costs (domain-local scratch sizing, allocator warm-up) that would
     otherwise land entirely in the first cold sample. *)
  ignore
    (timed_request
       { base with Sv_codec.topology = Sv_codec.Gen { n = 120; radius = 10.0 }; source = None });
  let families = [ 0; 1; 2; 3; 4; 5 ] in
  let cold_lat, warm_lat =
    List.fold_left
      (fun (cold, warm) i ->
        let nf = n - i in
        let rngf, netf, _, srcf =
          churn_instance ~n:nf ~seed:(seed + (31 * i))
        in
        ignore rngf;
        let gf = Network.graph netf in
        let adjf =
          Array.init (Mlbs_graph.Graph.n_nodes gf) (fun u ->
              Array.to_list (Mlbs_graph.Graph.neighbors gf u))
        in
        let basef = { base with Sv_codec.topology = Sv_codec.Adj adjf; source = Some srcf } in
        let cold_us = timed_request basef in
        let warm_us =
          List.map (fun s -> timed_request { basef with Sv_codec.start = s }) [ 2; 3; 4 ]
        in
        (cold_us :: cold, warm_us @ warm))
      ([], []) families
  in
  let cold_us = mean (Array.of_list cold_lat) in
  let warm_us = mean (Array.of_list warm_lat) in
  let k = max 1 (n * pct / 100) in
  let lat = Array.make events 0.0 in
  for e = 0 to events - 1 do
    let dr = Churn.drift rng net ~k ~jitter:drift_jitter in
    let delta = { Sv_codec.d_added = []; d_removed = []; d_rewired = dr.Churn.rewired } in
    let t1 = now_s () in
    (match Sv_client.reschedule_retry ~attempts:8 c ~base ~delta with
    | Sv_client.Ok _ -> ()
    | Sv_client.Rejected _ | Sv_client.Error _ -> incr errors);
    lat.(e) <- (now_s () -. t1) *. 1e6
  done;
  let warm_hits =
    match List.assoc_opt "server/warmstart/hit" (Sv_client.stats c) with
    | Some v -> v
    | None -> 0
  in
  {
    s_n = n;
    s_events = events;
    s_cold_us = cold_us;
    s_warm_us = warm_us;
    s_repair_mean_us = mean lat;
    s_repair_p50_us = median lat;
    s_warm_hits = warm_hits;
    s_errors = !errors;
  }

(* The CI gate pair: repair and resolve at a fixed small size, present
   in every BENCH_4.json regardless of --smoke so the committed
   baseline and the CI run always share these two kernel names. *)
let churn_gate_kernels () =
  let levels = run_churn_levels ~n:80 ~seed:7 ~events:6 ~pcts:[ 10 ] in
  match levels with
  | [ l ] ->
      ( l.c_mismatches,
        [
          ("churn/repair (n=80, 10%)", l.repair_mean_us *. 1e3);
          ("churn/resolve (n=80, 10%)", l.resolve_mean_us *. 1e3);
        ] )
  | _ -> (0, [])

let run_churn cfg ~smoke =
  let n = if smoke then 80 else 300 in
  let events = if smoke then 6 else 20 in
  let pcts = [ 1; 3; 10; 30 ] in
  section
    (Printf.sprintf "Churn repair (n=%d, %d events/level, G-OPT, jobs=%d)" n events
       cfg.Config.jobs);
  let t0 = now_s () in
  let levels = run_churn_levels ~n ~seed:42 ~events ~pcts in
  List.iter
    (fun l ->
      Printf.printf
        "  churn %2d%% (k=%3d): repair %8.0f us (p50 %8.0f)  resolve %8.0f us (p50 \
         %8.0f)  speedup %4.1fx (p50 %4.1fx)%s\n"
        l.c_pct l.c_k l.repair_mean_us l.repair_p50_us l.resolve_mean_us l.resolve_p50_us
        l.speedup_mean l.speedup_p50
        (if l.c_mismatches = 0 then ""
         else Printf.sprintf "  %d BYTE MISMATCHES" l.c_mismatches))
    levels;
  let svc = run_churn_service cfg ~n ~seed:42 ~events ~pct:10 in
  Printf.printf
    "  service: cold %8.0f us, warm near-miss %8.0f us, repair mean %8.0f us (p50 \
     %8.0f), %d warm-start hits%s\n"
    svc.s_cold_us svc.s_warm_us svc.s_repair_mean_us svc.s_repair_p50_us svc.s_warm_hits
    (if svc.s_errors = 0 then "" else Printf.sprintf "  %d ERRORS" svc.s_errors);
  let gate_mismatches, kernels = churn_gate_kernels () in
  let dt = now_s () -. t0 in
  Printf.printf "(%.1fs)\n\n%!" dt;
  record "churn" dt;
  let mismatches =
    gate_mismatches + List.fold_left (fun a l -> a + l.c_mismatches) 0 levels
  in
  (levels, svc, kernels, mismatches, n, events)

let write_bench4 path ~jobs (levels, svc, kernels, _, n, events) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-4\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"n_nodes\": %d,\n" n;
  p "  \"events_per_level\": %d,\n" events;
  p "  \"policy\": \"gopt\",\n";
  p "  \"levels\": [\n";
  List.iteri
    (fun i l ->
      p
        "    {\"churn_pct\": %d, \"k\": %d, \"repair_mean_us\": %.1f, \"repair_p50_us\": \
         %.1f, \"resolve_mean_us\": %.1f, \"resolve_p50_us\": %.1f, \"speedup_mean\": \
         %.2f, \"speedup_p50\": %.2f, \"byte_equal\": %b}%s\n"
        l.c_pct l.c_k l.repair_mean_us l.repair_p50_us l.resolve_mean_us l.resolve_p50_us
        l.speedup_mean l.speedup_p50
        (l.c_mismatches = 0)
        (if i = List.length levels - 1 then "" else ","))
    levels;
  p "  ],\n";
  p
    "  \"service\": {\"n_nodes\": %d, \"events\": %d, \"cold_us\": %.1f, \"warm_us\": \
     %.1f, \"repair_mean_us\": %.1f, \"repair_p50_us\": %.1f, \"warmstart_hits\": %d, \
     \"errors\": %d},\n"
    svc.s_n svc.s_events svc.s_cold_us svc.s_warm_us svc.s_repair_mean_us
    svc.s_repair_p50_us svc.s_warm_hits svc.s_errors;
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" name ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------- fleet bench ----------------------------- *)

module Sv_fleet = Mlbs_server.Fleet

(* A shard for the fleet bench: an external [serve --backend] process
   when the CLI binary sits next to this bench in _build (separate
   OCaml runtimes — real multi-process scaling), an in-process daemon
   otherwise (still exercises the full TCP path). *)
type shard =
  | Sh_proc of { pid : int; out : in_channel; port : int }
  | Sh_inproc of Sv_daemon.t

let cli_exe =
  lazy
    (let candidate =
       Filename.concat
         (Filename.dirname Sys.executable_name)
         (Filename.concat ".." (Filename.concat "bin" "mlbs_cli.exe"))
     in
     if Sys.file_exists candidate then Some candidate else None)

let spawn_shard () =
  match Lazy.force cli_exe with
  | Some exe ->
      let out_r, out_w = Unix.pipe ~cloexec:true () in
      let pid =
        Unix.create_process exe
          [| exe; "serve"; "--backend"; "--tcp"; "0"; "--jobs"; "1" |]
          Unix.stdin out_w Unix.stderr
      in
      Unix.close out_w;
      let out = Unix.in_channel_of_descr out_r in
      let prefix = "backend ready on 127.0.0.1:" in
      let rec scan attempts =
        if attempts = 0 then failwith "backend never reported ready";
        let line = input_line out in
        if
          String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
        then
          int_of_string
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
        else scan (attempts - 1)
      in
      Sh_proc { pid; out; port = scan 10 }
  | None ->
      Sh_inproc
        (Sv_daemon.start
           {
             (Sv_daemon.default_config ~socket_path:"unused") with
             Sv_daemon.socket_path = None;
             tcp_port = Some 0;
             jobs = 1;
           })

let shard_endpoint = function
  | Sh_proc { port; _ } -> Sv_client.Tcp { host = "127.0.0.1"; port }
  | Sh_inproc d -> (
      match Sv_daemon.tcp_port d with
      | Some port -> Sv_client.Tcp { host = "127.0.0.1"; port }
      | None -> failwith "in-process shard has no TCP port")

(* SIGKILL for a process shard — the chaos scenario CI replays. *)
let kill_shard = function
  | Sh_proc { pid; out; _ } ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ());
      close_in_noerr out
  | Sh_inproc d ->
      Sv_daemon.stop d;
      Sv_daemon.wait d

(* service_phase, plus the reject/error split the degraded phase needs. *)
let fleet_phase name ~socket ~concurrency ~requests req_of =
  let lat = Array.make requests 0.0 in
  let hits = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let worker w () =
    let c, _, _ = Sv_client.connect (Sv_client.Unix_socket socket) in
    Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
    let i = ref w in
    while !i < requests do
      let t0 = now_s () in
      (match Sv_client.request_retry ~attempts:8 c (req_of !i) with
      | Sv_client.Ok ok -> if ok.Sv_codec.cache_hit then Atomic.incr hits
      | Sv_client.Rejected _ -> Atomic.incr rejected
      | Sv_client.Error _ -> Atomic.incr errors);
      lat.(!i) <- (now_s () -. t0) *. 1e6;
      i := !i + concurrency
    done
  in
  let t0 = now_s () in
  let threads = List.init concurrency (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let dt = now_s () -. t0 in
  Array.sort compare lat;
  ( {
      pname = name;
      requests;
      p_seconds = dt;
      rps = float_of_int requests /. dt;
      p50_us = percentile lat 0.50;
      p95_us = percentile lat 0.95;
      p99_us = percentile lat 0.99;
      hits = Atomic.get hits;
    },
    Atomic.get rejected,
    Atomic.get errors )

type fleet_row = {
  fr_shards : int;
  fr_cold : phase;
  fr_warm : phase;
  fr_rejected : int;
  fr_fill_hits : int;
}

type fleet_degraded = {
  fd_shards : int;
  fd_phase : phase;
  fd_rejected : int;
  fd_errors : int;
  fd_rebalances : int;
}

let front_stats socket =
  let c, _, _ = Sv_client.connect (Sv_client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Sv_client.close c) (fun () -> Sv_client.stats c)

(* Fleet metric counters are process-global and survive across shard
   counts within one bench run, so every row works on before/after
   diffs rather than absolute values. *)
let stat_diff before after k =
  let get kvs = Option.value ~default:0 (List.assoc_opt k kvs) in
  get after - get before

(* Fixed small-n rows (the BENCH_5 gate compares p50 latencies by name,
   so sizes must not move with --smoke): shard counts 1/2/4 through one
   front, cold then warm, and a kill-one-shard degraded phase at 4. *)
let run_fleet cfg ~smoke =
  section (Printf.sprintf "Fleet (front + sharded backends, jobs=%d)" cfg.Config.jobs);
  let metrics0 = Obs.metrics_enabled () and tracing0 = Obs.tracing_enabled () in
  let n = 50 in
  let instances = 8 in
  let concurrency = 4 in
  let warm_requests = if smoke then 160 else 800 in
  let req_of i =
    {
      Sv_codec.policy = Sv_codec.Gopt;
      rate = None;
      seed = 1 + (i mod instances);
      topology = Sv_codec.Gen { n; radius = Config.default.Config.radius };
      source = None;
      start = 1;
      model = Mlbs_phy.Interference.Udg;
    }
  in
  let t0 = now_s () in
  let degraded = ref None in
  let rows =
    List.map
      (fun shards ->
        let members = List.init shards (fun _ -> spawn_shard ()) in
        let socket = Filename.temp_file "mlbs-fleet" ".sock" in
        let fcfg =
          {
            (Sv_fleet.default_config
               ~backends:(List.map shard_endpoint members)
               ~socket_path:socket)
            with
            Sv_fleet.health_period = 0.2;
          }
        in
        let t = Sv_fleet.start fcfg in
        Fun.protect
          ~finally:(fun () ->
            Sv_fleet.stop t;
            Sv_fleet.wait t;
            List.iter kill_shard members;
            try Sys.remove socket with Sys_error _ -> ())
          (fun () ->
            let s0 = front_stats socket in
            let cold, _, _ =
              fleet_phase "cold" ~socket ~concurrency ~requests:instances req_of
            in
            let warm, warm_rej, _ =
              fleet_phase "warm" ~socket ~concurrency ~requests:warm_requests req_of
            in
            let s1 = front_stats socket in
            if shards = 4 then begin
              (* Chaos: SIGKILL one shard, drive the same load straight
                 through the reroute storm. *)
              kill_shard (List.hd members);
              let ph, rej, errs =
                fleet_phase "degraded" ~socket ~concurrency
                  ~requests:(warm_requests / 2) req_of
              in
              let s2 = front_stats socket in
              degraded :=
                Some
                  {
                    fd_shards = shards;
                    fd_phase = ph;
                    fd_rejected = rej;
                    fd_errors = errs;
                    fd_rebalances = stat_diff s1 s2 "server/fleet/rebalances";
                  }
            end;
            {
              fr_shards = shards;
              fr_cold = cold;
              fr_warm = warm;
              fr_rejected = warm_rej;
              fr_fill_hits = stat_diff s0 s1 "server/fleet/fill_hits";
            }))
      [ 1; 2; 4 ]
  in
  if not metrics0 then begin
    Obs.disable ();
    if tracing0 then Obs.enable ~metrics:false ~tracing:true ()
  end;
  Printf.printf "  %d instances (n=%d), %d clients, %s shards\n" instances n concurrency
    (match Lazy.force cli_exe with Some _ -> "process" | None -> "in-process");
  List.iter
    (fun r ->
      Printf.printf
        "  %d shard%s: cold %7.0f req/s   warm %7.0f req/s  p50=%.0fus p99=%.0fus  \
         (%d hits, %d rejected, %d fills)\n"
        r.fr_shards
        (if r.fr_shards = 1 then " " else "s")
        r.fr_cold.rps r.fr_warm.rps r.fr_warm.p50_us r.fr_warm.p99_us r.fr_warm.hits
        r.fr_rejected r.fr_fill_hits)
    rows;
  (match !degraded with
  | Some d ->
      Printf.printf
        "  kill 1/%d: %7.0f req/s  p50=%.0fus p99=%.0fus  (%d rejected, %d errors, %d \
         rebalances)\n"
        d.fd_shards d.fd_phase.rps d.fd_phase.p50_us d.fd_phase.p99_us d.fd_rejected
        d.fd_errors d.fd_rebalances
  | None -> ());
  let kernels =
    List.filter_map
      (fun r ->
        if r.fr_shards = 1 || r.fr_shards = 4 then
          Some
            ( Printf.sprintf "fleet/warm p50 (%d shard%s)" r.fr_shards
                (if r.fr_shards = 1 then "" else "s"),
              r.fr_warm.p50_us *. 1e3 )
        else None)
      rows
    @
    match !degraded with
    | Some d -> [ ("fleet/degraded p50 (4 shards)", d.fd_phase.p50_us *. 1e3) ]
    | None -> []
  in
  let dt = now_s () -. t0 in
  Printf.printf "(%.1fs)\n\n%!" dt;
  record "fleet" dt;
  (rows, !degraded, kernels)

let write_bench5 path ~jobs (rows, degraded, kernels) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-5\",\n";
  p "  \"jobs\": %d,\n" jobs;
  (* Warm rps scales with shard count only when the host has at least
     one core per shard; on fewer cores the rows measure overhead. *)
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"shards\": %d, \"cold_rps\": %.1f, \"warm_rps\": %.1f, \"warm_p50_us\": \
         %.1f, \"warm_p99_us\": %.1f, \"warm_hits\": %d, \"rejected\": %d, \
         \"fill_hits\": %d}%s\n"
        r.fr_shards r.fr_cold.rps r.fr_warm.rps r.fr_warm.p50_us r.fr_warm.p99_us
        r.fr_warm.hits r.fr_rejected r.fr_fill_hits
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  (match degraded with
  | Some d ->
      p
        "  \"degraded\": {\"shards\": %d, \"killed\": 1, \"rps\": %.1f, \"p50_us\": \
         %.1f, \"p99_us\": %.1f, \"rejected\": %d, \"errors\": %d, \"rebalances\": \
         %d},\n"
        d.fd_shards d.fd_phase.rps d.fd_phase.p50_us d.fd_phase.p99_us d.fd_rejected
        d.fd_errors d.fd_rebalances
  | None -> ());
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" name ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------ bechamel micro --------------------------- *)

let micro_tests cfg =
  let open Bechamel in
  let inst = Experiment.make_instance cfg ~n:150 ~seed:1 in
  let net = inst.Experiment.net in
  let n = Mlbs_wsn.Network.n_nodes net in
  let sync_model = Model.create net Model.Sync in
  let wake = Wake_schedule.create ~rate:10 ~n_nodes:n ~seed:1 () in
  let async_model = Model.create net (Model.Async wake) in
  let source = inst.Experiment.source in
  let run model policy () = ignore (Scheduler.run model policy ~source ~start:1) in
  let budget = cfg.Config.budget in
  (* Conflict-test kernel, old vs new: the paper's predicate
     N(u) ∩ N(v) ∩ W̄ ≠ ∅ on two adjacent relays of the n=150 instance,
     as one allocating intersection versus the fused word-wise probe. *)
  let g = Mlbs_wsn.Network.graph net in
  let u = source in
  let v = (Mlbs_graph.Graph.neighbors g u).(0) in
  let nu = Mlbs_graph.Graph.neighbor_set g u in
  let nv = Mlbs_graph.Graph.neighbor_set g v in
  let w = Model.initial_w sync_model ~source in
  let ubar = Bitset.complement w in
  [
    Test.make ~name:"kernel/conflict-test old (inter alloc)"
      (Staged.stage (fun () -> ignore (Bitset.intersects (Bitset.inter nu nv) ubar)));
    Test.make ~name:"kernel/conflict-test new (intersects3)"
      (Staged.stage (fun () -> ignore (Bitset.intersects3 nu nv ubar)));
    Test.make ~name:"kernel/hop lower bound (scratch BFS)"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Mcounter.hop_lower_bound sync_model ~w)));
    Test.make ~name:"fig3/26-approx" (Staged.stage (run sync_model Scheduler.Baseline));
    Test.make ~name:"fig3/G-OPT" (Staged.stage (run sync_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig3/E-model" (Staged.stage (run sync_model Scheduler.Emodel));
    Test.make ~name:"fig4/17-approx" (Staged.stage (run async_model Scheduler.Baseline));
    Test.make ~name:"fig4/G-OPT" (Staged.stage (run async_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig4/E-model" (Staged.stage (run async_model Scheduler.Emodel));
    Test.make ~name:"table2/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table2 ())));
    Test.make ~name:"table3/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table3 ())));
    Test.make ~name:"table4/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table4 ())));
    Test.make ~name:"extension/localized protocol"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Localized.run sync_model ~source ~start:1)));
    Test.make ~name:"extension/CDS baseline"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Baseline_cds.plan sync_model ~source ~start:1)));
    Test.make ~name:"extension/distributed protocol (beacons)"
      (Staged.stage (fun () ->
           ignore (Mlbs_proto.Broadcast_protocol.run sync_model ~source ~start:1)));
    Test.make ~name:"substrate/E-tuple construction"
      (Staged.stage (fun () -> ignore (Emodel.compute sync_model)));
    Test.make ~name:"substrate/UDG deployment (n=150)"
      (Staged.stage (fun () ->
           ignore
             (Mlbs_wsn.Deployment.generate (Mlbs_prng.Rng.create 1)
                (Mlbs_wsn.Deployment.paper_spec ~n_nodes:150))));
  ]

(* The --micro-quick subset: one representative kernel per gated
   family, so a CI smoke run still gates the conflict predicate, the
   BFS bound, both G-OPT systems and the E-model without paying the
   full 18-kernel session (which dominates the smoke run's wall
   clock). *)
let micro_quick_names =
  [
    "kernel/conflict-test old (inter alloc)";
    "kernel/conflict-test new (intersects3)";
    "kernel/hop lower bound (scratch BFS)";
    "fig3/G-OPT";
    "fig3/E-model";
    "fig4/G-OPT";
  ]

(* One bechamel session over [tests], grouped under [group]; returns
   the sorted (name, ns/run) estimates and records the section under
   [label]. *)
let bechamel_session ~group ~label tests =
  let estimates = ref [] in
  let dt =
    timed (fun () ->
        let open Bechamel in
        let test = Test.make_grouped ~name:group tests in
        let instances = Toolkit.Instance.[ monotonic_clock ] in
        let cfg_b = Benchmark.cfg ~quota:(Time.second 0.5) ~limit:200 () in
        let raw = Benchmark.all cfg_b instances test in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            Toolkit.Instance.monotonic_clock raw
        in
        let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
        List.iter
          (fun (name, result) ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                estimates := (name, est) :: !estimates;
                Printf.printf "  %-44s %14.0f ns/run\n" name est
            | _ -> Printf.printf "  %-44s (no estimate)\n" name)
          (List.sort compare rows))
  in
  record label dt;
  List.sort compare !estimates

let run_micro cfg ~micro_quick =
  let tests = micro_tests cfg in
  let tests =
    if not micro_quick then tests
    else
      List.filter (fun t -> List.mem (Bechamel.Test.name t) micro_quick_names) tests
  in
  section
    (if micro_quick then
       "Bechamel micro-benchmarks (one scheduling run, n=150; --micro-quick subset)"
     else "Bechamel micro-benchmarks (one scheduling run, n=150)");
  bechamel_session ~group:"mlbs" ~label:"micro" tests

(* ------------------------- search bench ---------------------------- *)

(* The BENCH_6 kernels: the service's cold-solve path — Scheduler.run
   at the Strong default budget — on fixed instances, independent of
   --quick/--smoke so every invocation gates against the committed
   baseline on identical work. This is the path every cache miss,
   fleet fill and churn re-solve pays; BENCH_2's fig3/G-OPT (the same
   n=150 instance under the Classic reference search) is the
   comparison point for the Strong-mode speedup. *)
let search_tests () =
  let open Bechamel in
  let inst = Experiment.make_instance Config.default ~n:150 ~seed:1 in
  let net = inst.Experiment.net in
  let n = Mlbs_wsn.Network.n_nodes net in
  let sync_model = Model.create net Model.Sync in
  let wake = Wake_schedule.create ~rate:10 ~n_nodes:n ~seed:1 () in
  let async_model = Model.create net (Model.Async wake) in
  let source = inst.Experiment.source in
  let inst3 = Experiment.make_instance Config.default ~n:300 ~seed:1 in
  let sync_model3 = Model.create inst3.Experiment.net Model.Sync in
  let source3 = inst3.Experiment.source in
  let run model policy source () = ignore (Scheduler.run model policy ~source ~start:1) in
  [
    Test.make ~name:"G-OPT cold sync (n=150)"
      (Staged.stage (run sync_model Scheduler.gopt source));
    Test.make ~name:"G-OPT cold async (n=150)"
      (Staged.stage (run async_model Scheduler.gopt source));
    Test.make ~name:"G-OPT cold sync (n=300)"
      (Staged.stage (run sync_model3 Scheduler.gopt source3));
    Test.make ~name:"E-model sync (n=150)"
      (Staged.stage (run sync_model Scheduler.Emodel source));
    Test.make ~name:"E-model async (n=150)"
      (Staged.stage (run async_model Scheduler.Emodel source));
  ]

let run_search () =
  section "Search-core kernels (Strong default budget, cold solves)";
  bechamel_session ~group:"search" ~label:"search" (search_tests ())

(* ------------------------- model bench ----------------------------- *)

(* The interference-backend comparison behind BENCH_7: cold G-OPT
   solves per backend on shared deployments, at fixed sizes independent
   of --smoke/--quick (like the search bench) so the committed JSON is
   comparable across runs. The ns/run kernels price SINR's additive
   zone checks and multi-channel's first-fit grouping against the
   protocol model; the rounds/transmissions table records what the
   models *schedule* on the same deployment — channel separation
   shortens schedules, the physical model's cross-class interference
   lengthens them. *)
let model_specs =
  Interference.
    [ ("udg", Udg); ("sinr", Sinr default_sinr);
      ("mc2", Multichannel 2); ("mc3", Multichannel 3) ]

let model_instances () =
  List.map
    (fun n ->
      let inst = Experiment.make_instance Config.default ~n ~seed:1 in
      (n, inst.Experiment.net, inst.Experiment.source))
    [ 150; 300 ]

let model_tests insts =
  let open Bechamel in
  let run phy net source () =
    let m = Model.create ~phy net Model.Sync in
    ignore (Scheduler.run m Scheduler.gopt ~source ~start:1)
  in
  List.concat_map
    (fun (label, phy) ->
      List.map
        (fun (n, net, source) ->
          Test.make
            ~name:(Printf.sprintf "G-OPT cold %s (n=%d)" label n)
            (Staged.stage (run phy net source)))
        insts)
    model_specs

let model_latencies insts =
  List.concat_map
    (fun (n, net, source) ->
      List.map
        (fun (label, phy) ->
          let m = Model.create ~phy net Model.Sync in
          let s = Scheduler.run m Scheduler.gopt ~source ~start:1 in
          (label, n, Schedule.elapsed s, Schedule.n_transmissions s))
        model_specs)
    insts

let run_models () =
  section "Interference backends (cold G-OPT per model, shared deployments)";
  let insts = model_instances () in
  let lat = model_latencies insts in
  List.iter
    (fun (label, n, rounds, tx) ->
      Printf.printf "  %-6s n=%-4d latency=%-3d rounds  transmissions=%d\n" label n
        rounds tx)
    lat;
  let kernels = bechamel_session ~group:"models" ~label:"models" (model_tests insts) in
  (kernels, lat)

(* ------------------------ improve bench ---------------------------- *)

(* The quality-vs-budget sweep behind BENCH_8: GLS/VNS local search
   from cold G-OPT starts on fixed instances (independent of
   --quick/--smoke, like the search and model benches, so the
   committed JSON is comparable across runs). Each sweep point takes
   the best final latency over a small search-seed portfolio — the
   anytime engine is deterministic per seed, so the whole table is
   reproducible — and every improved schedule is re-validated by radio
   replay here, outside the engine's own acceptance check. The
   instance list deliberately includes points where G-OPT is already
   optimal-looking and the improver comes up dry. *)
let improve_budgets = [ 0; 250; 1000; 4000 ]
let improve_seed_portfolio = [ 42; 7 ]

let improve_instances =
  [ (60, 71); (100, 1); (100, 61); (150, 53); (160, 27); (180, 7); (200, 55); (230, 39) ]

(* One row: per-budget best latency, and whether every inspected
   schedule replayed clean. *)
type improve_row = {
  ir_n : int;
  ir_seed : int;
  ir_gopt : int;
  ir_rounds : int list;  (* one per improve_budgets entry *)
  ir_valid : bool;
}

let run_improve_sweep () =
  List.map
    (fun (n, seed) ->
      let inst = Experiment.make_instance Config.default ~n ~seed in
      let model = Model.create inst.Experiment.net Model.Sync in
      let source = inst.Experiment.source in
      let start = Scheduler.run model Scheduler.gopt ~source ~start:1 in
      let valid = ref true in
      let best_at budget =
        List.fold_left
          (fun best s ->
            let o = Improve.improve ~seed:s ~budget model start in
            if not (Validate.check model o.Improve.schedule).Validate.ok then
              valid := false;
            min best (Schedule.elapsed o.Improve.schedule))
          max_int improve_seed_portfolio
      in
      let rounds = List.map best_at improve_budgets in
      {
        ir_n = n;
        ir_seed = seed;
        ir_gopt = Schedule.elapsed start;
        ir_rounds = rounds;
        ir_valid = !valid;
      })
    improve_instances

(* The BENCH_8 gate kernels: one budget-bounded improvement pass over a
   G-OPT start and over a baseline start (the regime the daemon's
   background polishing runs in). *)
let improve_tests () =
  let open Bechamel in
  let inst = Experiment.make_instance Config.default ~n:150 ~seed:1 in
  let model = Model.create inst.Experiment.net Model.Sync in
  let source = inst.Experiment.source in
  let gopt = Scheduler.run model Scheduler.gopt ~source ~start:1 in
  let base = Scheduler.run model Scheduler.Baseline ~source ~start:1 in
  let run start () = ignore (Improve.improve ~seed:42 ~budget:1000 model start) in
  [
    Test.make ~name:"improve G-OPT b1000 (n=150)" (Staged.stage (run gopt));
    Test.make ~name:"improve baseline b1000 (n=150)" (Staged.stage (run base));
  ]

let run_improve () =
  section "Anytime improvement (GLS/VNS from G-OPT starts, fixed instances)";
  let rows = run_improve_sweep () in
  let header =
    String.concat "" (List.map (fun b -> Printf.sprintf " b%-5d" b) improve_budgets)
  in
  Printf.printf "  %-6s %-6s %-6s%s  replay
" "n" "seed" "gopt" header;
  List.iter
    (fun r ->
      Printf.printf "  %-6d %-6d %-6d%s  %s
" r.ir_n r.ir_seed r.ir_gopt
        (String.concat ""
           (List.map (fun x -> Printf.sprintf " %-6d" x) r.ir_rounds))
        (if r.ir_valid then "valid" else "INVALID"))
    rows;
  let final r = List.nth r.ir_rounds (List.length r.ir_rounds - 1) in
  let wins = List.length (List.filter (fun r -> final r < r.ir_gopt) rows) in
  let invalid = List.length (List.filter (fun r -> not r.ir_valid) rows) in
  Printf.printf "  strictly below G-OPT at budget %d: %d/%d points
%!"
    (List.fold_left max 0 improve_budgets)
    wins (List.length rows);
  let kernels = bechamel_session ~group:"improve" ~label:"improve" (improve_tests ()) in
  (rows, kernels, invalid)

(* ------------------------- metrics probe --------------------------- *)

let g_heap = Obs_metrics.gauge "gc/heap_words"
let g_majors = Obs_metrics.gauge "gc/major_collections"
let g_minors = Obs_metrics.gauge "gc/minor_collections"

(* The metrics section of the bench JSON. The timed sections run with
   the registry disabled (unless --metrics asked otherwise), so the
   counters come from an untimed replay of the smoke scenario — G-OPT
   plus the distributed protocol on the n=50 instance — whose totals
   (search work, protocol traffic) are deterministic and explain the
   timings next to them. With --metrics active the run's accumulated
   registry is snapshotted instead. Gc figures are end-of-run either
   way. *)
let metrics_snapshot ~user_metrics =
  if not user_metrics then begin
    Obs.enable ~metrics:true ~tracing:false ();
    Obs_metrics.reset ();
    let cfg = Config.smoke in
    let inst = Experiment.make_instance cfg ~n:50 ~seed:1 in
    let model = Model.create inst.Experiment.net Model.Sync in
    let source = inst.Experiment.source in
    ignore (Scheduler.run model (Scheduler.Gopt cfg.Config.budget) ~source ~start:1);
    ignore (Mlbs_proto.Broadcast_protocol.run model ~source ~start:1)
  end;
  let st = Gc.quick_stat () in
  Obs_metrics.set g_heap st.Gc.heap_words;
  Obs_metrics.set g_majors st.Gc.major_collections;
  Obs_metrics.set g_minors st.Gc.minor_collections;
  let snap = Obs_metrics.snapshot () in
  if not user_metrics then Obs.disable ();
  snap

(* --------------------------- JSON dump ----------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~quick ~jobs ~recommended_domains ~total ~metrics entries micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-2\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"recommended_domains\": %d,\n" recommended_domains;
  p "  \"total_seconds\": %.3f,\n" total;
  p "  \"sections\": [\n";
  List.iteri
    (fun i e ->
      p "    {\"name\": \"%s\", \"seconds\": %.3f, \"seconds_jobs1\": %.3f}%s\n"
        (json_escape e.name) e.seconds e.seconds_jobs1
        (if i = List.length entries - 1 then "" else ","))
    entries;
  p "  ],\n";
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, est) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) est
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ],\n";
  p "  \"metrics\": %s\n" (Obs_export.metrics_object ~indent:"  " metrics);
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_bench6 path ~jobs kernels =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-6\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"budget\": \"default (Strong, 200k states)\",\n";
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_bench7 path ~jobs kernels latencies =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-7\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"policy\": \"G-OPT (default budget), shared deployments, seed 1\",\n";
  p "  \"latency_rounds\": [\n";
  List.iteri
    (fun i (model, n, rounds, tx) ->
      p "    {\"model\": \"%s\", \"n\": %d, \"rounds\": %d, \"transmissions\": %d}%s\n"
        (json_escape model) n rounds tx
        (if i = List.length latencies - 1 then "" else ","))
    latencies;
  p "  ],\n";
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_bench8 path ~jobs rows kernels =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"mlbs-bench-8\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"host_cores\": %d,\n" (Pool.default_jobs ());
  p "  \"policy\": \"GLS/VNS from G-OPT (default budget) starts, best of search seeds [%s]\",\n"
    (String.concat "; " (List.map string_of_int improve_seed_portfolio));
  p "  \"budgets\": [%s],\n"
    (String.concat ", " (List.map string_of_int improve_budgets));
  p "  \"quality\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"n\": %d, \"seed\": %d, \"gopt_rounds\": %d, \"rounds_by_budget\": [%s], \"replay_valid\": %b}%s\n"
        r.ir_n r.ir_seed r.ir_gopt
        (String.concat ", " (List.map string_of_int r.ir_rounds))
        r.ir_valid
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"micro_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns\": %.1f}%s\n" (json_escape name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----------------------- regression compare ------------------------ *)

(* A minimal JSON reader, sufficient for the dumps this harness writes
   (the toolchain ships no JSON library and the bench must not grow a
   dependency for one file format it controls both ends of). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Malformed of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit w v =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ w)
    in
    let str () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
              incr pos;
              Buffer.contents buf
          | '\\' ->
              incr pos;
              if !pos >= n then fail "bad escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 >= n then fail "bad \\u escape";
                  (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                  | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
                  | None -> fail "bad \\u escape");
                  pos := !pos + 4
              | _ -> fail "bad escape");
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (str ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> number ()
      | None -> fail "unexpected end of input"
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec go acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              go (v :: acc)
          | Some ']' ->
              incr pos;
              Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        go []
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec go acc =
          skip_ws ();
          let k = str () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              go ((k, v) :: acc)
          | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        go []
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_list = function Arr l -> l | _ -> []
  let to_num = function Some (Num f) -> Some f | _ -> None
  let to_str = function Some (Str s) -> Some s | _ -> None
end

(* [compare_against path ~threshold entries micro] prints old/new/Δ per
   micro kernel and per section and returns [true] iff some kernel
   present in both runs regressed by more than [threshold] percent.
   Sections mix sweep sizes and machine load, so they inform only. *)
let compare_against path ~threshold entries micro =
  let ic = open_in_bin path in
  let old_json =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Json.parse (really_input_string ic (in_channel_length ic)))
  in
  let named_nums root field value_key =
    List.filter_map
      (fun item ->
        match (Json.to_str (Json.member "name" item), Json.to_num (Json.member value_key item)) with
        | Some name, Some v -> Some (name, v)
        | _ -> None)
      (Json.to_list (Option.value ~default:(Json.Arr []) (Json.member field root)))
  in
  let old_micro = named_nums old_json "micro_ns_per_run" "ns" in
  let old_sections = named_nums old_json "sections" "seconds" in
  section (Printf.sprintf "Regression check vs %s (threshold %d%%)" path threshold);
  (* A baseline recorded on a different core count is not comparable at
     gating fidelity (kernel ns/run shifts with the memory subsystem,
     sections with parallel speedup): warn and demote every row to
     informational rather than fail spuriously. Baselines predating the
     host_cores field gate as before. *)
  let cores_ok =
    match Json.to_num (Json.member "host_cores" old_json) with
    | Some c when int_of_float c <> Pool.default_jobs () ->
        Printf.printf
          "WARNING: baseline recorded on %d cores, this host has %d — \
           comparison is informational only, nothing gates\n"
          (int_of_float c) (Pool.default_jobs ());
        false
    | _ -> true
  in
  let failed = ref false in
  let row name old_v new_v gate unit =
    let delta = (new_v -. old_v) /. old_v *. 100. in
    let flag =
      if gate && new_v > old_v *. (1. +. (float_of_int threshold /. 100.)) then begin
        failed := true;
        "  REGRESSED"
      end
      else ""
    in
    Printf.printf "  %-44s %12.1f %12.1f %+8.1f%% %s%s\n" name old_v new_v delta unit flag
  in
  if micro <> [] then begin
    Printf.printf "  micro kernels (ns/run): %-20s %12s %12s %9s\n" "" "old" "new" "delta";
    List.iter
      (fun (name, new_v) ->
        match List.assoc_opt name old_micro with
        | Some old_v when old_v > 0. -> row name old_v new_v cores_ok ""
        | _ -> Printf.printf "  %-44s %12s %12.1f (new kernel)\n" name "-" new_v)
      micro
  end;
  if entries <> [] then begin
    Printf.printf "  sections (seconds, informational):\n";
    List.iter
      (fun e ->
        match List.assoc_opt e.name old_sections with
        | Some old_v when old_v > 0. -> row e.name old_v e.seconds false "s"
        | _ -> ())
      entries
  end;
  if !failed then
    Printf.printf "FAIL: at least one micro kernel regressed more than %d%%\n%!" threshold
  else Printf.printf "OK: no micro kernel regressed more than %d%%\n%!" threshold;
  !failed

(* ----------------------------- main -------------------------------- *)

let () =
  (* [json] is [None] until --json/--no-json appears, so --smoke can
     default to no file without overriding an explicit request. *)
  let rec parse targets jobs json cmp thr tr mt = function
    | [] -> (List.rev targets, jobs, json, cmp, thr, tr, mt)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> parse targets (Some j) json cmp thr tr mt rest
        | _ -> failwith (Printf.sprintf "bad --jobs value %S" v))
    | [ "--jobs" ] -> failwith "--jobs needs a value"
    | "--json" :: v :: rest -> parse targets jobs (Some (Some v)) cmp thr tr mt rest
    | [ "--json" ] -> failwith "--json needs a value"
    | "--no-json" :: rest -> parse targets jobs (Some None) cmp thr tr mt rest
    | "--compare" :: v :: rest -> parse targets jobs json (Some v) thr tr mt rest
    | [ "--compare" ] -> failwith "--compare needs a value"
    | "--compare-threshold" :: v :: rest -> (
        match int_of_string_opt v with
        | Some t when t >= 0 -> parse targets jobs json cmp (Some t) tr mt rest
        | _ -> failwith (Printf.sprintf "bad --compare-threshold value %S" v))
    | [ "--compare-threshold" ] -> failwith "--compare-threshold needs a value"
    | "--trace" :: v :: rest -> parse targets jobs json cmp thr (Some v) mt rest
    | [ "--trace" ] -> failwith "--trace needs a value"
    | "--metrics" :: v :: rest -> parse targets jobs json cmp thr tr (Some v) rest
    | [ "--metrics" ] -> failwith "--metrics needs a value"
    | a :: rest -> parse (a :: targets) jobs json cmp thr tr mt rest
  in
  let args, jobs, json_arg, cmp, thr, trace_file, metrics_file =
    parse [] None None None None None None (List.tl (Array.to_list Sys.argv))
  in
  let quick = List.mem "--quick" args in
  let smoke = List.mem "--smoke" args in
  let micro_quick = List.mem "--micro-quick" args in
  let targets =
    List.filter
      (fun a -> a <> "--quick" && a <> "--smoke" && a <> "--micro-quick")
      args
  in
  let json =
    match json_arg with
    | Some j -> j
    | None -> if smoke then None else Some "BENCH_2.json"
  in
  let threshold = Option.value thr ~default:25 in
  let targets = if targets = [] then [ "all" ] else targets in
  let known =
    [ "all"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
      "reliability"; "ablation"; "service"; "churn"; "fleet"; "micro"; "search";
      "models"; "improve" ]
  in
  (match List.filter (fun t -> not (List.mem t known)) targets with
  | [] -> ()
  | bad ->
      failwith
        (Printf.sprintf "unknown target(s): %s (expected: %s)" (String.concat ", " bad)
           (String.concat "|" known)));
  let want t = List.mem t targets || List.mem "all" targets in
  let cfg =
    if smoke then Config.smoke else if quick then Config.quick else Config.default
  in
  let cfg = match jobs with Some j -> { cfg with Config.jobs = j } | None -> cfg in
  let cfg = { cfg with Config.trace_file; metrics_file } in
  let compare_jobs1 = json <> None in
  (* The whole run executes under the telemetry wrapper (a no-op
     without --trace/--metrics); the regression exit happens outside
     it, after the artifacts are on disk. *)
  let failed =
    Telemetry.with_config cfg @@ fun () ->
    (* Bring the shared pool up and pre-size every domain's search
       scratch before anything is timed; the recommended-domain figure is
       sampled only once the pool is live, after any runtime topology
       detection the spawns trigger. *)
    let max_n = List.fold_left max 150 cfg.Config.node_counts in
    Pool.prewarm ~jobs:cfg.Config.jobs
      ~setup:(fun () -> Mlbs_core.Mcounter.prewarm ~n:max_n)
      ();
    let recommended_domains = Pool.default_jobs () in
    let total0 = now_s () in
    if want "table2" then run_table "II" "table2" Figures.table2;
    if want "table3" then run_table "III" "table3" Figures.table3;
    if want "table4" then run_table "IV" "table4" Figures.table4;
    if want "fig3" then run_figure cfg ~compare_jobs1 "fig3" Figures.fig3;
    if want "fig4" then run_figure cfg ~compare_jobs1 "fig4" Figures.fig4;
    if want "fig5" then run_figure cfg ~compare_jobs1 "fig5" Figures.fig5;
    if want "fig6" then run_figure cfg ~compare_jobs1 "fig6" Figures.fig6;
    if want "fig7" then run_figure cfg ~compare_jobs1 "fig7" Figures.fig7;
    if want "reliability" then
      run_figure_group cfg ~compare_jobs1 "reliability"
        (Printf.sprintf "Reliability (loss sweep: %d rates x %d seeds)"
           (List.length cfg.Config.loss_rates)
           (List.length cfg.Config.seeds))
        Figures.fig_reliability;
    if want "ablation" then run_ablation cfg;
    if want "service" then begin
      let svc = run_service cfg ~smoke in
      (* BENCH_3.json rides the same switch as BENCH_2: suppressed under
         --smoke (clean-worktree CI gate) unless --json asked for dumps
         explicitly. *)
      if json <> None then write_bench3 "BENCH_3.json" ~jobs:cfg.Config.jobs svc
    end;
    let churn_mismatches = ref 0 in
    let churn_kernels = ref [] in
    if want "churn" then begin
      let ((_, _, kernels, mismatches, _, _) as res) = run_churn cfg ~smoke in
      churn_mismatches := mismatches;
      churn_kernels := kernels;
      (* BENCH_4.json rides the same switch as BENCH_2/BENCH_3. *)
      if json <> None then write_bench4 "BENCH_4.json" ~jobs:cfg.Config.jobs res
    end;
    let fleet_kernels = ref [] in
    if want "fleet" then begin
      let ((_, _, kernels) as res) = run_fleet cfg ~smoke in
      fleet_kernels := kernels;
      (* BENCH_5.json rides the same switch as BENCH_2/3/4. *)
      if json <> None then write_bench5 "BENCH_5.json" ~jobs:cfg.Config.jobs res
    end;
    let search_kernels = ref [] in
    if want "search" then begin
      let kernels = run_search () in
      search_kernels := kernels;
      (* BENCH_6.json rides the same switch as the other dumps. *)
      if json <> None then write_bench6 "BENCH_6.json" ~jobs:cfg.Config.jobs kernels
    end;
    let model_kernels = ref [] in
    if want "models" then begin
      let kernels, lat = run_models () in
      model_kernels := kernels;
      (* BENCH_7.json rides the same switch as the other dumps. *)
      if json <> None then write_bench7 "BENCH_7.json" ~jobs:cfg.Config.jobs kernels lat
    end;
    let improve_kernels = ref [] in
    let improve_invalid = ref 0 in
    if want "improve" then begin
      let rows, kernels, invalid = run_improve () in
      improve_kernels := kernels;
      improve_invalid := invalid;
      (* BENCH_8.json rides the same switch as the other dumps. *)
      if json <> None then write_bench8 "BENCH_8.json" ~jobs:cfg.Config.jobs rows kernels
    end;
    let micro = if want "micro" then run_micro cfg ~micro_quick else [] in
    (* Churn, fleet, search and model gate kernels join the micro list
       for --compare, so a CI smoke run gates repair latency against the
       committed BENCH_4, fleet latency against BENCH_5, the Strong-mode
       cold-solve path against BENCH_6, and the interference backends
       against BENCH_7. *)
    let micro =
      micro @ !churn_kernels @ !fleet_kernels @ !search_kernels @ !model_kernels
      @ !improve_kernels
    in
    let total = now_s () -. total0 in
    Printf.printf "total: %.1fs (jobs=%d)\n" total cfg.Config.jobs;
    let entries = List.rev !log in
    (match json with
    | Some path ->
        let metrics = metrics_snapshot ~user_metrics:(metrics_file <> None) in
        write_json path ~quick ~jobs:cfg.Config.jobs ~recommended_domains ~total
          ~metrics entries micro
    | None -> ());
    let cmp_failed =
      match cmp with
      | Some path -> compare_against path ~threshold entries micro
      | None -> false
    in
    if !churn_mismatches > 0 then
      Printf.printf
        "FAIL: %d repaired schedules were not byte-identical to full re-solves\n%!"
        !churn_mismatches;
    if !improve_invalid > 0 then
      Printf.printf "FAIL: %d improved schedules failed the radio replay\n%!"
        !improve_invalid;
    cmp_failed || !churn_mismatches > 0 || !improve_invalid > 0
  in
  if failed then exit 1
