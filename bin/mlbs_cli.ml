(* mlbs — command-line driver for the minimum-latency broadcast library.

   Subcommands:
     generate    sample a deployment and print its topology statistics
     schedule    run one scheduling policy on a deployment and print the plan
     trace       print the paper's Table II/III/IV walkthroughs, or
                 ('trace run') execute an instrumented scenario and dump
                 Perfetto trace + metrics artifacts
     experiment  regenerate a figure of the paper's evaluation *)

open Cmdliner

module Rng = Mlbs_prng.Rng
module Network = Mlbs_wsn.Network
module Deployment = Mlbs_wsn.Deployment
module Churn = Mlbs_wsn.Churn
module Metrics = Mlbs_graph.Metrics
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Interference = Mlbs_phy.Interference
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Mcounter = Mlbs_core.Mcounter
module Bounds = Mlbs_core.Bounds
module Validate = Mlbs_sim.Validate
module Improve = Mlbs_search.Improve
module Config = Mlbs_workload.Config
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report
module Telemetry = Mlbs_workload.Telemetry
module Obs_metrics = Mlbs_obs.Metrics
module Sv_codec = Mlbs_server.Codec
module Sv_client = Mlbs_server.Client
module Sv_daemon = Mlbs_server.Daemon
module Sv_fleet = Mlbs_server.Fleet
module Sv_version = Mlbs_server.Version

(* ------------------------- common args ----------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let nodes_arg =
  Arg.(
    value & opt int 150
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes to deploy (paper: 50-300).")

let rate_arg =
  Arg.(
    value & opt (some int) None
    & info [ "r"; "rate" ] ~docv:"RATE"
        ~doc:"Duty-cycle rate in slots; omit for the synchronous system.")

let make_network ~n ~seed =
  Deployment.generate (Rng.create seed) (Deployment.paper_spec ~n_nodes:n)

let model_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Interference.parse s) in
  let print ppf m = Format.pp_print_string ppf (Interference.to_string m) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value & opt model_conv Interference.Udg
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Interference model: $(b,udg) (the paper's protocol model, default), \
           $(b,sinr)[:ALPHA,BETA,NOISE,POWER] (additive physical model), or \
           $(b,mc:K) (K-channel multi-channel scheduling).")

let trace_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record span tracing and write a Chrome-trace JSON (loadable at \
           ui.perfetto.dev) plus a .jsonl sibling to $(docv).")

let metrics_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Record the metrics registry and write its merged snapshot to $(docv).")

(* -------------------------- generate ------------------------------- *)

let generate n seed save =
  let net = make_network ~n ~seed in
  let g = Network.graph net in
  Printf.printf "deployment: n=%d seed=%d area=50x50ft radius=10ft\n" n seed;
  Printf.printf "  edges:          %d\n" (Mlbs_graph.Graph.n_edges g);
  Printf.printf "  average degree: %.2f\n" (Metrics.average_degree g);
  Printf.printf "  diameter:       %d\n" (Metrics.diameter g);
  Printf.printf "  density:        %.3f nodes/sqft\n" (Network.density net ~area:2500.);
  (match save with
  | Some path ->
      Mlbs_workload.Persist.save_network path net;
      Printf.printf "  saved to:       %s\n" path
  | None -> ());
  0

let generate_cmd =
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Also write the deployment to $(docv).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Sample a connected deployment and print statistics")
    Term.(const generate $ nodes_arg $ seed_arg $ save_arg)

(* -------------------------- schedule ------------------------------- *)

let policy_conv =
  let parse = function
    | "baseline" -> Ok Scheduler.Baseline
    | "opt" -> Ok Scheduler.opt
    | "gopt" -> Ok Scheduler.gopt
    | "emodel" -> Ok Scheduler.Emodel
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (baseline|opt|gopt|emodel)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Scheduler.Baseline -> "baseline"
      | Scheduler.Opt _ -> "opt"
      | Scheduler.Gopt _ -> "gopt"
      | Scheduler.Emodel -> "emodel")
  in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value & opt policy_conv Scheduler.Emodel
    & info [ "p"; "policy" ] ~docv:"POLICY" ~doc:"baseline | opt | gopt | emodel.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every advance of the schedule.")

let schedule n seed rate policy phy verbose load save =
  let net = match load with Some path -> Mlbs_workload.Persist.load_network path | None -> make_network ~n ~seed in
  let n = Network.n_nodes net in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed ())
  in
  let model = Model.create ~phy net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let plan = Scheduler.run model policy ~source ~start:1 in
  let d = Bounds.source_depth model ~source in
  let report = Validate.check model plan in
  Printf.printf "policy=%s source=%d d=%d\n" (Scheduler.name ~system policy) source d;
  (* Printed only off the default so UDG output stays byte-identical to
     what this command has always emitted. *)
  if phy <> Interference.Udg then
    Printf.printf "model:         %s\n" (Interference.to_string phy);
  Printf.printf "latency:       %d %s\n" (Schedule.elapsed plan)
    (match rate with None -> "rounds" | Some _ -> "slots");
  Printf.printf "transmissions: %d\n" (Schedule.n_transmissions plan);
  Printf.printf "radio replay:  %s\n" (if report.Validate.ok then "valid" else "INVALID");
  (match rate with
  | None -> Printf.printf "theorem 1:     < %d rounds\n" (Bounds.opt_sync ~d)
  | Some r -> Printf.printf "theorem 1:     < %d slots\n" (Bounds.opt_async ~d ~rate:r));
  if verbose then Format.printf "%a@." Schedule.pp plan;
  (match save with
  | Some path ->
      Mlbs_workload.Persist.save_schedule path plan;
      Printf.printf "schedule saved: %s\n" path
  | None -> ());
  if report.Validate.ok then 0 else 1

let schedule_cmd =
  let load_arg =
    Arg.(
      value & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Schedule over a deployment saved by 'generate --save' instead of sampling.")
  in
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-schedule" ] ~docv:"FILE" ~doc:"Write the computed schedule to $(docv).")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Run one scheduling policy on a deployment")
    Term.(
      const schedule $ nodes_arg $ seed_arg $ rate_arg $ policy_arg $ model_arg
      $ verbose_arg $ load_arg $ save_arg)

(* --------------------------- improve ------------------------------- *)

(* Anytime local-search polishing of one constructed schedule: run the
   policy, then spend an evaluation budget of GLS/VNS moves on the
   result and report the quality trajectory. The improved schedule is
   radio-replayed before printing, like everything else. *)
let improve_run n seed rate policy phy budget search_seed verbose save =
  let net = make_network ~n ~seed in
  let nn = Network.n_nodes net in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:nn ~seed ())
  in
  let model = Model.create ~phy net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let plan = Scheduler.run model policy ~source ~start:1 in
  let o = Improve.improve ~seed:search_seed ~budget model plan in
  let report = Validate.check model o.Improve.schedule in
  Printf.printf "policy=%s source=%d model=%s\n" (Scheduler.name ~system policy) source
    (Interference.to_string phy);
  Printf.printf "start latency:  %d %s\n" (Schedule.elapsed plan)
    (match rate with None -> "rounds" | Some _ -> "slots");
  Printf.printf "final latency:  %d (%s)\n"
    (Schedule.elapsed o.Improve.schedule)
    (if o.Improve.improved then
       Printf.sprintf "%d slots saved"
         (Schedule.elapsed plan - Schedule.elapsed o.Improve.schedule)
     else "no strictly better candidate");
  Printf.printf "search:         %d/%d evaluations, %d accepted\n" o.Improve.evals budget
    o.Improve.accepted;
  Printf.printf "gls/vns:        penalty-bumps=%d resets=%d escalations=%d\n"
    o.Improve.penalty_bumps o.Improve.penalty_resets o.Improve.escalations;
  Printf.printf "radio replay:   %s\n" (if report.Validate.ok then "valid" else "INVALID");
  if verbose then Format.printf "%a@." Schedule.pp o.Improve.schedule;
  (match save with
  | Some path ->
      Mlbs_workload.Persist.save_schedule path o.Improve.schedule;
      Printf.printf "schedule saved: %s\n" path
  | None -> ());
  if report.Validate.ok then 0 else 1

let improve_cmd =
  let budget_arg =
    Arg.(
      value & opt int 2000
      & info [ "budget" ] ~docv:"EVALS"
          ~doc:"Candidate-evaluation budget; 0 returns the constructed schedule as-is.")
  in
  let search_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "search-seed" ] ~docv:"SEED"
          ~doc:"RNG seed of the local search (the result is deterministic per seed).")
  in
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-schedule" ] ~docv:"FILE" ~doc:"Write the improved schedule to $(docv).")
  in
  Cmd.v
    (Cmd.info "improve"
       ~doc:"Polish a constructed schedule with GLS/VNS local search under a budget")
    Term.(
      const improve_run $ nodes_arg $ seed_arg $ rate_arg $ policy_arg $ model_arg
      $ budget_arg $ search_seed_arg $ verbose_arg $ save_arg)

(* ---------------------------- trace -------------------------------- *)

(* 'trace run': one instrumented scenario — G-OPT schedule plus the
   distributed protocol on the same instance — dumped as a
   Perfetto-loadable trace and a metrics snapshot. *)
let trace_run n seed rate phy trace_file metrics_file =
  let trace_file = Option.value trace_file ~default:"mlbs.trace.json" in
  let metrics_file = Option.value metrics_file ~default:"mlbs.metrics.json" in
  let cfg =
    { Config.default with Config.trace_file = Some trace_file;
      metrics_file = Some metrics_file; model = phy }
  in
  let net = make_network ~n ~seed in
  let nn = Network.n_nodes net in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:nn ~seed ())
  in
  let model = Model.create ~phy net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let plan, polished, report, stats =
    Telemetry.with_config cfg (fun () ->
        let plan = Scheduler.run model Scheduler.gopt ~source ~start:1 in
        let report = Validate.check model plan in
        let polished = Improve.improve ~seed ~budget:512 model plan in
        let stats = Mlbs_proto.Broadcast_protocol.run model ~source ~start:1 in
        (plan, polished, report, stats))
  in
  let c = Obs_metrics.counter_value in
  Printf.printf "telemetry run: n=%d seed=%d%s source=%d\n" n seed
    (match rate with None -> " sync" | Some r -> Printf.sprintf " r=%d" r)
    source;
  Printf.printf "G-OPT latency:    %d (radio replay: %s)\n" (Schedule.elapsed plan)
    (if report.Validate.ok then "valid" else "INVALID");
  Printf.printf "protocol latency: %d\n" stats.Mlbs_proto.Broadcast_protocol.latency;
  Printf.printf "search:   states=%d memo=%d/%d prunes=%d color-selections=%d\n"
    (c "search/states") (c "search/memo_hit") (c "search/memo_miss")
    (c "search/bnb_prunes") (c "search/color_selections");
  Printf.printf "bounds:   ecc-prunes=%d packing-prunes=%d dominance-prunes=%d\n"
    (c "search/bound_prune_ecc") (c "search/bound_prune_packing")
    (c "search/dominance_prunes");
  Printf.printf "ttable:   hit=%d miss=%d collisions=%d evictions=%d grows=%d\n"
    (c "search/tt_hit") (c "search/tt_miss") (c "search/tt_collision")
    (c "search/tt_evict") (c "search/tt_grow");
  Printf.printf "phy:      model=%s conflict-checks=%d power-evals=%d \
                 channel-assignments=%d\n"
    (Interference.to_string phy) (c "phy/conflict_checks") (c "phy/power_evals")
    (c "phy/channel_assignments");
  Printf.printf "improve:  latency %d -> %d, tried=%d accepted=%d slots-saved=%d\n"
    (Schedule.elapsed plan)
    (Schedule.elapsed polished.Improve.schedule)
    (c "search/improve/moves_tried") (c "search/improve/moves_accepted")
    (c "search/improve/slots_saved");
  Printf.printf "gls/vns:  penalty-bumps=%d penalty-resets=%d escalations=%d\n"
    (c "search/improve/penalty_bumps") (c "search/improve/penalty_resets")
    (c "search/improve/escalations");
  Printf.printf "protocol: slots=%d sends=%d collisions=%d retransmissions=%d\n"
    (c "proto/slots") (c "proto/sends") (c "proto/collisions")
    (c "proto/retransmissions");
  Printf.printf "waiting:  conflict=%d slots, cwt=%d slots\n"
    (c "proto/wait_conflict_slots") (c "proto/wait_cwt_slots");
  Printf.printf "trace:    %s (open at ui.perfetto.dev; events in %s)\n" trace_file
    (Mlbs_obs.Export.jsonl_path trace_file);
  Printf.printf "metrics:  %s\n" metrics_file;
  if report.Validate.ok then 0 else 1

let trace table n seed rate phy trace_file metrics_file =
  match table with
  | "2" ->
      print_string (Figures.table2 ());
      0
  | "3" ->
      print_string (Figures.table3 ());
      0
  | "4" ->
      print_string (Figures.table4 ());
      0
  | "all" ->
      print_string (Figures.table2 ());
      print_newline ();
      print_string (Figures.table3 ());
      print_newline ();
      print_string (Figures.table4 ());
      0
  | "run" -> trace_run n seed rate phy trace_file metrics_file
  | other ->
      Printf.eprintf "unknown table %S (2|3|4|all|run)\n" other;
      2

let trace_cmd =
  let table_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TABLE"
          ~doc:
            "2 | 3 | 4 | all — print the paper's schedule walkthroughs; or $(b,run) — \
             execute an instrumented scenario and dump trace + metrics artifacts.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Print the paper's Table II/III/IV walkthroughs, or run an instrumented \
          scenario ('trace run') producing Perfetto trace and metrics files")
    Term.(
      const trace $ table_arg $ nodes_arg $ seed_arg $ rate_arg $ model_arg
      $ trace_file_arg $ metrics_file_arg)

(* ----------------------- tree / energy ----------------------------- *)

let tree n seed rate policy =
  let net = make_network ~n ~seed in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed ())
  in
  let model = Model.create net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let plan = Scheduler.run model policy ~source ~start:1 in
  let tree = Mlbs_core.Broadcast_tree.of_schedule model plan in
  Printf.printf "policy=%s source=%d\n" (Scheduler.name ~system policy) source;
  Printf.printf "tree height:   %d\n" (Mlbs_core.Broadcast_tree.height tree);
  let relays = Mlbs_core.Broadcast_tree.relays tree in
  Printf.printf "relays:        %d of %d nodes\n" (List.length relays) n;
  let widths = List.map (fun u -> List.length (Mlbs_core.Broadcast_tree.children tree u)) relays in
  Printf.printf "max fan-out:   %d\n" (List.fold_left max 0 widths);
  Printf.printf "mean fan-out:  %.2f\n"
    (float_of_int (List.fold_left ( + ) 0 widths) /. float_of_int (List.length relays));
  0

let tree_cmd =
  Cmd.v
    (Cmd.info "tree" ~doc:"Show the broadcast tree a policy induces")
    Term.(const tree $ nodes_arg $ seed_arg $ rate_arg $ policy_arg)

let energy n seed rate policy =
  let net = make_network ~n ~seed in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed ())
  in
  let model = Model.create net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let plan = Scheduler.run model policy ~source ~start:1 in
  let r = Mlbs_sim.Energy.charge model plan in
  Printf.printf "policy=%s latency=%d\n" (Scheduler.name ~system policy)
    (Schedule.elapsed plan);
  Printf.printf "energy total:  %.1f\n" r.Mlbs_sim.Energy.total;
  Printf.printf "  transmit:    %.1f\n" r.Mlbs_sim.Energy.tx_energy;
  Printf.printf "  receive:     %.1f\n" r.Mlbs_sim.Energy.rx_energy;
  Printf.printf "  idle listen: %.1f\n" r.Mlbs_sim.Energy.idle_energy;
  let worst = Array.fold_left max 0. r.Mlbs_sim.Energy.per_node in
  Printf.printf "  hottest node: %.1f\n" worst;
  0

let energy_cmd =
  Cmd.v
    (Cmd.info "energy" ~doc:"Charge a policy's schedule under the radio energy model")
    Term.(const energy $ nodes_arg $ seed_arg $ rate_arg $ policy_arg)

let localized n seed rate =
  let net = make_network ~n ~seed in
  let system =
    match rate with
    | None -> Model.Sync
    | Some r -> Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed ())
  in
  let model = Model.create net system in
  let source = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
  let r = Mlbs_core.Localized.run model ~source ~start:1 in
  let check = Mlbs_sim.Validate.check_lossy model r.Mlbs_core.Localized.schedule in
  Printf.printf "localized protocol (2-hop views, E-based selection, exponential back-off)\n";
  Printf.printf "latency:         %d %s\n" r.Mlbs_core.Localized.latency
    (match rate with None -> "rounds" | Some _ -> "slots");
  Printf.printf "collisions:      %d\n" r.Mlbs_core.Localized.collisions;
  Printf.printf "retransmissions: %d\n" r.Mlbs_core.Localized.retransmissions;
  Printf.printf "coverage:        %s\n"
    (if check.Mlbs_sim.Validate.ok then "complete" else "INCOMPLETE");
  (* The fully distributed variant: beacons only, no oracle. *)
  let d = Mlbs_proto.Broadcast_protocol.run model ~source ~start:1 in
  Printf.printf "\nfully distributed (beacons only):\n";
  Printf.printf "latency:         %d\n" d.Mlbs_proto.Broadcast_protocol.latency;
  Printf.printf "collisions:      %d\n" d.Mlbs_proto.Broadcast_protocol.collisions;
  Printf.printf "retransmissions: %d\n" d.Mlbs_proto.Broadcast_protocol.retransmissions;
  Printf.printf "beacons sent:    %d\n" d.Mlbs_proto.Broadcast_protocol.beacon_messages;
  Printf.printf "E-build msgs:    %d (Theorem 3 bound: %d)\n"
    d.Mlbs_proto.Broadcast_protocol.e_messages (4 * n);
  (* Compare against the centralized E-model on the same instance. *)
  let plan = Scheduler.run model Scheduler.Emodel ~source ~start:1 in
  Printf.printf "\ncentralized E-model: %d\n" (Schedule.elapsed plan);
  if check.Mlbs_sim.Validate.ok then 0 else 1

let localized_cmd =
  Cmd.v
    (Cmd.info "localized"
       ~doc:"Simulate the localized (future-work) protocol and compare to centralized")
    Term.(const localized $ nodes_arg $ seed_arg $ rate_arg)

(* ---------------------------- faults ------------------------------- *)

let faults n seed rate loss crash fault_seed jitter sweep trace_file metrics_file =
  let cfg =
    {
      Config.default with
      Config.node_counts = [ n ];
      seeds = [ seed ];
      crash_fraction = crash;
      fault_seed;
      trace_file;
      metrics_file;
    }
  in
  Telemetry.with_config cfg @@ fun () ->
  if sweep then begin
    List.iter
      (fun f ->
        print_string (Report.render_figure f);
        print_newline ())
      (Figures.fig_reliability cfg);
    0
  end
  else begin
    let module Experiment = Mlbs_workload.Experiment in
    let module Tab = Mlbs_util.Tab in
    let inst = Experiment.make_instance cfg ~n ~seed in
    let ms = Experiment.run_faulty cfg ?rate ~inst_seed:seed ~jitter ~loss inst in
    Printf.printf "fault plan: loss=%.2f crash=%.2f jitter=%d fault-seed=0x%X (n=%d seed=%d%s)\n"
      loss crash jitter fault_seed n seed
      (match rate with None -> ", sync" | Some r -> Printf.sprintf ", r=%d" r);
    let tab =
      Tab.create ~title:"Graceful degradation under the fault plan"
        [ "policy"; "delivery"; "latency"; "stretch"; "retransmissions"; "energy" ]
    in
    List.iter
      (fun (m : Experiment.fault_measurement) ->
        Tab.add_float_row tab ~label:m.Experiment.policy
          [
            m.Experiment.delivery;
            m.Experiment.latency;
            m.Experiment.stretch;
            float_of_int m.Experiment.retransmissions;
            m.Experiment.energy_overhead;
          ])
      ms;
    Tab.print tab;
    (* Independent audit: replay the static schedules under the plan
       and confirm every delivered reception was conflict-free. *)
    let system =
      match rate with
      | None -> Model.Sync
      | Some r ->
          Model.Async (Wake_schedule.create ~rate:r ~n_nodes:n ~seed:(seed * 104729) ())
    in
    let model = Model.create inst.Experiment.net system in
    let plan_faults = Experiment.fault_plan cfg ~inst_seed:seed ~jitter ~loss inst in
    let ok =
      List.for_all
        (fun (label, policy) ->
          let schedule =
            Scheduler.run model policy ~source:inst.Experiment.source ~start:1
          in
          let fr = Validate.check_under_faults model ~faults:plan_faults schedule in
          Printf.printf "%s: conflict-free under faults: %s (%d/%d alive delivered, %d lost)\n"
            label
            (if fr.Validate.ok then "yes" else "NO")
            fr.Validate.delivered fr.Validate.alive fr.Validate.lost;
          List.iter (Printf.printf "  %s\n") fr.Validate.violations;
          fr.Validate.ok)
        [
          ("G-OPT", Scheduler.Gopt cfg.Config.budget);
          ("E-model", Scheduler.Emodel);
        ]
    in
    if ok then 0 else 1
  end

let faults_cmd =
  let loss_arg =
    Arg.(
      value & opt float 0.2
      & info [ "loss" ] ~docv:"P" ~doc:"Per-link Bernoulli packet-loss probability.")
  in
  let crash_arg =
    Arg.(
      value & opt float 0.
      & info [ "crash" ] ~docv:"F"
          ~doc:"Fraction of non-source nodes crashed during the broadcast (0 disables).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0xFA17
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Master seed of the fault plan.")
  in
  let jitter_arg =
    Arg.(
      value & opt int 0
      & info [ "jitter" ] ~docv:"J"
          ~doc:"Max wake-slot clock drift per node (duty cycle only).")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Print the full reliability sweep (delivery and stretch vs loss rate).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Inject packet loss, crashes and clock jitter and measure degradation")
    Term.(
      const faults $ nodes_arg $ seed_arg $ rate_arg $ loss_arg $ crash_arg
      $ fault_seed_arg $ jitter_arg $ sweep_arg $ trace_file_arg $ metrics_file_arg)

(* --------------------- scheduling service -------------------------- *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "mlbs.sock"

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the service.")

let tcp_arg =
  Arg.(
    value & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"TCP port of the service (on 127.0.0.1).")

let endpoint socket tcp =
  match tcp with
  | Some port -> Sv_client.Tcp { host = "127.0.0.1"; port }
  | None -> Sv_client.Unix_socket socket

let codec_policy = function
  | Scheduler.Baseline -> Sv_codec.Baseline
  | Scheduler.Emodel -> Sv_codec.Emodel
  | Scheduler.Gopt _ -> Sv_codec.Gopt
  | Scheduler.Opt _ -> Sv_codec.Opt

let serve socket tcp backend jobs queue cache cache_dir models improve_budget trace_file
    metrics_file =
  let base = { Config.default with Config.trace_file; metrics_file } in
  Telemetry.with_config base @@ fun () ->
  if backend && tcp = None then begin
    Printf.eprintf "serve --backend needs --tcp PORT (0 picks an ephemeral port)\n";
    2
  end
  else begin
    let jobs = Option.value jobs ~default:Config.default.Config.jobs in
    let dcfg =
      {
        (Sv_daemon.default_config ~socket_path:socket) with
        Sv_daemon.socket_path = (if backend then None else Some socket);
        tcp_port = tcp;
        jobs;
        queue_capacity = queue;
        cache_capacity = cache;
        cache_dir;
        allowed_models = (match models with [] -> None | l -> Some l);
        improve_budget;
      }
    in
    let t = Sv_daemon.start dcfg in
    Printf.printf "mlbs scheduling service %s (protocol v%d)\n" Sv_version.version
      Sv_codec.protocol_version;
    (* The "backend ready" line is parsed by fleet spawners (bench,
       scripts) to learn an ephemeral port — keep its shape stable. *)
    (match (backend, Sv_daemon.tcp_port t) with
    | true, Some p -> Printf.printf "backend ready on 127.0.0.1:%d\n" p
    | _ ->
        Printf.printf "listening on %s%s\n" socket
          (match Sv_daemon.tcp_port t with
          | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
          | None -> ""));
    Printf.printf "jobs=%d queue=%d cache=%d%s%s\n%!" jobs queue cache
      (match cache_dir with Some d -> " cache-dir=" ^ d | None -> "")
      (if improve_budget > 0 then Printf.sprintf " improve-budget=%d" improve_budget
       else "");
    let on_signal _ = Sv_daemon.stop t in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sv_daemon.wait t;
    Printf.printf "server stopped\n";
    0
  end

let serve_cmd =
  let queue_arg =
    Arg.(
      value
      & opt int Config.default.Config.queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission-queue bound; further solve requests are shed with a retry hint.")
  in
  let cache_arg =
    Arg.(
      value
      & opt int Config.default.Config.cache_capacity
      & info [ "cache" ] ~docv:"N" ~doc:"Schedule-cache capacity (LRU entries).")
  in
  let cache_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Warm the cache from $(docv) on start; persist hot entries on shutdown.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc:"Solver pool size (default: all cores).")
  in
  let backend_arg =
    Arg.(
      value & flag
      & info [ "backend" ]
          ~doc:
            "Run as a fleet shard: TCP only (requires $(b,--tcp); 0 picks an ephemeral \
             port), no Unix socket, and print 'backend ready on 127.0.0.1:PORT' once \
             accepting.")
  in
  let models_arg =
    Arg.(
      value
      & opt_all model_conv []
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Serve only this interference model (repeatable; default: all). Requests \
             for any other model are refused with an error reply.")
  in
  let improve_arg =
    Arg.(
      value & opt int 0
      & info [ "improve-budget" ] ~docv:"EVALS"
          ~doc:
            "Background polishing: in idle dispatcher cycles, spend $(docv) GLS/VNS \
             evaluations per pass improving hot cached schedules; strictly better \
             Validate-clean results are installed as monotone version upgrades. 0 \
             (default) disables polishing — every reply stays byte-identical to the \
             direct scheduler.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the scheduling service daemon")
    Term.(
      const serve $ socket_arg $ tcp_arg $ backend_arg $ jobs_arg $ queue_arg $ cache_arg
      $ cache_dir_arg $ models_arg $ improve_arg $ trace_file_arg $ metrics_file_arg)

(* fleet: the front tier — consistent-hash routing over backend shards
   started with [serve --backend] (or spawned in-process via --spawn). *)

let parse_backend s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Sv_client.Tcp { host; port = p }
      | _ -> failwith (s ^ ": expected HOST:PORT"))
  | _ -> failwith (s ^ ": expected HOST:PORT")

let fleet socket tcp backends spawn jobs replicas max_inflight no_fill health_period
    trace_file metrics_file =
  let base = { Config.default with Config.trace_file; metrics_file } in
  Telemetry.with_config base @@ fun () ->
  match List.map parse_backend backends with
  | exception Failure msg ->
      Printf.eprintf "fleet: %s\n" msg;
      2
  | named when named = [] && spawn <= 0 ->
      Printf.eprintf "fleet: need --backends HOST:PORT[,...] and/or --spawn K\n";
      2
  | named ->
      (* In-process shards share this process's cores: split the pool. *)
      let jobs =
        Option.value jobs
          ~default:(max 1 (Config.default.Config.jobs / max 1 spawn))
      in
      let spawned =
        List.init spawn (fun _ ->
            Sv_daemon.start
              {
                (Sv_daemon.default_config ~socket_path:"unused") with
                Sv_daemon.socket_path = None;
                tcp_port = Some 0;
                jobs;
              })
      in
      let spawned_eps =
        List.map
          (fun d ->
            match Sv_daemon.tcp_port d with
            | Some port -> Sv_client.Tcp { host = "127.0.0.1"; port }
            | None -> failwith "spawned backend has no TCP port")
          spawned
      in
      let fcfg =
        {
          (Sv_fleet.default_config ~backends:(named @ spawned_eps) ~socket_path:socket) with
          Sv_fleet.tcp_port = tcp;
          replicas;
          max_inflight;
          fill = not no_fill;
          health_period;
        }
      in
      let t = Sv_fleet.start fcfg in
      Printf.printf "mlbs fleet front %s (protocol v%d)\n" Sv_version.version
        Sv_codec.protocol_version;
      Printf.printf "listening on %s%s\n" socket
        (match Sv_fleet.tcp_port t with
        | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
        | None -> "");
      Printf.printf "shards: %s (%d spawned in-process)\n%!"
        (String.concat ", " (List.map Sv_fleet.endpoint_name fcfg.Sv_fleet.backends))
        spawn;
      let on_signal _ = Sv_fleet.stop t in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sv_fleet.wait t;
      List.iter
        (fun d ->
          Sv_daemon.stop d;
          Sv_daemon.wait d)
        spawned;
      Printf.printf "fleet stopped\n";
      0

let fleet_cmd =
  let backends_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "backends" ] ~docv:"HOST:PORT,..."
          ~doc:"Comma-separated backend shards (started with $(b,serve --backend)).")
  in
  let spawn_arg =
    Arg.(
      value & opt int 0
      & info [ "spawn" ] ~docv:"K"
          ~doc:"Additionally spawn $(docv) in-process backends on ephemeral ports.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:"Solver pool size per spawned backend (default: cores / K).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 64
      & info [ "replicas" ] ~docv:"N" ~doc:"Virtual points per shard on the hash ring.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 256
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Global in-flight cap; beyond it the front sheds with a retry hint.")
  in
  let no_fill_arg =
    Arg.(
      value & flag
      & info [ "no-fill" ]
          ~doc:"Disable peer cache-fill (peeking the ring successor on a miss).")
  in
  let health_period_arg =
    Arg.(
      value & opt float 1.0
      & info [ "health-period" ] ~docv:"SECONDS"
          ~doc:"Interval between backend health probes.")
  in
  Cmd.v
    (Cmd.info "fleet" ~doc:"Run the fleet front tier over backend shards")
    Term.(
      const fleet $ socket_arg $ tcp_arg $ backends_arg $ spawn_arg $ jobs_arg
      $ replicas_arg $ max_inflight_arg $ no_fill_arg $ health_period_arg
      $ trace_file_arg $ metrics_file_arg)

let build_request ?(model = Interference.Udg) ~policy ~rate ~seed ~n ~source ~start ~load
    () =
  let topology =
    match load with
    | Some path ->
        let g = Network.graph (Mlbs_workload.Persist.load_network path) in
        Sv_codec.Adj
          (Array.init (Mlbs_graph.Graph.n_nodes g) (fun u ->
               Array.to_list (Mlbs_graph.Graph.neighbors g u)))
    | None -> Sv_codec.Gen { n; radius = Config.default.Config.radius }
  in
  { Sv_codec.policy = codec_policy policy; rate; seed; topology; source; start; model }

(* Version 0 replies are the deterministic construction and must be
   byte-identical to a direct solve. A version-upgraded reply (the
   background improver installed a strictly better schedule) is not
   byte-comparable; it verifies by radio replay on the same model plus
   latency no worse than the construction's. *)
let verify_against_local req (ok : Sv_codec.ok_reply) =
  let _, local = Sv_daemon.solve req in
  if ok.Sv_codec.version = 0 then
    Sv_codec.schedule_bytes local = Sv_codec.schedule_bytes ok.Sv_codec.schedule
  else
    let report = Validate.check (Sv_daemon.model_of req) ok.Sv_codec.schedule in
    report.Validate.ok
    && Schedule.elapsed ok.Sv_codec.schedule <= Schedule.elapsed local

(* The client-side replica of the base topology a delta drifts: the
   same deployment recipe the daemon resolves for the request, so the
   generated rewires apply to the graph the daemon actually holds. *)
let base_network ~n ~seed ~load =
  match load with
  | Some path -> Mlbs_workload.Persist.load_network path
  | None ->
      Deployment.generate (Rng.create seed)
        {
          Deployment.n_nodes = n;
          width = Config.default.Config.width;
          height = Config.default.Config.height;
          radius = Config.default.Config.radius;
          shape = Deployment.Uniform;
        }

(* One churn event: drift [k] nodes of [net] by up to 20% of the radius
   and ship the resulting rewires as a wire delta. *)
let drift_delta rng net ~k =
  let d = Churn.drift rng net ~k ~jitter:(Config.default.Config.radius /. 5.) in
  (d.Churn.network, { Sv_codec.d_added = []; d_removed = []; d_rewired = d.Churn.rewired })

let request socket tcp n seed rate policy model source start load delta delta_seed verify
    verbose =
  let req = build_request ~model ~policy ~rate ~seed ~n ~source ~start ~load () in
  let c, `Version server_version, `Match version_match = endpoint socket tcp |> Sv_client.connect in
  Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
  let outcome, vreq =
    if delta = 0 then (Sv_client.request_retry c req, req)
    else begin
      let net = base_network ~n ~seed ~load in
      let _, d = drift_delta (Rng.create delta_seed) net ~k:delta in
      Printf.printf "delta:         %d nodes drifted, %d rewired\n" delta
        (List.length d.Sv_codec.d_rewired);
      (Sv_client.reschedule_retry c ~base:req ~delta:d, Sv_daemon.derived_request req d)
    end
  in
  match outcome with
  | Sv_client.Ok ok ->
      Printf.printf "server:        %s%s\n" server_version
        (if version_match then "" else Printf.sprintf " (client is %s)" Sv_version.version);
      Printf.printf "trace id:      %s (cache %s%s)\n" ok.Sv_codec.trace_id
        (if ok.Sv_codec.cache_hit then "hit" else "miss")
        (if ok.Sv_codec.version > 0 then
           Printf.sprintf ", improved v%d" ok.Sv_codec.version
         else "");
      Printf.printf "latency:       %d %s\n" ok.Sv_codec.stats.Sv_codec.elapsed
        (match rate with None -> "rounds" | Some _ -> "slots");
      Printf.printf "transmissions: %d\n" ok.Sv_codec.stats.Sv_codec.transmissions;
      Printf.printf "solve time:    %d us (%d search states)\n"
        ok.Sv_codec.stats.Sv_codec.solve_us ok.Sv_codec.stats.Sv_codec.search_states;
      if verbose then Format.printf "%a@." Schedule.pp ok.Sv_codec.schedule;
      if verify then begin
        let same = verify_against_local vreq ok in
        Printf.printf "verify:        %s\n"
          (if not same then "MISMATCH"
           else if ok.Sv_codec.version = 0 then "byte-identical to direct scheduler"
           else "upgraded schedule replays clean, latency <= direct scheduler");
        if same then 0 else 1
      end
      else 0
  | Sv_client.Rejected { retry_after_ms } ->
      Printf.eprintf "rejected: queue full, retry after %d ms\n" retry_after_ms;
      1
  | Sv_client.Error msg ->
      Printf.eprintf "server error: %s\n" msg;
      1

let request_cmd =
  let source_arg =
    Arg.(
      value & opt (some int) None
      & info [ "source" ] ~docv:"NODE"
          ~doc:"Broadcast source (default: the server's eccentricity-based pick).")
  in
  let start_arg =
    Arg.(value & opt int 1 & info [ "start" ] ~docv:"SLOT" ~doc:"Start slot t_s.")
  in
  let load_arg =
    Arg.(
      value & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:
            "Send the explicit adjacency of a deployment saved by 'generate --save' \
             instead of generator parameters.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Re-solve locally and check the reply is byte-identical.")
  in
  let delta_arg =
    Arg.(
      value & opt int 0
      & info [ "delta" ] ~docv:"K"
          ~doc:
            "Send a reschedule instead of a plain request: drift $(docv) nodes of the \
             base topology and ask the service to repair the cached schedule for the \
             edited graph.")
  in
  let delta_seed_arg =
    Arg.(
      value & opt int 0xD1F7
      & info [ "delta-seed" ] ~docv:"SEED" ~doc:"RNG seed of the drift (with --delta).")
  in
  Cmd.v
    (Cmd.info "request" ~doc:"Send one solve request to the scheduling service")
    Term.(
      const request $ socket_arg $ tcp_arg $ nodes_arg $ seed_arg $ rate_arg
      $ policy_arg $ model_arg $ source_arg $ start_arg $ load_arg $ delta_arg
      $ delta_seed_arg $ verify_arg $ verbose_arg)

(* Churn mode: one connection replaying a topology-churn stream per
   instance — a base solve, then [requests/seeds] drift events, each
   shipped as a [Reschedule] frame the daemon serves by warm-started
   repair of the cached base schedule. Repair latency is reported
   against the cold base solves; sampled events are byte-compared
   against a direct solve of the edited topology. *)
let churn_loadgen ep ~requests ~n ~seeds ~policy ~rate ~model ~churn ~verify_sample
    ~smoke =
  let events = max 1 (requests / max 1 seeds) in
  let c, _, _ = Sv_client.connect ep in
  Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
  let errors = ref 0 and hits = ref 0 and mismatches = ref 0 and verified = ref 0 in
  let cold = ref [] and repair = ref [] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e6)
  in
  for s = 1 to seeds do
    let base =
      build_request ~model ~policy ~rate ~seed:s ~n ~source:None ~start:1 ~load:None ()
    in
    let net = base_network ~n ~seed:s ~load:None in
    (match time (fun () -> Sv_client.request_retry ~attempts:8 c base) with
    | Sv_client.Ok _, us -> cold := us :: !cold
    | (Sv_client.Rejected _ | Sv_client.Error _), _ -> incr errors);
    let rng = Rng.create (0xC0FFEE + s) in
    for _ = 1 to events do
      let _, d = drift_delta rng net ~k:churn in
      (match time (fun () -> Sv_client.reschedule_retry ~attempts:8 c ~base ~delta:d) with
      | Sv_client.Ok ok, us ->
          repair := us :: !repair;
          if ok.Sv_codec.cache_hit then incr hits;
          if !verified < verify_sample then begin
            incr verified;
            if not (verify_against_local (Sv_daemon.derived_request base d) ok) then
              incr mismatches
          end
      | (Sv_client.Rejected _ | Sv_client.Error _), _ -> incr errors)
    done
  done;
  let summarize l =
    let a = Array.of_list l in
    Array.sort compare a;
    let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int (max 1 (Array.length a)) in
    let p50 = if Array.length a = 0 then 0.0 else a.(Array.length a / 2) in
    (mean, p50)
  in
  let cold_mean, cold_p50 = summarize !cold in
  let rep_mean, rep_p50 = summarize !repair in
  Printf.printf "churn: %d instances (n=%d), %d drift events each (k=%d, %s)\n" seeds n
    events churn
    (match rate with None -> "sync" | Some r -> Printf.sprintf "r=%d" r);
  Printf.printf "cold solve us: mean=%.0f p50=%.0f   repair us: mean=%.0f p50=%.0f \
                 (%.1fx)\n"
    cold_mean cold_p50 rep_mean rep_p50
    (if rep_mean > 0. then cold_mean /. rep_mean else 0.);
  Printf.printf "outcome: repairs=%d (cache hits=%d) errors=%d\n" (List.length !repair)
    !hits !errors;
  List.iter
    (fun k ->
      match List.assoc_opt k (Sv_client.stats c) with
      | Some v -> Printf.printf "%s: %d\n" k v
      | None -> ())
    [ "server/warmstart/hit"; "server/warmstart/miss"; "server/repair_ms" ];
  if !verified > 0 then
    Printf.printf "verify: %d/%d sampled repairs consistent with direct scheduler\n"
      (!verified - !mismatches) !verified;
  if !mismatches > 0 || (smoke && !errors > 0) then 1 else 0

(* loadgen: [concurrency] client threads, each with its own connection,
   striping [requests] requests over [seeds] distinct instances (the
   seed space sets the attainable hit ratio: after each instance's
   first solve, repeats are cache hits). *)
let loadgen_plain socket tcp requests concurrency n seeds policy rate model verify_sample
    smoke fleet =
  let ep = endpoint socket tcp in
  let lat_us = Array.make (max 1 requests) 0.0 in
  let results = Array.make (max 1 requests) `Err in
  let req_of i =
    build_request ~model ~policy ~rate ~seed:(1 + (i mod seeds)) ~n ~source:None ~start:1
      ~load:None ()
  in
  let worker w () =
    let c, _, _ = Sv_client.connect ep in
    Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
    let i = ref w in
    while !i < requests do
      let t0 = Unix.gettimeofday () in
      (results.(!i) <-
         (match Sv_client.request_retry ~attempts:8 c (req_of !i) with
         | Sv_client.Ok ok -> if ok.Sv_codec.cache_hit then `Hit else `Miss
         | Sv_client.Rejected _ -> `Rejected
         | Sv_client.Error _ -> `Err));
      lat_us.(!i) <- (Unix.gettimeofday () -. t0) *. 1e6;
      i := !i + concurrency
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init concurrency (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let count tag = Array.fold_left (fun a r -> if r = tag then a + 1 else a) 0 results in
  let hits = count `Hit and misses = count `Miss in
  let rejected = count `Rejected and errors = count `Err in
  let ok_lats =
    Array.of_list
      (List.filteri (fun i _ -> results.(i) = `Hit || results.(i) = `Miss)
         (Array.to_list lat_us))
  in
  Array.sort compare ok_lats;
  let pct q =
    if Array.length ok_lats = 0 then 0.0
    else
      ok_lats.(min (Array.length ok_lats - 1)
                 (int_of_float (ceil (q *. float_of_int (Array.length ok_lats))) - 1))
  in
  Printf.printf "loadgen: %d requests, %d clients, %d instances (n=%d, %s)\n" requests
    concurrency seeds n
    (match rate with None -> "sync" | Some r -> Printf.sprintf "r=%d" r);
  Printf.printf "outcome: ok=%d (hit=%d miss=%d) rejected=%d error=%d\n"
    (hits + misses) hits misses rejected errors;
  Printf.printf "throughput: %.0f req/s (%.2f s wall)\n"
    (float_of_int requests /. wall_s)
    wall_s;
  Printf.printf "latency us: p50=%.0f p95=%.0f p99=%.0f\n" (pct 0.50) (pct 0.95) (pct 0.99);
  (* Byte-compare a sample of served schedules against the direct
     scheduler — one per distinct instance sampled. *)
  let mismatches = ref 0 in
  let sample = min verify_sample seeds in
  if sample > 0 then begin
    let c, _, _ = Sv_client.connect ep in
    Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
    for s = 0 to sample - 1 do
      let req = req_of s in
      match Sv_client.request_retry ~attempts:8 c req with
      | Sv_client.Ok ok -> if not (verify_against_local req ok) then incr mismatches
      | Sv_client.Rejected _ | Sv_client.Error _ -> incr mismatches
    done;
    Printf.printf "verify: %d/%d sampled replies consistent with direct scheduler\n"
      (sample - !mismatches) sample
  end;
  if fleet then begin
    let c, _, _ = Sv_client.connect ep in
    Fun.protect ~finally:(fun () -> Sv_client.close c) @@ fun () ->
    let kvs = Sv_client.stats c in
    let get k = Option.value ~default:0 (List.assoc_opt k kvs) in
    Printf.printf
      "fleet: requests=%d ok=%d rejected=%d fill_hits=%d rebalances=%d deaths=%d \
       reroutes=%d\n"
      (get "server/fleet/requests")
      (get "server/fleet/replies_ok")
      (get "server/fleet/rejected")
      (get "server/fleet/fill_hits")
      (get "server/fleet/rebalances")
      (get "server/fleet/deaths")
      (get "server/fleet/reroutes");
    let rec shards i =
      match List.assoc_opt (Printf.sprintf "server/fleet/shard%d/requests" i) kvs with
      | None -> ()
      | Some r ->
          let h = get (Printf.sprintf "server/fleet/shard%d/hits" i) in
          Printf.printf "fleet shard%d: requests=%d hits=%d (%.0f%% hit rate)\n" i r h
            (if r > 0 then 100.0 *. float_of_int h /. float_of_int r else 0.0);
          shards (i + 1)
    in
    shards 0
  end;
  (* Against a fleet, a bounded reject rate is expected while the ring
     rebalances around a dead shard — errors and mismatches still fail. *)
  let reject_budget = if fleet then requests / 5 else 0 in
  let failed =
    errors + !mismatches + if smoke && rejected > reject_budget then rejected else 0
  in
  if smoke && failed > 0 then begin
    Printf.eprintf "smoke: %d failed requests\n" failed;
    1
  end
  else if !mismatches > 0 then 1
  else 0

let loadgen socket tcp requests concurrency n seeds policy rate model churn verify_sample
    smoke fleet =
  if churn > 0 then
    churn_loadgen (endpoint socket tcp) ~requests ~n ~seeds ~policy ~rate ~model ~churn
      ~verify_sample ~smoke
  else
    loadgen_plain socket tcp requests concurrency n seeds policy rate model verify_sample
      smoke fleet

let loadgen_cmd =
  let requests_arg =
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 8
      & info [ "concurrency" ] ~docv:"C" ~doc:"Concurrent client connections.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "instances" ] ~docv:"K"
          ~doc:
            "Distinct instance seeds striped over the requests — sets the attainable \
             cache-hit ratio.")
  in
  let verify_arg =
    Arg.(
      value & opt int 3
      & info [ "verify-sample" ] ~docv:"K"
          ~doc:"Byte-compare $(docv) served instances against the direct scheduler.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI mode: any error, mismatch or unserved rejection fails the run.")
  in
  let churn_arg =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"K"
          ~doc:
            "Churn-stream mode: per instance, solve once then send the remaining \
             budget as reschedule frames, each drifting $(docv) nodes of the topology.")
  in
  let fleet_arg =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Fleet mode: print server/fleet/* shard stats after the run, and in \
             $(b,--smoke) tolerate a bounded reject rate (20%) while the ring \
             rebalances — errors and mismatches still fail.")
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc:"Drive the scheduling service with concurrent clients")
    Term.(
      const loadgen $ socket_arg $ tcp_arg $ requests_arg $ concurrency_arg $ nodes_arg
      $ seeds_arg $ policy_arg $ rate_arg $ model_arg $ churn_arg $ verify_arg
      $ smoke_arg $ fleet_arg)

(* -------------------------- experiment ----------------------------- *)

let experiment figure quick smoke strong jobs model csv_dir trace_file metrics_file =
  let cfg = if smoke then Config.smoke else if quick then Config.quick else Config.default in
  let cfg = match jobs with Some j -> { cfg with Config.jobs = j } | None -> cfg in
  let cfg =
    if strong then
      { cfg with Config.budget = { cfg.Config.budget with Mcounter.mode = Mcounter.Strong } }
    else cfg
  in
  let cfg = { cfg with Config.trace_file; metrics_file; model } in
  Telemetry.with_config cfg @@ fun () ->
  let figures =
    match figure with
    | "fig3" -> [ Figures.fig3 cfg ]
    | "fig4" -> [ Figures.fig4 cfg ]
    | "fig5" -> [ Figures.fig5 cfg ]
    | "fig6" -> [ Figures.fig6 cfg ]
    | "fig7" -> [ Figures.fig7 cfg ]
    | "reliability" -> Figures.fig_reliability cfg
    | "all" ->
        [ Figures.fig3 cfg; Figures.fig4 cfg; Figures.fig5 cfg; Figures.fig6 cfg;
          Figures.fig7 cfg ]
        @ Figures.fig_reliability cfg
    | other ->
        Printf.eprintf "unknown figure %S (fig3..fig7|reliability|all)\n" other;
        exit 2
  in
  List.iter
    (fun f ->
      print_string (Report.render_figure f);
      print_newline ();
      match csv_dir with
      | Some dir -> Printf.printf "wrote %s\n" (Report.write_csv ~dir f)
      | None -> ())
    figures;
  0

let experiment_cmd =
  let figure_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc:"fig3..fig7 | all")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep (3 node counts, 2 seeds).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Minimal sweep (one node count, one seed) sized for CI; takes precedence \
             over $(b,--quick).")
  in
  let strong_arg =
    Arg.(
      value & flag
      & info [ "strong" ]
          ~doc:
            "Run the sweep's searches in Strong mode (admissible bound, dominance \
             and transposition-table pruning — the service cold-solve discipline) \
             instead of the Classic reference traversal. Schedules are identical in \
             exact mode; figures rendered from exhausted budgets may differ.")
  in
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | _ -> Error (`Msg (Printf.sprintf "expected an integer >= 1, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let jobs_arg =
    Arg.(
      value & opt (some jobs_conv) None
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:
            "Worker domains for the sweep (default: all cores). Output is \
             byte-identical at any setting.")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write one CSV per figure into $(docv).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a figure of the paper's evaluation")
    Term.(
      const experiment $ figure_arg $ quick_arg $ smoke_arg $ strong_arg $ jobs_arg
      $ model_arg $ csv_arg $ trace_file_arg $ metrics_file_arg)

let () =
  let info =
    Cmd.info "mlbs" ~version:Sv_version.version
      ~doc:
        "Minimum-latency broadcast scheduling with conflict awareness in WSNs \
         (Jiang et al., ICPP 2012)"
  in
  (* [~term_err:2]: malformed flags and unknown subcommands exit 2 (with
     usage on stderr), distinct from the domain failures that exit 1. *)
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group info
          [
            generate_cmd; schedule_cmd; improve_cmd; trace_cmd; experiment_cmd; tree_cmd;
            energy_cmd; localized_cmd; faults_cmd; serve_cmd; fleet_cmd; request_cmd;
            loadgen_cmd;
          ]))
