examples/duty_cycle_alert.mli:
