examples/density_sweep.ml: List Mlbs_util Mlbs_workload Printf
