examples/broadcast_storm.ml: Mlbs_core Mlbs_graph Mlbs_prng Mlbs_wsn Printf
