examples/quickstart.ml: List Mlbs_core Mlbs_graph Mlbs_prng Mlbs_sim Mlbs_wsn Printf
