examples/broadcast_storm.mli:
