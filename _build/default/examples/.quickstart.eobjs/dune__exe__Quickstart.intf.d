examples/quickstart.mli:
