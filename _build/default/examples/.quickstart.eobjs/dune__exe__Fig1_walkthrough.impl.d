examples/fig1_walkthrough.ml: List Mlbs_core Mlbs_geom Mlbs_util Mlbs_workload Printf
