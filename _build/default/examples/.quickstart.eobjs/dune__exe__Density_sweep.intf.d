examples/density_sweep.mli:
