examples/duty_cycle_alert.ml: Mlbs_core Mlbs_dutycycle Mlbs_prng Mlbs_sim Mlbs_wsn Printf
