(* A miniature of the paper's Figure 3 experiment: how broadcast latency
   responds to deployment density under each scheduling policy, plus the
   paper's observation that latency drops again once density passes
   ~0.1 nodes/sqft (denser relays inform more receivers per cast).

     dune exec examples/density_sweep.exe *)

module Config = Mlbs_workload.Config
module Experiment = Mlbs_workload.Experiment
module Tab = Mlbs_util.Tab

let () =
  let cfg =
    {
      Config.quick with
      Config.node_counts = [ 50; 100; 200; 300 ];
      seeds = [ 1; 2; 3 ];
    }
  in
  let tab =
    Tab.create ~title:"mean broadcast latency (rounds), synchronous system"
      [ "density"; "n"; "26-approx"; "OPT"; "G-OPT"; "E-model" ]
  in
  List.iter
    (fun n ->
      let runs =
        List.map
          (fun seed -> Experiment.run_sync cfg (Experiment.make_instance cfg ~n ~seed))
          cfg.Config.seeds
      in
      let means = Experiment.mean_by_policy runs in
      let v p = List.assoc p means in
      Tab.add_row tab
        [
          Printf.sprintf "%.2f" (float_of_int n /. 2500.);
          string_of_int n;
          Printf.sprintf "%.1f" (v "26-approx");
          Printf.sprintf "%.1f" (v "OPT");
          Printf.sprintf "%.1f" (v "G-OPT");
          Printf.sprintf "%.1f" (v "E-model");
        ])
    cfg.Config.node_counts;
  Tab.print tab;
  print_endline
    "note how the layered baseline degrades with density (larger color\n\
     cliques per BFS layer) while the pipelined policies stay near the\n\
     d+2 optimum and even improve at high density."
