(* Why conflict awareness matters: blind flooding — the naive broadcast
   every node relays once — loses nodes to collisions (the "broadcast
   storm" of Ni et al., reference [17] of the paper), and the repair
   (persistent retransmission) pays thousands of extra sends. The
   conflict-aware pipeline gets everyone the message faster than either,
   with one transmission per relay.

     dune exec examples/broadcast_storm.exe *)

module Rng = Mlbs_prng.Rng
module Deployment = Mlbs_wsn.Deployment
module Model = Mlbs_core.Model
module Flooding = Mlbs_core.Flooding
module Localized = Mlbs_core.Localized
module Scheduler = Mlbs_core.Scheduler
module Schedule = Mlbs_core.Schedule

let () =
  let n = 200 in
  let rng = Rng.create 42 in
  let net = Deployment.generate rng (Deployment.paper_spec ~n_nodes:n) in
  let source = Deployment.select_source rng net ~min_ecc:5 ~max_ecc:8 in
  let model = Model.create net Model.Sync in
  Printf.printf "dense deployment: %d nodes, %.1f mean degree, source %d\n\n" n
    (Mlbs_graph.Metrics.average_degree (Mlbs_wsn.Network.graph net))
    source;

  Printf.printf "%-28s %8s %10s %12s %9s\n" "protocol" "latency" "collisions" "total sends"
    "coverage";
  let line label latency collisions sends covered =
    Printf.printf "%-28s %8d %10d %12d %8.0f%%\n" label latency collisions sends
      (100. *. covered)
  in

  (* 1. Blind flooding: every informed node relays once, immediately. *)
  let f = Flooding.run model Flooding.Once ~source ~start:1 in
  line "blind flooding (once)" f.Flooding.latency f.Flooding.collisions
    (Schedule.n_transmissions f.Flooding.schedule)
    (float_of_int f.Flooding.informed /. float_of_int n);

  (* 2. Persistent flooding: retransmit until the neighbourhood has the
     message. Coverage recovers; the cost explodes. *)
  let p = Flooding.run model (Flooding.Persistent 0.3) ~source ~start:1 in
  line "persistent flooding (p=.3)" p.Flooding.latency p.Flooding.collisions
    (Schedule.n_transmissions p.Flooding.schedule)
    (float_of_int p.Flooding.informed /. float_of_int n);

  (* 3. The localized conflict-aware protocol: 2-hop coloring, E-based
     selection, back-off on the rare residual collision. *)
  let l = Localized.run model ~source ~start:1 in
  line "localized conflict-aware" l.Localized.latency l.Localized.collisions
    (Schedule.n_transmissions l.Localized.schedule)
    1.;

  (* 4. The centralized pipeline (G-OPT). *)
  let g = Scheduler.run model Scheduler.gopt ~source ~start:1 in
  line "centralized G-OPT" (Schedule.elapsed g) 0 (Schedule.n_transmissions g) 1.;

  print_newline ();
  print_endline
    "flooding either strands nodes behind collisions or floods the channel;\n\
     scheduling interference-free colors delivers everything in a fraction\n\
     of the time and the energy."
