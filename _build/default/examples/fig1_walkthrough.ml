(* The paper's Figure 1 example, end to end: why the "obvious" relay
   choice defers the broadcast, and how the time counter M and the
   E-model both find the pipelined optimum.

     dune exec examples/fig1_walkthrough.exe *)

module Fixtures = Mlbs_workload.Fixtures
module Model = Mlbs_core.Model
module Choices = Mlbs_core.Choices
module Trace = Mlbs_core.Trace
module Emodel = Mlbs_core.Emodel
module Schedule = Mlbs_core.Schedule
module Baseline26 = Mlbs_core.Baseline26
module Bitset = Mlbs_util.Bitset
module Q = Mlbs_geom.Quadrant

let () =
  let { Fixtures.net; source; start; name } = Fixtures.fig1 in
  let model = Model.create net Model.Sync in

  print_endline "== Figure 1: the source s reaches {0,1,2}; all three relays";
  print_endline "== conflict at node 3, so one color fires per round.";
  print_newline ();

  (* The G-OPT trace is the paper's Table III: each row shows the greedy
     color classes and the time counter M for each choice. *)
  print_endline "G-OPT schedule (Table III):";
  let trace = Trace.run model Choices.Greedy ~source ~start in
  print_string (Trace.render ~node_name:name trace);
  print_newline ();

  (* The wrong early choice (Figure 1(b)): firing node 0 first strands
     {4,8,9,10} behind an interference at node 4 and costs a round. *)
  let w1 = Model.apply model ~w:(Model.initial_w model ~source) ~senders:[ source ] in
  let after0 = Model.apply model ~w:w1 ~senders:[ 0 ] in
  let m =
    Mlbs_core.Mcounter.evaluate model Choices.Greedy
      ~budget:Mlbs_core.Mcounter.default_budget ~w:after0 ~slot:3
  in
  Printf.printf "Figure 1(b): firing node 0 first ends at round %d (one round late)\n\n"
    m.Mlbs_core.Mcounter.finish;

  (* The E-model reaches the same decision without any search: node 1
     carries the largest hop-distance-to-edge estimate E_2 = 2. *)
  let e = Emodel.compute model in
  print_endline "E-model 4-tuple (quadrant Q2, toward the far edge):";
  List.iter
    (fun u -> Printf.printf "  E_2(%s) = %d\n" (name u) (Emodel.value e ~node:u Q.Q2))
    [ 7; 8; 9; 0; 4; 5; 6; 10; 1 ];
  let plan = Emodel.plan ~tuples:e model ~source ~start in
  Printf.printf "E-model latency: %d rounds (the optimum)\n\n" (Schedule.elapsed plan);

  (* The prior layered scheme cannot pipeline across BFS layers. *)
  let b = Baseline26.plan model ~source ~start in
  Printf.printf "layered 26-approximation latency: %d rounds\n" (Schedule.elapsed b)
