(* Quickstart: deploy a sensor network, broadcast with the E-model, and
   check the schedule against the radio simulator.

     dune exec examples/quickstart.exe *)

module Rng = Mlbs_prng.Rng
module Deployment = Mlbs_wsn.Deployment
module Network = Mlbs_wsn.Network
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel
module Schedule = Mlbs_core.Schedule
module Validate = Mlbs_sim.Validate

let () =
  (* 1. Deploy 120 nodes uniformly in the paper's 50x50 ft area with a
     10 ft radio range; the generator retries until the unit-disk graph
     is connected. Everything is deterministic in the seed. *)
  let rng = Rng.create 2012 in
  let net = Deployment.generate rng (Deployment.paper_spec ~n_nodes:120) in
  Printf.printf "deployed %d nodes, %d links\n" (Network.n_nodes net)
    (Mlbs_graph.Graph.n_edges (Network.graph net));

  (* 2. Pick a source 5-8 hops from the farthest node, as in the paper's
     simulations. *)
  let source = Deployment.select_source rng net ~min_ecc:5 ~max_ecc:8 in
  Printf.printf "broadcasting from node %d\n" source;

  (* 3. Schedule the broadcast with the practical E-model policy: greedy
     conflict-aware coloring, colors picked by the proactive 4-tuple E
     (distance to the network edge per quadrant). *)
  let model = Model.create net Model.Sync in
  let plan = Emodel.plan model ~source ~start:1 in
  Printf.printf "latency: %d rounds, %d transmissions\n" (Schedule.elapsed plan)
    (Schedule.n_transmissions plan);

  (* 4. Never trust a scheduler: replay the plan on the slot-level radio
     simulator, which re-derives every reception and collision. *)
  let report = Validate.check model plan in
  Printf.printf "radio replay: %s\n"
    (if report.Validate.ok then "all nodes informed, zero collisions" else "INVALID");

  (* 5. Inspect the first advances. *)
  List.iteri
    (fun i step ->
      if i < 3 then
        Printf.printf "  round %d: %d relays inform %d nodes\n" step.Schedule.slot
          (List.length step.Schedule.senders)
          (List.length step.Schedule.informed))
    (Schedule.steps plan)
