(* A mission-critical alert in a 2% duty-cycle sensor field (the paper's
   "light" system, r = 50): most of the time every node's sender sleeps;
   the scheduler must thread the alert through pseudo-random wake-ups.

     dune exec examples/duty_cycle_alert.exe *)

module Rng = Mlbs_prng.Rng
module Deployment = Mlbs_wsn.Deployment
module Network = Mlbs_wsn.Network
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Cwt = Mlbs_dutycycle.Cwt
module Model = Mlbs_core.Model
module Scheduler = Mlbs_core.Scheduler
module Schedule = Mlbs_core.Schedule
module Bounds = Mlbs_core.Bounds
module Validate = Mlbs_sim.Validate

let () =
  let rate = 50 in
  let n = 150 in
  let rng = Rng.create 7 in
  let net = Deployment.generate rng (Deployment.paper_spec ~n_nodes:n) in
  let source = Deployment.select_source rng net ~min_ecc:5 ~max_ecc:8 in

  (* Every node wakes to send once per 50-slot frame, at a slot drawn
     from its own seeded pseudo-random sequence — neighbours can
     forecast it, which is what the schedulers exploit. *)
  let wake = Wake_schedule.create ~rate ~n_nodes:n ~seed:7 () in
  let model = Model.create net (Model.Async wake) in
  let d = Bounds.source_depth model ~source in
  Printf.printf "n=%d  r=%d (2%% duty cycle)  source=%d  d=%d hops\n" n rate source d;
  Printf.printf "expected per-hop cycle waiting time: %.1f slots\n\n"
    (Cwt.expected_wait ~rate);

  let run policy =
    let plan = Scheduler.run model policy ~source ~start:1 in
    let ok = (Validate.check model plan).Validate.ok in
    Printf.printf "  %-10s %5d slots  (%d transmissions)%s\n"
      (Scheduler.name ~system:(Model.system model) policy)
      (Schedule.elapsed plan)
      (Schedule.n_transmissions plan)
      (if ok then "" else "  INVALID");
    Schedule.elapsed plan
  in
  print_endline "alert delivery latency:";
  let baseline = run Scheduler.Baseline in
  let gopt = run Scheduler.gopt in
  let emodel = run Scheduler.Emodel in
  Printf.printf "\npipelining beats the layered scheme by %.0f%% (G-OPT) / %.0f%% (E-model)\n"
    (100. *. float_of_int (baseline - gopt) /. float_of_int baseline)
    (100. *. float_of_int (baseline - emodel) /. float_of_int baseline);
  Printf.printf "Theorem 1 bound: < %d slots\n" (Bounds.opt_async ~d ~rate)
