module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Gopt = Mlbs_core.Gopt
module Broadcast_tree = Mlbs_core.Broadcast_tree
module Energy = Mlbs_sim.Energy
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures

let feq = Alcotest.float 1e-9

(* ----------------------- broadcast tree ---------------------------- *)

let fig1_tree () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let model = Model.create net Model.Sync in
  let plan = Gopt.plan model ~source ~start in
  (model, plan, Broadcast_tree.of_schedule model plan)

let test_tree_fig1 () =
  let _, plan, tree = fig1_tree () in
  Alcotest.(check (option int)) "source has no parent" None (Broadcast_tree.parent tree 11);
  (* The optimal Figure 1(c) tree: s -> {0,1,2}; 1 -> {3,4,10};
     0 -> {5,6,7}; 4 -> {8,9}. *)
  Alcotest.(check (list int)) "s's children" [ 0; 1; 2 ] (Broadcast_tree.children tree 11);
  Alcotest.(check (list int)) "1's children" [ 3; 4; 10 ] (Broadcast_tree.children tree 1);
  Alcotest.(check (list int)) "0's children" [ 5; 6; 7 ] (Broadcast_tree.children tree 0);
  Alcotest.(check (list int)) "4's children" [ 8; 9 ] (Broadcast_tree.children tree 4);
  Alcotest.(check int) "height" 3 (Broadcast_tree.height tree);
  Alcotest.(check (list int)) "relays" [ 0; 1; 4; 11 ] (Broadcast_tree.relays tree);
  Alcotest.(check int) "node 8 informed at the finish slot"
    (Schedule.finish plan)
    (Broadcast_tree.informed_slot tree 8);
  Alcotest.(check int) "source slot" 1 (Broadcast_tree.informed_slot tree 11)

let test_tree_depth_consistent_with_slots () =
  let _, _, tree = fig1_tree () in
  (* Along any root path, reception slots strictly increase. *)
  for v = 0 to 10 do
    match Broadcast_tree.parent tree v with
    | None -> ()
    | Some p ->
        Alcotest.(check bool)
          (Printf.sprintf "slot(%d) > slot(parent %d)" v p)
          true
          (Broadcast_tree.informed_slot tree v > Broadcast_tree.informed_slot tree p
          || p = 11)
  done

let test_tree_edges_are_graph_edges () =
  let model, _, tree = fig1_tree () in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "tree edge in graph" true
        (Mlbs_graph.Graph.mem_edge (Model.graph model) u v))
    (Broadcast_tree.directed_edges tree);
  Alcotest.(check int) "n-1 edges" 11 (List.length (Broadcast_tree.directed_edges tree))

let test_tree_rejects_incomplete () =
  let model = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let partial =
    Schedule.make ~n_nodes:5 ~source:0 ~start:1
      [ { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] } ]
  in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Broadcast_tree.of_schedule: schedule does not inform every node")
    (fun () -> ignore (Broadcast_tree.of_schedule model partial))

let test_tree_rejects_collision () =
  let model = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let bad =
    Schedule.make ~n_nodes:5 ~source:0 ~start:1
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 1; 2 ]; informed = [ 3; 4 ] };
      ]
  in
  Alcotest.check_raises "collision"
    (Invalid_argument "Broadcast_tree.of_schedule: collision at node 3") (fun () ->
      ignore (Broadcast_tree.of_schedule model bad))

(* --------------------------- energy --------------------------------- *)

let test_energy_fig1 () =
  let model, plan, _ = fig1_tree () in
  let r = Energy.charge model plan in
  (* 5 transmissions (s; 1; 0,4 — wait: s,1,0,4 = 4 relays) and 11
     receptions over 3 slots for 12 nodes. *)
  Alcotest.check feq "tx = 4 relays x 20" 80. r.Energy.tx_energy;
  Alcotest.check feq "rx = 11 receptions x 5" 55. r.Energy.rx_energy;
  Alcotest.check feq "idle = 12 nodes x 3 slots x 0.1" 3.6 r.Energy.idle_energy;
  Alcotest.check feq "total" (80. +. 55. +. 3.6) r.Energy.total;
  (* The source pays one tx plus idle. *)
  Alcotest.check feq "source share" (20. +. 0.3) r.Energy.per_node.(11)

let test_energy_custom_prices () =
  let model, plan, _ = fig1_tree () in
  let prices = { Energy.tx = 1.; rx = 0.; idle_per_slot = 0. } in
  let r = Energy.charge ~prices model plan in
  Alcotest.check feq "counts transmissions" 4. r.Energy.total

let test_energy_collision_receivers_pay_nothing () =
  let model = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let bad =
    Schedule.make ~n_nodes:5 ~source:0 ~start:1
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 1; 2 ]; informed = [ 4 ] };
      ]
  in
  let prices = { Energy.tx = 0.; rx = 1.; idle_per_slot = 0. } in
  let r = Energy.charge ~prices model bad in
  (* Receptions: 1, 2 (slot 1) and 4 (slot 2); node 3 collided. *)
  Alcotest.check feq "3 receptions" 3. r.Energy.rx_energy;
  Alcotest.check feq "collided node pays nothing" 0. r.Energy.per_node.(3)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)

let props =
  [
    prop "tree spans exactly the network (sync G-OPT)" Test_support.gen_sync_model
      (fun (model, _) ->
        let plan = Gopt.plan model ~source:0 ~start:1 in
        let tree = Broadcast_tree.of_schedule model plan in
        List.length (Broadcast_tree.directed_edges tree) = Model.n_nodes model - 1);
    prop "tree height >= source eccentricity-0 lower bound is latency"
      Test_support.gen_sync_model (fun (model, _) ->
        let plan = Gopt.plan model ~source:0 ~start:1 in
        let tree = Broadcast_tree.of_schedule model plan in
        (* Each tree level costs at least one slot. *)
        Broadcast_tree.height tree <= Schedule.elapsed plan);
    prop "energy components sum to total" Test_support.gen_sync_model
      (fun (model, _) ->
        let plan = Gopt.plan model ~source:0 ~start:1 in
        let r = Energy.charge model plan in
        abs_float (r.Energy.total -. (r.Energy.tx_energy +. r.Energy.rx_energy +. r.Energy.idle_energy))
        < 1e-6
        && abs_float (Array.fold_left ( +. ) 0. r.Energy.per_node -. r.Energy.total) < 1e-6);
  ]

let () =
  Alcotest.run "tree_energy"
    [
      ( "broadcast tree",
        [
          Alcotest.test_case "fig1 structure" `Quick test_tree_fig1;
          Alcotest.test_case "slots increase along paths" `Quick
            test_tree_depth_consistent_with_slots;
          Alcotest.test_case "edges are graph edges" `Quick test_tree_edges_are_graph_edges;
          Alcotest.test_case "rejects incomplete" `Quick test_tree_rejects_incomplete;
          Alcotest.test_case "rejects collision" `Quick test_tree_rejects_collision;
        ] );
      ( "energy",
        [
          Alcotest.test_case "fig1 accounting" `Quick test_energy_fig1;
          Alcotest.test_case "custom prices" `Quick test_energy_custom_prices;
          Alcotest.test_case "collisions pay nothing" `Quick
            test_energy_collision_receivers_pay_nothing;
        ] );
      ("properties", props);
    ]
