module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Flooding = Mlbs_core.Flooding
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures

(* Figure 2's graph makes blind flooding fail deterministically: after
   the source informs nodes 2 and 3 (ids 1, 2), both relay in the same
   round and collide at node 4 (id 3), which is then stranded — its only
   neighbours have already spent their single transmission. The classic
   broadcast storm of [17]. *)
let test_once_storm_fig2 () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let r = Flooding.run m Flooding.Once ~source:0 ~start:1 in
  Alcotest.(check bool) "not covered" false r.Flooding.covered;
  Alcotest.(check int) "node 4 stranded" 4 r.Flooding.informed;
  Alcotest.(check int) "one collision" 1 r.Flooding.collisions;
  Alcotest.(check int) "no retransmissions in Once" 0 r.Flooding.retransmissions

let test_persistent_recovers_fig2 () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let r = Flooding.run m (Flooding.Persistent 0.5) ~source:0 ~start:1 in
  Alcotest.(check bool) "covered" true r.Flooding.covered;
  Alcotest.(check int) "all informed" 5 r.Flooding.informed;
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Flooding.schedule).Validate.ok

let test_once_line_graph_works () =
  (* On a path there are no common neighbours, so Once-flooding covers
     without a single collision. *)
  let points = Array.init 5 (fun i -> Mlbs_geom.Point.v (float_of_int i *. 8.) 0.) in
  let net = Mlbs_wsn.Network.create ~radius:10. points in
  let m = Model.create net Model.Sync in
  let r = Flooding.run m Flooding.Once ~source:0 ~start:1 in
  Alcotest.(check bool) "covered" true r.Flooding.covered;
  Alcotest.(check int) "collisions" 0 r.Flooding.collisions;
  Alcotest.(check int) "latency = diameter" 4 r.Flooding.latency

let test_persistence_validated () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  Alcotest.check_raises "p = 0" (Invalid_argument "Flooding.run: persistence outside (0, 1]")
    (fun () -> ignore (Flooding.run m (Flooding.Persistent 0.) ~source:0 ~start:1));
  Alcotest.check_raises "p > 1" (Invalid_argument "Flooding.run: persistence outside (0, 1]")
    (fun () -> ignore (Flooding.run m (Flooding.Persistent 1.5) ~source:0 ~start:1))

let test_max_slots_stops () =
  let { Fixtures.net; source; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let r = Flooding.run ~max_slots:1 m (Flooding.Persistent 0.9) ~source ~start:1 in
  Alcotest.(check bool) "gave up, no exception" true (not r.Flooding.covered)

let prop ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [
    prop "persistent flooding always covers (sync)" Test_support.gen_sync_model
      (fun (model, _) ->
        let r = Flooding.run model (Flooding.Persistent 0.4) ~source:0 ~start:1 in
        r.Flooding.covered
        && (Validate.check_lossy model r.Flooding.schedule).Validate.ok);
    prop "Once sends each node at most once" Test_support.gen_sync_model
      (fun (model, _) ->
        let r = Flooding.run model Flooding.Once ~source:0 ~start:1 in
        let sends = Hashtbl.create 16 in
        List.iter
          (fun s ->
            List.iter
              (fun u ->
                Hashtbl.replace sends u (1 + Option.value ~default:0 (Hashtbl.find_opt sends u)))
              s.Schedule.senders)
          (Schedule.steps r.Flooding.schedule);
        Hashtbl.fold (fun _ k acc -> acc && k = 1) sends true);
    prop "informed count is honest" Test_support.gen_sync_model (fun (model, _) ->
        let r = Flooding.run model Flooding.Once ~source:0 ~start:1 in
        let outcome = Mlbs_sim.Radio.replay ~allow_resend:true model r.Flooding.schedule in
        Bitset.cardinal outcome.Mlbs_sim.Radio.informed = r.Flooding.informed);
    prop ~count:25 "persistent flooding covers under duty cycling"
      Test_support.gen_async_model (fun (model, _) ->
        let r = Flooding.run model (Flooding.Persistent 0.5) ~source:0 ~start:1 in
        r.Flooding.covered);
  ]

let () =
  Alcotest.run "flooding"
    [
      ( "unit",
        [
          Alcotest.test_case "storm on fig2" `Quick test_once_storm_fig2;
          Alcotest.test_case "persistent recovers" `Quick test_persistent_recovers_fig2;
          Alcotest.test_case "line graph" `Quick test_once_line_graph_works;
          Alcotest.test_case "persistence bounds" `Quick test_persistence_validated;
          Alcotest.test_case "max slots" `Quick test_max_slots_stops;
        ] );
      ("properties", props);
    ]
