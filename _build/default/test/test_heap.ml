module Heap = Mlbs_util.Heap

let int_heap () = Heap.create ~cmp:compare

let test_push_pop () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 5 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_empty_pop () =
  let h = int_heap () in
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn empty" Not_found (fun () -> ignore (Heap.pop_exn h))

let test_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 2; 9; 4 ];
  Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h)

let test_to_sorted_list_preserves () =
  let h = Heap.of_list ~cmp:compare [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "sorted copy" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "heap untouched" 3 (Heap.length h);
  Alcotest.(check (list int)) "second call identical" [ 1; 2; 3 ] (Heap.to_sorted_list h)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [
    prop "drain is sorted input" QCheck2.Gen.(list int) (fun xs ->
        let h = Heap.of_list ~cmp:compare xs in
        let rec drain acc =
          match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [] = List.sort compare xs);
    prop "interleaved push/pop keeps min order"
      QCheck2.Gen.(list (pair bool small_int))
      (fun ops ->
        (* Replay ops against a sorted-list model. *)
        let h = int_heap () in
        let model = ref [] in
        List.for_all
          (fun (is_push, x) ->
            if is_push then begin
              Heap.push h x;
              model := List.sort compare (x :: !model);
              true
            end
            else
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some v, m :: rest ->
                  model := rest;
                  v = m
              | _ -> false)
          ops);
  ]

let () =
  Alcotest.run "heap"
    [
      ( "unit",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "empty pop" `Quick test_empty_pop;
          Alcotest.test_case "custom order" `Quick test_custom_order;
          Alcotest.test_case "to_sorted_list" `Quick test_to_sorted_list_preserves;
        ] );
      ("properties", props);
    ]
