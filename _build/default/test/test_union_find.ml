module Union_find = Mlbs_util.Union_find

let test_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial classes" 5 (Union_find.count uf);
  Alcotest.(check bool) "distinct" false (Union_find.same uf 0 1);
  Alcotest.(check bool) "merge" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "merged" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "re-merge is no-op" false (Union_find.union uf 1 0);
  Alcotest.(check int) "count after one merge" 4 (Union_find.count uf)

let test_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "3~4" true (Union_find.same uf 3 4);
  Alcotest.(check bool) "0!~3" false (Union_find.same uf 0 3);
  Alcotest.(check int) "classes" 3 (Union_find.count uf)

let test_class_sizes () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 0 2);
  let sizes = List.sort compare (List.map snd (Union_find.class_sizes uf)) in
  Alcotest.(check (list int)) "sizes" [ 1; 3 ] sizes

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let props =
  [
    prop "count = n - successful merges"
      QCheck2.Gen.(list (pair (int_bound 19) (int_bound 19)))
      (fun pairs ->
        let uf = Union_find.create 20 in
        let merges =
          List.fold_left
            (fun acc (i, j) -> if Union_find.union uf i j then acc + 1 else acc)
            0 pairs
        in
        Union_find.count uf = 20 - merges);
    prop "same iff equal find"
      QCheck2.Gen.(list (pair (int_bound 9) (int_bound 9)))
      (fun pairs ->
        let uf = Union_find.create 10 in
        List.iter (fun (i, j) -> ignore (Union_find.union uf i j)) pairs;
        List.for_all
          (fun i ->
            List.for_all
              (fun j ->
                Union_find.same uf i j = (Union_find.find uf i = Union_find.find uf j))
              (List.init 10 Fun.id))
          (List.init 10 Fun.id));
  ]

let () =
  Alcotest.run "union_find"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "transitivity" `Quick test_transitivity;
          Alcotest.test_case "class sizes" `Quick test_class_sizes;
        ] );
      ("properties", props);
    ]
