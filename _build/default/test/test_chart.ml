module Chart = Mlbs_util.Chart

let render series = Chart.render ~width:20 ~height:8 series

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_single_series () =
  let s = render [ { Chart.label = "up"; points = [ (0., 0.); (1., 10.) ] } ] in
  let ls = lines s in
  (* 8 plot rows + axis + x labels + 1 legend line. *)
  Alcotest.(check int) "line count" 11 (List.length ls);
  (* Max annotated on the top row, min on the bottom plot row. *)
  Alcotest.(check bool) "top label" true
    (String.length (List.hd ls) > 0 && String.trim (List.hd ls) <> "");
  Alcotest.(check bool) "has marker a" true (String.contains s 'a');
  Alcotest.(check bool) "legend" true
    (List.exists (fun l -> String.trim l = "a = up") ls)

let test_corners () =
  let s = render [ { Chart.label = "x"; points = [ (0., 0.); (1., 1.) ] } ] in
  let ls = lines s in
  let top = List.hd ls in
  let bottom_plot = List.nth ls 7 in
  (* (1,1) maps to the last column of the top row, (0,0) to the first
     column of the bottom row. *)
  Alcotest.(check char) "top right" 'a' top.[String.length top - 1];
  Alcotest.(check char) "bottom left" 'a' bottom_plot.[String.index bottom_plot '|' + 1]

let test_overlap_marker () =
  let s =
    render
      [
        { Chart.label = "one"; points = [ (0., 0.); (1., 1.) ] };
        { Chart.label = "two"; points = [ (0., 0.); (1., 0.) ] };
      ]
  in
  Alcotest.(check bool) "overlap shown as #" true (String.contains s '#');
  Alcotest.(check bool) "second marker b" true (String.contains s 'b')

let test_constant_series () =
  (* Degenerate ranges must not divide by zero. *)
  let s = render [ { Chart.label = "flat"; points = [ (2., 5.); (2., 5.) ] } ] in
  Alcotest.(check bool) "renders" true (String.contains s 'a')

let test_errors () =
  Alcotest.check_raises "no points" (Invalid_argument "Chart.render: no points")
    (fun () -> ignore (render [ { Chart.label = "e"; points = [] } ]));
  Alcotest.check_raises "tiny" (Invalid_argument "Chart.render: dimensions too small")
    (fun () ->
      ignore (Chart.render ~width:1 ~height:8 [ { Chart.label = "e"; points = [ (0., 0.) ] } ]))

let test_y_label () =
  let s =
    Chart.render ~width:20 ~height:8 ~y_label:"latency"
      [ { Chart.label = "x"; points = [ (0., 1.) ] } ]
  in
  Alcotest.(check string) "first line" "latency" (List.hd (lines s))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let gen_points =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))

let props =
  [
    prop "all markers stay inside the plot box" gen_points (fun pts ->
        let s = render [ { Chart.label = "p"; points = pts } ] in
        let ls = lines s in
        (* Marker 'a' never appears left of the axis bar. *)
        List.for_all
          (fun l ->
            match String.index_opt l 'a' with
            | None -> true
            | Some i -> (
                match String.index_opt l '|' with
                | Some bar -> i > bar || String.trim l = "a = p"
                | None -> String.trim l = "a = p"))
          ls);
    prop "every distinct point lands somewhere" gen_points (fun pts ->
        let s = render [ { Chart.label = "p"; points = pts } ] in
        String.contains s 'a' || String.contains s '#');
  ]

let () =
  Alcotest.run "chart"
    [
      ( "unit",
        [
          Alcotest.test_case "single series" `Quick test_single_series;
          Alcotest.test_case "corners" `Quick test_corners;
          Alcotest.test_case "overlap" `Quick test_overlap_marker;
          Alcotest.test_case "constant" `Quick test_constant_series;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "y label" `Quick test_y_label;
        ] );
      ("properties", props);
    ]
