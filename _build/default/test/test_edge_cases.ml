(* Cross-module edge cases: word boundaries, degenerate networks,
   single-node broadcasts, and consistency between the CWT helper and
   the wake-schedule forecasts. *)

module Bitset = Mlbs_util.Bitset
module Point = Mlbs_geom.Point
module Network = Mlbs_wsn.Network
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Cwt = Mlbs_dutycycle.Cwt
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Emodel = Mlbs_core.Emodel
module Validate = Mlbs_sim.Validate

(* ---------------------- bitset word seams --------------------------- *)

let test_bitset_word_boundaries () =
  (* 63 bits per word: exercise capacities and members at the seams. *)
  List.iter
    (fun cap ->
      let s = Bitset.full cap in
      Alcotest.(check int) (Printf.sprintf "full cardinal %d" cap) cap (Bitset.cardinal s);
      Alcotest.(check bool) "is_full" true (Bitset.is_full s);
      let c = Bitset.complement s in
      Alcotest.(check bool) "complement empty" true (Bitset.is_empty c);
      if cap > 0 then begin
        Bitset.remove s (cap - 1);
        Alcotest.(check bool) "not full after removing top bit" false (Bitset.is_full s)
      end)
    [ 1; 62; 63; 64; 125; 126; 127; 189 ]

let test_bitset_hash_distinguishes_capacity () =
  let a = Bitset.of_list 63 [ 5 ] and b = Bitset.of_list 64 [ 5 ] in
  Alcotest.(check bool) "different capacity not equal" false (Bitset.equal a b)

(* ---------------------- degenerate networks ------------------------- *)

let two_node_model () =
  let net = Network.create ~radius:10. [| Point.v 0. 0.; Point.v 5. 0. |] in
  Model.create net Model.Sync

let test_two_node_broadcast () =
  let m = two_node_model () in
  List.iter
    (fun policy ->
      let plan = Scheduler.run m policy ~source:0 ~start:1 in
      Alcotest.(check int)
        (Scheduler.name ~system:Model.Sync policy ^ " one round")
        1 (Schedule.elapsed plan);
      Validate.check_exn m plan)
    Scheduler.all_policies

let test_two_node_emodel_values () =
  (* Each node is on the hull with three empty quadrants; every E value
     is 0 or 1. *)
  let m = two_node_model () in
  let e = Emodel.compute m in
  List.iter
    (fun u ->
      List.iter
        (fun q ->
          let v = Emodel.value e ~node:u q in
          Alcotest.(check bool) "0 or 1" true (v = 0 || v = 1))
        Mlbs_geom.Quadrant.all)
    [ 0; 1 ]

let test_collinear_network_boundary () =
  (* A straight line: the hull is degenerate; the E-model must still
     terminate with finite values (phase B seeds the interior). *)
  let points = Array.init 7 (fun i -> Point.v (float_of_int i *. 7.) 0.) in
  let net = Network.create ~radius:10. points in
  let m = Model.create net Model.Sync in
  let e = Emodel.compute m in
  List.iter
    (fun u ->
      List.iter
        (fun q ->
          Alcotest.(check bool) "finite" true (Emodel.value e ~node:u q < max_int))
        Mlbs_geom.Quadrant.all)
    (List.init 7 Fun.id);
  let plan = Emodel.plan m ~source:3 ~start:1 in
  Validate.check_exn m plan;
  (* From the middle of a 7-node line the farthest node is 3 hops; pipelining
     both directions cannot beat max-distance. *)
  Alcotest.(check bool) "at least 3 rounds" true (Schedule.elapsed plan >= 3)

(* ----------------------- cwt consistency ---------------------------- *)

let test_cwt_matches_next_wake () =
  let sched = Wake_schedule.create ~rate:10 ~n_nodes:3 ~seed:77 () in
  for at = 0 to 50 do
    let wait = Cwt.wait sched ~from_:0 ~at 1 in
    Alcotest.(check int) "wait lands on a wake" (Wake_schedule.next_wake sched 1 ~after:at)
      (at + wait)
  done

let test_async_emodel_weight_at_least_hops () =
  (* A sanity fixture: explicit schedules with known waits. Nodes on a
     line; node 1 wakes every 10 at phase 5. The proactive weight for
     waiting on node 1 is >= 1 regardless of frames sampled. *)
  let points = Array.init 3 (fun i -> Point.v (float_of_int i *. 8.) 0.) in
  let net = Network.create ~radius:10. points in
  let sched = Wake_schedule.of_explicit ~rate:10 [| [ 1 ]; [ 5 ]; [ 9 ] |] in
  let m = Model.create net (Model.Async sched) in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "weight(%d,%d) >= 1" u v)
        true
        (Emodel.edge_weight m ~cwt_frames:4 u v >= 1))
    [ (0, 1); (1, 0); (1, 2); (2, 1) ]

(* ------------------- schedule corner semantics ---------------------- *)

let test_schedule_of_lone_source () =
  (* A connected pair where the source's single cast closes everything:
     informed_after before the step sees only the source. *)
  let s =
    Schedule.make ~n_nodes:2 ~source:1 ~start:5
      [ { Schedule.slot = 5; senders = [ 1 ]; informed = [ 0 ] } ]
  in
  Alcotest.(check (list int)) "before" [ 1 ] (Bitset.elements (Schedule.informed_after s ~slot:4));
  Alcotest.(check (list int)) "after" [ 0; 1 ] (Bitset.elements (Schedule.informed_after s ~slot:5));
  Alcotest.(check int) "elapsed" 1 (Schedule.elapsed s)

let test_model_single_node () =
  let net = Network.create ~radius:5. [| Point.v 1. 1. |] in
  let m = Model.create net Model.Sync in
  let w = Model.initial_w m ~source:0 in
  Alcotest.(check bool) "complete immediately" true (Model.complete m ~w);
  Alcotest.(check (list int)) "no candidates" [] (Model.candidates m ~w ~slot:1);
  Alcotest.(check (option int)) "no next slot" None (Model.next_active_slot m ~w ~after:0)

let () =
  Alcotest.run "edge_cases"
    [
      ( "bitset seams",
        [
          Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
          Alcotest.test_case "capacity in equality" `Quick test_bitset_hash_distinguishes_capacity;
        ] );
      ( "degenerate networks",
        [
          Alcotest.test_case "two nodes" `Quick test_two_node_broadcast;
          Alcotest.test_case "two-node E values" `Quick test_two_node_emodel_values;
          Alcotest.test_case "collinear line" `Quick test_collinear_network_boundary;
          Alcotest.test_case "single node model" `Quick test_model_single_node;
        ] );
      ( "duty cycle",
        [
          Alcotest.test_case "cwt = next_wake" `Quick test_cwt_matches_next_wake;
          Alcotest.test_case "async weights >= 1" `Quick test_async_emodel_weight_at_least_hops;
        ] );
      ( "schedule corners",
        [ Alcotest.test_case "lone source" `Quick test_schedule_of_lone_source ] );
    ]
