module Graph = Mlbs_graph.Graph
module Cds = Mlbs_graph.Cds
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Baseline_cds = Mlbs_core.Baseline_cds
module Baseline26 = Mlbs_core.Baseline26
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures

let test_star () =
  (* Star: centre 0 dominates everything; CDS = {0}. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.(check (list int)) "centre only" [ 0 ] (Cds.greedy g)

let test_path () =
  (* Path 0-1-2-3-4: internal nodes form the minimum CDS. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let cds = Cds.greedy g in
  Alcotest.(check bool) "is cds" true (Cds.is_cds g cds);
  Alcotest.(check bool) "no endpoints needed" true
    (not (List.mem 0 cds) && not (List.mem 4 cds))

let test_single_node () =
  let g = Graph.of_edges ~n:1 [] in
  Alcotest.(check (list int)) "singleton" [ 0 ] (Cds.greedy g)

let test_complete_graph () =
  let edges = List.concat_map (fun i -> List.init i (fun j -> (j, i))) [ 1; 2; 3 ] in
  let g = Graph.of_edges ~n:4 edges in
  let cds = Cds.greedy g in
  Alcotest.(check int) "one node suffices" 1 (List.length cds);
  Alcotest.(check bool) "valid" true (Cds.is_cds g cds)

let test_disconnected_rejected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected" (Invalid_argument "Cds.greedy: disconnected graph")
    (fun () -> ignore (Cds.greedy g))

let test_checkers () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "dominating" true (Cds.is_dominating g [ 1; 2 ]);
  Alcotest.(check bool) "not dominating" false (Cds.is_dominating g [ 0 ]);
  Alcotest.(check bool) "connected subset" true (Cds.is_connected_subset g [ 1; 2 ]);
  Alcotest.(check bool) "disconnected subset" false (Cds.is_connected_subset g [ 0; 3 ]);
  Alcotest.(check bool) "empty subset connected" true (Cds.is_connected_subset g [])

(* ---------------------- CDS baseline ------------------------------- *)

let test_baseline_cds_fig1 () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Baseline_cds.plan m ~source ~start in
  Validate.check_exn m plan;
  Alcotest.(check bool) "covers" true (Schedule.covers_all plan)

let test_baseline_cds_fewer_transmissions () =
  (* Restricting relays to the backbone must not use more transmissions
     than relaying from every frontier node of the plain layered
     scheme. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let cds_plan = Baseline_cds.plan m ~source ~start in
  let plain = Baseline26.plan m ~source ~start in
  Alcotest.(check bool) "tx(CDS) <= tx(plain)" true
    (Schedule.n_transmissions cds_plan <= Schedule.n_transmissions plain)

let test_baseline_cds_rejects_async () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  Alcotest.check_raises "async"
    (Invalid_argument "Baseline_cds.plan: synchronous model required") (fun () ->
      ignore (Baseline_cds.plan m ~source:0 ~start:1))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:80 ~name gen f)

let props =
  [
    prop "greedy CDS is always a valid CDS" Test_support.gen_sync_model
      (fun (model, _) ->
        let g = Model.graph model in
        Cds.is_cds g (Cds.greedy g));
    prop "CDS baseline schedules are valid and complete" Test_support.gen_sync_model
      (fun (model, _) ->
        let plan = Baseline_cds.plan model ~source:0 ~start:1 in
        Schedule.covers_all plan && (Validate.check model plan).Validate.ok);
    prop "only backbone (or source) nodes relay" Test_support.gen_sync_model
      (fun (model, _) ->
        let g = Model.graph model in
        let backbone = 0 :: Cds.greedy g in
        let plan = Baseline_cds.plan model ~source:0 ~start:1 in
        List.for_all
          (fun s -> List.for_all (fun u -> List.mem u backbone) s.Schedule.senders)
          (Schedule.steps plan));
  ]

let () =
  Alcotest.run "cds"
    [
      ( "construction",
        [
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "complete graph" `Quick test_complete_graph;
          Alcotest.test_case "disconnected" `Quick test_disconnected_rejected;
          Alcotest.test_case "checkers" `Quick test_checkers;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "fig1" `Quick test_baseline_cds_fig1;
          Alcotest.test_case "fewer transmissions" `Quick test_baseline_cds_fewer_transmissions;
          Alcotest.test_case "rejects async" `Quick test_baseline_cds_rejects_async;
        ] );
      ("properties", props);
    ]
