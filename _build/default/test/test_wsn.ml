module Point = Mlbs_geom.Point
module Quadrant = Mlbs_geom.Quadrant
module Grid = Mlbs_wsn.Grid
module Network = Mlbs_wsn.Network
module Deployment = Mlbs_wsn.Deployment
module Boundary = Mlbs_wsn.Boundary
module Rng = Mlbs_prng.Rng
module Graph = Mlbs_graph.Graph

let gen_points =
  QCheck2.Gen.(
    pair (int_range 2 60) (int_range 0 10000)
    |> map (fun (n, seed) ->
           let rng = Rng.create seed in
           Array.init n (fun _ -> Point.v (Rng.float rng 50.) (Rng.float rng 50.))))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:150 ~name gen f)

let brute_pairs points radius =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q -> if i < j && Point.dist p q <= radius then acc := (i, j) :: !acc)
        points)
    points;
  List.sort compare !acc

let test_grid_known () =
  let pts = [| Point.v 0. 0.; Point.v 5. 0.; Point.v 30. 0. |] in
  let grid = Grid.create ~cell:10. pts in
  Alcotest.(check (list int)) "close pair" [ 1 ]
    (List.sort compare (Grid.neighbors_within grid 0 ~radius:10.));
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 1) ]
    (Grid.pairs_within grid ~radius:10.)

let test_grid_radius_check () =
  let grid = Grid.create ~cell:5. [| Point.v 0. 0. |] in
  Alcotest.check_raises "radius too large"
    (Invalid_argument "Grid.neighbors_within: radius exceeds cell size") (fun () ->
      ignore (Grid.neighbors_within grid 0 ~radius:6.))

let test_network_udg () =
  (* The fig2 geometry: known adjacency under radius 10. *)
  let pts =
    [| Point.v 0. 0.; Point.v 8. 0.; Point.v 0. 8.; Point.v 8. 8.; Point.v 17. 0. |]
  in
  let net = Network.create ~radius:10. pts in
  let g = Network.graph net in
  Alcotest.(check int) "edges" 5 (Graph.n_edges g);
  Alcotest.(check bool) "1-2" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "1-4 out of range" false (Graph.mem_edge g 0 3);
  Alcotest.(check bool) "2-5" true (Graph.mem_edge g 1 4)

let test_network_rejects_duplicates () =
  Alcotest.check_raises "duplicate positions"
    (Invalid_argument "Network: nodes 0 and 1 share position") (fun () ->
      ignore (Network.create ~radius:1. [| Point.v 1. 1.; Point.v 1. 1. |]))

let test_quadrant_partition () =
  let pts =
    [| Point.v 5. 5.; Point.v 6. 6.; Point.v 4. 6.; Point.v 4. 4.; Point.v 6. 4. |]
  in
  let net = Network.create ~radius:10. pts in
  Alcotest.(check (list int)) "Q1" [ 1 ]
    (Array.to_list (Network.neighbors_in_quadrant net 0 Quadrant.Q1));
  Alcotest.(check (list int)) "Q2" [ 2 ]
    (Array.to_list (Network.neighbors_in_quadrant net 0 Quadrant.Q2));
  Alcotest.(check (list int)) "Q3" [ 3 ]
    (Array.to_list (Network.neighbors_in_quadrant net 0 Quadrant.Q3));
  Alcotest.(check (list int)) "Q4" [ 4 ]
    (Array.to_list (Network.neighbors_in_quadrant net 0 Quadrant.Q4))

let test_deployment_deterministic () =
  let spec = Deployment.paper_spec ~n_nodes:80 in
  let a = Deployment.generate (Rng.create 5) spec in
  let b = Deployment.generate (Rng.create 5) spec in
  Alcotest.(check bool) "same positions" true
    (Array.for_all2 Point.equal (Network.positions a) (Network.positions b));
  Alcotest.(check bool) "connected" true (Network.is_connected a)

let test_deployment_density () =
  let spec = Deployment.paper_spec ~n_nodes:300 in
  Alcotest.(check (float 1e-9)) "0.12" 0.12 (Deployment.density spec)

let test_source_selection () =
  let spec = Deployment.paper_spec ~n_nodes:120 in
  let net = Deployment.generate (Rng.create 11) spec in
  let source = Deployment.select_source (Rng.create 3) net ~min_ecc:5 ~max_ecc:8 in
  let ecc = Mlbs_graph.Bfs.eccentricity (Network.graph net) ~source in
  (* The window may be unsatisfiable on some deployments; the fallback
     picks the closest eccentricity, so only sanity-check the value. *)
  Alcotest.(check bool) "positive eccentricity" true (ecc > 0)

let test_source_selection_window () =
  (* A 9-node path: eccentricities 8,7,6,5,4,5,6,7,8. Only ids 0..3 and
     5..8 fall in [5,8]. *)
  let pts = Array.init 9 (fun i -> Point.v (float_of_int i *. 8.) 0.) in
  let net = Network.create ~radius:10. pts in
  for seed = 0 to 20 do
    let s = Deployment.select_source (Rng.create seed) net ~min_ecc:5 ~max_ecc:8 in
    Alcotest.(check bool) "in window" true (s <> 4)
  done

let shape_spec shape =
  { (Deployment.paper_spec ~n_nodes:120) with Deployment.shape }

let test_shapes_generate_connected () =
  List.iter
    (fun (name, shape) ->
      let net = Deployment.generate (Rng.create 3) (shape_spec shape) in
      Alcotest.(check int) (name ^ " size") 120 (Network.n_nodes net);
      Alcotest.(check bool) (name ^ " connected") true (Network.is_connected net))
    [
      ("uniform", Deployment.Uniform);
      ("clustered", Deployment.Clustered { clusters = 4; spread = 6. });
      ("corridor", Deployment.Corridor { breadth = 12. });
      ("grid", Deployment.Grid_jitter { jitter = 2. });
    ]

let test_shapes_stay_in_area () =
  List.iter
    (fun shape ->
      let net = Deployment.generate (Rng.create 9) (shape_spec shape) in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "in area" true
            (p.Point.x >= 0. && p.Point.x <= 50. && p.Point.y >= 0. && p.Point.y <= 50.))
        (Network.positions net))
    [
      Deployment.Clustered { clusters = 3; spread = 8. };
      Deployment.Corridor { breadth = 10. };
      Deployment.Grid_jitter { jitter = 3. };
    ]

let test_corridor_hugs_the_diagonal () =
  (* Every corridor node lies within breadth/2 of the main diagonal. *)
  let breadth = 8. in
  let net =
    Deployment.generate (Rng.create 5) (shape_spec (Deployment.Corridor { breadth }))
  in
  let dist_to_diagonal (p : Point.t) =
    (* Diagonal of a 50x50 area: the line y = x. *)
    abs_float (p.Point.y -. p.Point.x) /. sqrt 2.
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "within strip" true
        (dist_to_diagonal p <= (breadth /. 2.) +. 1e-9))
    (Network.positions net)

let test_shape_validation () =
  Alcotest.check_raises "clusters" (Invalid_argument "Deployment: clusters < 1") (fun () ->
      ignore
        (Deployment.generate (Rng.create 1)
           (shape_spec (Deployment.Clustered { clusters = 0; spread = 1. }))));
  Alcotest.check_raises "breadth" (Invalid_argument "Deployment: corridor breadth <= 0")
    (fun () ->
      ignore
        (Deployment.generate (Rng.create 1)
           (shape_spec (Deployment.Corridor { breadth = 0. }))))

let test_boundary_edge_nodes () =
  (* A 3x3 grid: the centre node has all four quadrants occupied; the
     corners have two empty quadrants. *)
  let pts =
    Array.init 9 (fun i -> Point.v (float_of_int (i mod 3) *. 5.) (float_of_int (i / 3) *. 5.))
  in
  let net = Network.create ~radius:8. pts in
  Alcotest.(check bool) "centre not edge" false (Boundary.is_edge_node net 4);
  Alcotest.(check bool) "corner is edge" true (Boundary.is_edge_node net 0);
  let marks = Boundary.edge_nodes net in
  (* Corner 0 = bottom-left: no neighbours down-left (Q3). *)
  Alcotest.(check bool) "corner empty Q3" true marks.(0).(Quadrant.to_index Quadrant.Q3)

let test_outer_boundary () =
  let pts =
    Array.init 9 (fun i -> Point.v (float_of_int (i mod 3) *. 5.) (float_of_int (i / 3) *. 5.))
  in
  let net = Network.create ~radius:8. pts in
  let boundary = Boundary.outer_boundary net in
  Alcotest.(check bool) "nonempty" true (boundary <> []);
  (* All four corners of the grid must appear on the outer boundary. *)
  List.iter
    (fun corner ->
      Alcotest.(check bool) (Printf.sprintf "corner %d" corner) true
        (List.mem corner boundary))
    [ 0; 2; 6; 8 ]

let props =
  [
    prop "grid pairs = brute force" gen_points (fun pts ->
        let grid = Grid.create ~cell:10. pts in
        List.sort compare (Grid.pairs_within grid ~radius:10.) = brute_pairs pts 10.);
    prop "UDG edges = brute force distances" gen_points (fun pts ->
        (* Skip the occasional duplicate-coordinate draw. *)
        let distinct =
          Array.length pts
          = List.length
              (List.sort_uniq compare
                 (Array.to_list (Array.map (fun p -> (p.Point.x, p.Point.y)) pts)))
        in
        QCheck2.assume distinct;
        let net = Network.create ~radius:10. pts in
        let g = Network.graph net in
        List.sort compare (Graph.edges g) = brute_pairs pts 10.);
    prop "quadrant partition covers all neighbours exactly once" gen_points (fun pts ->
        let distinct =
          Array.length pts
          = List.length
              (List.sort_uniq compare
                 (Array.to_list (Array.map (fun p -> (p.Point.x, p.Point.y)) pts)))
        in
        QCheck2.assume distinct;
        let net = Network.create ~radius:10. pts in
        let n = Network.n_nodes net in
        List.for_all
          (fun u ->
            let from_quadrants =
              List.concat_map
                (fun q -> Array.to_list (Network.neighbors_in_quadrant net u q))
                Quadrant.all
            in
            List.sort compare from_quadrants
            = Array.to_list (Network.neighbors net u))
          (List.init n Fun.id));
  ]

let () =
  Alcotest.run "wsn"
    [
      ( "grid",
        [
          Alcotest.test_case "known" `Quick test_grid_known;
          Alcotest.test_case "radius check" `Quick test_grid_radius_check;
        ] );
      ( "network",
        [
          Alcotest.test_case "udg" `Quick test_network_udg;
          Alcotest.test_case "duplicates" `Quick test_network_rejects_duplicates;
          Alcotest.test_case "quadrants" `Quick test_quadrant_partition;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "deterministic" `Quick test_deployment_deterministic;
          Alcotest.test_case "density" `Quick test_deployment_density;
          Alcotest.test_case "source" `Quick test_source_selection;
          Alcotest.test_case "source window" `Quick test_source_selection_window;
          Alcotest.test_case "shapes connected" `Quick test_shapes_generate_connected;
          Alcotest.test_case "shapes in area" `Quick test_shapes_stay_in_area;
          Alcotest.test_case "corridor strip" `Quick test_corridor_hugs_the_diagonal;
          Alcotest.test_case "shape validation" `Quick test_shape_validation;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "edge nodes" `Quick test_boundary_edge_nodes;
          Alcotest.test_case "outer boundary" `Quick test_outer_boundary;
        ] );
      ("properties", props);
    ]
