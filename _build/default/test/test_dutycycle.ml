module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Cwt = Mlbs_dutycycle.Cwt

let test_explicit_basics () =
  let s = Wake_schedule.of_explicit ~rate:10 [| [ 2 ]; [ 4; 13 ] |] in
  Alcotest.(check int) "rate" 10 (Wake_schedule.rate s);
  Alcotest.(check int) "n_nodes" 2 (Wake_schedule.n_nodes s);
  Alcotest.(check bool) "node 0 awake at 2" true (Wake_schedule.awake s 0 ~slot:2);
  Alcotest.(check bool) "node 0 asleep at 3" false (Wake_schedule.awake s 0 ~slot:3);
  Alcotest.(check bool) "node 1 awake at 4" true (Wake_schedule.awake s 1 ~slot:4);
  Alcotest.(check bool) "node 1 asleep at 12" false (Wake_schedule.awake s 1 ~slot:12);
  Alcotest.(check bool) "node 1 awake at 13" true (Wake_schedule.awake s 1 ~slot:13)

let test_explicit_tail_repeats () =
  let s = Wake_schedule.of_explicit ~rate:10 [| [ 2 ] |] in
  (* After the last listed slot, the schedule repeats every rate slots. *)
  Alcotest.(check bool) "awake at 12" true (Wake_schedule.awake s 0 ~slot:12);
  Alcotest.(check bool) "awake at 22" true (Wake_schedule.awake s 0 ~slot:22);
  Alcotest.(check bool) "asleep at 15" false (Wake_schedule.awake s 0 ~slot:15);
  Alcotest.(check int) "next after 2" 12 (Wake_schedule.next_wake s 0 ~after:2);
  Alcotest.(check int) "next after 21" 22 (Wake_schedule.next_wake s 0 ~after:21)

let test_explicit_validation () =
  Alcotest.check_raises "empty slots"
    (Invalid_argument "Wake_schedule.of_explicit: node 0 has no wake slots") (fun () ->
      ignore (Wake_schedule.of_explicit ~rate:5 [| [] |]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Wake_schedule.of_explicit: node 0 slots not increasing") (fun () ->
      ignore (Wake_schedule.of_explicit ~rate:5 [| [ 3; 3 ] |]))

let test_create_validation () =
  Alcotest.check_raises "rate" (Invalid_argument "Wake_schedule.create: rate < 1")
    (fun () -> ignore (Wake_schedule.create ~rate:0 ~n_nodes:1 ~seed:1 ()))

let test_uniform_one_per_frame () =
  let s = Wake_schedule.create ~rate:7 ~n_nodes:20 ~seed:42 () in
  for u = 0 to 19 do
    for frame = 0 to 9 do
      let lo = (frame * 7) + 1 and hi = (frame + 1) * 7 in
      let wakes = Wake_schedule.wakes_in s u ~from_:lo ~until:hi in
      Alcotest.(check int)
        (Printf.sprintf "node %d frame %d has one wake" u frame)
        1 (List.length wakes)
    done
  done

let test_determinism () =
  let a = Wake_schedule.create ~rate:10 ~n_nodes:5 ~seed:9 () in
  let b = Wake_schedule.create ~rate:10 ~n_nodes:5 ~seed:9 () in
  for u = 0 to 4 do
    Alcotest.(check (list int)) "same wakes"
      (Wake_schedule.wakes_in a u ~from_:1 ~until:100)
      (Wake_schedule.wakes_in b u ~from_:1 ~until:100)
  done

let test_seeds_differ () =
  let a = Wake_schedule.create ~rate:10 ~n_nodes:8 ~seed:1 () in
  let b = Wake_schedule.create ~rate:10 ~n_nodes:8 ~seed:2 () in
  let wakes s = List.init 8 (fun u -> Wake_schedule.wakes_in s u ~from_:1 ~until:200) in
  Alcotest.(check bool) "different schedules" true (wakes a <> wakes b)

let test_fixed_phase_period () =
  let s =
    Wake_schedule.create ~family:Wake_schedule.Fixed_phase ~rate:6 ~n_nodes:4 ~seed:3 ()
  in
  for u = 0 to 3 do
    let w1 = Wake_schedule.next_wake s u ~after:0 in
    let w2 = Wake_schedule.next_wake s u ~after:w1 in
    Alcotest.(check int) "fixed interval" 6 (w2 - w1)
  done

let test_bernoulli_rate () =
  let rate = 10 in
  let s =
    Wake_schedule.create ~family:Wake_schedule.Bernoulli ~rate ~n_nodes:1 ~seed:5 ()
  in
  let horizon = 20000 in
  let wakes = List.length (Wake_schedule.wakes_in s 0 ~from_:1 ~until:horizon) in
  let expected = horizon / rate in
  Alcotest.(check bool)
    (Printf.sprintf "%d wakes near %d" wakes expected)
    true
    (wakes > expected * 8 / 10 && wakes < expected * 12 / 10)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let gen_sched =
  QCheck2.Gen.(
    let* family =
      oneofl
        [ Wake_schedule.Uniform_per_frame; Wake_schedule.Bernoulli; Wake_schedule.Fixed_phase ]
    in
    let* rate = int_range 1 20 in
    let* seed = int_bound 10000 in
    return (Wake_schedule.create ~family ~rate ~n_nodes:4 ~seed ()))

let props =
  [
    prop "next_wake is awake and future" QCheck2.Gen.(pair gen_sched (int_bound 200))
      (fun (s, after) ->
        let w = Wake_schedule.next_wake s 0 ~after in
        w > after && Wake_schedule.awake s 0 ~slot:w);
    prop "no wake strictly between after and next_wake"
      QCheck2.Gen.(pair gen_sched (int_bound 100))
      (fun (s, after) ->
        let w = Wake_schedule.next_wake s 0 ~after in
        Wake_schedule.wakes_in s 0 ~from_:(after + 1) ~until:(w - 1) = []);
    prop "wakes_in agrees with awake" QCheck2.Gen.(pair gen_sched (int_bound 60))
      (fun (s, until) ->
        let until = until + 1 in
        let listed = Wake_schedule.wakes_in s 0 ~from_:1 ~until in
        let scanned =
          List.filter
            (fun t -> Wake_schedule.awake s 0 ~slot:t)
            (List.init until (fun i -> i + 1))
        in
        listed = scanned);
    prop "cwt positive" QCheck2.Gen.(pair gen_sched (int_bound 100))
      (fun (s, at) -> Cwt.wait s ~from_:0 ~at 1 >= 1);
  ]

let test_cwt_helpers () =
  Alcotest.(check (float 1e-9)) "expected" 5.5 (Cwt.expected_wait ~rate:10);
  Alcotest.(check int) "max" 20 (Cwt.max_wait ~rate:10)

let () =
  Alcotest.run "dutycycle"
    [
      ( "explicit",
        [
          Alcotest.test_case "basics" `Quick test_explicit_basics;
          Alcotest.test_case "tail" `Quick test_explicit_tail_repeats;
          Alcotest.test_case "validation" `Quick test_explicit_validation;
        ] );
      ( "generated",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "uniform one per frame" `Quick test_uniform_one_per_frame;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "fixed phase" `Quick test_fixed_phase_period;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
      ("cwt", [ Alcotest.test_case "helpers" `Quick test_cwt_helpers ]);
      ("properties", props);
    ]
