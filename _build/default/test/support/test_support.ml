(* Shared generators and helpers for the scheduler test suites. *)

module Point = Mlbs_geom.Point
module Rng = Mlbs_prng.Rng
module Network = Mlbs_wsn.Network
module Deployment = Mlbs_wsn.Deployment
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model

(* A small connected random deployment: n nodes in a (scaled) area dense
   enough to connect quickly, radius 10. Deterministic in the seed. *)
let small_network ~n ~seed =
  let rng = Rng.create seed in
  (* Scale the area with n so density stays moderate. *)
  let side = max 12. (sqrt (float_of_int n) *. 7.) in
  let spec =
    { Deployment.n_nodes = n; width = side; height = side; radius = 10.;
      shape = Deployment.Uniform }
  in
  Deployment.generate rng spec

let gen_sync_model =
  QCheck2.Gen.(
    let* n = int_range 4 14 in
    let* seed = int_bound 100000 in
    let net = small_network ~n ~seed in
    return (Model.create net Model.Sync, seed))

let gen_async_model =
  QCheck2.Gen.(
    let* n = int_range 4 12 in
    let* seed = int_bound 100000 in
    let* rate = int_range 2 8 in
    let net = small_network ~n ~seed in
    let sched = Wake_schedule.create ~rate ~n_nodes:n ~seed () in
    return (Model.create net (Model.Async sched), seed))

(* A deterministic source: node 0 is always present. *)
let source _model = 0
