module Stats = Mlbs_util.Stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.check feq "singleton" 7. (Stats.mean [ 7. ])

let test_stddev () =
  Alcotest.check feq "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  (* Population stddev of {2,4,4,4,5,5,7,9} is exactly 2. *)
  Alcotest.check feq "known" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_median () =
  Alcotest.check feq "odd" 3. (Stats.median [ 5.; 3.; 1. ]);
  Alcotest.check feq "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ])

let test_summarize () =
  let s = Stats.summarize [ 3.; 1.; 2. ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.check feq "mean" 2. s.Stats.mean;
  Alcotest.check feq "min" 1. s.Stats.min;
  Alcotest.check feq "max" 3. s.Stats.max;
  Alcotest.check feq "median" 2. s.Stats.median

let test_empty () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean []))

let test_improvement () =
  Alcotest.check feq "half" 0.5 (Stats.improvement ~baseline:10. ~ours:5.);
  Alcotest.check feq "none" 0. (Stats.improvement ~baseline:4. ~ours:4.);
  Alcotest.check feq "regression negative" (-1.) (Stats.improvement ~baseline:2. ~ours:4.);
  Alcotest.check_raises "bad baseline"
    (Invalid_argument "Stats.improvement: non-positive baseline") (fun () ->
      ignore (Stats.improvement ~baseline:0. ~ours:1.))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let gen_sample =
  QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 1000.))

let props =
  [
    prop "mean within [min,max]" gen_sample (fun xs ->
        let s = Stats.summarize xs in
        s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9);
    prop "median within [min,max]" gen_sample (fun xs ->
        let s = Stats.summarize xs in
        s.Stats.min <= s.Stats.median && s.Stats.median <= s.Stats.max);
    prop "stddev nonnegative" gen_sample (fun xs -> Stats.stddev xs >= 0.);
    prop "mean shift-equivariant" gen_sample (fun xs ->
        let shifted = List.map (( +. ) 10.) xs in
        abs_float (Stats.mean shifted -. (Stats.mean xs +. 10.)) < 1e-6);
    prop "stddev shift-invariant" gen_sample (fun xs ->
        let shifted = List.map (( +. ) 10.) xs in
        abs_float (Stats.stddev shifted -. Stats.stddev xs) < 1e-6);
  ]

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "improvement" `Quick test_improvement;
        ] );
      ("properties", props);
    ]
