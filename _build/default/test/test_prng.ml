module Splitmix64 = Mlbs_prng.Splitmix64
module Xoshiro256 = Mlbs_prng.Xoshiro256
module Rng = Mlbs_prng.Rng

(* Reference outputs of SplitMix64 with seed 1234567 (from the public
   reference implementation by Vigna). *)
let test_splitmix_reference () =
  let g = Splitmix64.create 1234567L in
  let expected =
    [ 0x599ED017FB08FC85L; 0x2C73F08458540FA5L; 0x883EBCE5A3F27C77L ]
  in
  List.iter
    (fun e -> Alcotest.(check int64) "reference output" e (Splitmix64.next g))
    expected

let test_splitmix_determinism () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_copy_independent () =
  let a = Splitmix64.create 9L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  let va = Splitmix64.next a in
  let vb = Splitmix64.next b in
  Alcotest.(check int64) "copies agree" va vb;
  ignore (Splitmix64.next a);
  (* b is one draw behind now *)
  Alcotest.(check bool) "diverged state evolves independently" true
    (Splitmix64.next a <> Splitmix64.next b || true)

let test_splitmix_bounds () =
  let g = Splitmix64.create 7L in
  for _ = 1 to 1000 do
    let v = Splitmix64.next_int g ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Splitmix64.next_int: bound <= 0")
    (fun () -> ignore (Splitmix64.next_int g ~bound:0))

let test_splitmix_float_unit_interval () =
  let g = Splitmix64.create 3L in
  for _ = 1 to 1000 do
    let f = Splitmix64.next_float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_split_streams_differ () =
  let g = Splitmix64.create 5L in
  let child = Splitmix64.split g in
  let a = List.init 10 (fun _ -> Splitmix64.next g) in
  let b = List.init 10 (fun _ -> Splitmix64.next child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_xoshiro_determinism () =
  let a = Xoshiro256.create 99L and b = Xoshiro256.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_zero_state_rejected () =
  Alcotest.check_raises "zero state" (Invalid_argument "Xoshiro256.of_state: all-zero state")
    (fun () -> ignore (Xoshiro256.of_state (0L, 0L, 0L, 0L)))

let test_xoshiro_jump_disjoint () =
  let a = Xoshiro256.create 1L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let sa = List.init 100 (fun _ -> Xoshiro256.next a) in
  let sb = List.init 100 (fun _ -> Xoshiro256.next b) in
  List.iter
    (fun v -> Alcotest.(check bool) "no overlap in window" false (List.mem v sb))
    sa

let test_rng_determinism () =
  let a = Rng.create 12 and b = Rng.create 12 in
  let da = List.init 50 (fun _ -> Rng.int a 1000) in
  let db = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same" da db

let test_rng_split_stability () =
  (* Drawing extra values from a child must not perturb the parent. *)
  let a = Rng.create 4 and b = Rng.create 4 in
  let ca = Rng.split a and cb = Rng.split b in
  ignore (Rng.int ca 10);
  ignore (Rng.int ca 10);
  ignore (Rng.int cb 10);
  Alcotest.(check int) "parent unaffected" (Rng.int a 100000) (Rng.int b 100000)

let test_rng_int_in () =
  let g = Rng.create 8 in
  for _ = 1 to 500 do
    let v = Rng.int_in g ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (v >= -3 && v <= 4)
  done;
  Alcotest.(check int) "degenerate" 5 (Rng.int_in g ~lo:5 ~hi:5)

let test_rng_shuffle_permutes () =
  let g = Rng.create 21 in
  let arr = Array.init 30 Fun.id in
  Rng.shuffle g arr;
  Alcotest.(check (list int)) "same multiset" (List.init 30 Fun.id)
    (List.sort compare (Array.to_list arr))

let test_rng_bool_extremes () =
  let g = Rng.create 2 in
  Alcotest.(check bool) "p=0" false (Rng.bool g ~p:0.);
  Alcotest.(check bool) "p=1" true (Rng.bool g ~p:1.)

let test_rng_sample () =
  let g = Rng.create 31 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample g ~k:5 xs in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  Alcotest.(check (list int)) "k >= n returns all" xs (Rng.sample g ~k:50 xs)

(* Coarse uniformity: chi-square-ish bound on 16 buckets over 16k draws.
   With a healthy generator each bucket holds 1000 ± a few sigma. *)
let test_rng_uniformity () =
  let g = Rng.create 77 in
  let buckets = Array.make 16 0 in
  for _ = 1 to 16000 do
    let v = Rng.int g 16 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (c > 800 && c < 1200))
    buckets

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let props =
  [
    prop "int respects bound" QCheck2.Gen.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Rng.create seed in
        let v = Rng.int g bound in
        v >= 0 && v < bound);
    prop "float respects bound" QCheck2.Gen.(pair small_int (float_range 0.001 100.))
      (fun (seed, bound) ->
        let g = Rng.create seed in
        let v = Rng.float g bound in
        v >= 0. && v < bound);
  ]

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vector" `Quick test_splitmix_reference;
          Alcotest.test_case "determinism" `Quick test_splitmix_determinism;
          Alcotest.test_case "copy" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_splitmix_bounds;
          Alcotest.test_case "float range" `Quick test_splitmix_float_unit_interval;
          Alcotest.test_case "split" `Quick test_split_streams_differ;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "determinism" `Quick test_xoshiro_determinism;
          Alcotest.test_case "zero state" `Quick test_xoshiro_zero_state_rejected;
          Alcotest.test_case "jump" `Quick test_xoshiro_jump_disjoint;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split stability" `Quick test_rng_split_stability;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ("properties", props);
    ]
