module Bitset = Mlbs_util.Bitset
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Radio = Mlbs_sim.Radio
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

let fig2_model () = Model.create Fixtures.fig2.Fixtures.net Model.Sync

(* Hand-built schedules over the Figure 2 graph (nodes 1..5 = ids 0..4;
   edges 0-1, 0-2, 1-3, 2-3, 1-4). *)
let mk steps = Schedule.make ~n_nodes:5 ~source:0 ~start:1 steps

let good_schedule () =
  mk
    [
      { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
      { Schedule.slot = 2; senders = [ 1 ]; informed = [ 3; 4 ] };
    ]

let test_valid_schedule_passes () =
  let m = fig2_model () in
  let r = Validate.check m (good_schedule ()) in
  Alcotest.(check bool) "ok" true r.Validate.ok;
  Alcotest.(check int) "no collisions" 0 r.Validate.collisions;
  Alcotest.(check (list int)) "none missing" [] r.Validate.missing

let test_collision_detected () =
  (* 1 and 2 both transmit at slot 2: they share the uninformed
     neighbour 3, which must observe a collision and stay uninformed. *)
  let m = fig2_model () in
  let s =
    mk
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 1; 2 ]; informed = [ 4 ] };
      ]
  in
  let outcome = Radio.replay m s in
  let collided =
    List.concat_map (fun e -> List.map fst e.Radio.collided) outcome.Radio.events
  in
  Alcotest.(check (list int)) "node 3 collided" [ 3 ] collided;
  Alcotest.(check bool) "3 stays uninformed" false (Bitset.mem outcome.Radio.informed 3);
  let r = Validate.check m s in
  Alcotest.(check bool) "invalid" false r.Validate.ok;
  Alcotest.(check int) "one collision" 1 r.Validate.collisions;
  Alcotest.(check (list int)) "3 missing" [ 3 ] r.Validate.missing

let test_uninformed_sender_detected () =
  let m = fig2_model () in
  let s = mk [ { Schedule.slot = 1; senders = [ 3 ]; informed = [ 1; 2 ] } ] in
  let r = Validate.check m s in
  Alcotest.(check bool) "invalid" false r.Validate.ok;
  Alcotest.(check bool) "mentions the sender" true
    (List.exists
       (fun v -> v = "slot 1: sender 3 does not hold the message")
       r.Validate.violations)

let test_duplicate_transmission_detected () =
  let m = fig2_model () in
  let s =
    mk
      [
        { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 2; senders = [ 0 ]; informed = [] };
        { Schedule.slot = 3; senders = [ 1 ]; informed = [ 3; 4 ] };
      ]
  in
  let r = Validate.check m s in
  Alcotest.(check bool) "invalid" false r.Validate.ok;
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists (fun v -> v = "slot 2: sender 0 already transmitted") r.Validate.violations)

let test_asleep_sender_detected () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  (* Node 2 (id 1) is asleep at slot 3 — it only wakes at 4 and 13. *)
  let s =
    Schedule.make ~n_nodes:5 ~source:0 ~start:2
      [
        { Schedule.slot = 2; senders = [ 0 ]; informed = [ 1; 2 ] };
        { Schedule.slot = 3; senders = [ 1 ]; informed = [ 3; 4 ] };
      ]
  in
  let r = Validate.check m s in
  Alcotest.(check bool) "invalid" false r.Validate.ok;
  Alcotest.(check bool) "asleep flagged" true
    (List.exists (fun v -> v = "slot 3: sender 1 is asleep") r.Validate.violations)

let test_claim_mismatch_detected () =
  let m = fig2_model () in
  let s = mk [ { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1 ] } ] in
  (* The radio informs {1,2}; the claim says {1} only. *)
  let r = Validate.check m s in
  Alcotest.(check bool) "claim mismatch flagged" true
    (List.exists
       (fun v -> v = "slot 1: claimed informed set differs from radio outcome")
       r.Validate.violations)

let test_incomplete_detected () =
  let m = fig2_model () in
  let s = mk [ { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] } ] in
  let r = Validate.check m s in
  Alcotest.(check bool) "invalid" false r.Validate.ok;
  Alcotest.(check (list int)) "3 and 4 missing" [ 3; 4 ] r.Validate.missing

let test_check_exn_message () =
  let m = fig2_model () in
  let s = mk [ { Schedule.slot = 1; senders = [ 0 ]; informed = [ 1; 2 ] } ] in
  Alcotest.check_raises "raises"
    (Failure "Validate.check_exn: invalid schedule: 2 nodes never informed") (fun () ->
      Validate.check_exn m s)

(* ---------------------- failure injection -------------------------- *)

let test_failure_injection_fig1 () =
  (* Kill the magenta relay (node 1) of the optimal Figure 1 schedule:
     slot 2's transmission is dropped, so node 4 never gets the message
     and cannot relay at slot 3 (it holds nothing); node 0's relay still
     delivers {3,5,6,7}. Exactly {4,8,9,10} of the alive nodes are
     stranded. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Mlbs_core.Gopt.plan m ~source ~start in
  let failed = Bitset.of_list 12 [ 1 ] in
  let informed_alive, alive = Validate.surviving_coverage m ~failed plan in
  Alcotest.(check int) "alive" 11 alive;
  Alcotest.(check int) "alive informed" 7 informed_alive;
  let outcome = Radio.replay ~failed m plan in
  Alcotest.(check (list (pair int int))) "dropped send" [ (2, 1) ] outcome.Radio.dropped

let test_failure_of_leaf_harmless () =
  (* Node 5 never relays in the fig1 optimum; killing it costs only
     itself. *)
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Mlbs_core.Gopt.plan m ~source ~start in
  let failed = Bitset.of_list 12 [ 5 ] in
  let informed_alive, alive = Validate.surviving_coverage m ~failed plan in
  Alcotest.(check int) "alive" 11 alive;
  Alcotest.(check int) "everyone else informed" 11 informed_alive

let test_no_failures_matches_plain_replay () =
  let m = fig2_model () in
  let s = good_schedule () in
  let plain = Radio.replay m s in
  let with_empty = Radio.replay ~failed:(Bitset.create 5) m s in
  Alcotest.(check (list int)) "same informed"
    (Bitset.elements plain.Radio.informed)
    (Bitset.elements with_empty.Radio.informed);
  Alcotest.(check int) "nothing dropped" 0 (List.length with_empty.Radio.dropped)

let test_schedule_make_validation () =
  Alcotest.check_raises "decreasing slots"
    (Invalid_argument "Schedule.make: slots not strictly increasing") (fun () ->
      ignore
        (mk
           [
             { Schedule.slot = 2; senders = [ 0 ]; informed = [] };
             { Schedule.slot = 2; senders = [ 1 ]; informed = [] };
           ]));
  Alcotest.check_raises "empty senders"
    (Invalid_argument "Schedule.make: empty sender step") (fun () ->
      ignore (mk [ { Schedule.slot = 1; senders = []; informed = [] } ]))

let test_schedule_accessors () =
  let s = good_schedule () in
  Alcotest.(check int) "start" 1 (Schedule.start s);
  Alcotest.(check int) "finish" 2 (Schedule.finish s);
  Alcotest.(check int) "elapsed" 2 (Schedule.elapsed s);
  Alcotest.(check int) "transmissions" 2 (Schedule.n_transmissions s);
  Alcotest.(check bool) "covers all" true (Schedule.covers_all s);
  Alcotest.(check (list int)) "informed after slot 1" [ 0; 1; 2 ]
    (Bitset.elements (Schedule.informed_after s ~slot:1));
  let empty = mk [] in
  Alcotest.(check int) "empty schedule elapsed 0" 0 (Schedule.elapsed empty)

let () =
  Alcotest.run "sim"
    [
      ( "radio",
        [
          Alcotest.test_case "valid passes" `Quick test_valid_schedule_passes;
          Alcotest.test_case "collision" `Quick test_collision_detected;
          Alcotest.test_case "uninformed sender" `Quick test_uninformed_sender_detected;
          Alcotest.test_case "duplicate transmission" `Quick test_duplicate_transmission_detected;
          Alcotest.test_case "asleep sender" `Quick test_asleep_sender_detected;
          Alcotest.test_case "claim mismatch" `Quick test_claim_mismatch_detected;
          Alcotest.test_case "incomplete" `Quick test_incomplete_detected;
          Alcotest.test_case "check_exn" `Quick test_check_exn_message;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "kill a relay" `Quick test_failure_injection_fig1;
          Alcotest.test_case "kill a leaf" `Quick test_failure_of_leaf_harmless;
          Alcotest.test_case "empty failure set" `Quick test_no_failures_matches_plain_replay;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "make validation" `Quick test_schedule_make_validation;
          Alcotest.test_case "accessors" `Quick test_schedule_accessors;
        ] );
    ]
