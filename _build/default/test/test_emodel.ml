module Bitset = Mlbs_util.Bitset
module Quadrant = Mlbs_geom.Quadrant
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel
module Schedule = Mlbs_core.Schedule
module Fixtures = Mlbs_workload.Fixtures
module Validate = Mlbs_sim.Validate
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

(* The paper's §IV-E example on Figure 1:
   E_2(7) = E_2(8) = E_2(9) = 0, E_2(0) = E_2(4) = E_2(5) = E_2(6) =
   E_2(10) = 1, and E_2(1) = 2 is the maximum. *)
let test_fig1_published_e2 () =
  let m = Model.create Fixtures.fig1.Fixtures.net Model.Sync in
  let e = Emodel.compute m in
  let check node expected =
    Alcotest.(check int) (Printf.sprintf "E_2(%d)" node) expected
      (Emodel.value e ~node Quadrant.Q2)
  in
  List.iter (fun u -> check u 0) [ 7; 8; 9 ];
  List.iter (fun u -> check u 1) [ 0; 4; 5; 6; 10 ];
  check 1 2

let test_fig1_selects_magenta () =
  (* At W = {s,0,1,2} with classes [{0};{1};{2}], Eq. 10 must pick the
     class of node 1 (the magenta relay of Figure 1(c)). *)
  let { Fixtures.net; source; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let e = Emodel.compute m in
  let w = Bitset.of_list 12 [ source; 0; 1; 2 ] in
  let classes = Model.greedy_classes m ~w ~slot:2 in
  Alcotest.(check (list (list int))) "greedy classes" [ [ 0 ]; [ 1 ]; [ 2 ] ] classes;
  Alcotest.(check int) "selects node 1's class" 1 (Emodel.select e m ~w ~classes)

let test_fig1_plan_optimal () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Emodel.plan m ~source ~start in
  Alcotest.(check int) "achieves P(A)=3" 3 (Schedule.finish plan);
  Validate.check_exn m plan

let test_max_applicable () =
  let { Fixtures.net; source; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let e = Emodel.compute m in
  let w = Bitset.of_list 12 [ source; 0; 1; 2 ] in
  (* Node 1's applicable maximum is its famous E_2 = 2. *)
  Alcotest.(check (option int)) "node 1" (Some 2) (Emodel.max_applicable e m ~w ~node:1);
  (* The source has no uninformed neighbours: nothing applies. *)
  Alcotest.(check (option int)) "source" None (Emodel.max_applicable e m ~w ~node:source)

let test_select_requires_classes () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let e = Emodel.compute m in
  Alcotest.check_raises "empty" (Invalid_argument "Emodel.select: no classes") (fun () ->
      ignore (Emodel.select e m ~w:(Bitset.of_list 5 [ 0 ]) ~classes:[]))

let prop ?(count = 80) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [
    prop "all E values finite and nonnegative (sync)" Test_support.gen_sync_model
      (fun (model, _) ->
        let e = Emodel.compute model in
        List.for_all
          (fun u ->
            List.for_all
              (fun q ->
                let v = Emodel.value e ~node:u q in
                v >= 0 && v < max_int)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
    prop "empty quadrant implies E = 0 (sync)" Test_support.gen_sync_model
      (fun (model, _) ->
        let e = Emodel.compute model in
        let net = Model.network model in
        List.for_all
          (fun u ->
            List.for_all
              (fun q ->
                Array.length (Mlbs_wsn.Network.neighbors_in_quadrant net u q) > 0
                || Emodel.value e ~node:u q = 0)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
    prop "E is relaxation-consistent from below (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        (* Algorithm 2's phase B updates "∞ values and only ∞ values",
           so a phase-A value may sit above 1 + min once hole-seeded
           neighbours appear; but no value may ever undercut the
           relaxation: nonempty quadrant ⇒ E_i(u) ≥ 1 + min E_i(v),
           with phase-B nodes achieving equality. *)
        let e = Emodel.compute model in
        let net = Model.network model in
        List.for_all
          (fun u ->
            List.for_all
              (fun q ->
                let nbrs = Mlbs_wsn.Network.neighbors_in_quadrant net u q in
                Array.length nbrs = 0
                ||
                let m =
                  Array.fold_left
                    (fun acc v -> min acc (Emodel.value e ~node:v q))
                    max_int nbrs
                in
                Emodel.value e ~node:u q >= 1 + m
                && Emodel.value e ~node:u q <= Model.n_nodes model)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
    prop ~count:40 "E-model schedules are valid and complete (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        let plan = Emodel.plan model ~source:0 ~start:1 in
        Schedule.covers_all plan && (Validate.check model plan).Validate.ok);
    prop ~count:30 "E-model schedules are valid and complete (async)"
      Test_support.gen_async_model (fun (model, _) ->
        let plan = Emodel.plan model ~source:0 ~start:1 in
        Schedule.covers_all plan && (Validate.check model plan).Validate.ok);
    prop ~count:30 "async E values respect CWT weights >= hop count"
      Test_support.gen_async_model (fun (model, _) ->
        let e_async = Emodel.compute model in
        let sync_model = Model.create (Model.network model) Model.Sync in
        let e_sync = Emodel.compute sync_model in
        (* CWT weights are >= 1, so the async estimate dominates hops. *)
        List.for_all
          (fun u ->
            List.for_all
              (fun q ->
                Emodel.value e_async ~node:u q >= Emodel.value e_sync ~node:u q)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
  ]

let () =
  Alcotest.run "emodel"
    [
      ( "fig1",
        [
          Alcotest.test_case "published E_2 values" `Quick test_fig1_published_e2;
          Alcotest.test_case "selects magenta" `Quick test_fig1_selects_magenta;
          Alcotest.test_case "plan optimal" `Quick test_fig1_plan_optimal;
          Alcotest.test_case "max applicable" `Quick test_max_applicable;
          Alcotest.test_case "select requires classes" `Quick test_select_requires_classes;
        ] );
      ("properties", props);
    ]
