module Tab = Mlbs_util.Tab

let test_render () =
  let t = Tab.create ~title:"demo" [ "a"; "bb" ] in
  Tab.add_row t [ "1"; "2" ];
  Tab.add_row t [ "333"; "4" ];
  let rendered = Tab.render t in
  Alcotest.(check bool) "has title" true (String.length rendered > 0 && String.sub rendered 0 4 = "demo");
  (* Every data line must have the same width (aligned columns). *)
  let lines = String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length (List.tl lines) in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_cell_count_checked () =
  let t = Tab.create ~title:"" [ "a"; "b" ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Tab.add_row: 3 cells for 2 headers")
    (fun () -> Tab.add_row t [ "1"; "2"; "3" ])

let test_no_headers () =
  Alcotest.check_raises "no headers" (Invalid_argument "Tab.create: no headers") (fun () ->
      ignore (Tab.create ~title:"" []))

let test_csv () =
  let t = Tab.create ~title:"ignored" [ "x"; "y" ] in
  Tab.add_row t [ "1"; "he,llo" ];
  Tab.add_row t [ "2"; "quo\"te" ];
  Alcotest.(check string) "csv" "x,y\n1,\"he,llo\"\n2,\"quo\"\"te\"\n" (Tab.to_csv t)

let test_float_row () =
  let t = Tab.create ~title:"" [ "label"; "v1"; "v2" ] in
  Tab.add_float_row t ~label:"row" [ 1.234; 5. ];
  Alcotest.(check string) "csv of floats" "label,v1,v2\nrow,1.23,5.00\n" (Tab.to_csv t)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let props =
  [
    prop "csv line count = rows + 1"
      QCheck2.Gen.(
        list_size (int_bound 20) (pair (small_string ?gen:None) (small_string ?gen:None)))
      (fun rows ->
        let t = Tab.create ~title:"t" [ "a"; "b" ] in
        List.iter (fun (a, b) -> Tab.add_row t [ a; b ]) rows;
        let csv = Tab.to_csv t in
        (* Count logical records: quoted newlines stay inside quotes, so
           split on unquoted newlines only. *)
        let records = ref 1 and in_quotes = ref false in
        String.iter
          (fun c ->
            if c = '"' then in_quotes := not !in_quotes
            else if c = '\n' && not !in_quotes then incr records)
          (String.sub csv 0 (String.length csv - 1));
        !records = List.length rows + 1);
  ]

let () =
  Alcotest.run "tab"
    [
      ( "unit",
        [
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "cell count" `Quick test_cell_count_checked;
          Alcotest.test_case "no headers" `Quick test_no_headers;
          Alcotest.test_case "csv quoting" `Quick test_csv;
          Alcotest.test_case "float row" `Quick test_float_row;
        ] );
      ("properties", props);
    ]
