module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Localized = Mlbs_core.Localized
module Gopt = Mlbs_core.Gopt
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures

let test_fig2_sync () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let r = Localized.run m ~source:0 ~start:1 in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Localized.schedule);
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Localized.schedule).Validate.ok;
  (* On the tiny Figure 2 graph the 2-hop views are global: the run
     matches the centralized optimum of 2 rounds with no collisions. *)
  Alcotest.(check int) "latency" 2 r.Localized.latency;
  Alcotest.(check int) "no collisions" 0 r.Localized.collisions;
  Alcotest.(check int) "no retransmissions" 0 r.Localized.retransmissions

let test_fig1_sync () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let r = Localized.run m ~source ~start in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Localized.schedule);
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Localized.schedule).Validate.ok

let test_fig2_async () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let r = Localized.run m ~source:fixture.Fixtures.source ~start:fixture.Fixtures.start in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Localized.schedule);
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Localized.schedule).Validate.ok

let test_max_slots_guard () =
  let m = Model.create Fixtures.fig1.Fixtures.net Model.Sync in
  Alcotest.check_raises "livelock guard"
    (Failure "Localized.run: no convergence within 1 slots (protocol livelock?)")
    (fun () -> ignore (Localized.run ~max_slots:1 m ~source:11 ~start:1))

let prop ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [
    prop "localized always converges with full coverage (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        let r = Localized.run model ~source:0 ~start:1 in
        Schedule.covers_all r.Localized.schedule
        && (Validate.check_lossy model r.Localized.schedule).Validate.ok);
    prop ~count:25 "localized always converges with full coverage (async)"
      Test_support.gen_async_model (fun (model, _) ->
        let r = Localized.run model ~source:0 ~start:1 in
        Schedule.covers_all r.Localized.schedule
        && (Validate.check_lossy model r.Localized.schedule).Validate.ok);
    prop "localized latency is at least the hop lower bound (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        (* A node informed at slot t relays no earlier than t+1, so each
           hop of the farthest node costs at least one slot. *)
        let d = Mlbs_graph.Bfs.eccentricity (Model.graph model) ~source:0 in
        let r = Localized.run model ~source:0 ~start:1 in
        r.Localized.latency >= d);
    prop "collision-free runs have no retransmissions" Test_support.gen_sync_model
      (fun (model, _) ->
        let r = Localized.run model ~source:0 ~start:1 in
        r.Localized.collisions > 0 || r.Localized.retransmissions = 0);
  ]

let () =
  Alcotest.run "localized"
    [
      ( "unit",
        [
          Alcotest.test_case "fig2 sync" `Quick test_fig2_sync;
          Alcotest.test_case "fig1 sync" `Quick test_fig1_sync;
          Alcotest.test_case "fig2 async" `Quick test_fig2_async;
          Alcotest.test_case "max_slots guard" `Quick test_max_slots_guard;
        ] );
      ("properties", props);
    ]
