module Point = Mlbs_geom.Point
module Network = Mlbs_wsn.Network
module Graph = Mlbs_graph.Graph
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Persist = Mlbs_workload.Persist
module Fixtures = Mlbs_workload.Fixtures

let temp suffix =
  let path = Filename.temp_file "mlbs_persist" suffix in
  path

let test_network_roundtrip_geometric () =
  let net = Fixtures.fig2.Fixtures.net in
  let path = temp ".net" in
  Persist.save_network path net;
  let loaded = Persist.load_network path in
  Alcotest.(check int) "n" (Network.n_nodes net) (Network.n_nodes loaded);
  Alcotest.(check (float 1e-12)) "radius" (Network.radius net) (Network.radius loaded);
  Alcotest.(check bool) "positions" true
    (Array.for_all2 Point.equal (Network.positions net) (Network.positions loaded));
  Alcotest.(check (list (pair int int))) "edges"
    (Graph.edges (Network.graph net))
    (Graph.edges (Network.graph loaded));
  Sys.remove path

let test_network_roundtrip_fixture_adjacency () =
  (* fig1's adjacency is NOT the geometric UDG of its coordinates; the
     round trip must preserve the explicit edge set. *)
  let net = Fixtures.fig1.Fixtures.net in
  let path = temp ".net" in
  Persist.save_network path net;
  let loaded = Persist.load_network path in
  Alcotest.(check (list (pair int int))) "edges preserved"
    (Graph.edges (Network.graph net))
    (Graph.edges (Network.graph loaded));
  Sys.remove path

let test_schedule_roundtrip () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let plan = Mlbs_core.Gopt.plan m ~source ~start in
  let path = temp ".sched" in
  Persist.save_schedule path plan;
  let loaded = Persist.load_schedule path in
  Alcotest.(check int) "source" (Schedule.source plan) (Schedule.source loaded);
  Alcotest.(check int) "start" (Schedule.start plan) (Schedule.start loaded);
  Alcotest.(check int) "finish" (Schedule.finish plan) (Schedule.finish loaded);
  List.iter2
    (fun (a : Schedule.step) (b : Schedule.step) ->
      Alcotest.(check int) "slot" a.Schedule.slot b.Schedule.slot;
      Alcotest.(check (list int)) "senders" a.Schedule.senders b.Schedule.senders;
      Alcotest.(check (list int)) "informed" a.Schedule.informed b.Schedule.informed)
    (Schedule.steps plan) (Schedule.steps loaded);
  (* The loaded schedule still validates against the saved network. *)
  Mlbs_sim.Validate.check_exn m loaded;
  Sys.remove path

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_bad_headers () =
  let path = temp ".bad" in
  write path "nonsense 9\n";
  Alcotest.check_raises "network header" (Failure "Persist: not a mlbs-network v1 file")
    (fun () -> ignore (Persist.load_network path));
  Alcotest.check_raises "schedule header" (Failure "Persist: not a mlbs-schedule v1 file")
    (fun () -> ignore (Persist.load_schedule path));
  write path "";
  Alcotest.check_raises "empty network" (Failure "Persist: empty network file") (fun () ->
      ignore (Persist.load_network path));
  Sys.remove path

let test_missing_node_detected () =
  let path = temp ".bad" in
  write path "mlbs-network 1 2 10\nnode 0 1 1\n";
  Alcotest.check_raises "missing node" (Failure "Persist: node 1 missing") (fun () ->
      ignore (Persist.load_network path));
  Sys.remove path

let test_duplicate_node_detected () =
  let path = temp ".bad" in
  write path "mlbs-network 1 1 10\nnode 0 1 1\nnode 0 2 2\n";
  Alcotest.check_raises "duplicate" (Failure "Persist: line 3: duplicate node 0")
    (fun () -> ignore (Persist.load_network path));
  Sys.remove path

let test_malformed_step_detected () =
  let path = temp ".bad" in
  write path "mlbs-schedule 1 3 0 1\nstep 1 garbage\n";
  Alcotest.check_raises "bad step" (Failure "Persist: line 2: malformed step record")
    (fun () -> ignore (Persist.load_schedule path));
  Sys.remove path

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:40 ~name gen f)

let props =
  [
    prop "network roundtrip on random deployments" Test_support.gen_sync_model
      (fun (model, seed) ->
        let net = Model.network model in
        let path = temp (Printf.sprintf ".%d" seed) in
        Persist.save_network path net;
        let loaded = Persist.load_network path in
        Sys.remove path;
        Array.for_all2 Point.equal (Network.positions net) (Network.positions loaded)
        && Graph.edges (Network.graph net) = Graph.edges (Network.graph loaded));
    prop "schedule roundtrip preserves radio outcome" Test_support.gen_sync_model
      (fun (model, seed) ->
        let plan = Mlbs_core.Gopt.plan model ~source:0 ~start:1 in
        let path = temp (Printf.sprintf ".s%d" seed) in
        Persist.save_schedule path plan;
        let loaded = Persist.load_schedule path in
        Sys.remove path;
        (Mlbs_sim.Validate.check model loaded).Mlbs_sim.Validate.ok);
  ]

let () =
  Alcotest.run "persist"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "geometric network" `Quick test_network_roundtrip_geometric;
          Alcotest.test_case "fixture adjacency" `Quick test_network_roundtrip_fixture_adjacency;
          Alcotest.test_case "schedule" `Quick test_schedule_roundtrip;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad headers" `Quick test_bad_headers;
          Alcotest.test_case "missing node" `Quick test_missing_node_detected;
          Alcotest.test_case "duplicate node" `Quick test_duplicate_node_detected;
          Alcotest.test_case "malformed step" `Quick test_malformed_step_detected;
        ] );
      ("properties", props);
    ]
