module Bitset = Mlbs_util.Bitset
module Coloring = Mlbs_graph.Coloring
module Model = Mlbs_core.Model
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Fixtures = Mlbs_workload.Fixtures

(* Figure 2 of the paper: 1-2, 1-3, 2-4, 3-4, 2-5 (ids are labels-1). *)
let fig2_model () = Model.create Fixtures.fig2.Fixtures.net Model.Sync

let test_initial_w () =
  let m = fig2_model () in
  let w = Model.initial_w m ~source:0 in
  Alcotest.(check (list int)) "just the source" [ 0 ] (Bitset.elements w);
  Alcotest.check_raises "bad source" (Invalid_argument "Model.initial_w: source out of range")
    (fun () -> ignore (Model.initial_w m ~source:9))

let test_receivers () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "node 2's receivers" [ 3; 4 ] (Model.receivers m ~w 1);
  Alcotest.(check int) "count" 2 (Model.n_receivers m ~w 1);
  Alcotest.(check (list int)) "node 3's receivers" [ 3 ] (Model.receivers m ~w 2);
  Alcotest.(check (list int)) "source exhausted" [] (Model.receivers m ~w 0)

let test_candidates_sync () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "nodes with receivers" [ 1; 2 ] (Model.candidates m ~w ~slot:1);
  Alcotest.(check (list int)) "frontier same in sync" [ 1; 2 ] (Model.frontier m ~w)

let test_conflicts () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  (* 2 and 3 share the uninformed neighbour 4. *)
  Alcotest.(check bool) "conflict at 4" true (Model.conflicts m ~w 1 2);
  Alcotest.(check bool) "symmetric" true (Model.conflicts m ~w 2 1);
  Alcotest.(check bool) "irreflexive" false (Model.conflicts m ~w 1 1);
  (* Once 4 is informed, the conflict disappears. *)
  let w' = Bitset.of_list 5 [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "no conflict once informed" false (Model.conflicts m ~w:w' 1 2)

let test_greedy_classes_fig2 () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  (* Table II: C1 = {2} (two receivers), C2 = {3}. *)
  Alcotest.(check (list (list int))) "classes" [ [ 1 ]; [ 2 ] ]
    (Model.greedy_classes m ~w ~slot:1)

let test_apply () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  let w' = Model.apply m ~w ~senders:[ 1 ] in
  Alcotest.(check (list int)) "node 2 informs 4 and 5" [ 0; 1; 2; 3; 4 ] (Bitset.elements w');
  Alcotest.(check (list int)) "w untouched" [ 0; 1; 2 ] (Bitset.elements w);
  Alcotest.(check (list int)) "newly informed" [ 3; 4 ]
    (Model.newly_informed m ~w ~senders:[ 1 ]);
  Alcotest.check_raises "uninformed sender"
    (Invalid_argument "Model.apply: sender 3 not informed") (fun () ->
      ignore (Model.apply m ~w ~senders:[ 3 ]))

let test_async_candidates_gated () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  (* Nodes 2 and 3 wake at slot 4, nobody relays at slot 3. *)
  Alcotest.(check (list int)) "slot 3: none awake" [] (Model.candidates m ~w ~slot:3);
  Alcotest.(check (list int)) "slot 4: both" [ 1; 2 ] (Model.candidates m ~w ~slot:4);
  Alcotest.(check (option int)) "next active from 3" (Some 4)
    (Model.next_active_slot m ~w ~after:2)

let test_next_active_sync () =
  let m = fig2_model () in
  let w = Bitset.of_list 5 [ 0; 1; 2 ] in
  Alcotest.(check (option int)) "sync: next round" (Some 8) (Model.next_active_slot m ~w ~after:7);
  let full = Bitset.full 5 in
  Alcotest.(check (option int)) "complete: no frontier" None
    (Model.next_active_slot m ~w:full ~after:1)

let test_complete () =
  let m = fig2_model () in
  Alcotest.(check bool) "not complete" false (Model.complete m ~w:(Bitset.of_list 5 [ 0 ]));
  Alcotest.(check bool) "complete" true (Model.complete m ~w:(Bitset.full 5))

let test_async_schedule_size_checked () =
  let sched = Wake_schedule.create ~rate:5 ~n_nodes:2 ~seed:1 () in
  Alcotest.check_raises "undersized schedule"
    (Invalid_argument "Model.create: wake schedule covers fewer nodes than the network")
    (fun () ->
      ignore (Model.create Fixtures.fig2.Fixtures.net (Model.Async sched)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let gen_model_and_w =
  QCheck2.Gen.(
    let* model, seed = Test_support.gen_sync_model in
    let n = Model.n_nodes model in
    (* Random informed set always containing node 0. *)
    let* members = list_size (int_bound (n - 1)) (int_bound (n - 1)) in
    ignore seed;
    return (model, Bitset.of_list n (0 :: members)))

let props =
  [
    prop "greedy classes partition the candidates and are valid" gen_model_and_w
      (fun (model, w) ->
        let classes = Model.greedy_classes model ~w ~slot:1 in
        let cands = Model.candidates model ~w ~slot:1 in
        List.sort compare (List.concat classes) = cands
        && Coloring.classes_valid
             ~conflicts:(fun u v -> Model.conflicts model ~w u v)
             classes);
    prop "classes ordered by descending best receiver count" gen_model_and_w
      (fun (model, w) ->
        let classes = Model.greedy_classes model ~w ~slot:1 in
        let best cls =
          List.fold_left (fun acc u -> max acc (Model.n_receivers model ~w u)) 0 cls
        in
        let rec decreasing = function
          | a :: (b :: _ as rest) -> best a >= best b && decreasing rest
          | _ -> true
        in
        decreasing classes);
    prop "apply only adds neighbours of senders" gen_model_and_w (fun (model, w) ->
        match Model.candidates model ~w ~slot:1 with
        | [] -> true
        | u :: _ ->
            let added = Model.newly_informed model ~w ~senders:[ u ] in
            List.for_all
              (fun v -> Mlbs_graph.Graph.mem_edge (Model.graph model) u v)
              added);
    prop "senders in one class are pairwise conflict-free" gen_model_and_w
      (fun (model, w) ->
        List.for_all
          (fun cls ->
            List.for_all
              (fun u -> List.for_all (fun v -> u = v || not (Model.conflicts model ~w u v)) cls)
              cls)
          (Model.greedy_classes model ~w ~slot:1));
  ]

let () =
  Alcotest.run "model"
    [
      ( "unit",
        [
          Alcotest.test_case "initial w" `Quick test_initial_w;
          Alcotest.test_case "receivers" `Quick test_receivers;
          Alcotest.test_case "candidates sync" `Quick test_candidates_sync;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "greedy classes fig2" `Quick test_greedy_classes_fig2;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "async gating" `Quick test_async_candidates_gated;
          Alcotest.test_case "next active sync" `Quick test_next_active_sync;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "schedule size" `Quick test_async_schedule_size_checked;
        ] );
      ("properties", props);
    ]
