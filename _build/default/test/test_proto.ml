module Bitset = Mlbs_util.Bitset
module Quadrant = Mlbs_geom.Quadrant
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel
module Schedule = Mlbs_core.Schedule
module Hello = Mlbs_proto.Hello
module E_protocol = Mlbs_proto.E_protocol
module Broadcast_protocol = Mlbs_proto.Broadcast_protocol
module Validate = Mlbs_sim.Validate
module Fixtures = Mlbs_workload.Fixtures
module Network = Mlbs_wsn.Network

(* ---------------------------- hello -------------------------------- *)

let test_hello_views_match_topology () =
  let net = Fixtures.fig1.Fixtures.net in
  let { Hello.views; messages } = Hello.discover net in
  Alcotest.(check int) "2 beacons per node" (2 * 12) messages;
  Array.iteri
    (fun u (v : Hello.view) ->
      Alcotest.(check int) "id" u v.Hello.id;
      Alcotest.(check (list int)) "neighbors match network"
        (Array.to_list (Network.neighbors net u))
        (Array.to_list v.Hello.neighbors))
    views

let test_hello_two_hop () =
  let net = Fixtures.fig2.Fixtures.net in
  let { Hello.views; _ } = Hello.discover net in
  (* Node 1 (id 0): neighbours {1,2}; two-hop adds {3,4}. *)
  Alcotest.(check (list int)) "two hop of node 1" [ 1; 2; 3; 4 ] (Hello.two_hop views.(0));
  (* Node 5 (id 4): neighbour {1}; two-hop adds {0,3}. *)
  Alcotest.(check (list int)) "two hop of node 5" [ 0; 1; 3 ] (Hello.two_hop views.(4))

let test_hello_knows_edge () =
  let net = Fixtures.fig2.Fixtures.net in
  let { Hello.views; _ } = Hello.discover net in
  let v0 = views.(0) in
  Alcotest.(check bool) "own edge" true (Hello.knows_edge v0 0 1);
  Alcotest.(check bool) "neighbour's edge" true (Hello.knows_edge v0 1 3);
  Alcotest.(check bool) "unknown edge" false (Hello.knows_edge v0 3 3);
  (* 2-hop to 2-hop edges are invisible from id 4's view. *)
  let v4 = views.(4) in
  Alcotest.(check bool) "certifies 1-3" true (Hello.knows_edge v4 1 3);
  Alcotest.(check bool) "cannot certify 2-3" false (Hello.knows_edge v4 2 3)

(* -------------------------- e protocol ----------------------------- *)

let check_matches_centralized model =
  let views = (Hello.discover (Model.network model)).Hello.views in
  let dist = E_protocol.construct model views in
  let central = Emodel.compute ~seeding:Emodel.Merged model in
  let n = Model.n_nodes model in
  for u = 0 to n - 1 do
    List.iter
      (fun q ->
        Alcotest.(check int)
          (Printf.sprintf "E_%s(%d)" (Quadrant.to_string q) u)
          (Emodel.value central ~node:u q)
          dist.E_protocol.values.(u).(Quadrant.to_index q))
      Quadrant.all
  done;
  dist

let test_e_protocol_fig1 () =
  let model = Model.create Fixtures.fig1.Fixtures.net Model.Sync in
  let dist = check_matches_centralized model in
  Alcotest.(check bool) "few rounds" true (dist.E_protocol.rounds <= 12);
  (* Theorem 3: the construction costs O(1) per node — "less than 4xN"
     total updates. *)
  Alcotest.(check bool)
    (Printf.sprintf "messages %d < 4n" dist.E_protocol.messages)
    true
    (dist.E_protocol.messages < 4 * 12)

let test_e_protocol_async_fig2 () =
  let fixture, sched = Fixtures.fig2_dc in
  let model = Model.create fixture.Fixtures.net (Model.Async sched) in
  ignore (check_matches_centralized model)

(* ----------------------- broadcast protocol ------------------------ *)

let test_broadcast_fig2 () =
  let m = Model.create Fixtures.fig2.Fixtures.net Model.Sync in
  let r = Broadcast_protocol.run m ~source:0 ~start:1 in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Broadcast_protocol.schedule);
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Broadcast_protocol.schedule).Validate.ok;
  Alcotest.(check bool) "beacons counted" true (r.Broadcast_protocol.beacon_messages > 0)

let test_broadcast_fig1 () =
  let { Fixtures.net; source; start; _ } = Fixtures.fig1 in
  let m = Model.create net Model.Sync in
  let r = Broadcast_protocol.run m ~source ~start in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Broadcast_protocol.schedule);
  Alcotest.(check bool) "lossy-valid" true
    (Validate.check_lossy m r.Broadcast_protocol.schedule).Validate.ok

let test_broadcast_async () =
  let fixture, sched = Fixtures.fig2_dc in
  let m = Model.create fixture.Fixtures.net (Model.Async sched) in
  let r = Broadcast_protocol.run m ~source:fixture.Fixtures.source ~start:fixture.Fixtures.start in
  Alcotest.(check bool) "covers" true (Schedule.covers_all r.Broadcast_protocol.schedule)

let test_max_slots_guard () =
  let m = Model.create Fixtures.fig1.Fixtures.net Model.Sync in
  Alcotest.check_raises "guard"
    (Failure "Broadcast_protocol.run: no coverage within 1 slots") (fun () ->
      ignore (Broadcast_protocol.run ~max_slots:1 m ~source:11 ~start:1))

let prop ?(count = 40) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let props =
  [
    prop "distributed E = centralized merged E (sync)" Test_support.gen_sync_model
      (fun (model, _) ->
        let views = (Hello.discover (Model.network model)).Hello.views in
        let dist = E_protocol.construct model views in
        let central = Emodel.compute ~seeding:Emodel.Merged model in
        List.for_all
          (fun u ->
            List.for_all
              (fun q ->
                dist.E_protocol.values.(u).(Quadrant.to_index q)
                = Emodel.value central ~node:u q)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
    prop "Theorem 3: E construction under 4 messages per node"
      Test_support.gen_sync_model (fun (model, _) ->
        let views = (Hello.discover (Model.network model)).Hello.views in
        let dist = E_protocol.construct model views in
        dist.E_protocol.messages < 4 * Model.n_nodes model);
    prop "distributed broadcast covers and validates (sync)"
      Test_support.gen_sync_model (fun (model, _) ->
        let r = Broadcast_protocol.run model ~source:0 ~start:1 in
        Schedule.covers_all r.Broadcast_protocol.schedule
        && (Validate.check_lossy model r.Broadcast_protocol.schedule).Validate.ok);
    prop ~count:20 "distributed broadcast covers under duty cycling"
      Test_support.gen_async_model (fun (model, _) ->
        let r = Broadcast_protocol.run model ~source:0 ~start:1 in
        Schedule.covers_all r.Broadcast_protocol.schedule);
    prop "merged seeding is pointwise <= two-phase" Test_support.gen_sync_model
      (fun (model, _) ->
        let merged = Emodel.compute ~seeding:Emodel.Merged model in
        let two = Emodel.compute ~seeding:Emodel.Two_phase model in
        List.for_all
          (fun u ->
            List.for_all
              (fun q -> Emodel.value merged ~node:u q <= Emodel.value two ~node:u q)
              Quadrant.all)
          (List.init (Model.n_nodes model) Fun.id));
  ]

let () =
  Alcotest.run "proto"
    [
      ( "hello",
        [
          Alcotest.test_case "views match topology" `Quick test_hello_views_match_topology;
          Alcotest.test_case "two hop" `Quick test_hello_two_hop;
          Alcotest.test_case "knows edge" `Quick test_hello_knows_edge;
        ] );
      ( "e protocol",
        [
          Alcotest.test_case "fig1 = centralized" `Quick test_e_protocol_fig1;
          Alcotest.test_case "async fig2" `Quick test_e_protocol_async_fig2;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "fig2" `Quick test_broadcast_fig2;
          Alcotest.test_case "fig1" `Quick test_broadcast_fig1;
          Alcotest.test_case "async" `Quick test_broadcast_async;
          Alcotest.test_case "max slots" `Quick test_max_slots_guard;
        ] );
      ("properties", props);
    ]
