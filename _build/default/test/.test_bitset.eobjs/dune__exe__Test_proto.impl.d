test/test_proto.ml: Alcotest Array Fun List Mlbs_core Mlbs_geom Mlbs_proto Mlbs_sim Mlbs_util Mlbs_workload Mlbs_wsn Printf QCheck2 QCheck_alcotest Test_support
