test/test_dutycycle.ml: Alcotest List Mlbs_dutycycle Printf QCheck2 QCheck_alcotest
