test/test_heap.ml: Alcotest List Mlbs_util QCheck2 QCheck_alcotest
