test/test_mcounter.ml: Alcotest List Mlbs_core Mlbs_geom Mlbs_sim Mlbs_util Mlbs_workload Mlbs_wsn QCheck2 QCheck_alcotest Test_support
