test/test_emodel.mli:
