test/test_localized.ml: Alcotest Mlbs_core Mlbs_graph Mlbs_sim Mlbs_workload QCheck2 QCheck_alcotest Test_support
