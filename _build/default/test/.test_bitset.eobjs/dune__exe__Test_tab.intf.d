test/test_tab.mli:
