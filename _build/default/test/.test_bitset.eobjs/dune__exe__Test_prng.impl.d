test/test_prng.ml: Alcotest Array Fun List Mlbs_prng Printf QCheck2 QCheck_alcotest
