test/test_bitset.ml: Alcotest List Mlbs_util QCheck2 QCheck_alcotest
