test/test_edge_cases.ml: Alcotest Array Fun List Mlbs_core Mlbs_dutycycle Mlbs_geom Mlbs_sim Mlbs_util Mlbs_wsn Printf
