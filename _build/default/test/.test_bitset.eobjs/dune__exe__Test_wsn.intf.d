test/test_wsn.mli:
