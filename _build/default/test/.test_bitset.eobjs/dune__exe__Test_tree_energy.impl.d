test/test_tree_energy.ml: Alcotest Array List Mlbs_core Mlbs_graph Mlbs_sim Mlbs_util Mlbs_workload Printf QCheck2 QCheck_alcotest Test_support
