test/test_cds.ml: Alcotest List Mlbs_core Mlbs_graph Mlbs_sim Mlbs_workload QCheck2 QCheck_alcotest Test_support
