test/test_sim.ml: Alcotest List Mlbs_core Mlbs_dutycycle Mlbs_sim Mlbs_util Mlbs_workload
