test/test_geom.ml: Alcotest Array List Mlbs_geom Option Printf QCheck2 QCheck_alcotest
