test/test_graph.ml: Alcotest Array Fun List Mlbs_graph Mlbs_util QCheck2 QCheck_alcotest
