test/test_schedulers.ml: Alcotest Array Hashtbl List Mlbs_core Mlbs_dutycycle Mlbs_graph Mlbs_sim Mlbs_workload Option Printf QCheck2 QCheck_alcotest Test_support
