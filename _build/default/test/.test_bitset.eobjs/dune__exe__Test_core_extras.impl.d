test/test_core_extras.ml: Alcotest Array List Mlbs_core Mlbs_dutycycle Mlbs_geom Mlbs_util Mlbs_workload Mlbs_wsn Printf String
