test/test_localized.mli:
