test/test_stats.ml: Alcotest List Mlbs_util QCheck2 QCheck_alcotest
