test/test_cds.mli:
