test/test_model.ml: Alcotest List Mlbs_core Mlbs_dutycycle Mlbs_graph Mlbs_util Mlbs_workload QCheck2 QCheck_alcotest Test_support
