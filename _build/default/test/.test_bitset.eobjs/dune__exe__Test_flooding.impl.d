test/test_flooding.ml: Alcotest Array Hashtbl List Mlbs_core Mlbs_geom Mlbs_sim Mlbs_util Mlbs_workload Mlbs_wsn Option QCheck2 QCheck_alcotest Test_support
