test/test_emodel.ml: Alcotest Array Fun List Mlbs_core Mlbs_dutycycle Mlbs_geom Mlbs_sim Mlbs_util Mlbs_workload Mlbs_wsn Printf QCheck2 QCheck_alcotest Test_support
