test/test_union_find.ml: Alcotest Fun List Mlbs_util QCheck2 QCheck_alcotest
