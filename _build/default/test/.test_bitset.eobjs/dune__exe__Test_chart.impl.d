test/test_chart.ml: Alcotest List Mlbs_util QCheck2 QCheck_alcotest String
