test/test_persist.ml: Alcotest Array Filename List Mlbs_core Mlbs_geom Mlbs_graph Mlbs_sim Mlbs_workload Mlbs_wsn Printf QCheck2 QCheck_alcotest Sys Test_support
