test/test_mcounter.mli:
