test/test_wsn.ml: Alcotest Array Fun List Mlbs_geom Mlbs_graph Mlbs_prng Mlbs_wsn Printf QCheck2 QCheck_alcotest
