test/test_tree_energy.mli:
