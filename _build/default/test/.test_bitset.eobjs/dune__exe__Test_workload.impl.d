test/test_workload.ml: Alcotest Filename List Mlbs_core Mlbs_dutycycle Mlbs_sim Mlbs_util Mlbs_workload Mlbs_wsn String Sys
