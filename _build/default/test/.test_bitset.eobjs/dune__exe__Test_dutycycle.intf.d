test/test_dutycycle.mli:
