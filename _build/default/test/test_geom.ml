module Point = Mlbs_geom.Point
module Hull = Mlbs_geom.Hull
module Quadrant = Mlbs_geom.Quadrant

let feq = Alcotest.float 1e-9

let test_dist () =
  Alcotest.check feq "3-4-5" 5. (Point.dist (Point.v 0. 0.) (Point.v 3. 4.));
  Alcotest.check feq "dist2" 25. (Point.dist2 (Point.v 0. 0.) (Point.v 3. 4.));
  Alcotest.check feq "self" 0. (Point.dist (Point.v 1. 2.) (Point.v 1. 2.))

let test_cross () =
  let o = Point.v 0. 0. in
  Alcotest.(check bool) "ccw positive" true (Point.cross o (Point.v 1. 0.) (Point.v 0. 1.) > 0.);
  Alcotest.(check bool) "cw negative" true (Point.cross o (Point.v 0. 1.) (Point.v 1. 0.) < 0.);
  Alcotest.check feq "collinear" 0. (Point.cross o (Point.v 1. 1.) (Point.v 2. 2.))

let square =
  [| Point.v 0. 0.; Point.v 4. 0.; Point.v 4. 4.; Point.v 0. 4.; Point.v 2. 2. |]

let test_hull_square () =
  let hull = Hull.hull_indices square in
  Alcotest.(check (list int)) "corners only, CCW from lex-min" [ 0; 1; 2; 3 ] hull;
  let marks = Hull.on_hull square in
  Alcotest.(check bool) "interior excluded" false marks.(4);
  Alcotest.(check bool) "corner included" true marks.(0)

let test_hull_collinear () =
  let pts = [| Point.v 0. 0.; Point.v 1. 0.; Point.v 2. 0.; Point.v 3. 0. |] in
  let hull = Hull.hull_indices pts in
  (* Degenerate: all collinear; the hull is the two extremes. *)
  Alcotest.(check (list int)) "extremes" [ 0; 3 ] (List.sort compare hull)

let test_hull_small () =
  Alcotest.(check (list int)) "empty" [] (Hull.hull_indices [||]);
  Alcotest.(check (list int)) "single" [ 0 ] (Hull.hull_indices [| Point.v 1. 1. |]);
  Alcotest.(check (list int)) "pair" [ 0; 1 ]
    (List.sort compare (Hull.hull_indices [| Point.v 1. 1.; Point.v 0. 0. |]))

let test_hull_duplicates () =
  let pts = [| Point.v 0. 0.; Point.v 0. 0.; Point.v 1. 0.; Point.v 0. 1. |] in
  let marks = Hull.on_hull pts in
  Alcotest.(check bool) "duplicate of hull point marked" true (marks.(0) && marks.(1))

let test_quadrants () =
  let o = Point.v 10. 10. in
  let check p expected =
    Alcotest.(check (option string))
      (Printf.sprintf "(%g,%g)" p.Point.x p.Point.y)
      expected
      (Option.map Quadrant.to_string (Quadrant.classify ~origin:o p))
  in
  check (Point.v 12. 11.) (Some "Q1");
  check (Point.v 9. 12.) (Some "Q2");
  check (Point.v 8. 9.) (Some "Q3");
  check (Point.v 11. 8.) (Some "Q4");
  (* Axis-aligned neighbours land in exactly one quadrant. *)
  check (Point.v 12. 10.) (Some "Q1") (* due east: dx>0, dy=0 *);
  check (Point.v 10. 12.) (Some "Q2") (* due north: dx=0, dy>0 *);
  check (Point.v 8. 10.) (Some "Q3") (* due west *);
  check (Point.v 10. 8.) (Some "Q4") (* due south *);
  check o None

let test_quadrant_indices () =
  List.iter
    (fun q ->
      Alcotest.(check bool) "roundtrip" true (Quadrant.of_index (Quadrant.to_index q) = q))
    Quadrant.all;
  Alcotest.check_raises "bad index" (Invalid_argument "Quadrant.of_index: 4") (fun () ->
      ignore (Quadrant.of_index 4))

let gen_points =
  QCheck2.Gen.(
    list_size (int_range 3 40)
      (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.))
    |> map (fun l -> Array.of_list (List.map (fun (x, y) -> Point.v x y) l)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

(* Point-in-convex-polygon test via cross products (hull is CCW). *)
let inside_hull hull p =
  let arr = Array.of_list hull in
  let n = Array.length arr in
  if n < 3 then true
  else
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      if Point.cross a b p < -1e-7 then ok := false
    done;
    !ok

let props =
  [
    prop "hull contains every input point" gen_points (fun pts ->
        let hull = Hull.convex_hull pts in
        Array.for_all (fun p -> inside_hull hull p) pts);
    prop "extreme points are on the hull" gen_points (fun pts ->
        let marks = Hull.on_hull pts in
        let argmax f =
          let best = ref 0 in
          Array.iteri (fun i p -> if f p > f pts.(!best) then best := i) pts;
          !best
        in
        marks.(argmax (fun p -> p.Point.x))
        && marks.(argmax (fun p -> p.Point.y))
        && marks.(argmax (fun p -> -.p.Point.x))
        && marks.(argmax (fun p -> -.p.Point.y)));
    prop "hull is convex (all CCW turns)" gen_points (fun pts ->
        let hull = Array.of_list (Hull.convex_hull pts) in
        let n = Array.length hull in
        n < 3
        ||
        let ok = ref true in
        for i = 0 to n - 1 do
          if
            Point.cross hull.(i) hull.((i + 1) mod n) hull.((i + 2) mod n) < -1e-7
          then ok := false
        done;
        !ok);
    prop "quadrant duality: v in Q_i(u) iff u in opp(Q_i)(v)"
      QCheck2.Gen.(
        quad (float_bound_inclusive 10.) (float_bound_inclusive 10.)
          (float_bound_inclusive 10.) (float_bound_inclusive 10.))
      (fun (x1, y1, x2, y2) ->
        let u = Point.v x1 y1 and v = Point.v x2 y2 in
        match Quadrant.classify ~origin:u v with
        | None -> Quadrant.classify ~origin:v u = None
        | Some q -> Quadrant.classify ~origin:v u = Some (Quadrant.opposite q));
    prop "every distinct point is in exactly one quadrant"
      QCheck2.Gen.(
        quad (float_bound_inclusive 10.) (float_bound_inclusive 10.)
          (float_bound_inclusive 10.) (float_bound_inclusive 10.))
      (fun (x1, y1, x2, y2) ->
        let u = Point.v x1 y1 and v = Point.v x2 y2 in
        if Point.equal u v then Quadrant.classify ~origin:u v = None
        else Quadrant.classify ~origin:u v <> None);
  ]

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "dist" `Quick test_dist;
          Alcotest.test_case "cross" `Quick test_cross;
        ] );
      ( "hull",
        [
          Alcotest.test_case "square" `Quick test_hull_square;
          Alcotest.test_case "collinear" `Quick test_hull_collinear;
          Alcotest.test_case "small" `Quick test_hull_small;
          Alcotest.test_case "duplicates" `Quick test_hull_duplicates;
        ] );
      ( "quadrant",
        [
          Alcotest.test_case "classify" `Quick test_quadrants;
          Alcotest.test_case "indices" `Quick test_quadrant_indices;
        ] );
      ("properties", props);
    ]
