module Point = Mlbs_geom.Point
module Quadrant = Mlbs_geom.Quadrant
module Hull = Mlbs_geom.Hull

let edge_nodes net =
  Array.init (Network.n_nodes net) (fun u ->
      Array.init 4 (fun k ->
          Array.length (Network.neighbors_in_quadrant net u (Quadrant.of_index k)) = 0))

let is_edge_node net u =
  List.exists
    (fun q -> Array.length (Network.neighbors_in_quadrant net u q) = 0)
    Quadrant.all

(* Right-hand-rule perimeter walk: from the current directed edge
   (prev -> cur), the next edge is the neighbour of [cur] making the
   smallest clockwise angle from the reversed incoming direction. *)
let outer_boundary net =
  let points = Network.positions net in
  let hull = Hull.hull_indices points in
  match hull with
  | [] -> []
  | start :: _ ->
      let angle_from (a : Point.t) (b : Point.t) =
        atan2 (b.Point.y -. a.Point.y) (b.Point.x -. a.Point.x)
      in
      let next prev cur =
        let base = angle_from points.(cur) points.(prev) in
        let best = ref None in
        Array.iter
          (fun v ->
            if v <> prev || Array.length (Network.neighbors net cur) = 1 then begin
              let a = angle_from points.(cur) points.(v) in
              (* Clockwise offset from the incoming direction, in (0, 2π]. *)
              let off =
                let d = base -. a in
                let d = if d <= 0. then d +. (2. *. Float.pi) else d in
                if d > 2. *. Float.pi then d -. (2. *. Float.pi) else d
              in
              match !best with
              | Some (best_off, _) when best_off <= off -> ()
              | _ -> best := Some (off, v)
            end)
          (Network.neighbors net cur);
        Option.map snd !best
      in
      (* Virtual predecessor: a point due south of the start so the walk
         begins heading counter-clockwise around the perimeter. *)
      let virtual_prev = Point.v (points.(start)).Point.x ((points.(start)).Point.y -. 1.) in
      let first =
        let base = atan2 (virtual_prev.Point.y -. (points.(start)).Point.y)
                     (virtual_prev.Point.x -. (points.(start)).Point.x) in
        let best = ref None in
        Array.iter
          (fun v ->
            let a = angle_from points.(start) points.(v) in
            let off =
              let d = base -. a in
              if d <= 0. then d +. (2. *. Float.pi) else d
            in
            match !best with
            | Some (best_off, _) when best_off <= off -> ()
            | _ -> best := Some (off, v))
          (Network.neighbors net start);
        Option.map snd !best
      in
      let limit = 4 * Network.n_nodes net in
      let rec walk prev cur acc steps =
        if steps > limit then None
        else if cur = start then Some (List.rev acc)
        else
          match next prev cur with
          | None -> None
          | Some v -> walk cur v (cur :: acc) (steps + 1)
      in
      let result =
        match first with
        | None -> None
        | Some f -> if f = start then Some [ start ] else walk start f [ start ] 1
      in
      (match result with Some cycle -> cycle | None -> hull)
