module Point = Mlbs_geom.Point
module Rng = Mlbs_prng.Rng
module Bfs = Mlbs_graph.Bfs

type shape =
  | Uniform
  | Clustered of { clusters : int; spread : float }
  | Corridor of { breadth : float }
  | Grid_jitter of { jitter : float }

type spec = {
  n_nodes : int;
  width : float;
  height : float;
  radius : float;
  shape : shape;
}

let paper_spec ~n_nodes =
  { n_nodes; width = 50.; height = 50.; radius = 10.; shape = Uniform }

(* Box–Muller from two uniform draws; deterministic in the stream. *)
let gaussian rng ~mean ~sigma =
  let u1 = Float.max 1e-12 (Rng.float rng 1.0) in
  let u2 = Rng.float rng 1.0 in
  mean +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

(* Rejection-sample a point inside the area: clamping to the boundary
   would stack coincident positions, which the UDG model rejects. *)
let in_area spec (p : Point.t) =
  p.Point.x >= 0. && p.Point.x <= spec.width && p.Point.y >= 0. && p.Point.y <= spec.height

let rec sample_until rng spec draw =
  let p = draw () in
  if in_area spec p then p else sample_until rng spec draw

let sample_points rng spec =
  match spec.shape with
  | Uniform ->
      Array.init spec.n_nodes (fun _ ->
          Point.v (Rng.float rng spec.width) (Rng.float rng spec.height))
  | Clustered { clusters; spread } ->
      if clusters < 1 then invalid_arg "Deployment: clusters < 1";
      let centres =
        Array.init clusters (fun _ ->
            (Rng.float rng spec.width, Rng.float rng spec.height))
      in
      Array.init spec.n_nodes (fun _ ->
          sample_until rng spec (fun () ->
              let cx, cy = centres.(Rng.int rng clusters) in
              Point.v (gaussian rng ~mean:cx ~sigma:spread)
                (gaussian rng ~mean:cy ~sigma:spread)))
  | Corridor { breadth } ->
      if breadth <= 0. then invalid_arg "Deployment: corridor breadth <= 0";
      (* A strip around the main diagonal: position along the diagonal
         is uniform, offset across it is uniform in [-b/2, b/2]. *)
      let diag = sqrt ((spec.width *. spec.width) +. (spec.height *. spec.height)) in
      let ux = spec.width /. diag and uy = spec.height /. diag in
      Array.init spec.n_nodes (fun _ ->
          sample_until rng spec (fun () ->
              let along = Rng.float rng diag in
              let across = Rng.float rng breadth -. (breadth /. 2.) in
              Point.v ((along *. ux) -. (across *. uy)) ((along *. uy) +. (across *. ux))))
  | Grid_jitter { jitter } ->
      if jitter < 0. then invalid_arg "Deployment: negative jitter";
      let cols = int_of_float (ceil (sqrt (float_of_int spec.n_nodes))) in
      let rows = (spec.n_nodes + cols - 1) / cols in
      let dx = spec.width /. float_of_int cols
      and dy = spec.height /. float_of_int rows in
      Array.init spec.n_nodes (fun i ->
          let c = i mod cols and r = i / cols in
          let base_x = (float_of_int c +. 0.5) *. dx
          and base_y = (float_of_int r +. 0.5) *. dy in
          sample_until rng spec (fun () ->
              let jx = Rng.float rng (2. *. jitter) -. jitter
              and jy = Rng.float rng (2. *. jitter) -. jitter in
              Point.v (base_x +. jx) (base_y +. jy)))

let generate ?(max_attempts = 200) rng spec =
  if spec.n_nodes <= 0 then invalid_arg "Deployment.generate: n_nodes <= 0";
  let rec attempt k =
    if k >= max_attempts then
      failwith
        (Printf.sprintf
           "Deployment.generate: no connected deployment after %d attempts (n=%d, r=%.1f)"
           max_attempts spec.n_nodes spec.radius);
    let net = Network.create ~radius:spec.radius (sample_points rng spec) in
    if Network.is_connected net then net else attempt (k + 1)
  in
  attempt 0

let select_source rng net ~min_ecc ~max_ecc =
  if max_ecc < min_ecc then invalid_arg "Deployment.select_source: max_ecc < min_ecc";
  let g = Network.graph net in
  let n = Network.n_nodes net in
  let ecc = Array.init n (fun v -> Bfs.eccentricity g ~source:v) in
  let qualified = ref [] in
  for v = n - 1 downto 0 do
    if ecc.(v) >= min_ecc && ecc.(v) <= max_ecc then qualified := v :: !qualified
  done;
  match !qualified with
  | _ :: _ as vs -> Rng.pick rng vs
  | [] ->
      (* Fall back to the closest eccentricity; ties broken uniformly. *)
      let gap e = if e < min_ecc then min_ecc - e else e - max_ecc in
      let best = Array.fold_left (fun acc e -> min acc (gap e)) max_int ecc in
      let close = ref [] in
      for v = n - 1 downto 0 do
        if gap ecc.(v) = best then close := v :: !close
      done;
      Rng.pick rng !close

let density spec = float_of_int spec.n_nodes /. (spec.width *. spec.height)
