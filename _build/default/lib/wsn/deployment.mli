(** Random deployments matching the paper's simulation setting (§V.A):
    "50∼300 nodes, with a communication radius of 10 feet, are deployed
    uniformly to cover an interest area of 50 × 50 Sq. Ft. [...] The
    source is randomly selected with a distance of 5∼8 hops to the
    farthest node." *)

(** Spatial distribution of the nodes. The paper evaluates uniform
    deployments only; the other shapes ship with the library for
    robustness studies (see the bench's "deployment shapes" table). *)
type shape =
  | Uniform  (** i.i.d. uniform over the area — the paper's setting *)
  | Clustered of { clusters : int; spread : float }
      (** hotspots: cluster centres uniform, members Gaussian around
          them with the given standard deviation (ft) *)
  | Corridor of { breadth : float }
      (** a long thin strip of the given breadth along the area's
          diagonal — stresses large hop counts *)
  | Grid_jitter of { jitter : float }
      (** a regular √n×√n grid, each node displaced uniformly by at most
          [jitter] in each coordinate — near-planned deployments *)

type spec = {
  n_nodes : int;  (** number of nodes to place *)
  width : float;  (** area width (ft) *)
  height : float;  (** area height (ft) *)
  radius : float;  (** communication radius (ft) *)
  shape : shape;
}

(** The paper's setting with a given node count (uniform shape). *)
val paper_spec : n_nodes:int -> spec

(** [generate rng spec] samples node positions uniformly in the area and
    resamples whole deployments until the UDG is connected (a broadcast
    must be able to reach every node). Raises [Failure] after
    [max_attempts] (default 200) failed attempts — a sign the requested
    density cannot connect. *)
val generate : ?max_attempts:int -> Mlbs_prng.Rng.t -> spec -> Network.t

(** [select_source rng net ~min_ecc ~max_ecc] picks a node uniformly
    among those whose eccentricity lies in [min_ecc, max_ecc]; when no
    node qualifies, it falls back to a node of eccentricity closest to
    the interval (paper: sources 5–8 hops from the farthest node, which
    low-density deployments cannot always provide). *)
val select_source : Mlbs_prng.Rng.t -> Network.t -> min_ecc:int -> max_ecc:int -> int

(** [density spec] is nodes per square foot — the x-axis of the paper's
    figures. *)
val density : spec -> float
