(** Uniform spatial hash grid over the deployment area.

    Building the UDG naively is O(n²) distance checks; bucketing points
    into cells of side = communication radius reduces neighbour search
    to the 3×3 surrounding cells, O(n · density) expected — the
    difference matters when sweeping hundreds of seeded deployments per
    figure. *)

type t

(** [create ~cell points] indexes [points] with square cells of side
    [cell]. Raises [Invalid_argument] when [cell <= 0]. *)
val create : cell:float -> Mlbs_geom.Point.t array -> t

(** [neighbors_within t i ~radius] is the list of indices [j ≠ i] with
    [dist points.(i) points.(j) <= radius], unsorted. [radius] must not
    exceed the cell size. *)
val neighbors_within : t -> int -> radius:float -> int list

(** [pairs_within t ~radius] is every unordered pair within [radius],
    each reported once with the smaller index first. *)
val pairs_within : t -> radius:float -> (int * int) list
