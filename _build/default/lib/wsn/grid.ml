module Point = Mlbs_geom.Point

type t = {
  cell : float;
  points : Point.t array;
  buckets : (int * int, int list) Hashtbl.t;
  min_x : float;
  min_y : float;
}

let cell_of t (p : Point.t) =
  (int_of_float (floor ((p.Point.x -. t.min_x) /. t.cell)),
   int_of_float (floor ((p.Point.y -. t.min_y) /. t.cell)))

let create ~cell points =
  if cell <= 0. then invalid_arg "Grid.create: cell <= 0";
  let min_x = Array.fold_left (fun acc p -> min acc p.Point.x) 0. points in
  let min_y = Array.fold_left (fun acc p -> min acc p.Point.y) 0. points in
  let t = { cell; points; buckets = Hashtbl.create (max 16 (Array.length points)); min_x; min_y } in
  Array.iteri
    (fun i p ->
      let key = cell_of t p in
      Hashtbl.replace t.buckets key (i :: Option.value ~default:[] (Hashtbl.find_opt t.buckets key)))
    points;
  t

let neighbors_within t i ~radius =
  if radius > t.cell +. 1e-9 then invalid_arg "Grid.neighbors_within: radius exceeds cell size";
  let p = t.points.(i) in
  let cx, cy = cell_of t p in
  let r2 = radius *. radius in
  let acc = ref [] in
  for dx = -1 to 1 do
    for dy = -1 to 1 do
      match Hashtbl.find_opt t.buckets (cx + dx, cy + dy) with
      | None -> ()
      | Some members ->
          List.iter
            (fun j -> if j <> i && Point.dist2 p t.points.(j) <= r2 then acc := j :: !acc)
            members
    done
  done;
  !acc

let pairs_within t ~radius =
  let acc = ref [] in
  Array.iteri
    (fun i _ ->
      List.iter (fun j -> if i < j then acc := (i, j) :: !acc) (neighbors_within t i ~radius))
    t.points;
  !acc
