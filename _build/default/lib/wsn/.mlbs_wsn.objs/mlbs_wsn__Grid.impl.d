lib/wsn/grid.ml: Array Hashtbl List Mlbs_geom Option
