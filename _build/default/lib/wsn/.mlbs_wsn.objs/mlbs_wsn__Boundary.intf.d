lib/wsn/boundary.mli: Network
