lib/wsn/network.mli: Format Mlbs_geom Mlbs_graph
