lib/wsn/deployment.ml: Array Float Mlbs_geom Mlbs_graph Mlbs_prng Network Printf
