lib/wsn/grid.mli: Mlbs_geom
