lib/wsn/deployment.mli: Mlbs_prng Network
