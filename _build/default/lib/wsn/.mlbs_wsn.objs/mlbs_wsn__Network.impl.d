lib/wsn/network.ml: Array Format Grid Hashtbl List Mlbs_geom Mlbs_graph Printf
