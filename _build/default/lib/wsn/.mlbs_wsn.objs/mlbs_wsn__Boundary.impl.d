lib/wsn/boundary.ml: Array Float List Mlbs_geom Network Option
