(** Network boundary construction — reference [6] of the paper.

    Algorithm 2 "appl[ies] the hull algorithm and the boundary
    construction algorithm to constitute the edge of the networks". The
    *edge nodes* that seed the E-model are the nodes with an empty
    neighbourhood in some quadrant; this module additionally identifies
    the outer boundary of the deployment (perimeter walk from a hull
    node) for reporting and for ablation against the quadrant rule. *)

(** [edge_nodes net] marks, per node and quadrant, whether
    [N(u) ∩ Q_i(u) = ∅] — exactly the initialisation condition of
    Algorithm 2, step 2. Result is indexed [node].[quadrant index]. *)
val edge_nodes : Network.t -> bool array array

(** [is_edge_node net u] is [true] when some quadrant of [u] is empty
    of neighbours. *)
val is_edge_node : Network.t -> int -> bool

(** [outer_boundary net] walks the perimeter starting from a convex-hull
    node, repeatedly taking the most counter-clockwise neighbour (a
    right-hand-rule walk on the UDG). Returns the closed walk as a node
    list (first node not repeated). Falls back to the hull vertices if
    the walk degenerates (possible on very sparse graphs). *)
val outer_boundary : Network.t -> int list
