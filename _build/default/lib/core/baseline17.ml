module Bitset = Mlbs_util.Bitset
module Bfs = Mlbs_graph.Bfs
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

let plan model ~source ~start =
  let sched =
    match Model.system model with
    | Model.Async s -> s
    | Model.Sync -> invalid_arg "Baseline17.plan: duty-cycle model required"
  in
  let layers = Bfs.layers (Model.graph model) ~source in
  let w = ref (Model.initial_w model ~source) in
  (* release = the slot after which the next color may begin sending. *)
  let release = ref (start - 1) in
  let steps = ref [] in
  (* Transmissions of one color: every sender fires at its own next
     wake-up after the color is released; group them per slot. *)
  let fire_class senders =
    let timed =
      List.map (fun u -> (Wake_schedule.next_wake sched u ~after:!release, u)) senders
    in
    let sorted = List.sort compare timed in
    let by_slot = Hashtbl.create 8 in
    List.iter
      (fun (slot, u) ->
        Hashtbl.replace by_slot slot
          (u :: Option.value ~default:[] (Hashtbl.find_opt by_slot slot)))
      sorted;
    let slots = List.sort_uniq compare (List.map fst sorted) in
    List.iter
      (fun slot ->
        let group = List.rev (Hashtbl.find by_slot slot) in
        let w' = Model.apply model ~w:!w ~senders:group in
        let informed = Bitset.elements (Bitset.diff w' !w) in
        steps := { Schedule.slot; senders = group; informed } :: !steps;
        w := w')
      slots;
    release := List.fold_left (fun acc (slot, _) -> max acc slot) !release timed
  in
  List.iter
    (fun layer ->
      let classes = Baseline26.layer_classes model ~w:!w layer in
      List.iter (fun senders -> if senders <> [] then fire_class senders) classes)
    layers;
  if not (Model.complete model ~w:!w) then
    failwith "Baseline17.plan: broadcast did not cover the network (disconnected?)";
  Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start (List.rev !steps)
