(** A localized color scheme — the paper's future work ("we will focus
    on a localized color scheme and its selection to provide a more
    reliable and scalable solution", §VII).

    The global schedulers assume an off-line view of the whole frontier.
    Here every candidate decides alone from information a real node
    has:

    - its 2-hop neighbourhood (from the beaconing of §III),
    - which of those nodes hold the message (receiving channels are
      always on, so transmissions are overheard),
    - the proactive E-tuples.

    Each active slot, every candidate colours the candidates it can see
    (Algorithm 1 restricted to its 2-hop view), applies Eq. (10)
    locally, and transmits iff it places itself in the selected class.
    Inconsistent views can make two conflicting relays fire together —
    a real collision: the common receivers stay uninformed, and the
    senders retry after a deterministic exponential back-off. The
    resulting schedule is therefore {e lossy} (collisions and
    retransmissions happen), which is exactly the reliability cost the
    future-work remark anticipates; [Mlbs_sim.Validate.check_lossy]
    checks such runs. *)

type result = {
  schedule : Schedule.t;  (** every transmission actually made *)
  latency : int;  (** elapsed slots until full coverage *)
  collisions : int;  (** receiver-slot collision events *)
  retransmissions : int;  (** sends beyond each node's first *)
}

(** [run ?tuples ?max_slots model ~source ~start] simulates the
    protocol until every node is informed. [max_slots] (default
    [64 * n * r]) bounds the simulation; exceeding it raises [Failure]
    (a livelock would be a protocol bug — tests rely on this). *)
val run :
  ?tuples:Emodel.t ->
  ?max_slots:int ->
  Model.t ->
  source:int ->
  start:int ->
  result
