module Bitset = Mlbs_util.Bitset

type step = { slot : int; senders : int list; informed : int list }

type t = { n_nodes : int; source : int; start : int; steps : step list }

let make ~n_nodes ~source ~start steps =
  let rec check prev = function
    | [] -> ()
    | s :: rest ->
        if s.slot <= prev then invalid_arg "Schedule.make: slots not strictly increasing";
        if s.senders = [] then invalid_arg "Schedule.make: empty sender step";
        check s.slot rest
  in
  check (start - 1) steps;
  { n_nodes; source; start; steps }

let n_nodes t = t.n_nodes
let source t = t.source
let start t = t.start
let steps t = t.steps

let finish t =
  List.fold_left (fun acc s -> max acc s.slot) t.start t.steps

let elapsed t = if t.steps = [] then 0 else finish t - t.start + 1

let n_transmissions t =
  List.fold_left (fun acc s -> acc + List.length s.senders) 0 t.steps

let informed_after t ~slot =
  let w = Bitset.create t.n_nodes in
  Bitset.add w t.source;
  List.iter
    (fun s -> if s.slot <= slot then List.iter (Bitset.add w) s.informed)
    t.steps;
  w

let covers_all t = Bitset.is_full (informed_after t ~slot:(finish t))

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule: source=%d start=%d finish=%d elapsed=%d@," t.source
    t.start (finish t) (elapsed t);
  List.iter
    (fun s ->
      Format.fprintf ppf "  slot %d: send %a -> inform %a@," s.slot
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
        s.senders
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
        s.informed)
    t.steps;
  Format.fprintf ppf "@]"
