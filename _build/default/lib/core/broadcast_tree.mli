(** The broadcast tree induced by a schedule: who informed whom.

    §II of the paper discusses how "the adoption of each link and the
    use of its direction in the broadcasting tree can affect the overall
    delay" — e.g. the optimal Figure 1 solution uses link 1–4 in one
    direction or the other depending on wake-ups. This module extracts
    that tree from a concrete schedule so experiments and tests can
    inspect link utilisation, depth and per-hop timing. *)

type t

(** [of_schedule model schedule] derives the tree. Each informed node's
    parent is the (unique, by conflict-freedom) sender it heard; the
    source is the root. Raises [Invalid_argument] when some node is
    never informed or hears several senders at once (validate the
    schedule first). *)
val of_schedule : Model.t -> Schedule.t -> t

(** [parent t v] is [Some u] when [u]'s relay informed [v], [None] for
    the source. *)
val parent : t -> int -> int option

(** [children t u] is the sorted list of nodes informed by [u]'s
    relay. *)
val children : t -> int -> int list

(** [depth t v] is the number of tree edges from the source to [v]. *)
val depth : t -> int -> int

(** [height t] is the maximum depth. *)
val height : t -> int

(** [informed_slot t v] is the slot at which [v] received the message
    ([start - 1] convention: the source's own slot is [start_slot t]). *)
val informed_slot : t -> int -> int

(** [start_slot t] is the source's transmission slot. *)
val start_slot : t -> int

(** [relays t] is the sorted list of nodes that transmitted. *)
val relays : t -> int list

(** [directed_edges t] is every (parent, child) pair. *)
val directed_edges : t -> (int * int) list
