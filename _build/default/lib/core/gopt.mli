(** G-OPT (paper Eq. 7 sync / Eq. 8 async): at every advance, restrict
    the choice space to the classes of the extended greedy color scheme
    (Algorithm 1) and pick the class whose time counter [M] is smallest.

    The paper's experiments find G-OPT within 2 rounds of OPT in the
    synchronous system and identical in light duty cycle, at a fraction
    of OPT's search cost — our experiments reproduce that comparison. *)

(** [plan ?budget model ~source ~start] computes the G-OPT broadcast
    schedule. *)
val plan :
  ?budget:Mcounter.budget -> Model.t -> source:int -> start:int -> Schedule.t

(** [finish ?budget model ~source ~start] evaluates the G-OPT finish
    slot without materialising the schedule. *)
val finish :
  ?budget:Mcounter.budget -> Model.t -> source:int -> start:int -> Mcounter.evaluation
