(** The layer-synchronised baseline for the synchronous system — the
    "26-approximation" of Chen, Qiao, Xu & Lee (INFOCOM 2007), the best
    prior conflict-aware result the paper compares against (§V.A).

    Operationally (as the paper simulates it): build a BFS from the
    source; per 1-hop layer, apply the greedy color scheme to the
    layer's relays; launch the colors in consecutive rounds; and only
    start layer ℓ+1 once every color of layer ℓ has fired — the
    synchronisation that blocks interference-free relays and that the
    paper's pipeline removes. *)

(** [plan model ~source ~start] computes the layered schedule. Raises
    [Invalid_argument] under [Async] (use {!Baseline17}). *)
val plan : Model.t -> source:int -> start:int -> Schedule.t

(** [layer_classes model ~w layer] colours one BFS layer's relays the
    way the hop-distance schemes do: relays are the layer members with
    an uninformed neighbour; the greedy order is descending receiver
    count. Shared with {!Baseline17}. *)
val layer_classes : Model.t -> w:Model.Bitset.t -> int list -> int list list
