let default_max_sets = 64

let plan ?(budget = Mcounter.default_budget) ?(max_sets = default_max_sets) model
    ~source ~start =
  Mcounter.plan model (Choices.All { max_sets }) ~budget ~source ~start

let finish ?(budget = Mcounter.default_budget) ?(max_sets = default_max_sets) model
    ~source ~start =
  let w = Model.initial_w model ~source in
  Mcounter.evaluate model (Choices.All { max_sets }) ~budget ~w ~slot:start
