module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph

type t = {
  source : int;
  start : int;
  parent : int array; (* -1 for the source *)
  slot : int array; (* reception slot; source: start *)
  children : int list array;
}

let of_schedule model schedule =
  let n = Model.n_nodes model in
  let g = Model.graph model in
  let source = Schedule.source schedule in
  let parent = Array.make n (-1) in
  let slot = Array.make n (-1) in
  let informed = Bitset.create n in
  Bitset.add informed source;
  slot.(source) <- Schedule.start schedule;
  List.iter
    (fun step ->
      let senders = step.Schedule.senders in
      for v = 0 to n - 1 do
        if not (Bitset.mem informed v) then begin
          match List.filter (fun u -> Graph.mem_edge g u v) senders with
          | [] -> ()
          | [ u ] ->
              parent.(v) <- u;
              slot.(v) <- step.Schedule.slot
          | _ ->
              invalid_arg
                (Printf.sprintf "Broadcast_tree.of_schedule: collision at node %d" v)
        end
      done;
      (* Mark after the scan so two senders in one slot cannot chain. *)
      for v = 0 to n - 1 do
        if slot.(v) = step.Schedule.slot && v <> source then Bitset.add informed v
      done)
    (Schedule.steps schedule);
  if not (Bitset.is_full informed) then
    invalid_arg "Broadcast_tree.of_schedule: schedule does not inform every node";
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  Array.iteri (fun u l -> children.(u) <- List.sort compare l) children;
  { source; start = Schedule.start schedule; parent; slot; children }

let parent t v = if t.parent.(v) = -1 then None else Some t.parent.(v)

let children t u = t.children.(u)

let depth t v =
  let rec up v acc = if t.parent.(v) = -1 then acc else up t.parent.(v) (acc + 1) in
  up v 0

let height t =
  let h = ref 0 in
  Array.iteri (fun v _ -> h := max !h (depth t v)) t.parent;
  !h

let informed_slot t v = t.slot.(v)

let start_slot t = t.start

let relays t =
  let acc = ref [] in
  Array.iteri (fun u l -> if l <> [] then acc := u :: !acc) t.children;
  List.sort compare !acc

let directed_edges t =
  let acc = ref [] in
  Array.iteri (fun v p -> if p >= 0 then acc := (p, v) :: !acc) t.parent;
  List.sort compare !acc
