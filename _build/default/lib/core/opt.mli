(** OPT (paper Eq. 5 sync / Eq. 6 async): the optimisation target. At
    every advance, consider {e any} valid color set of Eq. (1) — realised
    as the maximal conflict-free candidate subsets, which dominate by
    monotonicity — and pick the set minimising the time counter [M].

    This is the paper's "ultimate goal [...] achieved with an off-line
    calculation, as we did in the simulator": exact on the fixture
    graphs and on instances within the state budget, beam-lookahead
    otherwise (see DESIGN.md §4). *)

(** Cap on the maximal-set enumeration per state (default 64). *)
val default_max_sets : int

(** [plan ?budget ?max_sets model ~source ~start] computes the OPT
    broadcast schedule. *)
val plan :
  ?budget:Mcounter.budget ->
  ?max_sets:int ->
  Model.t ->
  source:int ->
  start:int ->
  Schedule.t

(** [finish ?budget ?max_sets model ~source ~start] evaluates the OPT
    finish slot. *)
val finish :
  ?budget:Mcounter.budget ->
  ?max_sets:int ->
  Model.t ->
  source:int ->
  start:int ->
  Mcounter.evaluation
