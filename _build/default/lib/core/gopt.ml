let plan ?(budget = Mcounter.default_budget) model ~source ~start =
  Mcounter.plan model Choices.Greedy ~budget ~source ~start

let finish ?(budget = Mcounter.default_budget) model ~source ~start =
  let w = Model.initial_w model ~source in
  Mcounter.evaluate model Choices.Greedy ~budget ~w ~slot:start
