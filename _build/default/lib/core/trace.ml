module Bitset = Mlbs_util.Bitset

type class_eval = { members : int list; m_value : int }

type row = {
  slot : int;
  w_before : int list;
  classes : class_eval list;
  chosen : int;
  advance : int list;
}

type t = { rows : row list; schedule : Schedule.t }

let run ?(budget = Mcounter.default_budget) model space ~source ~start =
  let evaluate ~w ~slot = (Mcounter.evaluate model space ~budget ~w ~slot).Mcounter.finish in
  let rec loop w slot rows steps =
    if Model.complete model ~w then (List.rev rows, List.rev steps)
    else
      match Model.next_active_slot model ~w ~after:(slot - 1) with
      | None -> failwith "Trace.run: empty frontier before completion"
      | Some t -> (
          match Choices.enumerate model space ~w ~slot:t with
          | [] -> failwith "Trace.run: active slot without candidates"
          | choice_list ->
              let evals =
                List.map
                  (fun c ->
                    let w' = Model.apply model ~w ~senders:c in
                    { members = c; m_value = evaluate ~w:w' ~slot:(t + 1) })
                  choice_list
              in
              let chosen, _ =
                List.fold_left
                  (fun (best_i, best_v) (i, e) ->
                    if e.m_value < best_v then (i, e.m_value) else (best_i, best_v))
                  (0, (List.hd evals).m_value)
                  (List.mapi (fun i e -> (i, e)) evals)
              in
              let senders = (List.nth evals chosen).members in
              let w' = Model.apply model ~w ~senders in
              let advance = Bitset.elements (Bitset.diff w' w) in
              let row = { slot = t; w_before = Bitset.elements w; classes = evals; chosen; advance } in
              let step = { Schedule.slot = t; senders; informed = advance } in
              loop w' (t + 1) (row :: rows) (step :: steps))
  in
  let w0 = Model.initial_w model ~source in
  let rows, steps = loop w0 start [] [] in
  { rows; schedule = Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start steps }

let render ?(node_name = string_of_int) t =
  let buf = Buffer.create 1024 in
  let names xs = String.concat "," (List.map node_name xs) in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "t=%d  W={%s}\n" r.slot (names r.w_before));
      List.iteri
        (fun i e ->
          Buffer.add_string buf
            (Printf.sprintf "    C%d={%s}  M=%d%s\n" (i + 1) (names e.members) e.m_value
               (if i = r.chosen then "  <- selected" else "")))
        r.classes;
      Buffer.add_string buf (Printf.sprintf "    A={%s}\n" (names r.advance)))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "P(A)=%d (elapsed %d)\n" (Schedule.finish t.schedule)
       (Schedule.elapsed t.schedule));
  Buffer.contents buf
