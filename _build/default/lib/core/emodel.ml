module Bitset = Mlbs_util.Bitset
module Heap = Mlbs_util.Heap
module Quadrant = Mlbs_geom.Quadrant
module Network = Mlbs_wsn.Network
module Boundary = Mlbs_wsn.Boundary
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type t = { values : int array array (* node -> quadrant index -> E *) }

let infinity_ = max_int

(* Proactive CWT estimate for Eq. (11): the mean wait from [v]'s wake-ups
   (first [frames] frames) until [u]'s next wake — computable by [v] from
   [u]'s seed and last active slot. At least 1, like any real wait. *)
let edge_weight model ~cwt_frames v u =
  match Model.system model with
  | Model.Sync -> 1
  | Model.Async sched ->
      let r = Wake_schedule.rate sched in
      let horizon = cwt_frames * r in
      let wakes = Wake_schedule.wakes_in sched v ~from_:1 ~until:horizon in
      let wakes = if wakes = [] then [ Wake_schedule.next_wake sched v ~after:0 ] else wakes in
      let total =
        List.fold_left
          (fun acc wv -> acc + (Wake_schedule.next_wake sched u ~after:wv - wv))
          0 wakes
      in
      max 1 (total / List.length wakes)

(* Multi-source Dijkstra on the quadrant-i relation: settled node [u]
   relaxes each neighbour [v] having [u ∈ Q_i(v)] — equivalently
   [v ∈ Q_opp(i)(u)] — with [E_i(v) = w(v,u) + E_i(u)]. [updatable]
   restricts which nodes may change (phase B must not touch phase-A
   results). *)
let relax model ~cwt_frames ~qi values updatable =
  let net = Model.network model in
  let opp = Quadrant.opposite qi in
  let cmp (d1, _) (d2, _) = compare d1 d2 in
  let heap = Heap.create ~cmp in
  Array.iteri (fun u d -> if d <> infinity_ then Heap.push heap (d, u)) values;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d = values.(u) then
          Array.iter
            (fun v ->
              if updatable.(v) then begin
                let cand = edge_weight model ~cwt_frames v u + d in
                if cand < values.(v) then begin
                  values.(v) <- cand;
                  Heap.push heap (cand, v)
                end
              end)
            (Network.neighbors_in_quadrant net u opp);
        drain ()
  in
  drain ()

type seeding = Two_phase | Merged

let compute ?(cwt_frames = 4) ?(seeding = Two_phase) model =
  let net = Model.network model in
  let n = Model.n_nodes model in
  let boundary = Array.make n false in
  List.iter (fun u -> boundary.(u) <- true) (Boundary.outer_boundary net);
  let values =
    Array.init n (fun _ -> Array.make 4 infinity_)
  in
  List.iter
    (fun qi ->
      let k = Quadrant.to_index qi in
      let vq = Array.init n (fun u -> values.(u).(k)) in
      let empty_quadrant u = Array.length (Network.neighbors_in_quadrant net u qi) = 0 in
      (* Phase A: seed boundary nodes with an empty quadrant (step 2) —
         or, under [Merged], every empty-quadrant node at once. *)
      for u = 0 to n - 1 do
        if (seeding = Merged || boundary.(u)) && empty_quadrant u then vq.(u) <- 0
      done;
      let all = Array.make n true in
      relax model ~cwt_frames ~qi vq all;
      (* Phase B: re-seed interior local minima (step 5), then update the
         remaining ∞ values — and only those (step 6). A no-op under
         [Merged], where those nodes were seeded up front. *)
      let updatable = Array.map (fun d -> d = infinity_) vq in
      for u = 0 to n - 1 do
        if vq.(u) = infinity_ && empty_quadrant u then vq.(u) <- 0
      done;
      relax model ~cwt_frames ~qi vq updatable;
      Array.iteri
        (fun u d ->
          if d = infinity_ then
            failwith
              (Printf.sprintf "Emodel.compute: node %d unreachable from the %s edge" u
                 (Quadrant.to_string qi));
          values.(u).(k) <- d)
        vq)
    Quadrant.all;
  { values }

let value t ~node q = t.values.(node).(Quadrant.to_index q)

let max_applicable t model ~w ~node =
  let net = Model.network model in
  List.fold_left
    (fun acc q ->
      let has_uninformed =
        Array.exists
          (fun v -> not (Bitset.mem w v))
          (Network.neighbors_in_quadrant net node q)
      in
      if has_uninformed then
        let e = value t ~node q in
        match acc with Some best when best >= e -> acc | _ -> Some e
      else acc)
    None Quadrant.all

let select t model ~w ~classes =
  if classes = [] then invalid_arg "Emodel.select: no classes";
  let score cls =
    List.fold_left
      (fun acc u ->
        match max_applicable t model ~w ~node:u with
        | Some e -> max acc e
        | None -> acc)
      (-1) cls
  in
  let best = ref 0 and best_score = ref (score (List.hd classes)) in
  List.iteri
    (fun i cls ->
      if i > 0 then begin
        let s = score cls in
        if s > !best_score then begin
          best := i;
          best_score := s
        end
      end)
    classes;
  !best

let plan ?tuples model ~source ~start =
  let tuples = match tuples with Some t -> t | None -> compute model in
  let rec loop w slot steps =
    if Model.complete model ~w then List.rev steps
    else
      match Model.next_active_slot model ~w ~after:(slot - 1) with
      | None -> failwith "Emodel.plan: empty frontier before completion"
      | Some t -> (
          match Model.greedy_classes model ~w ~slot:t with
          | [] -> failwith "Emodel.plan: active slot without candidates"
          | classes ->
              let i = select tuples model ~w ~classes in
              let senders = List.nth classes i in
              let w' = Model.apply model ~w ~senders in
              let informed = Bitset.elements (Bitset.diff w' w) in
              loop w' (t + 1) ({ Schedule.slot = t; senders; informed } :: steps))
  in
  let steps = loop (Model.initial_w model ~source) start [] in
  Schedule.make ~n_nodes:(Model.n_nodes model) ~source ~start steps
