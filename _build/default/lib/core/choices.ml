module Bitset = Mlbs_util.Bitset
module Indep = Mlbs_graph.Indep

type t = Greedy | All of { max_sets : int }

let enumerate model space ~w ~slot =
  match space with
  | Greedy -> Model.greedy_classes model ~w ~slot
  | All { max_sets } -> (
      match Model.candidates model ~w ~slot with
      | [] -> []
      | cands ->
          let arr = Array.of_list cands in
          let uninformed = Bitset.complement w in
          let conflict i j =
            Mlbs_graph.Graph.common_neighbor_in (Model.graph model) arr.(i) arr.(j)
              ~candidates:uninformed
          in
          Indep.maximal ~n:(Array.length arr) ~conflict ~limit:max_sets
          |> List.map (List.map (fun i -> arr.(i))))
