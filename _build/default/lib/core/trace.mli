(** Step-by-step schedule traces in the style of the paper's Tables
    II–IV: per advance, the progress [W], the color classes on offer,
    each class's time counter [M], and the selected advance.

    Used by the walkthrough examples and the golden tests that pin the
    fixture graphs to the paper's published traces. *)

type class_eval = {
  members : int list;  (** the color class C_i *)
  m_value : int;  (** M(W + C_i, t + 1) — the finish slot if chosen *)
}

type row = {
  slot : int;  (** t of this advance *)
  w_before : int list;  (** W at the start of the step *)
  classes : class_eval list;  (** C_1 .. C_λ with their M values *)
  chosen : int;  (** index of the selected class *)
  advance : int list;  (** newly informed nodes A(W, t) *)
}

type t = { rows : row list; schedule : Schedule.t }

(** [run ?budget model space ~source ~start] executes the M-guided
    schedule while recording each decision. With [space = Greedy] this
    reproduces the paper's G-OPT tables. *)
val run :
  ?budget:Mcounter.budget ->
  Model.t ->
  Choices.t ->
  source:int ->
  start:int ->
  t

(** [render ?node_name trace] is a human-readable multi-line rendering;
    [node_name] maps ids to labels (the paper calls node 11 "s" in
    Figure 1). *)
val render : ?node_name:(int -> string) -> t -> string
