(** Analytical latency bounds (paper Theorem 1 and §VI) — the
    "OPT-analysis" curves of Figures 3, 5 and 7.

    All bounds are expressed as an elapsed latency (rounds/slots from
    the source's transmission), with [d] the hop distance from the
    source to the farthest node. *)

(** Theorem 1, synchronous: [P(A) − t_s < d + 2], i.e. the pipelined
    optimum needs fewer than [d + 2] rounds. *)
val opt_sync : d:int -> int

(** Theorem 1, duty cycle: [P(A) − t_s < 2r(d + 2)] slots. *)
val opt_async : d:int -> rate:int -> int

(** The upper bound of Jiao et al. [12] the paper quotes: total delay up
    to [17·k·d] where [k] is the maximum wait between neighbours —
    [k = 2r] in our wake model. *)
val jiao17 : d:int -> rate:int -> int

(** The 26-approximation guarantee of Chen et al. [2]: latency within
    [26·d] of the optimal's trivial lower bound [d]. *)
val chen26 : d:int -> int

(** [source_depth model ~source] computes [d] for a concrete instance. *)
val source_depth : Model.t -> source:int -> int
