let opt_sync ~d = d + 2

let opt_async ~d ~rate = 2 * rate * (d + 2)

let jiao17 ~d ~rate = 17 * (2 * rate) * d

let chen26 ~d = 26 * d

let source_depth model ~source =
  Mlbs_graph.Bfs.eccentricity (Model.graph model) ~source
