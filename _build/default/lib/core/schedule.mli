(** A computed broadcast schedule: which senders relay at which
    round/slot, and what that does to the informed set.

    Produced by every policy; consumed by the radio simulator (which
    re-derives receptions independently and checks that the claims
    hold), the trace printer and the experiment harness. *)

module Bitset = Mlbs_util.Bitset

(** One advance: the senders launched at [slot] and the nodes they newly
    informed. Slots with no transmissions (duty-cycle waits) are not
    recorded. *)
type step = { slot : int; senders : int list; informed : int list }

type t

(** [make ~n_nodes ~source ~start steps] packages a schedule. Steps must
    be strictly increasing in slot and start at [start] or later. *)
val make : n_nodes:int -> source:int -> start:int -> step list -> t

val n_nodes : t -> int
val source : t -> int

(** [start t] is [t_s], the slot of the source's transmission. *)
val start : t -> int

(** [finish t] is [t_e] = the slot of the last transmission ([start t]
    when the schedule is a lone source transmission or empty). *)
val finish : t -> int

(** [elapsed t] is [finish − start + 1] — the end-to-end latency in
    rounds/slots, the quantity plotted in the paper's figures — or [0]
    for a schedule with no transmissions (single-node network). *)
val elapsed : t -> int

(** [steps t] in ascending slot order. *)
val steps : t -> step list

(** [n_transmissions t] is the total number of individual sends. *)
val n_transmissions : t -> int

(** [informed_after t ~slot] is the informed set once every step up to
    and including [slot] has been applied (the source is informed from
    the beginning). *)
val informed_after : t -> slot:int -> Bitset.t

(** [covers_all t] is [true] iff the final informed set is all nodes. *)
val covers_all : t -> bool

(** [pp] prints a compact multi-line rendering. *)
val pp : Format.formatter -> t -> unit
