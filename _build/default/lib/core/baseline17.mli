(** The layer-synchronised baseline for the duty-cycle system — the
    "17-approximation" of Jiao et al. (ICDCS 2010), the best prior
    duty-cycle result the paper compares against (§V.A).

    Operationally (as the paper simulates it): the BFS color scheme is
    applied per hop-distance layer; a selected color's relays each
    transmit at their own next wake-up slot; a color that backs off
    re-initiates after a wait of k slots (1 ≤ k ≤ 2r); and every color
    of a layer completes before the next layer starts. The total delay
    accumulates per hop — up to 17·k·d — because the layer
    synchronisation forbids any pipelining with already-informed
    nodes. *)

(** [plan model ~source ~start] computes the layered duty-cycle
    schedule; the source transmits at its first wake slot ≥ [start].
    Raises [Invalid_argument] under [Sync] (use {!Baseline26}). *)
val plan : Model.t -> source:int -> start:int -> Schedule.t
