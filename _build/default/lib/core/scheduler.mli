(** Unified entry point over the four scheduling policies of the paper
    (Algorithm 3 plus the prior-work baselines) — what the experiment
    harness, CLI and examples drive. *)

(** A scheduling policy:
    - [Baseline]: the hop-distance layered scheme — the
      26-approximation under [Sync], the 17-approximation under
      [Async];
    - [Emodel]: greedy colors + Eq. (10) selection by the proactive
      4-tuple [E];
    - [Gopt]: greedy colors + exact/bounded [M] search (Eq. 7/8);
    - [Opt]: all color sets + exact/bounded [M] search (Eq. 5/6). *)
type policy =
  | Baseline
  | Emodel
  | Gopt of Mcounter.budget
  | Opt of { budget : Mcounter.budget; max_sets : int }

(** [Gopt]/[Opt] with default budgets. *)
val gopt : policy

val opt : policy

(** [name p] is the short label used in reports ("26-approx" /
    "17-approx" / "E-model" / "G-OPT" / "OPT"); the baseline label
    depends on the model, so [name] takes the system. *)
val name : system:Model.system -> policy -> string

(** [run model policy ~source ~start] computes the broadcast schedule
    under the policy. *)
val run : Model.t -> policy -> source:int -> start:int -> Schedule.t

(** [all_policies] in the order the paper's figures list them:
    baseline, OPT, G-OPT, E-model. *)
val all_policies : policy list
