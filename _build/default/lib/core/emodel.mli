(** The E-model (paper §IV-E, Algorithm 2, Eq. 9–11): the practical,
    non-heuristic scheduler.

    Each node proactively carries a 4-tuple [E_1..E_4(u)] estimating the
    cost of the *unfinished* work from [u] to the edge of the network in
    each quadrant — hop counts in the synchronous system (Eq. 9), CWT-
    weighted delays in the duty-cycle system (Eq. 11). Construction
    (Algorithm 2):

    + seed 0 at boundary ("edge") nodes whose quadrant-i neighbourhood
      is empty, ∞ elsewhere;
    + relax [E_i(u) = w(u,v) + min E_i(v)] over [v ∈ N(u) ∩ Q_i(u)]
      until stable;
    + re-seed 0 at any node still at ∞ whose quadrant-i neighbourhood is
      empty (interior local minima around coverage holes), and relax the
      remaining ∞ values — and only those — again.

    Scheduling (Eq. 10) then picks, among the greedy color classes, the
    one holding the node with the largest applicable [E] value: the
    longer the remaining path behind a relay, the earlier it must enter
    the pipeline. Construction cost is O(1) messages per node per
    quadrant (Theorem 3). *)

module Quadrant = Mlbs_geom.Quadrant

type t

(** How the zero seeds of Algorithm 2 are chosen.

    - [Two_phase] (default, the paper's steps 2 and 5): first only
      {e boundary} nodes with an empty quadrant seed 0; interior
      empty-quadrant nodes (local minima around holes) are re-seeded in
      a second pass that fills the remaining ∞ values only.
    - [Merged]: every empty-quadrant node seeds 0 from the start — the
      fixpoint a fully asynchronous distributed construction converges
      to (see [Mlbs_proto.E_protocol]); values are pointwise ≤ the
      two-phase ones. *)
type seeding = Two_phase | Merged

(** [compute ?cwt_frames ?seeding model] builds the tuples. Under
    [Async], the per-edge weight [t(u,v)] is estimated proactively as
    the mean CWT from [u]'s wake-ups to [v]'s next wake-up over the
    first [cwt_frames] frames (default 4) — the forecast any node can
    make from its neighbour's seed and last active slot. *)
val compute : ?cwt_frames:int -> ?seeding:seeding -> Model.t -> t

(** [edge_weight model ~cwt_frames u v] is the per-hop weight of
    Eq. (9)/(11): [1] under [Sync]; under [Async], the proactive
    estimate of [t(u,v)] — how long [u] waits for [v]'s next wake-up.
    Exposed for the distributed construction
    ([Mlbs_proto.E_protocol]), which must price edges the same way. *)
val edge_weight : Model.t -> cwt_frames:int -> int -> int -> int

(** [value t ~node q] is [E_q(node)]. After construction no value is ∞
    (every node reaches an empty-quadrant node inside its own quadrant
    DAG); this is asserted during [compute]. *)
val value : t -> node:int -> Quadrant.t -> int

(** [max_applicable t model ~w ~node] is the largest [E_k(node)] over
    quadrants [k] that still contain uninformed neighbours of [node] —
    the score Eq. (10) compares; [None] when no quadrant applies. *)
val max_applicable : t -> Model.t -> w:Model.Bitset.t -> node:int -> int option

(** [select t model ~w ~classes] is the index (into [classes]) that
    Eq. (10) picks: the class containing the node with the largest
    applicable E value; ties prefer the earlier (greedier) class.
    Raises [Invalid_argument] on an empty class list. *)
val select : t -> Model.t -> w:Model.Bitset.t -> classes:int list list -> int

(** [plan ?tuples model ~source ~start] runs the E-model broadcast:
    at each active slot, color the candidates with Algorithm 1 and
    launch the Eq. (10) class. [tuples] defaults to [compute model]
    (pass it explicitly to amortise over many runs). *)
val plan : ?tuples:t -> Model.t -> source:int -> start:int -> Schedule.t
