(** A CDS-backbone layered baseline, after Gandhi, Mishra &
    Parthasarathy [4] — the related-work scheme the 26-approximation
    improved on.

    The broadcast tree is built on a connected dominating set: only
    backbone nodes (plus the source) relay; every other node is a leaf
    that hears a backbone neighbour. Scheduling is still layer-
    synchronised BFS with greedy coloring, so it shares the layered
    schemes' blocking behaviour; restricting relays to the backbone
    trades a few extra rounds of depth for far fewer transmissions.
    Included for the ablation study ("how much of the baseline's cost is
    the layering, how much the relay set"). *)

(** [plan model ~source ~start] computes the schedule. Relays are
    restricted to [CDS ∪ {source}]. Sync only: raises
    [Invalid_argument] under [Async]. *)
val plan : Model.t -> source:int -> start:int -> Schedule.t
