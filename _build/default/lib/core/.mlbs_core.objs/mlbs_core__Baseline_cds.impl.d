lib/core/baseline_cds.ml: List Mlbs_graph Mlbs_util Model Schedule
