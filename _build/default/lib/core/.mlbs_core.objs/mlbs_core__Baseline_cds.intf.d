lib/core/baseline_cds.mli: Model Schedule
