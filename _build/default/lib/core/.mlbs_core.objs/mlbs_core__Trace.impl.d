lib/core/trace.ml: Buffer Choices List Mcounter Mlbs_util Model Printf Schedule String
