lib/core/opt.mli: Mcounter Model Schedule
