lib/core/mcounter.ml: Choices Hashtbl List Mlbs_graph Mlbs_util Model Option Schedule
