lib/core/broadcast_tree.mli: Model Schedule
