lib/core/broadcast_tree.ml: Array List Mlbs_graph Mlbs_util Model Printf Schedule
