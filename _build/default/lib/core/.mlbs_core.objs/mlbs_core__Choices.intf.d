lib/core/choices.mli: Model
