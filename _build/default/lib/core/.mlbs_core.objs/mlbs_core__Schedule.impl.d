lib/core/schedule.ml: Format List Mlbs_util
