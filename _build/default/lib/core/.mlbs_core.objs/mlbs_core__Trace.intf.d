lib/core/trace.mli: Choices Mcounter Model Schedule
