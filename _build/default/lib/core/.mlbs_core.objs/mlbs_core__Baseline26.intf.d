lib/core/baseline26.mli: Model Schedule
