lib/core/localized.mli: Emodel Model Schedule
