lib/core/gopt.ml: Choices Mcounter Model
