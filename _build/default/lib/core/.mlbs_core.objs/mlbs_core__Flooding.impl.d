lib/core/flooding.ml: Array Fun List Mlbs_dutycycle Mlbs_graph Mlbs_util Model Schedule
