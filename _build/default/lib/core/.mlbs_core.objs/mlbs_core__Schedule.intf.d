lib/core/schedule.mli: Format Mlbs_util
