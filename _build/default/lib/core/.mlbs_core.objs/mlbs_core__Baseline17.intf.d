lib/core/baseline17.mli: Model Schedule
