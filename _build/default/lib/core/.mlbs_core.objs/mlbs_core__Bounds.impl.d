lib/core/bounds.ml: Mlbs_graph Model
