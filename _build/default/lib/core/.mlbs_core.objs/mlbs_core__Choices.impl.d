lib/core/choices.ml: Array List Mlbs_graph Mlbs_util Model
