lib/core/model.mli: Mlbs_dutycycle Mlbs_graph Mlbs_util Mlbs_wsn
