lib/core/baseline26.ml: List Mlbs_graph Mlbs_util Model Schedule
