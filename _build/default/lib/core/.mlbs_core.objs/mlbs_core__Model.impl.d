lib/core/model.ml: List Mlbs_dutycycle Mlbs_graph Mlbs_util Mlbs_wsn Printf
