lib/core/mcounter.mli: Choices Mlbs_util Model Schedule
