lib/core/flooding.mli: Model Schedule
