lib/core/baseline17.ml: Baseline26 Hashtbl List Mlbs_dutycycle Mlbs_graph Mlbs_util Model Option Schedule
