lib/core/gopt.mli: Mcounter Model Schedule
