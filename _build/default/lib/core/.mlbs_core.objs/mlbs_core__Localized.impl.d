lib/core/localized.ml: Array Emodel Fun List Mlbs_dutycycle Mlbs_graph Mlbs_util Model Printf Schedule
