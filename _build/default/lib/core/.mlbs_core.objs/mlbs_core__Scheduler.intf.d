lib/core/scheduler.mli: Mcounter Model Schedule
