lib/core/emodel.mli: Mlbs_geom Model Schedule
