lib/core/opt.ml: Choices Mcounter Model
