lib/core/scheduler.ml: Baseline17 Baseline26 Emodel Gopt Mcounter Model Opt
