lib/core/bounds.mli: Model
