lib/core/emodel.ml: Array List Mlbs_dutycycle Mlbs_geom Mlbs_util Mlbs_wsn Model Printf Schedule
