(** Disjoint-set forests with union by rank and path compression.

    Used to check deployment connectivity quickly before running the
    (more expensive) BFS-based analyses, and by the boundary walker to
    group perimeter fragments. *)

type t

(** [create n] is a structure over elements [0 .. n-1], each in its own
    singleton class. *)
val create : int -> t

(** [find t i] is the canonical representative of [i]'s class. *)
val find : t -> int -> int

(** [union t i j] merges the classes of [i] and [j]; returns [true] when
    the classes were distinct (i.e. an actual merge happened). *)
val union : t -> int -> int -> bool

(** [same t i j] is [true] iff [i] and [j] are in the same class. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of distinct classes. *)
val count : t -> int

(** [class_sizes t] maps each representative to its class size. *)
val class_sizes : t -> (int * int) list
