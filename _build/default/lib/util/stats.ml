type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let require_nonempty xs op = if xs = [] then invalid_arg ("Stats." ^ op ^ ": empty sample")

let mean xs =
  require_nonempty xs "mean";
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  require_nonempty xs "stddev";
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let median xs =
  require_nonempty xs "median";
  let sorted = List.sort compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let summarize xs =
  require_nonempty xs "summarize";
  let sorted = List.sort compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = arr.(0);
    max = arr.(n - 1);
    median = median xs;
  }

let of_ints = List.map float_of_int

let improvement ~baseline ~ours =
  if baseline <= 0. then invalid_arg "Stats.improvement: non-positive baseline";
  (baseline -. ours) /. baseline

let pp_summary ppf s =
  Format.fprintf ppf "%.2f ± %.2f [%.0f, %.0f]" s.mean s.stddev s.min s.max
