(** Minimal ASCII line charts for the experiment reports.

    The paper's evaluation is figures, not tables; this renderer lets
    the benchmark harness show each figure's *shape* (who wins, where
    curves bend) directly in the terminal, alongside the exact numbers.
    Pure and deterministic, so it is testable. *)

type series = { label : string; points : (float * float) list }

(** [render ?width ?height ?y_label series] plots all series on a common
    scale. Each series is drawn with its own marker ('a', 'b', …, taken
    in order); coinciding points show the marker of the earliest series
    ('#' when two series overlap exactly). Axes are annotated with the
    data ranges; a legend maps markers to labels. Defaults: 64×16
    plotting cells.

    Raises [Invalid_argument] when no series has a point or a dimension
    is smaller than 2. *)
val render : ?width:int -> ?height:int -> ?y_label:string -> series list -> string
