type series = { label : string; points : (float * float) list }

let render ?(width = 64) ?(height = 16) ?(y_label = "") series =
  if width < 2 || height < 2 then invalid_arg "Chart.render: dimensions too small";
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Chart.render: no points";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
  let x0 = fmin xs and x1 = fmax xs in
  let y0 = fmin ys and y1 = fmax ys in
  let xr = if x1 > x0 then x1 -. x0 else 1. in
  let yr = if y1 > y0 then y1 -. y0 else 1. in
  let cell x y =
    let cx = int_of_float (Float.round ((x -. x0) /. xr *. float_of_int (width - 1))) in
    let cy = int_of_float (Float.round ((y -. y0) /. yr *. float_of_int (height - 1))) in
    (max 0 (min (width - 1) cx), max 0 (min (height - 1) cy))
  in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun i s ->
      let marker = Char.chr (Char.code 'a' + (i mod 26)) in
      List.iter
        (fun (x, y) ->
          let cx, cy = cell x y in
          grid.(cy).(cx) <- (if grid.(cy).(cx) = ' ' then marker else '#'))
        s.points)
    series;
  let buf = Buffer.create 1024 in
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  for row = height - 1 downto 0 do
    let axis =
      if row = height - 1 then Printf.sprintf "%10.1f |" y1
      else if row = 0 then Printf.sprintf "%10.1f |" y0
      else Printf.sprintf "%10s |" ""
    in
    Buffer.add_string buf axis;
    Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  let left = Printf.sprintf "%.3g" x0 and right = Printf.sprintf "%.3g" x1 in
  let gap = max 1 (width - String.length left - String.length right) in
  Buffer.add_string buf
    (Printf.sprintf "%10s  %s%s%s\n" "" left (String.make gap ' ') right);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%12s = %s\n"
           (String.make 1 (Char.chr (Char.code 'a' + (i mod 26))))
           s.label))
    series;
  Buffer.contents buf
