type t = { parent : int array; rank : int array; mutable classes : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then false
  else begin
    (if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
     else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
     else begin
       t.parent.(rj) <- ri;
       t.rank.(ri) <- t.rank.(ri) + 1
     end);
    t.classes <- t.classes - 1;
    true
  end

let same t i j = find t i = find t j

let count t = t.classes

let class_sizes t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      let r = find t i in
      Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    t.parent;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
