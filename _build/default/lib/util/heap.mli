(** Binary min-heaps, parameterised by an explicit comparison.

    Used as the frontier for best-first scheduler search and for the
    CWT-weighted relaxation in the asynchronous E-model (a Dijkstra-style
    pass over wake schedules). *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** [length h] is the number of stored elements. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [push h x] inserts [x]; amortised O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek h] is the minimum element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum, or [None] when empty. *)
val pop : 'a t -> 'a option

(** [pop_exn h] removes and returns the minimum. Raises [Not_found] when
    empty. *)
val pop_exn : 'a t -> 'a

(** [of_list ~cmp xs] heapifies [xs] in O(n). *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list h] drains a copy of [h] into an ascending list,
    leaving [h] untouched. *)
val to_sorted_list : 'a t -> 'a list
