lib/util/tab.mli:
