lib/util/chart.ml: Array Buffer Char Float List Printf String
