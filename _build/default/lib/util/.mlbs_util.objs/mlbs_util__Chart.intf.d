lib/util/chart.mli:
