lib/util/heap.mli:
