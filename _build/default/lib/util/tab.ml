type t = { title : string; headers : string list; mutable rows : string list list }

let create ~title headers =
  if headers = [] then invalid_arg "Tab.create: no headers";
  { title; headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Tab.add_row: %d cells for %d headers" (List.length cells)
         (List.length t.headers));
  t.rows <- t.rows @ [ cells ]

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.2f") values)

let widths t =
  let all = t.headers :: t.rows in
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  List.iter measure all;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf " %-*s " w.(i) cell);
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then Buffer.add_string buf (t.title ^ "\n");
  sep ();
  row t.headers;
  sep ();
  List.iter row t.rows;
  sep ();
  Buffer.contents buf

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let print t = print_string (render t)
