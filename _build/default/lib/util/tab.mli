(** ASCII table rendering for experiment reports.

    The benchmark harness regenerates each figure of the paper as a table
    of series (one column per scheduling policy, one row per density
    point); this module renders those tables with aligned columns, and
    can also emit CSV for external plotting. *)

type t

(** [create ~title headers] starts a table with the given column
    headers. Raises [Invalid_argument] on an empty header list. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; the cell count must match the
    header count. *)
val add_row : t -> string list -> unit

(** [add_float_row t ~label values] formats a label cell followed by
    numeric cells with two decimals. *)
val add_float_row : t -> label:string -> float list -> unit

(** [render t] is the boxed ASCII rendering, ending with a newline. *)
val render : t -> string

(** [to_csv t] is a CSV rendering (header line first, comma separated,
    fields containing commas or quotes are quoted). *)
val to_csv : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit
