(** Small descriptive-statistics helpers for the experiment harness.

    Every figure in the paper plots a latency averaged over random
    deployments; these helpers compute the summary rows that
    [Mlbs_workload.Report] prints. *)

(** Summary of a sample: count, mean, standard deviation (population),
    min, max, and median. *)
type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(** [mean xs] is the arithmetic mean. Raises [Invalid_argument] on an
    empty list. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

(** [median xs] is the median (average of middle two for even length). *)
val median : float list -> float

(** [summarize xs] computes all summary fields in one pass over a sorted
    copy. Raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

(** [of_ints xs] converts for convenience. *)
val of_ints : int list -> float list

(** [improvement ~baseline ~ours] is the fractional latency reduction
    [(baseline - ours) / baseline]; the paper reports these as "70%
    improvement" style numbers. Raises [Invalid_argument] when
    [baseline <= 0]. *)
val improvement : baseline:float -> ours:float -> float

(** [pp_summary] prints "mean ± stddev [min, max]". *)
val pp_summary : Format.formatter -> summary -> unit
