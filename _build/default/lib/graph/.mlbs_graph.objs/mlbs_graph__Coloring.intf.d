lib/graph/coloring.mli:
