lib/graph/graph.mli: Format Mlbs_util
