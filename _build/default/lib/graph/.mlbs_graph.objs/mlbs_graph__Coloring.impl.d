lib/graph/coloring.ml: List
