lib/graph/cds.mli: Graph
