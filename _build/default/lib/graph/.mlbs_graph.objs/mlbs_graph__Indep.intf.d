lib/graph/indep.mli:
