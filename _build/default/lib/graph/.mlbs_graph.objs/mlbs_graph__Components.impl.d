lib/graph/components.ml: Array Graph List Mlbs_util
