lib/graph/graph.ml: Array Format List Mlbs_util Printf
