lib/graph/bfs.mli: Graph Mlbs_util
