lib/graph/metrics.ml: Array Bfs Graph Hashtbl List Option
