lib/graph/cds.ml: Components Graph List Mlbs_util Queue
