lib/graph/indep.ml: Array List Mlbs_util
