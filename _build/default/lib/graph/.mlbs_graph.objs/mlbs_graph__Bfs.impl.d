lib/graph/bfs.ml: Array Graph List Mlbs_util Printf Queue
