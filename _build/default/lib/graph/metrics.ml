let eccentricities g =
  Array.init (Graph.n_nodes g) (fun v -> Bfs.eccentricity g ~source:v)

let diameter g =
  if Graph.n_nodes g = 0 then 0 else Array.fold_left max 0 (eccentricities g)

let radius g =
  if Graph.n_nodes g = 0 then 0
  else Array.fold_left min max_int (eccentricities g)

let average_degree g =
  let n = Graph.n_nodes g in
  if n = 0 then 0. else 2. *. float_of_int (Graph.n_edges g) /. float_of_int n

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.n_nodes g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
