module Union_find = Mlbs_util.Union_find

let labels g =
  let n = Graph.n_nodes g in
  let uf = Union_find.create n in
  List.iter (fun (u, v) -> ignore (Union_find.union uf u v)) (Graph.edges g);
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let root = Union_find.find uf v in
    if label.(root) = -1 then begin
      label.(root) <- !next;
      incr next
    end;
    label.(v) <- label.(root)
  done;
  label

let count g =
  let n = Graph.n_nodes g in
  if n = 0 then 0
  else begin
    let l = labels g in
    1 + Array.fold_left max 0 l
  end

let is_connected g = count g <= 1

let largest g =
  let n = Graph.n_nodes g in
  if n = 0 then []
  else begin
    let l = labels g in
    let k = 1 + Array.fold_left max 0 l in
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) l;
    let best = ref 0 in
    for c = 1 to k - 1 do
      if sizes.(c) > sizes.(!best) then best := c
    done;
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if l.(v) = !best then acc := v :: !acc
    done;
    !acc
  end
