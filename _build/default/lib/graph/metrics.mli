(** Whole-graph metrics used by deployments and the experiment reports:
    diameter, radius, eccentricities, average degree. *)

(** [eccentricities g] is the per-node eccentricity of a connected
    graph. Raises [Invalid_argument] when disconnected. O(n·m). *)
val eccentricities : Graph.t -> int array

(** [diameter g] is the maximum eccentricity. *)
val diameter : Graph.t -> int

(** [radius g] is the minimum eccentricity. *)
val radius : Graph.t -> int

(** [average_degree g] is [2m / n] (0 for the empty graph). *)
val average_degree : Graph.t -> float

(** [degree_histogram g] maps degree -> node count, ascending by
    degree. *)
val degree_histogram : Graph.t -> (int * int) list
