module Bitset = Mlbs_util.Bitset

(* Guha–Khuller greedy: colors are white (undominated), gray (dominated,
   not in the set), black (in the set). Start from a maximum-degree
   node; repeatedly blacken the gray node with the most white
   neighbours. Ties break to the smaller id for determinism. *)
let greedy g =
  let n = Graph.n_nodes g in
  if n = 0 then invalid_arg "Cds.greedy: empty graph";
  if not (Components.is_connected g) then invalid_arg "Cds.greedy: disconnected graph";
  if n = 1 then [ 0 ]
  else begin
    let white = Bitset.full n in
    let gray = Bitset.create n in
    let black = Bitset.create n in
    let white_degree u =
      Graph.fold_neighbors g u ~init:0 ~f:(fun acc v ->
          if Bitset.mem white v then acc + 1 else acc)
    in
    let blacken u =
      Bitset.remove white u;
      Bitset.remove gray u;
      Bitset.add black u;
      Graph.iter_neighbors g u ~f:(fun v ->
          if Bitset.mem white v then begin
            Bitset.remove white v;
            Bitset.add gray v
          end)
    in
    (* Seed: maximum-degree node. *)
    let seed = ref 0 in
    for u = 1 to n - 1 do
      if Graph.degree g u > Graph.degree g !seed then seed := u
    done;
    blacken !seed;
    while not (Bitset.is_empty white) do
      let best = ref (-1) and best_score = ref (-1) in
      Bitset.iter
        (fun u ->
          let s = white_degree u in
          if s > !best_score then begin
            best := u;
            best_score := s
          end)
        gray;
      if !best < 0 || !best_score = 0 then
        (* Cannot happen on a connected graph: some gray node always
           borders the white region. *)
        failwith "Cds.greedy: stuck (internal invariant violated)";
      blacken !best
    done;
    Bitset.elements black
  end

let is_dominating g set =
  let n = Graph.n_nodes g in
  let members = Bitset.of_list n set in
  let dominated v =
    Bitset.mem members v
    || Graph.fold_neighbors g v ~init:false ~f:(fun acc u -> acc || Bitset.mem members u)
  in
  let rec check v = v >= n || (dominated v && check (v + 1)) in
  check 0

let is_connected_subset g set =
  match set with
  | [] | [ _ ] -> true
  | first :: _ ->
      let n = Graph.n_nodes g in
      let members = Bitset.of_list n set in
      let seen = Bitset.create n in
      let q = Queue.create () in
      Bitset.add seen first;
      Queue.add first q;
      while not (Queue.is_empty q) do
        let u = Queue.take q in
        Graph.iter_neighbors g u ~f:(fun v ->
            if Bitset.mem members v && not (Bitset.mem seen v) then begin
              Bitset.add seen v;
              Queue.add v q
            end)
      done;
      List.for_all (Bitset.mem seen) set

let is_cds g set = is_dominating g set && is_connected_subset g set
