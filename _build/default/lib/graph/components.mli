(** Connected components.

    The paper's deployments are implicitly connected (a broadcast must
    reach every node); the deployment generator resamples until the UDG
    is connected, and these helpers provide the check. *)

(** [labels g] assigns each node a component id in [0 .. k-1]; nodes
    share an id iff connected. *)
val labels : Graph.t -> int array

(** [count g] is the number of connected components (0 for the empty
    graph). *)
val count : Graph.t -> int

(** [is_connected g] is [count g <= 1]. *)
val is_connected : Graph.t -> bool

(** [largest g] is the node list of a largest component (ties broken by
    smallest label), [] for the empty graph. *)
val largest : Graph.t -> int list
