module Bitset = Mlbs_util.Bitset

exception Limit_reached

(* Maximal independent sets of [conflict] = maximal cliques of its
   complement. Classic Bron–Kerbosch with a pivot chosen to minimise the
   branching set P \ N(pivot). *)
let maximal ~n ~conflict ~limit =
  if limit <= 0 then invalid_arg "Indep.maximal: limit <= 0";
  if n = 0 then [ [] ]
  else begin
    (* Complement adjacency: compatible (non-conflicting) pairs. *)
    let compat =
      Array.init n (fun i ->
          let s = Bitset.create n in
          for j = 0 to n - 1 do
            if i <> j && not (conflict i j) then Bitset.add s j
          done;
          s)
    in
    let results = ref [] in
    let count = ref 0 in
    let report r =
      results := List.rev r :: !results;
      incr count;
      if !count >= limit then raise Limit_reached
    in
    let rec bk r p x =
      if Bitset.is_empty p && Bitset.is_empty x then report r
      else begin
        let pivot =
          (* Pivot with most compatibilities inside P shrinks branching. *)
          let best = ref (-1) and best_score = ref (-1) in
          let consider v =
            let score = Bitset.cardinal (Bitset.inter p compat.(v)) in
            if score > !best_score then begin
              best := v;
              best_score := score
            end
          in
          Bitset.iter consider p;
          Bitset.iter consider x;
          !best
        in
        let branch = Bitset.diff p compat.(pivot) in
        Bitset.iter
          (fun v ->
            if Bitset.mem p v then begin
              bk (v :: r) (Bitset.inter p compat.(v)) (Bitset.inter x compat.(v));
              Bitset.remove p v;
              Bitset.add x v
            end)
          branch
      end
    in
    (try bk [] (Bitset.full n) (Bitset.create n) with Limit_reached -> ());
    List.rev !results
  end
