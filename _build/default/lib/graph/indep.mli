(** Enumeration of maximal independent sets under an explicit symmetric
    relation.

    The OPT scheduler's choice space at each step is "any possible color
    set" (Eq. 1): any conflict-free subset of the relay candidates.
    Because informing more nodes never hurts (the model is monotone —
    see [Mcounter]), only *maximal* conflict-free subsets need be
    considered; those are exactly the maximal independent sets of the
    conflict graph, enumerated here by Bron–Kerbosch with pivoting on
    the complement graph. *)

(** [maximal ~n ~conflict ~limit] enumerates maximal independent sets of
    the relation [conflict] over items [0 .. n-1], stopping after
    [limit] sets. [conflict] must be symmetric and irreflexive. Each set
    is ascending; the enumeration order is deterministic. Raises
    [Invalid_argument] when [limit <= 0]. For [n = 0], the only maximal
    set is [[]]. *)
val maximal : n:int -> conflict:(int -> int -> bool) -> limit:int -> int list list
