(** Generic greedy vertex colouring over an explicit conflict relation.

    The paper's Algorithm 1 colours *relay candidates* where "adjacent"
    means the conflict predicate (common uninformed neighbour), and
    visits candidates in descending receiver count. This module provides
    the order-parameterised greedy core so the MLBS layer, the baseline
    schedulers and the tests all share one implementation. *)

(** [greedy ~order ~conflicts items] colours [items] visiting them in
    [order]'s sort order (stable; ties keep input order). [conflicts a b]
    must be symmetric and irreflexive. Returns the colour classes in
    colour order 1..λ, each class listing its members in visit order.

    The construction matches Eq. (1)/(2): scanning the ordered list, an
    item joins the current colour iff it conflicts with no member
    already in it; leftovers repeat with the next colour, so every item
    of colour i > 1 conflicts with some earlier-coloured item. *)
val greedy :
  order:('a -> 'a -> int) -> conflicts:('a -> 'a -> bool) -> 'a list -> 'a list list

(** [classes_valid ~conflicts classes] checks the colouring invariants:
    members of one class are pairwise conflict-free, and every member of
    class i > 0 conflicts with a member of some earlier class. Used by
    tests and the schedule validator. *)
val classes_valid : conflicts:('a -> 'a -> bool) -> 'a list list -> bool
