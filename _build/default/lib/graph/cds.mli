(** Connected dominating sets (CDS) — the backbone structure the related
    work builds broadcast trees on (Gandhi et al. [4]; Guha & Khuller
    [7] in the paper's references).

    A CDS is a connected node subset such that every node is either in
    the set or adjacent to it: relays can be restricted to the backbone
    and every leaf still hears the message. We implement Guha &
    Khuller's first greedy algorithm (grow a black tree by repeatedly
    blackening the gray node with the most white neighbours), which
    gives an O(ln Δ)-approximate CDS on connected graphs. *)

(** [greedy g] is a connected dominating set of the connected graph [g],
    sorted ascending. Raises [Invalid_argument] when [g] is disconnected
    or empty. For a single-node graph the CDS is that node. *)
val greedy : Graph.t -> int list

(** [is_dominating g set] checks every node is in [set] or adjacent to a
    member. *)
val is_dominating : Graph.t -> int list -> bool

(** [is_connected_subset g set] checks the subgraph induced by [set] is
    connected (vacuously true for empty/singleton sets). *)
val is_connected_subset : Graph.t -> int list -> bool

(** [is_cds g set] is both checks. *)
val is_cds : Graph.t -> int list -> bool
