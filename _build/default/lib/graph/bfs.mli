(** Breadth-first search: hop distances, layers, parents.

    BFS drives the baseline schedulers (layer-synchronised broadcast of
    [2] and [12]), the admissible lower bound of the M-counter search
    (hop distance from the informed set to the farthest uninformed
    node), and source selection (the paper picks sources 5–8 hops from
    the farthest node). *)

(** Result of a BFS: [dist.(v)] is the hop distance from the source set
    ([max_int] when unreachable); [parent.(v)] is a predecessor on a
    shortest path ([-1] for sources and unreachable nodes). *)
type result = { dist : int array; parent : int array }

(** [run g ~source] is single-source BFS. *)
val run : Graph.t -> source:int -> result

(** [run_multi g ~sources] is BFS from a set of sources at distance 0 —
    used to lower-bound remaining broadcast time from an informed set. *)
val run_multi : Graph.t -> sources:int list -> result

(** [layers g ~source] groups nodes by hop distance: element [k] is the
    sorted list of nodes at distance [k]. Unreachable nodes are
    omitted. *)
val layers : Graph.t -> source:int -> int list list

(** [eccentricity g ~source] is the maximum finite hop distance from
    [source]; raises [Invalid_argument] if some node is unreachable
    (callers should check connectivity first). *)
val eccentricity : Graph.t -> source:int -> int

(** [max_dist_in r ~within] is the maximum distance in [r] over the
    members of [within], or 0 when [within] is empty; [max_int] if any
    member is unreachable. *)
val max_dist_in : result -> within:Mlbs_util.Bitset.t -> int
