let greedy ~order ~conflicts items =
  let sorted = List.stable_sort order items in
  let rec assign remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        (* One pass: pick a maximal prefix-greedy conflict-free class. *)
        let cls, rest =
          List.fold_left
            (fun (cls, rest) item ->
              if List.exists (fun c -> conflicts c item) cls then (cls, item :: rest)
              else (item :: cls, rest))
            ([], []) remaining
        in
        assign (List.rev rest) (List.rev cls :: acc)
  in
  assign sorted []

let classes_valid ~conflicts classes =
  let rec pairwise_free = function
    | [] -> true
    | x :: rest -> (not (List.exists (conflicts x) rest)) && pairwise_free rest
  in
  let all_free = List.for_all pairwise_free classes in
  let rec blocked earlier = function
    | [] -> true
    | cls :: rest ->
        let ok =
          earlier = []
          || List.for_all (fun x -> List.exists (fun e -> conflicts e x) earlier) cls
        in
        ok && blocked (earlier @ cls) rest
  in
  all_free && blocked [] classes
