(** Quadrants Q1..Q4 around a node, used by the E-model.

    The paper's 4-tuple [E_i(u)] estimates the delay from [u] to the
    network edge within quadrant [Q_i(u)], [1 <= i <= 4]. We use
    half-open quadrants so every neighbour at a distinct position lands
    in exactly one quadrant (an axis-aligned neighbour would otherwise
    be double-counted or dropped):

    - [Q1]: dx > 0,  dy >= 0   (east to north, excluding due north)
    - [Q2]: dx <= 0, dy > 0    (north to west, excluding due west)
    - [Q3]: dx < 0,  dy <= 0   (west to south, excluding due south)
    - [Q4]: dx >= 0, dy < 0    (south to east, excluding due east) *)

type t = Q1 | Q2 | Q3 | Q4

(** [all] is [[Q1; Q2; Q3; Q4]]. *)
val all : t list

(** [to_index q] maps Q1..Q4 to 0..3 (array indexing). *)
val to_index : t -> int

(** [of_index i] inverts [to_index]. Raises [Invalid_argument] outside
    0..3. *)
val of_index : int -> t

(** [classify ~origin p] is the quadrant of [p] relative to [origin], or
    [None] when the two points coincide. *)
val classify : origin:Point.t -> Point.t -> t option

(** [opposite q] is the diagonally opposite quadrant (Q1↔Q3, Q2↔Q4). *)
val opposite : t -> t

(** [pp] prints "Q1".."Q4". *)
val pp : Format.formatter -> t -> unit

(** [to_string q] is "Q1".."Q4". *)
val to_string : t -> string
