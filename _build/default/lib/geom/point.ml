type t = { x : float; y : float }

let v x y = { x; y }
let origin = { x = 0.; y = 0. }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let cross o a b = ((a.x -. o.x) *. (b.y -. o.y)) -. ((a.y -. o.y) *. (b.x -. o.x))

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Float.compare a.x b.x in
  if c <> 0 then c else Float.compare a.y b.y

let pp ppf p = Format.fprintf ppf "(%.2f, %.2f)" p.x p.y
