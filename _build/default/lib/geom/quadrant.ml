type t = Q1 | Q2 | Q3 | Q4

let all = [ Q1; Q2; Q3; Q4 ]

let to_index = function Q1 -> 0 | Q2 -> 1 | Q3 -> 2 | Q4 -> 3

let of_index = function
  | 0 -> Q1
  | 1 -> Q2
  | 2 -> Q3
  | 3 -> Q4
  | i -> invalid_arg (Printf.sprintf "Quadrant.of_index: %d" i)

let classify ~origin p =
  let d = Point.sub p origin in
  let dx = d.Point.x and dy = d.Point.y in
  if dx = 0. && dy = 0. then None
  else if dx > 0. && dy >= 0. then Some Q1
  else if dx <= 0. && dy > 0. then Some Q2
  else if dx < 0. && dy <= 0. then Some Q3
  else Some Q4

let opposite = function Q1 -> Q3 | Q2 -> Q4 | Q3 -> Q1 | Q4 -> Q2

let to_string = function Q1 -> "Q1" | Q2 -> "Q2" | Q3 -> "Q3" | Q4 -> "Q4"

let pp ppf q = Format.pp_print_string ppf (to_string q)
