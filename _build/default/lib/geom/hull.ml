(* Andrew's monotone chain over indices, so we can report hull membership
   per node id. *)

let hull_indices points =
  let n = Array.length points in
  if n = 0 then []
  else begin
    let idx = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = Point.compare points.(i) points.(j) in
        if c <> 0 then c else compare i j)
      idx;
    (* Drop coincident duplicates, keeping the smallest index. *)
    let distinct = ref [] in
    Array.iter
      (fun i ->
        match !distinct with
        | j :: _ when Point.equal points.(i) points.(j) -> ()
        | _ -> distinct := i :: !distinct)
      idx;
    let pts = Array.of_list (List.rev !distinct) in
    let m = Array.length pts in
    if m <= 2 then Array.to_list pts
    else begin
      let hull = Array.make (2 * m) 0 in
      let k = ref 0 in
      let push i = hull.(!k) <- i; incr k in
      let turn_ok i =
        (* Pop while the last two hull points and [i] do not make a strict
           counter-clockwise turn (collinear points are dropped). *)
        !k >= 2
        && Point.cross points.(hull.(!k - 2)) points.(hull.(!k - 1)) points.(i) <= 0.
      in
      (* Lower hull. *)
      Array.iter
        (fun i ->
          while turn_ok i do decr k done;
          push i)
        pts;
      (* Upper hull. *)
      let lower_size = !k + 1 in
      for j = m - 2 downto 0 do
        let i = pts.(j) in
        while !k >= lower_size
              && Point.cross points.(hull.(!k - 2)) points.(hull.(!k - 1)) points.(i) <= 0. do
          decr k
        done;
        push i
      done;
      (* Last point repeats the first. *)
      Array.to_list (Array.sub hull 0 (!k - 1))
    end
  end

let convex_hull points = List.map (fun i -> points.(i)) (hull_indices points)

let on_hull points =
  let marks = Array.make (Array.length points) false in
  let hull = hull_indices points in
  List.iter (fun i -> marks.(i) <- true) hull;
  (* Coincident duplicates of a hull point are also on the hull. *)
  Array.iteri
    (fun i p ->
      if not marks.(i) then
        marks.(i) <- List.exists (fun j -> Point.equal points.(j) p) hull)
    points;
  marks
