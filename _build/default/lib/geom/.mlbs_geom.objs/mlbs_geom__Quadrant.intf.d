lib/geom/quadrant.mli: Format Point
