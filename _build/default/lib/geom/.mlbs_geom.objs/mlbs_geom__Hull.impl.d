lib/geom/hull.ml: Array List Point
