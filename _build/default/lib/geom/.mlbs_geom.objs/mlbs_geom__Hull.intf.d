lib/geom/hull.mli: Point
