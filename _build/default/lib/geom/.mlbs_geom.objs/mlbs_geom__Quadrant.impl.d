lib/geom/quadrant.ml: Format Point Printf
