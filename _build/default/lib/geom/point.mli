(** 2-D points in the deployment plane (units: feet, per the paper's
    50 ft × 50 ft interest area). *)

type t = { x : float; y : float }

(** [v x y] is the point (x, y). *)
val v : float -> float -> t

(** [origin] is (0, 0). *)
val origin : t

(** [dist a b] is the Euclidean distance. *)
val dist : t -> t -> float

(** [dist2 a b] is the squared distance — use for radius comparisons to
    avoid the sqrt on the UDG construction hot path. *)
val dist2 : t -> t -> float

(** [sub a b] is the displacement vector a − b as a point. *)
val sub : t -> t -> t

(** [cross o a b] is the z-component of (a − o) × (b − o): positive when
    the turn o→a→b is counter-clockwise. The convex-hull primitive. *)
val cross : t -> t -> t -> float

(** [equal a b] is exact coordinate equality (deployments never
    duplicate coordinates; fixtures use exact constants). *)
val equal : t -> t -> bool

(** [compare] orders lexicographically by (x, y). *)
val compare : t -> t -> int

(** [pp] formats as "(x, y)" with two decimals. *)
val pp : Format.formatter -> t -> unit
