(** Convex hull of a point set — reference [3] of the paper.

    Algorithm 2 of the paper seeds its boundary construction "from any
    node that is located on the hull of the entire network". We use
    Andrew's monotone chain: O(n log n), robust for the float
    coordinates produced by our deployments. *)

(** [convex_hull points] is the hull in counter-clockwise order starting
    from the lexicographically smallest point, with no collinear
    interior points. Degenerate inputs: fewer than three distinct points
    return the distinct points themselves (sorted). *)
val convex_hull : Point.t array -> Point.t list

(** [hull_indices points] is the same hull, but as indices into the
    input array — what the network layer needs to mark hull nodes. Ties
    between coincident points resolve to the smallest index. *)
val hull_indices : Point.t array -> int list

(** [on_hull points] is a boolean array marking hull membership per
    index. *)
val on_hull : Point.t array -> bool array
