module Point = Mlbs_geom.Point
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Schedule = Mlbs_core.Schedule

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let fail_at lineno fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "Persist: line %d: %s" lineno s)) fmt

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* --------------------------- network -------------------------------- *)

let save_network path net =
  with_out path (fun oc ->
      let n = Network.n_nodes net in
      Printf.fprintf oc "mlbs-network 1 %d %.17g\n" n (Network.radius net);
      for u = 0 to n - 1 do
        let p = Network.position net u in
        Printf.fprintf oc "node %d %.17g %.17g\n" u p.Point.x p.Point.y
      done;
      List.iter
        (fun (u, v) -> Printf.fprintf oc "edge %d %d\n" u v)
        (Graph.edges (Network.graph net)))

let load_network path =
  match read_lines path with
  | [] -> failwith "Persist: empty network file"
  | header :: rest -> (
      match tokens header with
      | [ "mlbs-network"; "1"; n_s; radius_s ] ->
          let n = int_of_string n_s and radius = float_of_string radius_s in
          let points = Array.make n Point.origin in
          let seen = Array.make n false in
          let edges = ref [] in
          List.iteri
            (fun i line ->
              let lineno = i + 2 in
              match tokens line with
              | [ "node"; id_s; x_s; y_s ] ->
                  let id = int_of_string id_s in
                  if id < 0 || id >= n then fail_at lineno "node id %d out of range" id;
                  if seen.(id) then fail_at lineno "duplicate node %d" id;
                  seen.(id) <- true;
                  points.(id) <- Point.v (float_of_string x_s) (float_of_string y_s)
              | [ "edge"; u_s; v_s ] ->
                  edges := (int_of_string u_s, int_of_string v_s) :: !edges
              | [] -> ()
              | tok :: _ -> fail_at lineno "unexpected record %S" tok)
            rest;
          Array.iteri (fun id ok -> if not ok then failwith (Printf.sprintf "Persist: node %d missing" id)) seen;
          Network.of_graph ~radius ~points (Graph.of_edges ~n !edges)
      | _ -> failwith "Persist: not a mlbs-network v1 file")

(* --------------------------- schedule ------------------------------- *)

let save_schedule path schedule =
  with_out path (fun oc ->
      Printf.fprintf oc "mlbs-schedule 1 %d %d %d\n" (Schedule.n_nodes schedule)
        (Schedule.source schedule) (Schedule.start schedule);
      List.iter
        (fun (s : Schedule.step) ->
          Printf.fprintf oc "step %d | %s | %s\n" s.Schedule.slot
            (String.concat " " (List.map string_of_int s.Schedule.senders))
            (String.concat " " (List.map string_of_int s.Schedule.informed)))
        (Schedule.steps schedule))

let load_schedule path =
  match read_lines path with
  | [] -> failwith "Persist: empty schedule file"
  | header :: rest -> (
      match tokens header with
      | [ "mlbs-schedule"; "1"; n_s; source_s; start_s ] ->
          let n = int_of_string n_s
          and source = int_of_string source_s
          and start = int_of_string start_s in
          let parse_step lineno line =
            match String.split_on_char '|' line with
            | [ head; senders_s; informed_s ] -> (
                match tokens head with
                | [ "step"; slot_s ] ->
                    {
                      Schedule.slot = int_of_string slot_s;
                      senders = List.map int_of_string (tokens senders_s);
                      informed = List.map int_of_string (tokens informed_s);
                    }
                | _ -> fail_at lineno "malformed step header")
            | _ -> fail_at lineno "malformed step record"
          in
          let steps =
            List.filteri (fun _ line -> tokens line <> []) rest
            |> List.mapi (fun i line -> parse_step (i + 2) line)
          in
          Schedule.make ~n_nodes:n ~source ~start steps
      | _ -> failwith "Persist: not a mlbs-schedule v1 file")
