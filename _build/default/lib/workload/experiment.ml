module Rng = Mlbs_prng.Rng
module Deployment = Mlbs_wsn.Deployment
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule
module Scheduler = Mlbs_core.Scheduler
module Mcounter = Mlbs_core.Mcounter
module Validate = Mlbs_sim.Validate

type instance = { net : Mlbs_wsn.Network.t; source : int; d : int }

let make_instance (cfg : Config.t) ~n ~seed =
  let rng = Rng.create (seed * 7919) in
  let spec =
    {
      Deployment.n_nodes = n;
      width = cfg.Config.width;
      height = cfg.Config.height;
      radius = cfg.Config.radius;
      shape = Deployment.Uniform;
    }
  in
  let net = Deployment.generate rng spec in
  let source =
    Deployment.select_source rng net ~min_ecc:cfg.Config.min_ecc
      ~max_ecc:cfg.Config.max_ecc
  in
  let d = Mlbs_graph.Bfs.eccentricity (Mlbs_wsn.Network.graph net) ~source in
  { net; source; d }

type measurement = {
  policy : string;
  elapsed : int;
  transmissions : int;
  valid : bool;
}

let policies (cfg : Config.t) =
  [
    Scheduler.Baseline;
    Scheduler.Opt { budget = cfg.Config.budget; max_sets = cfg.Config.opt_max_sets };
    Scheduler.Gopt cfg.Config.budget;
    Scheduler.Emodel;
  ]

let measure (cfg : Config.t) model inst policy =
  let schedule = Scheduler.run model policy ~source:inst.source ~start:1 in
  let valid =
    if cfg.Config.validate then (Validate.check model schedule).Validate.ok else true
  in
  {
    policy = Scheduler.name ~system:(Model.system model) policy;
    elapsed = Schedule.elapsed schedule;
    transmissions = Schedule.n_transmissions schedule;
    valid;
  }

(* The G-OPT space (greedy classes) is a subset of OPT's (any color set,
   Eq. 5/6), so any G-OPT schedule is also a feasible OPT candidate.
   When the bounded OPT search finds a worse schedule than G-OPT did,
   report the better of the two as OPT — the paper's off-line OPT would
   never be beaten by G-OPT. *)
let tighten_opt ms =
  match
    ( List.find_opt (fun m -> m.policy = "OPT") ms,
      List.find_opt (fun m -> m.policy = "G-OPT") ms )
  with
  | Some o, Some g when g.elapsed < o.elapsed ->
      List.map (fun m -> if m.policy = "OPT" then { g with policy = "OPT" } else m) ms
  | _ -> ms

let run_sync cfg inst =
  let model = Model.create inst.net Model.Sync in
  tighten_opt (List.map (measure cfg model inst) (policies cfg))

let run_async cfg ~rate ~inst_seed inst =
  let sched =
    Wake_schedule.create ~rate ~n_nodes:(Mlbs_wsn.Network.n_nodes inst.net)
      ~seed:(inst_seed * 104729) ()
  in
  let model = Model.create inst.net (Model.Async sched) in
  tighten_opt (List.map (measure cfg model inst) (policies cfg))

let mean_by_policy runs =
  match runs with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (m : measurement) ->
          let values =
            List.map
              (fun run ->
                match List.find_opt (fun r -> r.policy = m.policy) run with
                | Some r -> float_of_int r.elapsed
                | None -> invalid_arg "Experiment.mean_by_policy: ragged runs")
              runs
          in
          (m.policy, Mlbs_util.Stats.mean values))
        first
