(** The paper's worked examples as concrete networks.

    The figures in the paper are schematic: they publish the adjacency
    behaviour (who informs whom, which relays conflict) through the
    schedule traces of Tables II–IV, but not coordinates. These fixtures
    reconstruct concrete instances whose traces reproduce the published
    ones; the golden tests in [test/] pin them.

    Note (also in DESIGN.md): under the strict reading of Eq. (1)
    constraint 3 — conflict iff a common {e uninformed} neighbour exists
    — one row of the paper's Table III splits {3} and {10} into two
    classes although they no longer share an uninformed neighbour at
    that point; our trace keeps them in one class, which changes neither
    the selected advance nor [P(A)]. *)

(** A fixture: the network, the broadcast source, the start slot, and a
    node-naming function matching the paper's labels. *)
type t = {
  net : Mlbs_wsn.Network.t;
  source : int;
  start : int;
  name : int -> string;
}

(** Figure 1 (and Table III): 12 nodes [s, 0..10]; node ids 0..10 map to
    the paper's 0..10 and id 11 is [s]. Synchronous; [t_s = 1];
    published optimum [P(A) = 3]. The published E-model values
    ([E_2(1) = 2] maximal, etc.) hold for this embedding. *)
val fig1 : t

(** Figure 2(a) (and Table II): 5 nodes; id [k] is the paper's node
    [k+1]. A genuine unit-disk graph (radius 10). Synchronous;
    [t_s = 1]; published optimum [P(A) = 2]. *)
val fig2 : t

(** Figure 2(e) (and Table IV): the [fig2] graph under the duty-cycle
    model with [r = 10] and the explicit wake schedule of the example —
    node 1 wakes at slot 2, nodes 2 and 3 at slot 4, node 2 again at
    [r + 3 = 13]. [t_s = 2]; published optimum [P(A) = 4]. *)
val fig2_dc : t * Mlbs_dutycycle.Wake_schedule.t
