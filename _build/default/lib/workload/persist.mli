(** Plain-text persistence for networks and schedules, so experiments
    can be archived and reproduced outside the generating process
    (`mlbs generate --save` / `mlbs schedule --load`).

    Formats are line-oriented and versioned:

    {v
    mlbs-network 1 <n> <radius>
    node <id> <x> <y>          (n lines)
    edge <u> <v>               (one per undirected edge)
    v}

    {v
    mlbs-schedule 1 <n> <source> <start>
    step <slot> | <senders...> | <informed...>
    v}

    Loading validates structure and raises [Failure] with a line number
    on malformed input. *)

(** [save_network path net] writes positions and the (possibly
    non-geometric, fixture-style) edge set. *)
val save_network : string -> Mlbs_wsn.Network.t -> unit

(** [load_network path] rebuilds the network via
    [Network.of_graph] — the adjacency is taken from the file, not
    re-derived from the radius, so fixtures survive the round trip. *)
val load_network : string -> Mlbs_wsn.Network.t

(** [save_schedule path schedule] / [load_schedule path]. *)
val save_schedule : string -> Mlbs_core.Schedule.t -> unit

val load_schedule : string -> Mlbs_core.Schedule.t
