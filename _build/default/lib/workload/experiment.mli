(** Running scheduling policies over seeded deployments and collecting
    the per-instance measurements behind each figure. *)

(** One deployed instance: the network, the chosen source, and [d], the
    source's eccentricity (the hop distance to the farthest node, used
    by the analytical bounds). *)
type instance = { net : Mlbs_wsn.Network.t; source : int; d : int }

(** [make_instance cfg ~n ~seed] deterministically generates the
    deployment and source for one (node count, seed) point. *)
val make_instance : Config.t -> n:int -> seed:int -> instance

(** Result of one policy on one instance. [exactish] is false when the
    M-search fell back to lookahead (baselines and E-model are always
    search-free, reported as true). *)
type measurement = {
  policy : string;
  elapsed : int;  (** end-to-end latency in rounds/slots *)
  transmissions : int;
  valid : bool;  (** radio replay verdict (true when validation is off) *)
}

(** [run_sync cfg inst] measures the paper's four synchronous policies
    (26-approx, OPT, G-OPT, E-model) on the instance. Because the
    greedy classes are a subset of OPT's choice space, the reported OPT
    latency is the better of the OPT and G-OPT schedules — the budget-
    bounded OPT search must never appear worse than its own
    restriction. *)
val run_sync : Config.t -> instance -> measurement list

(** [run_async cfg ~rate inst] measures the duty-cycle policies
    (17-approx, OPT, G-OPT, E-model) with a wake schedule derived
    deterministically from the instance (seeded per node count). *)
val run_async : Config.t -> rate:int -> inst_seed:int -> instance -> measurement list

(** [mean_by_policy runs] averages elapsed latency per policy label over
    a list of per-instance measurement lists, preserving policy
    order. *)
val mean_by_policy : measurement list list -> (string * float) list
