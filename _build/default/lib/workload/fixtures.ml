module Point = Mlbs_geom.Point
module Graph = Mlbs_graph.Graph
module Network = Mlbs_wsn.Network
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

type t = {
  net : Network.t;
  source : int;
  start : int;
  name : int -> string;
}

(* --------------------------- Figure 1 ----------------------------- *)
(* Ids 0..10 are the paper's nodes 0..10; id 11 is the source s. The
   adjacency is taken from the coverage sets published in Table III
   (e.g. relaying from 0 informs {3,5,6,7}; from 1 informs {3,4,10});
   the coordinates realise the quadrant structure behind the published
   E_2 values: the network extends up-left (quadrant Q2) from s in the
   bottom-right corner, with 7, 8, 9 forming the far edge. *)

let fig1_source = 11

let fig1_edges =
  [
    (11, 0); (11, 1); (11, 2);           (* s reaches 0,1,2 *)
    (0, 3); (1, 3); (2, 3);              (* the conflict clique at 3 *)
    (0, 5); (0, 6); (0, 7);
    (1, 4); (1, 10);
    (3, 6); (3, 9);
    (4, 8); (4, 9); (4, 10);
    (6, 9);                              (* the 0 -> 6 -> 9 -> 4 path *)
    (5, 7);
    (8, 10); (8, 9);
  ]

let fig1_points =
  [|
    Point.v 22. 6. (* 0 *);
    Point.v 28. 6. (* 1 *);
    Point.v 24. 2. (* 2 *);
    Point.v 25. 10. (* 3 *);
    Point.v 26. 14. (* 4 *);
    Point.v 14. 16. (* 5 *);
    Point.v 20. 16. (* 6 *);
    Point.v 12. 24. (* 7 *);
    Point.v 24. 24. (* 8 *);
    Point.v 18. 23. (* 9 *);
    Point.v 30. 12. (* 10 *);
    Point.v 30. 0. (* s *);
  |]

let fig1 =
  let graph = Graph.of_edges ~n:12 fig1_edges in
  {
    net = Network.of_graph ~radius:10. ~points:fig1_points graph;
    source = fig1_source;
    start = 1;
    name = (fun i -> if i = fig1_source then "s" else string_of_int i);
  }

(* --------------------------- Figure 2 ----------------------------- *)
(* Id k is the paper's node k+1. A true unit-disk embedding: with
   radius 10 these coordinates produce exactly the edges of the figure
   (1-2, 1-3, 2-4, 3-4, 2-5), with the interference clique at node 4. *)

let fig2_points =
  [|
    Point.v 0. 0. (* node 1 *);
    Point.v 8. 0. (* node 2 *);
    Point.v 0. 8. (* node 3 *);
    Point.v 8. 8. (* node 4 *);
    Point.v 17. 0. (* node 5 *);
  |]

let fig2 =
  {
    net = Network.create ~radius:10. fig2_points;
    source = 0;
    start = 1;
    name = (fun i -> string_of_int (i + 1));
  }

(* Figure 2(e): same topology under the duty-cycle model, r = 10. The
   wake slots are the ones the Table IV trace exercises: the source
   (node 1) wakes at t_s = 2; nodes 2 and 3 both wake at slot 4 (forcing
   the color decision); node 2 wakes again only at r + 3 = 13, which is
   what makes the wrong choice at slot 4 so costly. Nodes 4 and 5 never
   need to relay; their wake slots are immaterial. *)
let fig2_dc =
  let sched =
    Wake_schedule.of_explicit ~rate:10
      [| [ 2 ]; [ 4; 13 ]; [ 4 ]; [ 5 ]; [ 6 ] |]
  in
  ({ fig2 with start = 2 }, sched)
