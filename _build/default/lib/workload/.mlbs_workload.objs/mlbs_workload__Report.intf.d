lib/workload/report.mli: Figures
