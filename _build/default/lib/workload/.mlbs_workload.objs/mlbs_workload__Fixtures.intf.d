lib/workload/fixtures.mli: Mlbs_dutycycle Mlbs_wsn
