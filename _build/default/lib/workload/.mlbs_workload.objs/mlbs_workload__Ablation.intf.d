lib/workload/ablation.mli: Config Mlbs_core Mlbs_util
