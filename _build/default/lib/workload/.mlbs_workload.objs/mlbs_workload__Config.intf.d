lib/workload/config.mli: Mlbs_core
