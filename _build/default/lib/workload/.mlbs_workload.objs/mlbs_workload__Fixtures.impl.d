lib/workload/fixtures.ml: Mlbs_dutycycle Mlbs_geom Mlbs_graph Mlbs_wsn
