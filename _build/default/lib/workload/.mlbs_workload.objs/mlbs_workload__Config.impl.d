lib/workload/config.ml: List Mlbs_core
