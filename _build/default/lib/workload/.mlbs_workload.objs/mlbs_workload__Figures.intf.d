lib/workload/figures.mli: Config Mlbs_util
