lib/workload/experiment.ml: Config List Mlbs_core Mlbs_dutycycle Mlbs_graph Mlbs_prng Mlbs_sim Mlbs_util Mlbs_wsn
