lib/workload/experiment.mli: Config Mlbs_wsn
