lib/workload/ablation.ml: Array Config Experiment Fun List Mlbs_core Mlbs_dutycycle Mlbs_graph Mlbs_prng Mlbs_proto Mlbs_sim Mlbs_util Mlbs_wsn Printf
