lib/workload/report.ml: Figures Filename List Mlbs_util Option Printf String
