lib/workload/figures.ml: Config Experiment Fixtures List Mlbs_core Mlbs_util Printf String
