lib/workload/persist.mli: Mlbs_core Mlbs_wsn
