lib/workload/persist.ml: Array Fun List Mlbs_core Mlbs_geom Mlbs_graph Mlbs_wsn Printf String
