(** Rendering experiment output: figure tables, improvement summaries,
    CSV export. The benchmark harness prints these; EXPERIMENTS.md
    records them against the paper's claims. *)

(** [render_figure f] is the ASCII table, an ASCII chart of the series
    (the figure's shape), and — when the figure has a baseline series
    (its label ends in "approx") — an improvement summary line per
    policy, the paper's "≥70%" numbers. *)
val render_figure : Figures.figure -> string

(** [figure_chart f] is just the ASCII chart ("" for an empty figure). *)
val figure_chart : Figures.figure -> string

(** [figure_csv f] is a CSV rendering of the same table. *)
val figure_csv : Figures.figure -> string

(** [write_csv ~dir f] writes [figure_csv] to [dir/<id>.csv] and
    returns the path. *)
val write_csv : dir:string -> Figures.figure -> string
