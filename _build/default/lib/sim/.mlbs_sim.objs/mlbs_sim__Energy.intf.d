lib/sim/energy.mli: Mlbs_core
