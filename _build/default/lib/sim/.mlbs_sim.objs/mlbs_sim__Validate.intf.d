lib/sim/validate.mli: Mlbs_core Mlbs_util
