lib/sim/energy.ml: Array List Mlbs_core Radio
