lib/sim/radio.mli: Mlbs_core Mlbs_util
