lib/sim/radio.ml: List Mlbs_core Mlbs_dutycycle Mlbs_graph Mlbs_util Printf
