lib/sim/validate.ml: List Mlbs_core Mlbs_util Printf Radio String
