(** Slot-level radio replay — the custom simulator's ground truth.

    Schedulers claim which nodes each advance informs; this module does
    not trust them. It replays a schedule transmission by transmission
    under the model of §III: a transmission reaches every neighbour of
    the sender; an uninformed node that hears exactly one transmission
    in a slot receives the message; two or more overlapping
    transmissions collide at their common neighbour and deliver
    nothing. Senders must hold the message, be awake (duty cycle), and
    transmit at most once overall (each relay's neighbourhood empties
    after its cast, so a correct scheduler never re-sends). *)

module Bitset = Mlbs_util.Bitset

(** What happened at one slot of the replay. *)
type slot_event = {
  slot : int;
  senders : int list;
  received : int list;  (** newly informed, ascending *)
  collided : (int * int list) list;
      (** (node, the ≥2 senders it heard) — the node stays uninformed *)
}

type outcome = {
  events : slot_event list;  (** ascending by slot *)
  informed : Bitset.t;  (** final informed set *)
  violations : string list;  (** empty iff the schedule was well-formed *)
  dropped : (int * int) list;  (** (slot, node): sends lost to injected failures *)
}

(** [replay ?allow_resend ?failed model schedule] runs the radio
    simulation. Never raises on a malformed schedule — problems are
    reported in [violations] (and collisions in the per-slot events) so
    tests can assert on them.

    [allow_resend] (default false) suppresses the send-once violation:
    lossy protocols such as [Mlbs_core.Localized] legitimately
    retransmit after collisions.

    [failed] injects crash failures: a failed node's transmissions are
    silently dropped (reported in [dropped], not as violations) and it
    never receives. With a non-empty [failed] set the per-slot claim
    check is skipped — diverging from the scheduler's claims is the
    point of the experiment. *)
val replay :
  ?allow_resend:bool ->
  ?failed:Bitset.t ->
  Mlbs_core.Model.t ->
  Mlbs_core.Schedule.t ->
  outcome
