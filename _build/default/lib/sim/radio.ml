module Bitset = Mlbs_util.Bitset
module Graph = Mlbs_graph.Graph
module Wake_schedule = Mlbs_dutycycle.Wake_schedule
module Model = Mlbs_core.Model
module Schedule = Mlbs_core.Schedule

type slot_event = {
  slot : int;
  senders : int list;
  received : int list;
  collided : (int * int list) list;
}

type outcome = {
  events : slot_event list;
  informed : Bitset.t;
  violations : string list;
  dropped : (int * int) list;
}

let replay ?(allow_resend = false) ?failed model schedule =
  let g = Model.graph model in
  let n = Model.n_nodes model in
  let failed = match failed with Some f -> f | None -> Bitset.create n in
  let inject_failures = not (Bitset.is_empty failed) in
  let w = Bitset.create n in
  Bitset.add w (Schedule.source schedule);
  let has_sent = Bitset.create n in
  let violations = ref [] in
  let dropped = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let events =
    List.map
      (fun (step : Schedule.step) ->
        let slot = step.Schedule.slot in
        (* Failed senders emit nothing. *)
        let senders, lost =
          List.partition (fun u -> not (Bitset.mem failed u)) step.Schedule.senders
        in
        List.iter (fun u -> dropped := (slot, u) :: !dropped) lost;
        List.iter
          (fun u ->
            if not (Bitset.mem w u) then
              violate "slot %d: sender %d does not hold the message" slot u;
            if Bitset.mem has_sent u && not allow_resend then
              violate "slot %d: sender %d already transmitted" slot u;
            (match Model.system model with
            | Model.Sync -> ()
            | Model.Async sched ->
                if not (Wake_schedule.awake sched u ~slot) then
                  violate "slot %d: sender %d is asleep" slot u);
            Bitset.add has_sent u)
          senders;
        (* A sender that does not hold the message has nothing to emit:
           it is flagged above but cannot deliver (or interfere). *)
        let effective = List.filter (fun u -> Bitset.mem w u) senders in
        (* Reception: an uninformed node hearing exactly one transmission
           receives; hearing several is a collision. Failed nodes hear
           nothing. *)
        let received = ref [] and collided = ref [] in
        for v = n - 1 downto 0 do
          if (not (Bitset.mem w v)) && not (Bitset.mem failed v) then begin
            let hearers = List.filter (fun u -> Graph.mem_edge g u v) effective in
            match hearers with
            | [] -> ()
            | [ _ ] -> received := v :: !received
            | several -> collided := (v, several) :: !collided
          end
        done;
        List.iter (Bitset.add w) !received;
        (* Cross-check the scheduler's claim against the replay (not
           meaningful when failures were injected). *)
        if
          (not inject_failures)
          && !received <> List.sort_uniq compare step.Schedule.informed
        then violate "slot %d: claimed informed set differs from radio outcome" slot;
        { slot; senders; received = !received; collided = !collided })
      (Schedule.steps schedule)
  in
  { events; informed = w; violations = List.rev !violations; dropped = List.rev !dropped }
