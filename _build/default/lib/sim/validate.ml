module Bitset = Mlbs_util.Bitset

type report = {
  ok : bool;
  collisions : int;
  missing : int list;
  violations : string list;
}

let summarize outcome ~collision_free =
  let collisions =
    List.fold_left (fun acc e -> acc + List.length e.Radio.collided) 0 outcome.Radio.events
  in
  let missing = Bitset.elements (Bitset.complement outcome.Radio.informed) in
  let ok =
    ((not collision_free) || collisions = 0)
    && missing = []
    && outcome.Radio.violations = []
  in
  { ok; collisions; missing; violations = outcome.Radio.violations }

let check model schedule = summarize (Radio.replay model schedule) ~collision_free:true

let check_lossy model schedule =
  summarize (Radio.replay ~allow_resend:true model schedule) ~collision_free:false

let surviving_coverage model ~failed schedule =
  let outcome = Radio.replay ~allow_resend:true ~failed model schedule in
  let n = Mlbs_core.Model.n_nodes model in
  let informed_alive = ref 0 and alive = ref 0 in
  for v = 0 to n - 1 do
    if not (Bitset.mem failed v) then begin
      incr alive;
      if Bitset.mem outcome.Radio.informed v then incr informed_alive
    end
  done;
  (!informed_alive, !alive)

let check_exn model schedule =
  let r = check model schedule in
  if not r.ok then begin
    let parts =
      (if r.collisions > 0 then [ Printf.sprintf "%d collisions" r.collisions ] else [])
      @ (if r.missing <> [] then
           [ Printf.sprintf "%d nodes never informed" (List.length r.missing) ]
         else [])
      @ r.violations
    in
    failwith ("Validate.check_exn: invalid schedule: " ^ String.concat "; " parts)
  end
