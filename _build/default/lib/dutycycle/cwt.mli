(** Cycle waiting time (CWT) — paper Table I:
    [t(u,v) = min { t_i − t | t_i ∈ T(v), t_i > t ∈ T(u) }], the time a
    node [u], ready at slot [t], waits until its successor [v] next
    wakes to forward.

    CWT is what the asynchronous E-model accumulates instead of hop
    counts (Eq. 11), and what makes relay selection diverse across
    neighbours in the duty-cycle system. *)

(** [wait sched ~from_ ~at v] is the CWT from slot [at]: the delay until
    [v]'s first sending slot strictly after [at]. [from_] is the waiting
    node (kept for interface symmetry / logging; the wait depends only
    on [v]'s schedule). *)
val wait : Wake_schedule.t -> from_:int -> at:int -> int -> int

(** [expected_wait ~rate] is the mean CWT of a uniform-per-frame
    schedule observed from a uniform random slot, ≈ rate/2 + 1/2; used
    in analytical reports. *)
val expected_wait : rate:int -> float

(** [max_wait ~rate] is the worst-case CWT the paper uses in Theorem 1:
    two aligned schedules can force a wait of up to [2·rate] slots. *)
val max_wait : rate:int -> int
