let wait sched ~from_ ~at v =
  ignore from_;
  Wake_schedule.next_wake sched v ~after:at - at

let expected_wait ~rate = (float_of_int rate +. 1.) /. 2.

let max_wait ~rate = 2 * rate
