lib/dutycycle/wake_schedule.ml: Array Int64 List Mlbs_prng Printf
