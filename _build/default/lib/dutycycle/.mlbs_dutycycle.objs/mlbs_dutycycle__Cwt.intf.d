lib/dutycycle/cwt.mli: Wake_schedule
