lib/dutycycle/wake_schedule.mli:
