lib/dutycycle/cwt.ml: Wake_schedule
