(** Neighbourhood discovery by beaconing — the paper's §III: "each time
    it wakes up, a beaconing process is initiated to connect nodes
    within its communication range. [...] When a node receives the
    beacon message from its neighbor, it will respond with its own
    status information, including the location, last wake-up time,
    metric values, etc."

    Two exchange rounds on the (always-on, reliable) control channel
    give every node its 1-hop neighbours with positions, and their
    neighbour lists — the 2-hop view every distributed component of
    [Mlbs_proto] works from. Nothing here reads the global topology
    except to deliver the simulated beacons. *)

(** What one node has learned. All arrays are sorted by id. *)
type view = {
  id : int;
  position : Mlbs_geom.Point.t;
  neighbors : int array;  (** 1-hop ids *)
  neighbor_position : (int * Mlbs_geom.Point.t) list;  (** per 1-hop neighbour *)
  neighbor_lists : (int * int array) list;
      (** per 1-hop neighbour, its own neighbour ids *)
}

type result = { views : view array; messages : int }

(** [discover net] simulates the two beacon rounds and returns every
    node's local view. [messages] counts one broadcast per node per
    round (2·n). *)
val discover : Mlbs_wsn.Network.t -> result

(** [two_hop v] is the set of ids within two hops of [v.id] (excluding
    itself), sorted — derived purely from the view. *)
val two_hop : view -> int list

(** [knows_edge v a b] is [true] when the view can certify the edge
    [a–b]: either [a] is a neighbour whose reported list contains [b],
    or vice versa. *)
val knows_edge : view -> int -> int -> bool
