module Point = Mlbs_geom.Point
module Network = Mlbs_wsn.Network

type view = {
  id : int;
  position : Point.t;
  neighbors : int array;
  neighbor_position : (int * Point.t) list;
  neighbor_lists : (int * int array) list;
}

type result = { views : view array; messages : int }

(* Round 1: every node broadcasts (id, position); every neighbour
   records it. Round 2: every node broadcasts its recorded neighbour id
   list; every neighbour records that. The control channel is the
   always-on receiving channel of §III, so delivery is reliable. *)
let discover net =
  let n = Network.n_nodes net in
  (* Round 1 deliveries. *)
  let heard = Array.make n [] in
  for sender = 0 to n - 1 do
    Array.iter
      (fun v -> heard.(v) <- (sender, Network.position net sender) :: heard.(v))
      (Network.neighbors net sender)
  done;
  let neighbor_position = Array.map (List.sort compare) heard in
  let neighbors =
    Array.map (fun l -> Array.of_list (List.map fst l)) neighbor_position
  in
  (* Round 2 deliveries: each node broadcasts its [neighbors] array. *)
  let lists = Array.make n [] in
  for sender = 0 to n - 1 do
    Array.iter
      (fun v -> lists.(v) <- (sender, neighbors.(sender)) :: lists.(v))
      neighbors.(sender)
  done;
  let views =
    Array.init n (fun id ->
        {
          id;
          position = Network.position net id;
          neighbors = neighbors.(id);
          neighbor_position = neighbor_position.(id);
          neighbor_lists = List.sort compare lists.(id);
        })
  in
  { views; messages = 2 * n }

let two_hop v =
  let acc = ref [] in
  Array.iter (fun u -> acc := u :: !acc) v.neighbors;
  List.iter (fun (_, l) -> Array.iter (fun u -> acc := u :: !acc) l) v.neighbor_lists;
  List.filter (fun u -> u <> v.id) (List.sort_uniq compare !acc)

let knows_edge v a b =
  let listed x ys = Array.exists (( = ) x) ys in
  (a = v.id && listed b v.neighbors)
  || (b = v.id && listed a v.neighbors)
  || List.exists (fun (u, l) -> (u = a && listed b l) || (u = b && listed a l)) v.neighbor_lists
