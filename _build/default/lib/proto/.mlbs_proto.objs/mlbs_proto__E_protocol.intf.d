lib/proto/e_protocol.mli: Hello Mlbs_core
