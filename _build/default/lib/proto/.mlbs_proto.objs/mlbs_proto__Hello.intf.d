lib/proto/hello.mli: Mlbs_geom Mlbs_wsn
