lib/proto/broadcast_protocol.ml: Array E_protocol Fun Hashtbl Hello List Mlbs_core Mlbs_dutycycle Mlbs_geom Mlbs_graph Mlbs_util Printf
