lib/proto/broadcast_protocol.mli: Mlbs_core
