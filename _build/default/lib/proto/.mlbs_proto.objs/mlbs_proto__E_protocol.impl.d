lib/proto/e_protocol.ml: Array Hashtbl Hello List Mlbs_core Mlbs_geom Printf
