lib/proto/hello.ml: Array List Mlbs_geom Mlbs_wsn
