(** The conflict-aware broadcast as a fully distributed protocol: every
    decision is taken from state a node built out of received messages.

    This is the end of the road the paper points down in §VII ("a
    localized color scheme and its selection to provide a more reliable
    and scalable solution"): unlike [Mlbs_core.Localized] — which scopes
    the *decision* to 2 hops but still reads the true informed set —
    nothing here touches global state except the radio itself.

    Per slot:

    + {b beacons} (the §III routine exchange, on the always-on receiving
      channel): each node broadcasts its status — whether it holds the
      message, how many of its neighbours still request it, its Eq.-10
      score — plus a digest of what it believes about its own
      neighbours, which is how information reaches 2 hops. Belief in
      "node x holds the message" is monotone (never revoked), so stale
      digests are harmless.
    + {b decisions}: every awake holder with requesting neighbours
      colors the candidates it can see (itself, and 1-/2-hop nodes it
      believes to be holders with requests), using only edges its
      {!Hello.view} can certify, and transmits iff it places itself in
      the class its (distributed) E values select.
    + {b radio}: one audible transmission delivers; several collide.
      A sender cannot observe its receivers directly — it backs off
      after each attempt and learns the outcome from the next beacons;
      unresolved requests trigger a retransmission.

    Imperfect knowledge (one-slot lag, uncertifiable edges) causes real
    collisions; back-off resolves them. Convergence is checked against
    the ground truth only to stop the simulation. *)

type stats = {
  schedule : Mlbs_core.Schedule.t;  (** data transmissions actually made *)
  latency : int;
  collisions : int;
  retransmissions : int;
  beacon_messages : int;  (** control-channel broadcasts *)
  e_messages : int;  (** announcements spent building E (Theorem 3) *)
}

(** [run ?max_slots model ~source ~start] discovers neighbourhoods
    ({!Hello}), builds E distributedly ({!E_protocol}), then runs the
    broadcast. Raises [Failure] when the protocol has not covered the
    network within [max_slots] (default [64 * n * r]). *)
val run : ?max_slots:int -> Mlbs_core.Model.t -> source:int -> start:int -> stats
