module Quadrant = Mlbs_geom.Quadrant
module Model = Mlbs_core.Model
module Emodel = Mlbs_core.Emodel

type result = { values : int array array; rounds : int; messages : int }

let infinity_ = max_int

let construct ?(cwt_frames = 4) model views =
  let n = Array.length views in
  if n <> Model.n_nodes model then invalid_arg "E_protocol.construct: view count mismatch";
  (* Each node's quadrant partition of its neighbours, from its own
     view (positions learned by beaconing). *)
  let quadrant_nbrs =
    Array.map
      (fun (v : Hello.view) ->
        let buckets = Array.make 4 [] in
        List.iter
          (fun (u, pos) ->
            match Quadrant.classify ~origin:v.Hello.position pos with
            | Some q ->
                let k = Quadrant.to_index q in
                buckets.(k) <- u :: buckets.(k)
            | None -> ())
          v.Hello.neighbor_position;
        buckets)
      views
  in
  let weight u v = Emodel.edge_weight model ~cwt_frames u v in
  (* Local state: own tuple, plus the last tuple received from each
     neighbour (node-indexed table of per-neighbour copies). *)
  let e =
    Array.init n (fun u ->
        Array.init 4 (fun k -> if quadrant_nbrs.(u).(k) = [] then 0 else infinity_))
  in
  let known : (int, int array) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let relax u =
    let changed = ref false in
    for k = 0 to 3 do
      match quadrant_nbrs.(u).(k) with
      | [] -> () (* stays seeded at 0 *)
      | nbrs ->
          let best =
            List.fold_left
              (fun acc v ->
                match Hashtbl.find_opt known.(u) v with
                | Some tup when tup.(k) <> infinity_ -> min acc (weight u v + tup.(k))
                | _ -> acc)
              infinity_ nbrs
          in
          if best < e.(u).(k) then begin
            e.(u).(k) <- best;
            changed := true
          end
    done;
    !changed
  in
  let messages = ref 0 and rounds = ref 0 in
  (* Initially, every node with a finite entry has something to say. *)
  let to_announce = ref [] in
  for u = n - 1 downto 0 do
    if Array.exists (fun x -> x <> infinity_) e.(u) then to_announce := u :: !to_announce
  done;
  while !to_announce <> [] do
    incr rounds;
    (* Deliver announcements. *)
    List.iter
      (fun u ->
        incr messages;
        Array.iter
          (fun v -> Hashtbl.replace known.(v) u (Array.copy e.(u)))
          views.(u).Hello.neighbors)
      !to_announce;
    (* Everyone re-relaxes; improvements are announced next round. *)
    let next = ref [] in
    for u = n - 1 downto 0 do
      if relax u then next := u :: !next
    done;
    to_announce := !next
  done;
  (* The quadrant relations are DAGs with all sinks seeded, so every
     value is finite at quiescence. *)
  Array.iteri
    (fun u tup ->
      Array.iteri
        (fun k x ->
          if x = infinity_ then
            failwith
              (Printf.sprintf "E_protocol.construct: node %d quadrant %d never settled" u k))
        tup)
    e;
  { values = e; rounds = !rounds; messages = !messages }
