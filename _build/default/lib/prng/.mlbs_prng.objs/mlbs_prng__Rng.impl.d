lib/prng/rng.ml: Array Int64 List Splitmix64 Xoshiro256
