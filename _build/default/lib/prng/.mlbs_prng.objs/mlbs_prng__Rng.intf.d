lib/prng/rng.mli:
