type t = { gen : Xoshiro256.t; seeder : Splitmix64.t }

let create seed =
  let seeder = Splitmix64.create (Int64.of_int seed) in
  { gen = Xoshiro256.create (Splitmix64.next seeder); seeder }

let split t =
  let child_seed = Splitmix64.next t.seeder in
  let seeder = Splitmix64.create (Splitmix64.next t.seeder) in
  { gen = Xoshiro256.create child_seed; seeder }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let mask = Int64.of_int max_int in
  let rec draw () =
    let x = Int64.to_int (Int64.logand (Xoshiro256.next t.gen) mask) in
    let r = x mod bound in
    if x - r + (bound - 1) >= 0 then r else draw ()
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.shift_right_logical (Xoshiro256.next t.gen) 11 in
  Int64.to_float x /. 9007199254740992.0 *. bound

let bool t ~p =
  if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sample t ~k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    let arr = Array.of_list xs in
    shuffle t arr;
    Array.to_list (Array.sub arr 0 k)
  end
