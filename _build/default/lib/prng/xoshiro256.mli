(** xoshiro256** pseudo-random generator (Blackman & Vigna 2018).

    The workhorse generator for deployment sampling: better equi-
    distribution than SplitMix64 for bulk draws, seeded from a
    SplitMix64 stream as its authors recommend. *)

type t

(** [create seed] seeds the 256-bit state from [seed] via SplitMix64. *)
val create : int64 -> t

(** [of_state s] builds a generator from an explicit 4-word state.
    Raises [Invalid_argument] if the state is all zero (a fixed point of
    the transition). *)
val of_state : int64 * int64 * int64 * int64 -> t

(** [copy g] duplicates the state. *)
val copy : t -> t

(** [next g] is the next 64-bit output. *)
val next : t -> int64

(** [jump g] advances [g] by 2^128 steps in place — equivalent to that
    many [next] calls — used to carve non-overlapping substreams. *)
val jump : t -> unit
