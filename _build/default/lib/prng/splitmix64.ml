type t = { mutable state : int64 }

let create seed = { state = seed }
let copy g = { state = g.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The reference finaliser: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let next_int g ~bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound <= 0";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let x = Int64.to_int (Int64.logand (next g) mask) in
    let r = x mod bound in
    if x - r + (bound - 1) >= 0 then r else draw ()
  in
  draw ()

let next_float g =
  (* 53 high bits -> [0, 1). *)
  let x = Int64.shift_right_logical (next g) 11 in
  Int64.to_float x /. 9007199254740992.0

let split g =
  let seed = next g in
  create (mix seed)
