(** High-level deterministic random interface for the whole library.

    Every stochastic component (deployment sampling, source selection,
    wake schedules) takes an [Rng.t] so that experiments are exactly
    reproducible from an integer seed, per the paper's "preset seed"
    model. Backed by xoshiro256**. *)

type t

(** [create seed] is a fresh deterministic stream. *)
val create : int -> t

(** [split t] derives an independent child stream, advancing [t]; use
    one child per node/component so that adding draws in one place does
    not perturb another. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    when [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t ~lo ~hi] is uniform in [lo, hi] inclusive. Raises
    [Invalid_argument] when [hi < lo]. *)
val int_in : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [bool t ~p] is [true] with probability [p] (clamped to [0,1]). *)
val bool : t -> p:float -> bool

(** [shuffle t arr] permutes [arr] uniformly in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t xs] is a uniform element of [xs]. Raises [Invalid_argument]
    on an empty list. *)
val pick : t -> 'a list -> 'a

(** [sample t ~k xs] draws [k] distinct elements uniformly (reservoir);
    returns all of [xs] when [k >= length]. *)
val sample : t -> k:int -> 'a list -> 'a list
