(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    The paper's duty-cycle model gives each node "a predictable
    pseudo-random sequence [...] with a preset seed"; neighbours forecast
    each other's wake-ups from the seed. SplitMix64 is the seeding /
    splitting primitive: it turns one 64-bit seed into an arbitrary
    number of well-distributed streams, so every node's wake schedule is
    an independent, reproducible stream derived from (experiment seed,
    node id). *)

type t

(** [create seed] is a generator whose state is exactly [seed]. Equal
    seeds yield equal sequences. *)
val create : int64 -> t

(** [copy g] duplicates the state; the copy evolves independently. *)
val copy : t -> t

(** [next g] advances the state and returns the next 64-bit output. *)
val next : t -> int64

(** [next_int g ~bound] is a uniform integer in [0, bound) using
    rejection sampling (no modulo bias). Raises [Invalid_argument] when
    [bound <= 0]. *)
val next_int : t -> bound:int -> int

(** [next_float g] is a uniform float in [0, 1) with 53 random bits. *)
val next_float : t -> float

(** [split g] derives a new, statistically independent generator and
    advances [g]. *)
val split : t -> t
