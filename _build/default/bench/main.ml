(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation studies, and times the schedulers with
   Bechamel.

     dune exec bench/main.exe                 # everything, full sweep
     dune exec bench/main.exe -- --quick      # reduced sweep
     dune exec bench/main.exe -- fig3 table2  # selected targets

   Targets: table2 table3 table4 fig3 fig4 fig5 fig6 fig7 ablation micro
   (default: all). *)

module Config = Mlbs_workload.Config
module Figures = Mlbs_workload.Figures
module Report = Mlbs_workload.Report
module Ablation = Mlbs_workload.Ablation
module Experiment = Mlbs_workload.Experiment
module Model = Mlbs_core.Model
module Scheduler = Mlbs_core.Scheduler
module Emodel = Mlbs_core.Emodel
module Wake_schedule = Mlbs_dutycycle.Wake_schedule

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n%!" bar title bar

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "(%.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------ paper tables ----------------------------- *)

let run_table n render =
  section (Printf.sprintf "Table %s (fixture walkthrough)" n);
  timed (fun () -> print_string (render ()))

(* ------------------------ paper figures ---------------------------- *)

let run_figure cfg name build =
  section (Printf.sprintf "%s (density sweep: %s seeds x %s node counts)"
             (String.capitalize_ascii name)
             (string_of_int (List.length cfg.Config.seeds))
             (string_of_int (List.length cfg.Config.node_counts)));
  timed (fun () -> print_string (Report.render_figure (build cfg)))

(* -------------------------- ablations ------------------------------ *)

let run_ablation cfg =
  section "Ablations (DESIGN.md design choices)";
  timed (fun () ->
      let small = { cfg with Config.seeds = [ 1; 2; 3 ] } in
      Mlbs_util.Tab.print (Ablation.selector_table small ~n:150);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.wake_family_table small ~n:100 ~rate:10);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.lookahead_table small ~n:150);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.relay_set_table small ~n:150);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.localized_table small ~n:150 ~rate:None);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.localized_table small ~n:100 ~rate:(Some 10));
      print_newline ();
      Mlbs_util.Tab.print (Ablation.shape_table small ~n:150);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.protocol_table small ~n:150);
      print_newline ();
      Mlbs_util.Tab.print (Ablation.resilience_table small ~n:150 ~kill_fraction:0.1))

(* ------------------------ bechamel micro --------------------------- *)

let micro_tests cfg =
  let open Bechamel in
  let inst = Experiment.make_instance cfg ~n:150 ~seed:1 in
  let net = inst.Experiment.net in
  let n = Mlbs_wsn.Network.n_nodes net in
  let sync_model = Model.create net Model.Sync in
  let wake = Wake_schedule.create ~rate:10 ~n_nodes:n ~seed:1 () in
  let async_model = Model.create net (Model.Async wake) in
  let source = inst.Experiment.source in
  let run model policy () = ignore (Scheduler.run model policy ~source ~start:1) in
  let budget = cfg.Config.budget in
  [
    Test.make ~name:"fig3/26-approx" (Staged.stage (run sync_model Scheduler.Baseline));
    Test.make ~name:"fig3/G-OPT" (Staged.stage (run sync_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig3/E-model" (Staged.stage (run sync_model Scheduler.Emodel));
    Test.make ~name:"fig4/17-approx" (Staged.stage (run async_model Scheduler.Baseline));
    Test.make ~name:"fig4/G-OPT" (Staged.stage (run async_model (Scheduler.Gopt budget)));
    Test.make ~name:"fig4/E-model" (Staged.stage (run async_model Scheduler.Emodel));
    Test.make ~name:"table2/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table2 ())));
    Test.make ~name:"table3/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table3 ())));
    Test.make ~name:"table4/trace" (Staged.stage (fun () -> ignore (Mlbs_workload.Figures.table4 ())));
    Test.make ~name:"extension/localized protocol"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Localized.run sync_model ~source ~start:1)));
    Test.make ~name:"extension/CDS baseline"
      (Staged.stage (fun () ->
           ignore (Mlbs_core.Baseline_cds.plan sync_model ~source ~start:1)));
    Test.make ~name:"extension/distributed protocol (beacons)"
      (Staged.stage (fun () ->
           ignore (Mlbs_proto.Broadcast_protocol.run sync_model ~source ~start:1)));
    Test.make ~name:"substrate/E-tuple construction"
      (Staged.stage (fun () -> ignore (Emodel.compute sync_model)));
    Test.make ~name:"substrate/UDG deployment (n=150)"
      (Staged.stage (fun () ->
           ignore
             (Mlbs_wsn.Deployment.generate (Mlbs_prng.Rng.create 1)
                (Mlbs_wsn.Deployment.paper_spec ~n_nodes:150))));
  ]

let run_micro cfg =
  section "Bechamel micro-benchmarks (one scheduling run, n=150)";
  timed (fun () ->
      let open Bechamel in
      let test = Test.make_grouped ~name:"mlbs" (micro_tests cfg) in
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg_b = Benchmark.cfg ~quota:(Time.second 0.5) ~limit:200 () in
      let raw = Benchmark.all cfg_b instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %14.0f ns/run\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        (List.sort compare rows))

(* ----------------------------- main -------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then [ "all" ] else targets in
  let want t = List.mem t targets || List.mem "all" targets in
  let cfg = if quick then Config.quick else Config.default in
  let total0 = Unix.gettimeofday () in
  if want "table2" then run_table "II" Figures.table2;
  if want "table3" then run_table "III" Figures.table3;
  if want "table4" then run_table "IV" Figures.table4;
  if want "fig3" then run_figure cfg "fig3" Figures.fig3;
  if want "fig4" then run_figure cfg "fig4" Figures.fig4;
  if want "fig5" then run_figure cfg "fig5" Figures.fig5;
  if want "fig6" then run_figure cfg "fig6" Figures.fig6;
  if want "fig7" then run_figure cfg "fig7" Figures.fig7;
  if want "ablation" then run_ablation cfg;
  if want "micro" then run_micro cfg;
  Printf.printf "total: %.1fs\n" (Unix.gettimeofday () -. total0)
