module Graph = Mlbs_graph.Graph
module Bfs = Mlbs_graph.Bfs
module Components = Mlbs_graph.Components
module Coloring = Mlbs_graph.Coloring
module Metrics = Mlbs_graph.Metrics
module Indep = Mlbs_graph.Indep
module Bitset = Mlbs_util.Bitset

(* A 5-cycle plus a pendant: 0-1-2-3-4-0, 4-5. *)
let sample = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (4, 5) ]

let test_construction () =
  Alcotest.(check int) "nodes" 6 (Graph.n_nodes sample);
  Alcotest.(check int) "edges" 6 (Graph.n_edges sample);
  Alcotest.(check (list int)) "sorted neighbors" [ 0; 3; 5 ]
    (Array.to_list (Graph.neighbors sample 4));
  Alcotest.(check bool) "mem_edge" true (Graph.mem_edge sample 2 3);
  Alcotest.(check bool) "mem_edge sym" true (Graph.mem_edge sample 3 2);
  Alcotest.(check bool) "non-edge" false (Graph.mem_edge sample 0 2);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree sample)

let test_construction_errors () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop at 2")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (2, 2) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: edge (0,3) outside [0,3)") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]));
  Alcotest.check_raises "asymmetric adjacency"
    (Invalid_argument "Graph.of_adjacency: asymmetric edge 0->1") (fun () ->
      ignore (Graph.of_adjacency [| [ 1 ]; [] |]))

let test_duplicate_edges_collapse () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "one edge" 1 (Graph.n_edges g);
  Alcotest.(check int) "degree" 1 (Graph.degree g 0)

let test_edges_listing () =
  let es = Graph.edges sample in
  Alcotest.(check int) "count" 6 (List.length es);
  Alcotest.(check bool) "normalised u<v" true (List.for_all (fun (u, v) -> u < v) es)

let test_common_neighbor () =
  (* 0 and 2 share neighbour 1; gate on candidate sets. *)
  let all = Bitset.full 6 in
  let none = Bitset.create 6 in
  let only_1 = Bitset.of_list 6 [ 1 ] in
  let not_1 = Bitset.complement only_1 in
  Alcotest.(check bool) "shared neighbor" true
    (Graph.common_neighbor_in sample 0 2 ~candidates:all);
  Alcotest.(check bool) "empty candidates" false
    (Graph.common_neighbor_in sample 0 2 ~candidates:none);
  Alcotest.(check bool) "candidate present" true
    (Graph.common_neighbor_in sample 0 2 ~candidates:only_1);
  Alcotest.(check bool) "candidate excluded" false
    (Graph.common_neighbor_in sample 0 2 ~candidates:not_1)

let test_bfs () =
  let r = Bfs.run sample ~source:0 in
  Alcotest.(check (list int)) "distances" [ 0; 1; 2; 2; 1; 2 ] (Array.to_list r.Bfs.dist);
  Alcotest.(check int) "source parent" (-1) r.Bfs.parent.(0);
  (* Every parent is one hop closer. *)
  Array.iteri
    (fun v p ->
      if p >= 0 then
        Alcotest.(check int) "parent distance" (r.Bfs.dist.(v) - 1) r.Bfs.dist.(p))
    r.Bfs.parent

let test_bfs_multi () =
  let r = Bfs.run_multi sample ~sources:[ 0; 3 ] in
  Alcotest.(check int) "near 0" 0 r.Bfs.dist.(0);
  Alcotest.(check int) "near 3" 0 r.Bfs.dist.(3);
  Alcotest.(check int) "2 is 1 from 3" 1 r.Bfs.dist.(2)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let r = Bfs.run g ~source:0 in
  Alcotest.(check int) "unreachable" max_int r.Bfs.dist.(2);
  Alcotest.check_raises "eccentricity raises"
    (Invalid_argument "Bfs.eccentricity: disconnected graph") (fun () ->
      ignore (Bfs.eccentricity g ~source:0))

let test_layers () =
  let layers = Bfs.layers sample ~source:0 in
  Alcotest.(check (list (list int))) "layers" [ [ 0 ]; [ 1; 4 ]; [ 2; 3; 5 ] ] layers

let test_bfs_scratch () =
  (* The allocation-free variant agrees with [run_multi] and a scratch
     survives reuse across graphs of different sizes. *)
  let sc = Bfs.scratch 6 in
  let check_against g sources =
    let n = Graph.n_nodes g in
    let r = Bfs.run_multi g ~sources in
    Bfs.run_multi_into sc g ~sources:(Bitset.of_list n sources);
    let everyone = Bitset.full n in
    let expect =
      Array.fold_left (fun acc d -> if d = max_int || acc = max_int then max_int else max acc d)
        0 r.Bfs.dist
    in
    Alcotest.(check int) "max dist agrees" expect (Bfs.max_dist_from sc ~within:everyone)
  in
  check_against sample [ 0; 3 ];
  check_against sample [ 2 ];
  check_against (Graph.of_edges ~n:3 [ (0, 1) ]) [ 0 ];
  Alcotest.check_raises "scratch too small"
    (Invalid_argument "Bfs.run_multi_into: scratch smaller than graph") (fun () ->
      Bfs.run_multi_into (Bfs.scratch 2) sample ~sources:(Bitset.of_list 6 [ 0 ]))

let test_max_dist_in () =
  let r = Bfs.run sample ~source:0 in
  Alcotest.(check int) "subset max" 2 (Bfs.max_dist_in r ~within:(Bitset.of_list 6 [ 1; 3 ]));
  Alcotest.(check int) "empty subset" 0 (Bfs.max_dist_in r ~within:(Bitset.create 6))

let test_components () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "count" 3 (Components.count g);
  Alcotest.(check bool) "not connected" false (Components.is_connected g);
  Alcotest.(check bool) "sample connected" true (Components.is_connected sample);
  Alcotest.(check (list int)) "largest" [ 0; 1 ] (Components.largest g);
  let labels = Components.labels g in
  Alcotest.(check bool) "same component same label" true (labels.(2) = labels.(3));
  Alcotest.(check bool) "different components differ" true (labels.(0) <> labels.(4))

let test_metrics () =
  Alcotest.(check int) "diameter" 3 (Metrics.diameter sample);
  Alcotest.(check int) "radius" 2 (Metrics.radius sample);
  Alcotest.(check (float 1e-9)) "avg degree" 2. (Metrics.average_degree sample);
  Alcotest.(check (list (pair int int))) "degree histogram" [ (1, 1); (2, 4); (3, 1) ]
    (Metrics.degree_histogram sample)

(* ------------------------- coloring ------------------------------- *)

let test_coloring_known () =
  (* Items 0..3, conflicts forming a path 0-1-2-3; descending "weight"
     order 3,2,1,0. Greedy: C1 = {3,1}, C2 = {2,0}. *)
  let conflicts a b = abs (a - b) = 1 in
  let order a b = compare b a in
  let classes = Coloring.greedy ~order ~conflicts [ 0; 1; 2; 3 ] in
  Alcotest.(check (list (list int))) "classes" [ [ 3; 1 ]; [ 2; 0 ] ] classes;
  Alcotest.(check bool) "valid" true (Coloring.classes_valid ~conflicts classes)

let test_coloring_no_conflicts () =
  let classes = Coloring.greedy ~order:compare ~conflicts:(fun _ _ -> false) [ 3; 1; 2 ] in
  Alcotest.(check (list (list int))) "one class" [ [ 1; 2; 3 ] ] classes

let test_coloring_clique () =
  let classes = Coloring.greedy ~order:compare ~conflicts:(fun a b -> a <> b) [ 1; 2; 3 ] in
  Alcotest.(check int) "three classes" 3 (List.length classes)

let test_classes_valid_detects_bad () =
  let conflicts a b = a <> b in
  Alcotest.(check bool) "conflicting class invalid" false
    (Coloring.classes_valid ~conflicts [ [ 1; 2 ] ]);
  (* Second class whose member conflicts with nothing earlier. *)
  Alcotest.(check bool) "unblocked later class invalid" false
    (Coloring.classes_valid ~conflicts:(fun _ _ -> false) [ [ 0 ]; [ 2 ] ])

(* --------------------------- indep -------------------------------- *)

let subsets_independent conflict sets =
  List.for_all
    (fun s -> List.for_all (fun a -> List.for_all (fun b -> a = b || not (conflict a b)) s) s)
    sets

let maximality n conflict sets =
  List.for_all
    (fun s ->
      List.for_all
        (fun v -> List.mem v s || List.exists (fun u -> conflict u v) s)
        (List.init n Fun.id))
    sets

let test_indep_path () =
  (* Conflict path 0-1-2: maximal independent sets are {0,2} and {1}. *)
  let conflict a b = abs (a - b) = 1 in
  let sets = Indep.maximal ~n:3 ~conflict ~limit:100 in
  Alcotest.(check (list (list int))) "sets" [ [ 0; 2 ]; [ 1 ] ]
    (List.sort compare (List.map (List.sort compare) sets))

let test_indep_empty_relation () =
  let sets = Indep.maximal ~n:4 ~conflict:(fun _ _ -> false) ~limit:10 in
  Alcotest.(check (list (list int))) "single full set" [ [ 0; 1; 2; 3 ] ] sets

let test_indep_clique () =
  let sets = Indep.maximal ~n:4 ~conflict:(fun a b -> a <> b) ~limit:10 in
  Alcotest.(check int) "four singletons" 4 (List.length sets);
  Alcotest.(check bool) "all singleton" true (List.for_all (fun s -> List.length s = 1) sets)

let test_indep_limit () =
  let sets = Indep.maximal ~n:4 ~conflict:(fun a b -> a <> b) ~limit:2 in
  Alcotest.(check int) "limited" 2 (List.length sets)

let test_indep_zero () =
  Alcotest.(check (list (list int))) "n=0" [ [] ] (Indep.maximal ~n:0 ~conflict:(fun _ _ -> true) ~limit:5)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:150 ~name gen f)

(* Random symmetric irreflexive conflict relation over n items as an
   edge-probability matrix derived from a seed list. *)
let gen_relation =
  QCheck2.Gen.(
    pair (int_range 1 9) (list_size (return 81) bool)
    |> map (fun (n, bits) ->
           let arr = Array.of_list bits in
           let conflict a b = a <> b && arr.((min a b * 9) + max a b) in
           (n, conflict)))

(* ----------------------------- digest ------------------------------ *)

let test_digest_canonical () =
  (* The same labelled adjacency built two different ways. *)
  let a = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (4, 5) ] in
  let b =
    Graph.of_edges ~n:6
      [ (5, 4); (4, 3); (0, 4); (2, 1); (3, 2); (1, 0); (0, 1) (* dup collapses *) ]
  in
  let c =
    Graph.of_adjacency
      [| [ 1; 4 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ]; [ 0; 3; 5 ]; [ 4 ] |]
  in
  Alcotest.(check int64) "edge order irrelevant" (Graph.digest a) (Graph.digest b);
  Alcotest.(check int64) "adjacency build equal" (Graph.digest a) (Graph.digest c)

let test_digest_discriminates () =
  let base = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (4, 5) ] in
  let flipped = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (3, 5) ] in
  let extra = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (4, 5); (0, 2) ] in
  let bigger = Graph.of_edges ~n:7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (4, 5) ] in
  Alcotest.(check bool) "edge flip differs" true (Graph.digest base <> Graph.digest flipped);
  Alcotest.(check bool) "extra edge differs" true (Graph.digest base <> Graph.digest extra);
  Alcotest.(check bool) "node count differs" true (Graph.digest base <> Graph.digest bigger);
  (* Labels matter: digest is over the labelled graph, not the
     isomorphism class. *)
  let relabel = Graph.of_edges ~n:6 [ (1, 2); (2, 3); (3, 4); (4, 0); (0, 1); (0, 5) ] in
  Alcotest.(check bool) "relabelling differs" true
    (Graph.digest base <> Graph.digest relabel)

let props =
  [
    prop "greedy coloring always valid" gen_relation (fun (n, conflict) ->
        let items = List.init n Fun.id in
        let classes = Coloring.greedy ~order:compare ~conflicts:conflict items in
        Coloring.classes_valid ~conflicts:conflict classes
        && List.sort compare (List.concat classes) = items);
    prop "maximal independent sets: independent and maximal" gen_relation
      (fun (n, conflict) ->
        let sets = Indep.maximal ~n ~conflict ~limit:500 in
        sets <> []
        && subsets_independent conflict sets
        && maximality n conflict sets);
    prop "every greedy class extends to some enumerated maximal set" gen_relation
      (fun (n, conflict) ->
        let items = List.init n Fun.id in
        let classes = Coloring.greedy ~order:compare ~conflicts:conflict items in
        let sets = Indep.maximal ~n ~conflict ~limit:500 in
        List.for_all
          (fun cls ->
            List.exists (fun s -> List.for_all (fun c -> List.mem c s) cls) sets
            ||
            (* The class itself may already be maximal and enumerated. *)
            List.mem (List.sort compare cls) (List.map (List.sort compare) sets))
          classes);
    prop "digest invariant under edge-list shuffle" QCheck2.Gen.(0 -- 1000) (fun seed ->
        let rng = Mlbs_prng.Rng.create seed in
        let n = 2 + Mlbs_prng.Rng.int rng 20 in
        let edges = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Mlbs_prng.Rng.float rng 1.0 < 0.3 then edges := (u, v) :: !edges
          done
        done;
        let shuffled =
          List.sort
            (fun a b -> compare (Hashtbl.hash (a, seed)) (Hashtbl.hash (b, seed)))
            (List.map (fun (u, v) -> if seed mod 2 = 0 then (v, u) else (u, v)) !edges)
        in
        Graph.digest (Graph.of_edges ~n !edges)
        = Graph.digest (Graph.of_edges ~n shuffled));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "errors" `Quick test_construction_errors;
          Alcotest.test_case "duplicates" `Quick test_duplicate_edges_collapse;
          Alcotest.test_case "edges" `Quick test_edges_listing;
          Alcotest.test_case "common neighbor" `Quick test_common_neighbor;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "single source" `Quick test_bfs;
          Alcotest.test_case "multi source" `Quick test_bfs_multi;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "layers" `Quick test_layers;
          Alcotest.test_case "scratch variant" `Quick test_bfs_scratch;
          Alcotest.test_case "max_dist_in" `Quick test_max_dist_in;
        ] );
      ( "components",
        [ Alcotest.test_case "components" `Quick test_components ] );
      ( "digest",
        [
          Alcotest.test_case "canonical" `Quick test_digest_canonical;
          Alcotest.test_case "discriminates" `Quick test_digest_discriminates;
        ] );
      ("metrics", [ Alcotest.test_case "metrics" `Quick test_metrics ]);
      ( "coloring",
        [
          Alcotest.test_case "known" `Quick test_coloring_known;
          Alcotest.test_case "no conflicts" `Quick test_coloring_no_conflicts;
          Alcotest.test_case "clique" `Quick test_coloring_clique;
          Alcotest.test_case "invalid detection" `Quick test_classes_valid_detects_bad;
        ] );
      ( "indep",
        [
          Alcotest.test_case "path" `Quick test_indep_path;
          Alcotest.test_case "empty relation" `Quick test_indep_empty_relation;
          Alcotest.test_case "clique" `Quick test_indep_clique;
          Alcotest.test_case "limit" `Quick test_indep_limit;
          Alcotest.test_case "zero items" `Quick test_indep_zero;
        ] );
      ("properties", props);
    ]
