module Codec = Mlbs_server.Codec
module Daemon = Mlbs_server.Daemon
module Fleet = Mlbs_server.Fleet
module Client = Mlbs_server.Client
module Ring = Mlbs_server.Ring

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mlbs_fleet_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let gen_request seed =
  {
    Codec.policy = Codec.Gopt;
    rate = None;
    seed;
    topology = Codec.Gen { n = 40; radius = 10.0 };
    source = None;
    start = 1;
    model = Mlbs_phy.Interference.Udg;
  }

(* ------------------------------- ring ------------------------------ *)

let names_gen =
  QCheck.Gen.(
    let name = map (Printf.sprintf "node%d") (int_range 0 31) in
    list_size (int_range 1 12) name)

let key_gen = QCheck.Gen.(map (Printf.sprintf "key:%d") (int_range 0 100_000))

let arb_names = QCheck.make ~print:(String.concat ",") names_gen
let arb_names_key = QCheck.pair arb_names (QCheck.make ~print:Fun.id key_gen)

let qcheck_ring_deterministic =
  QCheck.Test.make ~name:"owner is deterministic and order-independent" ~count:200
    arb_names_key (fun (names, key) ->
      let r1 = Ring.create names in
      let r2 = Ring.create (List.rev names) in
      Ring.owner r1 key = Ring.owner r2 key
      && Ring.owner r1 key = Ring.owner (Ring.create names) key)

let qcheck_ring_membership =
  QCheck.Test.make ~name:"owner is a member" ~count:200 arb_names_key
    (fun (names, key) ->
      let r = Ring.create names in
      match Ring.owner r key with
      | None -> names = []
      | Some o -> List.mem o (Ring.nodes r))

(* Adding one member must only move keys TO the new member; keys that
   move anywhere else indicate unstable placement. *)
let qcheck_ring_minimal_movement_add =
  QCheck.Test.make ~name:"adding a member only claims keys for itself" ~count:100
    arb_names (fun names ->
      QCheck.assume (names <> []);
      let r = Ring.create names in
      let r' = Ring.add r "node-new" in
      let ok = ref true in
      for i = 0 to 499 do
        let key = Printf.sprintf "key:%d" i in
        let before = Ring.owner r key and after = Ring.owner r' key in
        if before <> after && after <> Some "node-new" then ok := false
      done;
      !ok)

(* Removing a member must only re-home the keys it owned. *)
let qcheck_ring_minimal_movement_remove =
  QCheck.Test.make ~name:"removing a member only moves its own keys" ~count:100
    arb_names (fun names ->
      QCheck.assume (List.length (Ring.nodes (Ring.create names)) >= 2);
      let r = Ring.create names in
      let victim = List.hd (Ring.nodes r) in
      let r' = Ring.remove r victim in
      let ok = ref true in
      for i = 0 to 499 do
        let key = Printf.sprintf "key:%d" i in
        let before = Ring.owner r key and after = Ring.owner r' key in
        if before <> Some victim && before <> after then ok := false
      done;
      !ok)

(* The fill protocol peeks the successor because it is exactly where the
   key lived (or will live) when the owner is absent. *)
let qcheck_ring_successor_is_owner_after_removal =
  QCheck.Test.make ~name:"successor = owner after the owner leaves" ~count:100
    arb_names_key (fun (names, key) ->
      let r = Ring.create names in
      match Ring.owner r key with
      | None -> true
      | Some o -> (
          let r' = Ring.remove r o in
          match Ring.successor r key with
          | None -> List.length (Ring.nodes r) < 2
          | Some s -> Ring.owner r' key = Some s && s <> o))

let test_ring_balance () =
  let names = List.init 4 (Printf.sprintf "shard%d") in
  let r = Ring.create names in
  let counts = Hashtbl.create 4 in
  for i = 0 to 9_999 do
    match Ring.owner r (Printf.sprintf "key:%d" i) with
    | Some o -> Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
    | None -> Alcotest.fail "non-empty ring owned nothing"
  done;
  Hashtbl.iter
    (fun name c ->
      if c < 1_000 || c > 5_000 then
        Alcotest.failf "grossly unbalanced ring: %s owns %d/10000 keys" name c)
    counts;
  Alcotest.(check int) "all members own something" 4 (Hashtbl.length counts)

(* ------------------------------ fleet e2e -------------------------- *)

let start_backend () =
  Daemon.start
    {
      (Daemon.default_config ~socket_path:"unused") with
      Daemon.socket_path = None;
      tcp_port = Some 0;
      jobs = 1;
      cache_capacity = 32;
    }

let backend_endpoint d =
  match Daemon.tcp_port d with
  | Some port -> Client.Tcp { host = "127.0.0.1"; port }
  | None -> Alcotest.fail "backend has no TCP port"

let with_fleet ?(n_backends = 2) ?(fill = true) f =
  let dir = temp_dir () in
  let socket_path = Filename.concat dir "front.sock" in
  let backends = List.init n_backends (fun _ -> start_backend ()) in
  let eps = List.map backend_endpoint backends in
  let fcfg =
    {
      (Fleet.default_config ~backends:eps ~socket_path) with
      Fleet.fill;
      health_period = 0.2;
    }
  in
  let t = Fleet.start fcfg in
  let finish () =
    Fleet.stop t;
    Fleet.wait t;
    List.iter
      (fun d ->
        Daemon.stop d;
        Daemon.wait d)
      backends;
    rm_rf dir
  in
  Fun.protect ~finally:finish (fun () -> f socket_path t backends eps)

let connect path =
  let c, _, _ = Client.connect (Client.Unix_socket path) in
  c

let request_ok c req =
  match Client.request_retry ~attempts:8 c req with
  | Client.Ok ok -> ok
  | Client.Rejected _ -> Alcotest.fail "fleet rejected a test request"
  | Client.Error m -> Alcotest.failf "fleet error: %s" m

let test_fleet_serves_and_routes () =
  with_fleet @@ fun socket _t _backends eps ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let ring = Ring.create (List.map Fleet.endpoint_name eps) in
  let seen_owner = Hashtbl.create 8 in
  for seed = 1 to 6 do
    let req = gen_request seed in
    let ok = request_ok c req in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d first solve is a miss" seed)
      false ok.Codec.cache_hit;
    let _, direct = Daemon.solve req in
    Alcotest.(check string)
      (Printf.sprintf "seed %d byte-identical to direct scheduler" seed)
      (Codec.schedule_bytes direct)
      (Codec.schedule_bytes ok.Codec.schedule);
    let again = request_ok c req in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d repeat is a cache hit" seed)
      true again.Codec.cache_hit;
    Hashtbl.replace seen_owner
      (Option.get (Ring.owner ring (Daemon.cache_key req)))
      ()
  done;
  (* Verify routing against the model ring: peek each request at its
     predicted owner directly — the schedule must be cached there. *)
  List.iter
    (fun ep ->
      let bc, _, _ = Client.connect ep in
      Fun.protect ~finally:(fun () -> Client.close bc) @@ fun () ->
      for seed = 1 to 6 do
        let req = gen_request seed in
        let is_owner =
          Ring.owner ring (Daemon.cache_key req) = Some (Fleet.endpoint_name ep)
        in
        match Client.peek bc req with
        | `Hit _ ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d cached only at its owner" seed)
              true is_owner
        | `Miss ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d absent from non-owners" seed)
              false is_owner
        | `Error m -> Alcotest.failf "peek error: %s" m
      done)
    eps

(* Peer cache-fill: warm a schedule at the WRONG backend (the ring
   successor), then ask the fleet — the front must fill from the peer
   rather than re-solving, and afterwards the owner must hold a copy. *)
let test_fleet_peer_fill () =
  with_fleet @@ fun socket _t _backends eps ->
  let ring = Ring.create (List.map Fleet.endpoint_name eps) in
  let req = gen_request 42 in
  let key = Daemon.cache_key req in
  let owner = Option.get (Ring.owner ring key) in
  let succ = Option.get (Ring.successor ring key) in
  let ep_named name = List.find (fun ep -> Fleet.endpoint_name ep = name) eps in
  (* Plant the solved schedule at the successor via a direct Put. *)
  let stats, schedule = Daemon.solve req in
  let sc, _, _ = Client.connect (ep_named succ) in
  (match Client.put sc ~req ~stats ~schedule () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "put to successor failed: %s" m);
  Client.close sc;
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let ok = request_ok c req in
  Alcotest.(check bool) "fill serves as a cache hit" true ok.Codec.cache_hit;
  Alcotest.(check string) "filled reply byte-identical"
    (Codec.schedule_bytes schedule)
    (Codec.schedule_bytes ok.Codec.schedule);
  (* The fill must also have installed the entry at the owner. *)
  let oc, _, _ = Client.connect (ep_named owner) in
  Fun.protect ~finally:(fun () -> Client.close oc) @@ fun () ->
  match Client.peek oc req with
  | `Hit hit ->
      Alcotest.(check string) "owner holds the filled schedule"
        (Codec.schedule_bytes schedule)
        (Codec.schedule_bytes hit.Codec.schedule)
  | `Miss -> Alcotest.fail "fill did not install the entry at the owner"
  | `Error m -> Alcotest.failf "peek at owner failed: %s" m

(* Kill a backend, then re-issue requests that it owned: the fleet must
   re-route to the surviving shards and the replies must stay
   byte-identical to the direct scheduler. *)
let test_fleet_backend_death_failover () =
  with_fleet ~n_backends:3 @@ fun socket t backends _eps ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let reqs = List.init 6 (fun i -> gen_request (100 + i)) in
  let direct =
    List.map (fun r -> Codec.schedule_bytes (snd (Daemon.solve r))) reqs
  in
  List.iter (fun r -> ignore (request_ok c r)) reqs;
  Alcotest.(check int) "three shards alive" 3 (List.length (Fleet.alive_backends t));
  (* Hard-stop one backend (connections start failing immediately). *)
  let victim = List.hd backends in
  Daemon.stop victim;
  Daemon.wait victim;
  List.iter2
    (fun r want ->
      let ok = request_ok c r in
      Alcotest.(check string) "re-routed reply byte-identical" want
        (Codec.schedule_bytes ok.Codec.schedule))
    reqs direct;
  (* The health loop (period 0.2 s) must eventually drop the dead shard
     from the ring. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    List.length (Fleet.alive_backends t) > 2 && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.05
  done;
  Alcotest.(check int) "dead shard left the ring" 2
    (List.length (Fleet.alive_backends t));
  let kvs =
    let sc = connect socket in
    Fun.protect ~finally:(fun () -> Client.close sc) (fun () -> Client.stats sc)
  in
  Alcotest.(check bool) "death recorded in fleet metrics" true
    (Option.value ~default:0 (List.assoc_opt "server/fleet/deaths" kvs) >= 1)

let test_fleet_reschedule_routed () =
  with_fleet @@ fun socket _t _backends _eps ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let base = gen_request 7 in
  ignore (request_ok c base);
  let delta = { Codec.d_added = []; d_removed = []; d_rewired = [] } in
  match Client.reschedule_retry ~attempts:8 c ~base ~delta with
  | Client.Ok ok ->
      let derived = Daemon.derived_request base delta in
      let _, direct = Daemon.solve derived in
      Alcotest.(check string) "reschedule through the fleet byte-identical"
        (Codec.schedule_bytes direct)
        (Codec.schedule_bytes ok.Codec.schedule)
  | Client.Rejected _ -> Alcotest.fail "fleet rejected reschedule"
  | Client.Error m -> Alcotest.failf "fleet reschedule error: %s" m

let () =
  Alcotest.run "fleet"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest qcheck_ring_deterministic;
          QCheck_alcotest.to_alcotest qcheck_ring_membership;
          QCheck_alcotest.to_alcotest qcheck_ring_minimal_movement_add;
          QCheck_alcotest.to_alcotest qcheck_ring_minimal_movement_remove;
          QCheck_alcotest.to_alcotest qcheck_ring_successor_is_owner_after_removal;
          Alcotest.test_case "balance" `Quick test_ring_balance;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "serves and routes" `Quick test_fleet_serves_and_routes;
          Alcotest.test_case "peer cache-fill" `Quick test_fleet_peer_fill;
          Alcotest.test_case "backend death failover" `Quick
            test_fleet_backend_death_failover;
          Alcotest.test_case "reschedule routed" `Quick test_fleet_reschedule_routed;
        ] );
    ]
